(* Unit and property tests for Mlpart_util: Rng, Stats, Tab, Timer. *)

module Rng = Mlpart_util.Rng
module Stats = Mlpart_util.Stats
module Tab = Mlpart_util.Tab

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---- Rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check Alcotest.bool "different streams" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_copy_independent () =
  let a = Rng.create 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.bits64 a) (Rng.bits64 b);
  ignore (Rng.bits64 a);
  (* advancing [a] must not advance [b] *)
  let b1 = Rng.bits64 b and b2 = Rng.bits64 b in
  check Alcotest.bool "copy advances on its own" true (b1 <> b2)

let test_rng_split_differs () =
  let a = Rng.create 3 in
  let b = Rng.split a in
  check Alcotest.bool "split stream differs from parent" true
    (Rng.bits64 a <> Rng.bits64 b)

let test_rng_stream_deterministic () =
  (* equal state + equal index => equal stream, any draw order *)
  let a = Rng.stream (Rng.create 7) 4 and b = Rng.stream (Rng.create 7) 4 in
  for _ = 1 to 50 do
    check Alcotest.int64 "same substream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_stream_does_not_advance_parent () =
  let t = Rng.create 7 in
  let before = Rng.bits64 (Rng.copy t) in
  ignore (Rng.stream t 3);
  ignore (Rng.stream t 100);
  check Alcotest.int64 "parent stream untouched" before (Rng.bits64 t)

let test_rng_stream_indices_differ () =
  let t = Rng.create 7 in
  let seen = Hashtbl.create 64 in
  for i = 0 to 63 do
    let v = Rng.bits64 (Rng.stream t i) in
    check Alcotest.bool
      (Printf.sprintf "stream %d distinct" i)
      false (Hashtbl.mem seen v);
    Hashtbl.replace seen v ()
  done

let test_rng_stream_negative_rejected () =
  check Alcotest.bool "negative index raises" true
    (match Rng.stream (Rng.create 1) (-1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_rng_int_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
  done

let test_rng_int_covers_range () =
  let rng = Rng.create 5 in
  let seen = Array.make 7 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 7) <- true
  done;
  check Alcotest.bool "all residues hit" true (Array.for_all Fun.id seen)

let test_rng_float_bounds () =
  let rng = Rng.create 8 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "out of range: %f" v
  done

let test_rng_bool_balanced () =
  let rng = Rng.create 13 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool rng then incr trues
  done;
  check Alcotest.bool "roughly fair" true (!trues > 4500 && !trues < 5500)

let test_rng_permutation () =
  let rng = Rng.create 21 in
  let p = Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check
    Alcotest.(array int)
    "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_shuffle_multiset () =
  let rng = Rng.create 22 in
  let a = Array.init 20 (fun i -> i mod 5) in
  let original = Array.copy a in
  Rng.shuffle_in_place rng a;
  Array.sort compare a;
  Array.sort compare original;
  check Alcotest.(array int) "multiset preserved" original a

let prop_rng_int_in_bound =
  QCheck.Test.make ~name:"rng int within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

(* ---- Stats ---- *)

let test_stats_empty_raises () =
  let s = Stats.create () in
  Alcotest.check_raises "min on empty"
    (Invalid_argument "Stats.min: empty accumulator") (fun () ->
      ignore (Stats.min s))

let test_stats_single () =
  let s = Stats.of_list [ 5.0 ] in
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.mean s);
  check (Alcotest.float 1e-9) "min" 5.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 5.0 (Stats.max s);
  (* a single sample must give std = 0, never nan *)
  check (Alcotest.float 1e-9) "std" 0.0 (Stats.stddev s);
  check (Alcotest.float 1e-9) "std alias" 0.0 (Stats.std s);
  check Alcotest.bool "std is finite" true (Float.is_finite (Stats.std s))

let test_stats_std_of_moments () =
  (* one sample: n < 2 guard, not nan *)
  let s1 = Stats.std_of_moments ~n:1 ~sum:5.0 ~sumsq:25.0 in
  check (Alcotest.float 1e-9) "single-sample moments" 0.0 s1;
  check Alcotest.bool "finite" true (Float.is_finite s1);
  (* identical samples: cancellation leaves at most rounding noise, and a
     slightly negative variance is clamped rather than producing nan *)
  let s = Stats.std_of_moments ~n:3 ~sum:0.3 ~sumsq:0.03 in
  check Alcotest.bool "identical samples finite" true (Float.is_finite s);
  check (Alcotest.float 1e-6) "identical samples near zero" 0.0 s;
  (* known population std: {2,4,4,4,5,5,7,9} has std 2 *)
  check (Alcotest.float 1e-9) "known population" 2.0
    (Stats.std_of_moments ~n:8 ~sum:40.0 ~sumsq:232.0)

let test_stats_known () =
  let s = Stats.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.mean s);
  check (Alcotest.float 1e-9) "std" 2.0 (Stats.stddev s);
  check (Alcotest.float 1e-9) "min" 2.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 9.0 (Stats.max s);
  check Alcotest.int "count" 8 (Stats.count s)

let test_stats_summary () =
  let s = Stats.of_list [ 1.0; 3.0 ] in
  check Alcotest.string "summary format" "1.0/2.0/1.0" (Stats.summary s);
  check Alcotest.string "empty summary" "(empty)" (Stats.summary (Stats.create ()))

let prop_stats_matches_naive =
  QCheck.Test.make ~name:"welford matches naive mean/std" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stats.of_list xs in
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. n
      in
      abs_float (Stats.mean s -. mean) < 1e-6 *. (1.0 +. abs_float mean)
      && abs_float (Stats.stddev s -. sqrt var) < 1e-6 *. (1.0 +. sqrt var))

(* ---- Tab ---- *)

let test_tab_alignment () =
  let s = Tab.render ~header:[ "name"; "value" ] [ [ "x"; "1" ]; [ "longer"; "22" ] ] in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: _sep :: row1 :: _ ->
      check Alcotest.string "header padded" "name    value" header;
      check Alcotest.string "row right-aligned" "x           1" row1
  | _ -> Alcotest.fail "unexpected shape")

let test_tab_short_rows_padded () =
  let s = Tab.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  check Alcotest.bool "renders without exception" true (String.length s > 0)

let test_tab_custom_alignment () =
  let s =
    Tab.render
      ~align:[ Tab.Right; Tab.Left ]
      ~header:[ "n"; "label" ]
      [ [ "1"; "x" ] ]
  in
  check Alcotest.bool "right-aligned first column" true
    (String.length s > 0 && s.[0] = 'n')

let test_tab_formatters () =
  check Alcotest.string "fi" "42" (Tab.fi 42);
  check Alcotest.string "ff1" "3.1" (Tab.ff1 3.14);
  check Alcotest.string "ff2" "3.14" (Tab.ff2 3.14159)

(* ---- Timer ---- *)

let test_timer_returns_result () =
  let value, elapsed = Mlpart_util.Timer.time (fun () -> 6 * 7) in
  check Alcotest.int "result" 42 value;
  check Alcotest.bool "non-negative" true (elapsed >= 0.0)

(* ---- Pool ---- *)

module Pool = Mlpart_util.Pool

let test_pool_parallel_for () =
  Pool.with_pool ~jobs:4 (fun pool ->
      check Alcotest.int "size" 4 (Pool.size pool);
      let n = 1000 in
      let out = Array.make n 0 in
      Pool.parallel_for pool ~start:0 ~stop:n ~body:(fun i -> out.(i) <- i * i);
      for i = 0 to n - 1 do
        if out.(i) <> i * i then Alcotest.failf "slot %d not written" i
      done;
      (* reuse of the same pool for a second job *)
      Pool.parallel_for pool ~start:0 ~stop:n ~body:(fun i -> out.(i) <- i);
      check Alcotest.int "second job" 999 out.(n - 1))

let test_pool_map_order () =
  (* result order is input order regardless of pool size *)
  let input = Array.init 257 (fun i -> i) in
  let seq = Array.map (fun i -> (i * 7) mod 64) input in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let got = Pool.map pool (fun i -> (i * 7) mod 64) input in
          check
            Alcotest.(array int)
            (Printf.sprintf "map order jobs=%d" jobs)
            seq got))
    [ 1; 2; 4 ]

let test_pool_map_reduce () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let a = Array.init 100 (fun i -> i + 1) in
      let total =
        Pool.map_reduce pool ~map:(fun x -> x * x)
          ~reduce:(fun acc x -> acc + x)
          ~init:0 a
      in
      check Alcotest.int "sum of squares" 338350 total)

let test_pool_exception_propagates () =
  Pool.with_pool ~jobs:2 (fun pool ->
      match
        Pool.parallel_for pool ~start:0 ~stop:8 ~body:(fun i ->
            if i = 5 then failwith "boom")
      with
      | () -> Alcotest.fail "expected exception"
      | exception Failure msg -> check Alcotest.string "message" "boom" msg);
  (* pool stays usable after shutdown of the failed one: fresh pool runs *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let out = Pool.map pool (fun x -> x + 1) [| 1; 2; 3 |] in
      check Alcotest.(array int) "fresh pool works" [| 2; 3; 4 |] out)

let test_pool_exception_no_deadlock_and_reusable () =
  (* a raising body must neither hang run_job nor poison the SAME pool for
     subsequent jobs *)
  Pool.with_pool ~jobs:2 (fun pool ->
      (match
         Pool.parallel_for pool ~start:0 ~stop:64 ~body:(fun i ->
             if i = 17 then failwith "chunk boom")
       with
      | () -> Alcotest.fail "expected exception"
      | exception Failure msg -> check Alcotest.string "message" "chunk boom" msg);
      (* the same pool instance accepts and completes the next job *)
      let out = Pool.map pool (fun x -> x * 3) [| 1; 2; 3; 4 |] in
      check Alcotest.(array int) "same pool reusable" [| 3; 6; 9; 12 |] out;
      (match
         Pool.map pool (fun x -> if x = 2 then raise Exit else x) [| 1; 2 |]
       with
      | _ -> Alcotest.fail "expected Exit"
      | exception Exit -> ());
      let total =
        Pool.map_reduce pool ~map:Fun.id ~reduce:( + ) ~init:0
          (Array.init 10 succ)
      in
      check Alcotest.int "map_reduce after failures" 55 total)

let test_pool_cancellation_skips_chunks () =
  (* once a body raises, the cancellation flag stops remaining chunks: with
     chunk size forced to 1 by a tiny range-per-chunk, far fewer than [stop]
     iterations execute *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let executed = Atomic.make 0 in
      let stop = 100_000 in
      (match
         Pool.parallel_for pool ~start:0 ~stop ~body:(fun _ ->
             ignore (Atomic.fetch_and_add executed 1);
             failwith "cancel now")
       with
      | () -> Alcotest.fail "expected exception"
      | exception Failure _ -> ());
      let ran = Atomic.get executed in
      check Alcotest.bool
        (Printf.sprintf "executed %d of %d" ran stop)
        true
        (ran < stop / 2))

module Deadline = Mlpart_util.Deadline

let test_deadline_latches () =
  let dl = Deadline.make ~seconds:3600.0 in
  check Alcotest.bool "not yet expired" false (Deadline.check dl);
  check Alcotest.bool "expired agrees" false (Deadline.expired dl);
  check Alcotest.bool "remaining positive" true (Deadline.remaining dl > 0.0)

let test_deadline_pre_expired () =
  let dl = Deadline.make ~seconds:0.0 in
  check Alcotest.bool "zero budget expires" true (Deadline.check dl);
  check Alcotest.bool "stays expired" true (Deadline.expired dl);
  check Alcotest.bool "latched" true (Deadline.check dl);
  check Alcotest.bool "no time left" true (Deadline.remaining dl <= 0.0);
  let neg = Deadline.make ~seconds:(-5.0) in
  check Alcotest.bool "negative budget expires" true (Deadline.check neg)

(* Jobs values exercised by the determinism tests; the CI matrix overrides
   the default through MLPART_TEST_JOBS so the suite runs both sequential
   and multi-domain schedules. *)
let test_jobs_list () =
  match Sys.getenv_opt "MLPART_TEST_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> [ 1; j; 2 * j ]
      | _ -> [ 1; 2; 4; 8 ])
  | None -> [ 1; 2; 4; 8 ]

let test_pool_chunk_bounds_jobs_invariant () =
  (* chunk boundaries are a pure function of n — verify both the direct
     decomposition and that parallel_chunks visits exactly those bounds for
     every jobs value *)
  List.iter
    (fun n ->
      let expected = Pool.chunk_bounds ~n in
      (* contiguous cover of [0, n) *)
      let covered = ref 0 in
      Array.iter
        (fun (lo, hi) ->
          check Alcotest.int (Printf.sprintf "n=%d contiguous" n) !covered lo;
          check Alcotest.bool (Printf.sprintf "n=%d nonempty" n) true (hi > lo);
          covered := hi)
        expected;
      check Alcotest.int (Printf.sprintf "n=%d covers" n) n !covered;
      List.iter
        (fun jobs ->
          Pool.with_pool ~jobs (fun pool ->
              let seen = Array.make (Array.length expected) (-1, -1) in
              Pool.parallel_chunks pool ~n ~body:(fun ~slot:_ ~lo ~hi ->
                  let c = lo / Stdlib.max 1 (snd expected.(0) - fst expected.(0)) in
                  seen.(c) <- (lo, hi));
              check
                Alcotest.(array (pair int int))
                (Printf.sprintf "chunks identical n=%d jobs=%d" n jobs)
                expected seen))
        (test_jobs_list ()))
    [ 1; 63; 64; 65; 1000; 4097; 100_000 ]

let test_pool_parallel_scan_matches_sequential () =
  let n = 10_000 in
  let src = Array.init n (fun i -> (i * 31) mod 97) in
  let expected = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    expected.(i + 1) <- expected.(i) + src.(i)
  done;
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let dst = Array.make (n + 1) (-1) in
          let total = Pool.parallel_scan pool ~n ~src ~dst in
          check Alcotest.int (Printf.sprintf "total jobs=%d" jobs) expected.(n)
            total;
          check
            Alcotest.(array int)
            (Printf.sprintf "prefix sums jobs=%d" jobs)
            expected dst))
    (test_jobs_list ());
  (* empty scan *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let dst = Array.make 1 5 in
      check Alcotest.int "empty total" 0
        (Pool.parallel_scan pool ~n:0 ~src:[||] ~dst);
      check Alcotest.int "empty dst" 0 dst.(0))

let test_pool_parallel_chunks_slots () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n = 50_000 in
      let hit = Array.make n 0 in
      Pool.parallel_chunks pool ~n ~body:(fun ~slot ~lo ~hi ->
          check Alcotest.bool "slot in range" true (slot >= 0 && slot < 4);
          for i = lo to hi - 1 do
            hit.(i) <- hit.(i) + 1
          done);
      Array.iteri
        (fun i c -> if c <> 1 then Alcotest.failf "index %d visited %d times" i c)
        hit)

let test_pool_sequential_fallback () =
  Pool.with_pool ~jobs:1 (fun pool ->
      check Alcotest.int "size 1" 1 (Pool.size pool);
      let out = Pool.map pool (fun x -> 2 * x) [| 3; 4 |] in
      check Alcotest.(array int) "sequential map" [| 6; 8 |] out);
  check Alcotest.bool "recommended >= 1" true (Pool.recommended_jobs () >= 1)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split differs" `Quick test_rng_split_differs;
          Alcotest.test_case "stream deterministic" `Quick
            test_rng_stream_deterministic;
          Alcotest.test_case "stream leaves parent" `Quick
            test_rng_stream_does_not_advance_parent;
          Alcotest.test_case "stream indices differ" `Quick
            test_rng_stream_indices_differ;
          Alcotest.test_case "stream negative rejected" `Quick
            test_rng_stream_negative_rejected;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int covers range" `Quick test_rng_int_covers_range;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bool balanced" `Quick test_rng_bool_balanced;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
          Alcotest.test_case "shuffle multiset" `Quick test_rng_shuffle_multiset;
          qtest prop_rng_int_in_bound;
        ] );
      ( "stats",
        [
          Alcotest.test_case "empty raises" `Quick test_stats_empty_raises;
          Alcotest.test_case "single value" `Quick test_stats_single;
          Alcotest.test_case "std of moments" `Quick test_stats_std_of_moments;
          Alcotest.test_case "known dataset" `Quick test_stats_known;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          qtest prop_stats_matches_naive;
        ] );
      ( "tab",
        [
          Alcotest.test_case "alignment" `Quick test_tab_alignment;
          Alcotest.test_case "short rows" `Quick test_tab_short_rows_padded;
          Alcotest.test_case "custom alignment" `Quick test_tab_custom_alignment;
          Alcotest.test_case "formatters" `Quick test_tab_formatters;
        ] );
      ( "timer",
        [
          Alcotest.test_case "returns result" `Quick test_timer_returns_result;
        ] );
      ( "pool",
        [
          Alcotest.test_case "parallel_for" `Quick test_pool_parallel_for;
          Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "map_reduce" `Quick test_pool_map_reduce;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "exception no deadlock, pool reusable" `Quick
            test_pool_exception_no_deadlock_and_reusable;
          Alcotest.test_case "cancellation skips chunks" `Quick
            test_pool_cancellation_skips_chunks;
          Alcotest.test_case "sequential fallback" `Quick
            test_pool_sequential_fallback;
          Alcotest.test_case "chunk bounds jobs-invariant" `Quick
            test_pool_chunk_bounds_jobs_invariant;
          Alcotest.test_case "parallel_scan matches sequential" `Quick
            test_pool_parallel_scan_matches_sequential;
          Alcotest.test_case "parallel_chunks covers once" `Quick
            test_pool_parallel_chunks_slots;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "latches" `Quick test_deadline_latches;
          Alcotest.test_case "pre-expired" `Quick test_deadline_pre_expired;
        ] );
    ]
