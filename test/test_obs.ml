(* Tests for Mlpart_obs: the Json core, the Trace span recorder, the
   Metrics registry, and the schema/determinism contracts of the two
   exports the CLI writes for --trace/--metrics. *)

module Json = Mlpart_obs.Json
module Trace = Mlpart_obs.Trace
module Metrics = Mlpart_obs.Metrics
module Diag = Mlpart_util.Diag
module Rng = Mlpart_util.Rng
module Pool = Mlpart_util.Pool
module Ml = Mlpart_multilevel.Ml

let check = Alcotest.check

let instance seed =
  let rng = Rng.create seed in
  Mlpart_gen.Generate.rent ~rng ~modules:300 ~nets:375 ~pins:1050 ()

(* ---- Json ---- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("bool", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 3.25);
        ("str", Json.Str "a \"quoted\"\nline");
        ("list", Json.List [ Json.Int 1; Json.Int 2; Json.Obj [] ]);
      ]
  in
  (match Json.of_string (Json.to_string v) with
  | Ok v' -> check Alcotest.bool "round-trips" true (v = v')
  | Error e -> Alcotest.failf "reparse failed: %s" e);
  match Json.of_string (Json.to_string ~indent:false v) with
  | Ok v' -> check Alcotest.bool "compact round-trips" true (v = v')
  | Error e -> Alcotest.failf "compact reparse failed: %s" e

let test_json_rejects_garbage () =
  let bad s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\": 1} trailing";
  bad "nul";
  bad "\"unterminated"

let test_json_member () =
  match Json.of_string "{\"a\": {\"b\": 7}}" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok v -> (
      (match Json.member "a" v with
      | Some inner ->
          check Alcotest.bool "nested member" true
            (Json.member "b" inner = Some (Json.Int 7))
      | None -> Alcotest.fail "missing member a");
      check Alcotest.bool "absent member" true (Json.member "z" v = None))

let test_json_floats () =
  check Alcotest.string "integral float keeps point" "1.0"
    (Json.to_string ~indent:false (Json.Float 1.0));
  check Alcotest.string "non-finite is null" "null"
    (Json.to_string ~indent:false (Json.Float Float.nan))

(* ---- Trace ---- *)

let test_trace_disabled_is_null () =
  Trace.disable ();
  Trace.reset ();
  check Alcotest.int "start yields 0" 0 (Trace.start ());
  Trace.complete "ignored" 0;
  Trace.instant "ignored";
  Trace.span "ignored" (fun () -> ()) |> ignore;
  check Alcotest.int "no events recorded" 0 (List.length (Trace.events ()))

let test_trace_records_spans () =
  Trace.enable ();
  let t0 = Trace.start () in
  Trace.complete ~cat:"test" ~args:[ ("k", Trace.Int 3) ] "manual" t0;
  Trace.span ~cat:"test" "scoped" (fun () -> ignore (Sys.opaque_identity 1));
  Trace.instant ~cat:"test" "marker";
  Trace.disable ();
  let events = Trace.events () in
  check Alcotest.int "three events" 3 (List.length events);
  let find name = List.find (fun e -> e.Trace.name = name) events in
  let manual = find "manual" in
  check Alcotest.bool "complete phase" true (manual.Trace.ph = 'X');
  check Alcotest.bool "args kept" true (manual.Trace.args = [ ("k", Trace.Int 3) ]);
  check Alcotest.bool "instant phase" true ((find "marker").Trace.ph = 'i');
  check Alcotest.bool "durations non-negative" true
    (List.for_all (fun e -> e.Trace.dur >= 0) events);
  (* sorted by start time *)
  let ts = List.map (fun e -> e.Trace.ts) events in
  check Alcotest.bool "sorted by ts" true (List.sort compare ts = ts)

let test_trace_span_records_on_exception () =
  Trace.enable ();
  (try Trace.span ~cat:"test" "raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  Trace.disable ();
  check Alcotest.bool "span recorded despite raise" true
    (List.exists (fun e -> e.Trace.name = "raises") (Trace.events ()))

let test_trace_ring_overwrites_oldest () =
  (* 16 is the smallest ring the recorder accepts *)
  Trace.enable ~capacity:16 ();
  for i = 0 to 39 do
    Trace.instant ~args:[ ("i", Trace.Int i) ] "tick"
  done;
  Trace.disable ();
  let events = Trace.events () in
  check Alcotest.int "capacity retained" 16 (List.length events);
  check Alcotest.int "dropped counted" 24 (Trace.dropped ());
  (* the survivors are the newest ones *)
  check Alcotest.bool "oldest overwritten" true
    (List.for_all
       (fun e ->
         match e.Trace.args with
         | [ ("i", Trace.Int i) ] -> i >= 24
         | _ -> false)
       events)

let test_null_sink_no_allocation () =
  Trace.disable ();
  Metrics.disable ();
  let c = Metrics.counter "nulltest.counter" in
  let h = Metrics.histogram "nulltest.hist" in
  (* warm up so any one-time setup is out of the measured window *)
  for _ = 1 to 100 do
    ignore (Sys.opaque_identity (Trace.start ()));
    Metrics.incr c;
    Metrics.observe h 1
  done;
  let before = Gc.minor_words () in
  for i = 1 to 10_000 do
    let t0 = Trace.start () in
    if Trace.enabled () then
      Trace.complete ~args:[ ("i", Trace.Int i) ] "never" t0;
    Metrics.incr c;
    Metrics.add c 2;
    Metrics.observe h i
  done;
  let words = Gc.minor_words () -. before in
  (* one flag read and a branch per call: allow a small slack for any
     boxing the compiler emits, but nothing proportional to the 10k
     iterations *)
  if words > 256.0 then
    Alcotest.failf "disabled path allocated %.0f minor words over 10k calls"
      words

(* ---- Metrics ---- *)

let test_metrics_counter () =
  let r = Metrics.create () in
  Metrics.enable ();
  let c = Metrics.counter ~registry:r "c" in
  Metrics.incr c;
  Metrics.add c 4;
  check Alcotest.int "accumulates" 5 (Metrics.counter_value c);
  let c' = Metrics.counter ~registry:r "c" in
  Metrics.incr c';
  check Alcotest.int "same name, same instrument" 6 (Metrics.counter_value c);
  Metrics.disable ();
  Metrics.incr c;
  check Alcotest.int "disabled updates ignored" 6 (Metrics.counter_value c)

let test_metrics_histogram_buckets () =
  let r = Metrics.create () in
  Metrics.enable ();
  let h = Metrics.histogram ~registry:r ~buckets:[| 0; 10; 100 |] "h" in
  List.iter (Metrics.observe h) [ -5; 0; 1; 10; 11; 1000 ];
  Metrics.disable ();
  check Alcotest.int "count" 6 (Metrics.histogram_count h);
  check Alcotest.int "sum" 1017 (Metrics.histogram_sum h);
  let json = Metrics.to_json ~registry:r () in
  let buckets =
    match
      Option.bind (Json.member "histograms" json) (Json.member "h")
      |> Fun.flip Option.bind (Json.member "buckets")
    with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "missing buckets"
  in
  let counts =
    List.map
      (fun b ->
        match Json.member "count" b with
        | Some (Json.Int n) -> n
        | _ -> Alcotest.fail "bucket without count")
      buckets
  in
  (* le 0 gets {-5, 0}; le 10 gets {1, 10}; le 100 gets {11}; +Inf {1000} *)
  check (Alcotest.list Alcotest.int) "per-bucket counts" [ 2; 2; 1; 1 ] counts

let test_metrics_kind_mismatch () =
  let r = Metrics.create () in
  ignore (Metrics.counter ~registry:r "name");
  (try
     ignore (Metrics.histogram ~registry:r "name");
     Alcotest.fail "histogram over counter name accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Metrics.gauge ~registry:r "name");
    Alcotest.fail "gauge over counter name accepted"
  with Invalid_argument _ -> ()

let test_metrics_reset () =
  let r = Metrics.create () in
  Metrics.enable ();
  let c = Metrics.counter ~registry:r "c" in
  let h = Metrics.histogram ~registry:r "h" in
  Metrics.add c 7;
  Metrics.observe h 3;
  Metrics.reset ~registry:r ();
  check Alcotest.int "counter zeroed" 0 (Metrics.counter_value c);
  check Alcotest.int "histogram zeroed" 0 (Metrics.histogram_count h);
  Metrics.incr c;
  Metrics.disable ();
  check Alcotest.int "handle survives reset" 1 (Metrics.counter_value c)

let test_metrics_single_sample_std () =
  (* the Stats.std single-sample guard, through the histogram export *)
  let r = Metrics.create () in
  Metrics.enable ();
  Metrics.observe (Metrics.histogram ~registry:r "h") 5;
  Metrics.disable ();
  match
    Option.bind (Json.member "histograms" (Metrics.to_json ~registry:r ()))
      (Json.member "h")
    |> Fun.flip Option.bind (Json.member "std")
  with
  | Some (Json.Float f) ->
      check Alcotest.bool "std finite" true (Float.is_finite f);
      check (Alcotest.float 1e-9) "std zero" 0.0 f
  | Some (Json.Int 0) -> ()
  | _ -> Alcotest.fail "missing std"

let test_metrics_record_diag () =
  let r = Metrics.create () in
  Metrics.disable ();
  (* not gated on enabled: diagnostics count even before --metrics parsing *)
  Metrics.record_diag ~registry:r
    (Diag.warning ~source:"t.hgr" Diag.Singleton_net "dropped");
  Metrics.record_diag ~registry:r
    (Diag.warning ~source:"t.hgr" Diag.Singleton_net "dropped");
  Metrics.record_diag ~registry:r
    (Diag.error ~source:"t.hgr" Diag.Truncated "short");
  let counters = Json.member "counters" (Metrics.to_json ~registry:r ()) in
  let count name =
    match Option.bind counters (Json.member name) with
    | Some (Json.Int n) -> n
    | _ -> 0
  in
  check Alcotest.int "warnings counted" 2 (count "diag.warning.singleton-net");
  check Alcotest.int "errors counted" 1 (count "diag.error.truncated")

(* ---- export schemas ---- *)

(* Run one pooled multistart with both subsystems live; every schema and
   determinism test below reuses this entry point. *)
let run_pipeline ?pool seed =
  let h = instance seed in
  Ml.run_starts ~config:Ml.mlc ?pool ~starts:3 (Rng.create 97) h

let test_trace_export_schema () =
  Metrics.disable ();
  Trace.enable ();
  ignore (run_pipeline 5);
  Trace.disable ();
  let json =
    match Json.of_string (Trace.export ()) with
    | Ok v -> v
    | Error e -> Alcotest.failf "trace export does not reparse: %s" e
  in
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "traceEvents missing"
  in
  check Alcotest.bool "has displayTimeUnit" true
    (Json.member "displayTimeUnit" json = Some (Json.Str "ms"));
  (match Option.bind (Json.member "otherData" json) (Json.member "dropped") with
  | Some (Json.Int n) -> check Alcotest.bool "dropped non-negative" true (n >= 0)
  | _ -> Alcotest.fail "otherData.dropped missing");
  let str_field e k =
    match Json.member k e with
    | Some (Json.Str s) -> s
    | _ -> Alcotest.failf "event missing string field %s" k
  in
  let has_num e k =
    match Json.member k e with
    | Some (Json.Int _) | Some (Json.Float _) -> true
    | _ -> false
  in
  List.iter
    (fun e ->
      ignore (str_field e "name");
      ignore (str_field e "cat");
      let ph = str_field e "ph" in
      check Alcotest.bool "known phase" true (ph = "X" || ph = "i");
      List.iter
        (fun k ->
          if not (has_num e k) then Alcotest.failf "event missing %s" k)
        [ "ts"; "pid"; "tid" ])
    events;
  let names = List.map (fun e -> str_field e "name") events in
  List.iter
    (fun required ->
      if not (List.mem required names) then
        Alcotest.failf "trace lacks %s span" required)
    [ "coarsen/level"; "fm/pass"; "ml/start"; "ml/starts"; "ml/refine_level" ]

let test_metrics_export_schema () =
  Trace.disable ();
  Metrics.reset ();
  Metrics.enable ();
  ignore (run_pipeline 5);
  Metrics.disable ();
  let json =
    match Json.of_string (Metrics.export ()) with
    | Ok v -> v
    | Error e -> Alcotest.failf "metrics export does not reparse: %s" e
  in
  let section name =
    match Json.member name json with
    | Some (Json.Obj kvs) -> kvs
    | _ -> Alcotest.failf "%s section missing" name
  in
  let counters = section "counters" in
  ignore (section "gauges");
  let histograms = section "histograms" in
  let counter name =
    match List.assoc_opt name counters with
    | Some (Json.Int n) -> n
    | _ -> Alcotest.failf "counter %s missing" name
  in
  check Alcotest.bool "fm ran" true (counter "fm.passes" >= 1);
  check Alcotest.bool "coarsening ran" true (counter "coarsen.levels" >= 1);
  check Alcotest.bool "starts counted" true (counter "ml.starts" = 3);
  (* sections are sorted by name — the export is deterministic text *)
  let keys = List.map fst counters in
  check Alcotest.bool "counters sorted" true (List.sort compare keys = keys);
  List.iter
    (fun (name, h) ->
      let num k =
        match Json.member k h with
        | Some (Json.Int n) -> n
        | _ -> Alcotest.failf "%s: %s missing" name k
      in
      let buckets =
        match Json.member "buckets" h with
        | Some (Json.List l) -> l
        | _ -> Alcotest.failf "%s: buckets missing" name
      in
      let total =
        List.fold_left
          (fun acc b ->
            match Json.member "count" b with
            | Some (Json.Int n) -> acc + n
            | _ -> Alcotest.failf "%s: bucket count missing" name)
          0 buckets
      in
      check Alcotest.int (name ^ " buckets sum to count") (num "count") total;
      match Json.member "std" h with
      | Some (Json.Float f) ->
          check Alcotest.bool (name ^ " std finite") true (Float.is_finite f)
      | Some (Json.Int _) -> ()
      | _ -> Alcotest.failf "%s: std missing" name)
    histograms

(* ---- determinism across --jobs ---- *)

let string_of_arg = function
  | Trace.Int i -> string_of_int i
  | Trace.Float f -> Printf.sprintf "%.12g" f
  | Trace.Str s -> s
  | Trace.Bool b -> string_of_bool b

(* Canonical multiset of events: (name, cat, args) rendered to strings and
   sorted.  Timestamps, durations and domain ids are scheduling-dependent
   and excluded; pool.* events describe the schedule itself, so they are
   excluded too. *)
let event_signature () =
  Trace.events ()
  |> List.filter (fun e -> e.Trace.cat <> "pool")
  |> List.map (fun e ->
         Printf.sprintf "%s|%s|%s" e.Trace.cat e.Trace.name
           (String.concat ","
              (List.map
                 (fun (k, v) -> k ^ "=" ^ string_of_arg v)
                 e.Trace.args)))
  |> List.sort compare

let metrics_signature () =
  let strip = function
    | Json.Obj kvs ->
        Json.Obj
          (List.filter
             (fun (k, _) ->
               not (String.length k >= 5 && String.sub k 0 5 = "pool."))
             kvs)
    | v -> v
  in
  match Metrics.to_json () with
  | Json.Obj sections ->
      Json.to_string (Json.Obj (List.map (fun (k, v) -> (k, strip v)) sections))
  | v -> Json.to_string v

(* The round-based stages emit one span per synchronous round.  Assert
   coverage and schema stability: both span kinds present on a pooled run
   (instance crosses rounds_min_modules so the refinement pre-pass fires),
   fixed arg-key sets, and a ring large enough that nothing was dropped. *)
let test_round_span_coverage () =
  let arg_keys e = List.map fst e.Trace.args in
  let spans_of name events =
    List.filter (fun e -> e.Trace.name = name) events
  in
  let run_traced pool =
    Trace.enable ();
    ignore (Ml.run ~config:Ml.mlc ?pool (Rng.create 53) (instance 52));
    let events = Trace.events () in
    let dropped = Trace.dropped () in
    Trace.disable ();
    (events, dropped)
  in
  let events, dropped =
    Pool.with_pool ~jobs:4 (fun pool -> run_traced (Some pool))
  in
  check Alcotest.int "no dropped events" 0 dropped;
  let coarsen = spans_of "coarsen/round" events in
  let refine = spans_of "refine/round" events in
  check Alcotest.bool "coarsen/round present" true (coarsen <> []);
  check Alcotest.bool "refine/round present" true (refine <> []);
  List.iter
    (fun e ->
      check Alcotest.string "coarsen cat" "coarsen" e.Trace.cat;
      check
        Alcotest.(list string)
        "coarsen/round arg schema"
        [ "round"; "active"; "committed" ]
        (arg_keys e))
    coarsen;
  List.iter
    (fun e ->
      check Alcotest.string "refine cat" "refine" e.Trace.cat;
      check
        Alcotest.(list string)
        "refine/round arg schema"
        [ "round"; "candidates"; "committed" ]
        (arg_keys e))
    refine;
  (* the same rounds run sequentially — the spans are a property of the
     algorithm, not of the schedule *)
  let seq_events, seq_dropped = run_traced None in
  check Alcotest.int "no dropped events (sequential)" 0 seq_dropped;
  check Alcotest.int "same coarsen/round count" (List.length coarsen)
    (List.length (spans_of "coarsen/round" seq_events));
  check Alcotest.int "same refine/round count" (List.length refine)
    (List.length (spans_of "refine/round" seq_events))

let test_determinism_across_jobs () =
  let observe pool =
    Trace.enable ();
    Metrics.reset ();
    Metrics.enable ();
    let result = run_pipeline ?pool 11 in
    Trace.disable ();
    Metrics.disable ();
    (result.Ml.cut, event_signature (), metrics_signature ())
  in
  let cut1, events1, metrics1 = observe None in
  let cut4, events4, metrics4 =
    Pool.with_pool ~jobs:4 (fun pool -> observe (Some pool))
  in
  check Alcotest.int "same cut" cut1 cut4;
  check Alcotest.int "same event count" (List.length events1)
    (List.length events4);
  List.iter2
    (fun a b -> if a <> b then Alcotest.failf "event mismatch: %s vs %s" a b)
    events1 events4;
  check Alcotest.string "same metrics" metrics1 metrics4

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "member" `Quick test_json_member;
          Alcotest.test_case "floats" `Quick test_json_floats;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled is null sink" `Quick
            test_trace_disabled_is_null;
          Alcotest.test_case "records spans" `Quick test_trace_records_spans;
          Alcotest.test_case "span survives exception" `Quick
            test_trace_span_records_on_exception;
          Alcotest.test_case "ring overwrites oldest" `Quick
            test_trace_ring_overwrites_oldest;
          Alcotest.test_case "null sink allocation-free" `Quick
            test_null_sink_no_allocation;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_metrics_counter;
          Alcotest.test_case "histogram buckets" `Quick
            test_metrics_histogram_buckets;
          Alcotest.test_case "kind mismatch" `Quick test_metrics_kind_mismatch;
          Alcotest.test_case "reset" `Quick test_metrics_reset;
          Alcotest.test_case "single-sample std" `Quick
            test_metrics_single_sample_std;
          Alcotest.test_case "record_diag" `Quick test_metrics_record_diag;
        ] );
      ( "export",
        [
          Alcotest.test_case "trace schema" `Quick test_trace_export_schema;
          Alcotest.test_case "metrics schema" `Quick test_metrics_export_schema;
          Alcotest.test_case "round span coverage" `Quick
            test_round_span_coverage;
          Alcotest.test_case "deterministic across jobs" `Slow
            test_determinism_across_jobs;
        ] );
    ]
