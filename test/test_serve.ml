(* Tests for Mlpart_serve: the wire protocol, deterministic fault
   injection, the content-addressed hierarchy cache, admission control,
   deadline degradation, crash isolation with retry, the drain-then-exit
   pool ordering, a 1000-request fault soak with an exact metrics ledger,
   and a socket round-trip. *)

module Protocol = Mlpart_serve.Protocol
module Faults = Mlpart_serve.Faults
module Cache = Mlpart_serve.Cache
module Engine = Mlpart_serve.Engine
module Server = Mlpart_serve.Server
module Hgr_io = Mlpart_hypergraph.Hgr_io
module Hier = Mlpart_multilevel.Hierarchy
module Ml = Mlpart_multilevel.Ml
module Diag = Mlpart_util.Diag
module Rng = Mlpart_util.Rng
module Pool = Mlpart_util.Pool
module Metrics = Mlpart_obs.Metrics
module Trace = Mlpart_obs.Trace
module Json = Mlpart_obs.Json

let check = Alcotest.check

let instance ?(modules = 300) seed =
  let rng = Rng.create seed in
  Mlpart_gen.Generate.rent ~rng ~modules ~nets:(modules * 5 / 4)
    ~pins:(modules * 7 / 2) ()

let inline_hgr ?modules seed = Hgr_io.to_string (instance ?modules seed)

let counter name = Metrics.counter_value (Metrics.counter name)

let request_line ?(id = "r") ?(client = "anon") ?(seed = 1) ?(starts = 1)
    ?(tolerance = 0.1) ?timeout_ms ?(side = false) src =
  Protocol.request_to_line
    { Protocol.id; client; src; seed; starts; tolerance; timeout_ms;
      return_side = side }

(* answer one line through an engine, synchronously *)
let ask engine line =
  match Engine.submit_line engine line with
  | Engine.Reply r -> r
  | Engine.Queued ticket -> Engine.wait ticket

(* ---- protocol ---- *)

let test_protocol_request_roundtrip () =
  let req =
    { Protocol.id = "r9"; client = "alice"; src = Protocol.Bench "balu";
      seed = 7; starts = 4; tolerance = 0.2; timeout_ms = Some 250;
      return_side = true }
  in
  match Protocol.query_of_line (Protocol.request_to_line req) with
  | Ok (Protocol.Partition req') ->
      check Alcotest.bool "request round-trips" true (req = req')
  | Ok _ -> Alcotest.fail "decoded to a control query"
  | Error ds ->
      Alcotest.failf "decode failed: %s"
        (String.concat "; " (List.map Diag.to_string ds))

let test_protocol_defaults_and_controls () =
  (match Protocol.query_of_line {|{"op":"ping","id":"p"}|} with
  | Ok (Protocol.Ping "p") -> ()
  | _ -> Alcotest.fail "ping did not decode");
  (match Protocol.query_of_line {|{"op":"stats"}|} with
  | Ok (Protocol.Stats "") -> ()
  | _ -> Alcotest.fail "stats did not decode");
  match Protocol.query_of_line {|{"bench":"balu"}|} with
  | Ok (Protocol.Partition r) ->
      check Alcotest.int "default seed" 1 r.Protocol.seed;
      check Alcotest.int "default starts" 1 r.Protocol.starts;
      check (Alcotest.float 1e-9) "default tolerance" 0.1 r.Protocol.tolerance;
      check Alcotest.string "default client" "anon" r.Protocol.client;
      check Alcotest.bool "default no timeout" true (r.Protocol.timeout_ms = None)
  | _ -> Alcotest.fail "bare bench request did not decode"

let test_protocol_rejects_hostile_lines () =
  let errs line =
    match Protocol.query_of_line line with
    | Error ds -> ds
    | Ok _ -> Alcotest.failf "accepted %S" line
  in
  (* non-JSON is a bad-header *)
  (match errs "GET / HTTP/1.1" with
  | [ d ] -> check Alcotest.bool "bad-header" true (d.Diag.code = Diag.Bad_header)
  | ds -> Alcotest.failf "expected one diag, got %d" (List.length ds));
  (* every field problem is reported, not just the first *)
  let ds =
    errs {|{"bench":"balu","hgr":"x","starts":0,"k":3,"tolerance":-1}|}
  in
  check Alcotest.bool "collects all problems" true (List.length ds >= 4);
  List.iter
    (fun d -> check Alcotest.bool "typed bad-token" true (d.Diag.code = Diag.Bad_token))
    ds

let test_protocol_response_roundtrip () =
  let resp =
    Protocol.make_response ~cut:41 ~side:[| 0; 1; 1; 0 |] ~cache:`Hit
      ~retry_after_ms:20 ~attempts:2 ~elapsed_ms:17
      ~diags:
        [
          Diag.warning ~source:"request r1" Diag.Timeout "deadline exceeded";
          Diag.error ~source:"request r1" Diag.Queue_full "queue full";
        ]
      ~id:"r1" Protocol.Degraded
  in
  match Protocol.response_of_line (Protocol.response_to_line resp) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok r ->
      check Alcotest.bool "round-trips" true (resp = r)

let test_protocol_exit_codes () =
  let code ?diags status =
    Protocol.exit_code_of_response (Protocol.make_response ?diags ~id:"x" status)
  in
  check Alcotest.int "ok" 0 (code Protocol.Done);
  check Alcotest.int "degraded" 5 (code Protocol.Degraded);
  check Alcotest.int "rejected" 6 (code Protocol.Rejected);
  check Alcotest.int "failed default" 3 (code Protocol.Failed);
  check Alcotest.int "failed invariant" 4
    (code Protocol.Failed
       ~diags:[ Diag.error ~source:"" Diag.Invariant "boom" ]);
  (* the queue-full code maps to the new exit 6 in the CLI taxonomy *)
  check Alcotest.int "diag exit for queue-full" 6
    (Diag.exit_code [ Diag.error ~source:"" Diag.Queue_full "full" ])

(* ---- fault injection ---- *)

let test_faults_deterministic () =
  let c = Faults.uniform ~seed:99 ~rate:0.3 in
  for request = 0 to 500 do
    for attempt = 0 to 3 do
      check Alcotest.bool "replays identically" true
        (Faults.decide c ~request ~attempt = Faults.decide c ~request ~attempt)
    done
  done;
  check Alcotest.bool "none injects nothing" true
    (Faults.decide Faults.none ~request:3 ~attempt:0 = None)

let test_faults_distribution () =
  let c = Faults.uniform ~seed:7 ~rate:0.2 in
  let garble = ref 0 and crash = ref 0 and slow = ref 0 and disc = ref 0 in
  let n = 4000 in
  for request = 0 to n - 1 do
    match Faults.decide c ~request ~attempt:0 with
    | Some Faults.Garble_parse -> incr garble
    | Some (Faults.Crash _) -> incr crash
    | Some (Faults.Slow _) -> incr slow
    | Some Faults.Disconnect -> incr disc
    | None -> ()
  done;
  let total = !garble + !crash + !slow + !disc in
  check Alcotest.bool "every kind fires" true
    (!garble > 0 && !crash > 0 && !slow > 0 && !disc > 0);
  (* rate 0.2 over 4000 requests: expect ~800, allow wide slack *)
  check Alcotest.bool "total near the configured rate" true
    (total > 600 && total < 1000);
  (* parse corruption happens before decoding, so a retry never re-garbles *)
  for request = 0 to n - 1 do
    match Faults.decide c ~request ~attempt:1 with
    | Some Faults.Garble_parse ->
        Alcotest.failf "garble on attempt 1 of request %d" request
    | _ -> ()
  done

(* ---- hierarchy cache ---- *)

let content_rng ~coarsen_seed fp =
  Rng.stream (Rng.create coarsen_seed) (Int64.to_int fp land max_int)

let build_hier h =
  Ml.hierarchy (content_rng ~coarsen_seed:1 (Cache.fingerprint h)) h

let test_cache_fingerprint () =
  let h = instance 5 in
  check Alcotest.bool "stable" true (Cache.fingerprint h = Cache.fingerprint h);
  check Alcotest.bool "content-sensitive" true
    (Cache.fingerprint h <> Cache.fingerprint (instance 6))

let test_cache_hit_bit_identical () =
  let h = instance 5 in
  let cache = Cache.create ~capacity:4 in
  let fp = Cache.fingerprint h in
  let key = Printf.sprintf "%Lx" fp in
  (* cold: build, refine, remember *)
  let hier = build_hier h in
  Cache.add cache key hier;
  let cold = Ml.run_hierarchy (Rng.create 7) h hier in
  (* warm: the cached hierarchy must reproduce the cold run bit for bit *)
  match Cache.find cache key with
  | Cache.Hit cached ->
      let warm = Ml.run_hierarchy (Rng.create 7) h cached in
      check Alcotest.int "same cut" cold.Ml.cut warm.Ml.cut;
      check Alcotest.bool "same side assignment" true
        (cold.Ml.side = warm.Ml.side)
  | Cache.Miss | Cache.Corrupt -> Alcotest.fail "expected a hit"

let test_cache_eviction_respects_capacity () =
  let cache = Cache.create ~capacity:2 in
  let h1 = instance 11 and h2 = instance 12 and h3 = instance 13 in
  Cache.add cache "k1" (build_hier h1);
  Cache.add cache "k2" (build_hier h2);
  (* touch k1 so k2 is the LRU victim *)
  (match Cache.find cache "k1" with
  | Cache.Hit _ -> ()
  | _ -> Alcotest.fail "k1 should hit");
  Cache.add cache "k3" (build_hier h3);
  check Alcotest.int "capacity held" 2 (Cache.length cache);
  (match Cache.find cache "k2" with
  | Cache.Miss -> ()
  | _ -> Alcotest.fail "LRU entry should have been evicted");
  match (Cache.find cache "k1", Cache.find cache "k3") with
  | Cache.Hit _, Cache.Hit _ -> ()
  | _ -> Alcotest.fail "recent entries should survive"

let test_cache_detects_corruption () =
  let h = instance 5 in
  let cache = Cache.create ~capacity:4 in
  let hier = build_hier h in
  Cache.add cache "k" hier;
  let level =
    match hier.Hier.levels with
    | l :: _ -> l
    | [] -> Alcotest.fail "expected a non-trivial hierarchy"
  in
  (* corrupt the shared value behind the cache's back *)
  let corrupted = counter "serve.cache.corrupt" in
  level.Hier.cluster_of.(0) <- level.Hier.cluster_of.(0) + 1;
  (match Cache.find cache "k" with
  | Cache.Corrupt -> ()
  | Cache.Hit _ -> Alcotest.fail "served a corrupted entry"
  | Cache.Miss -> Alcotest.fail "corruption must be distinguishable");
  check Alcotest.int "corruption counted" (corrupted + 1)
    (counter "serve.cache.corrupt");
  (* the poisoned entry is gone: the caller rebuilds and re-adds *)
  (match Cache.find cache "k" with
  | Cache.Miss -> ()
  | _ -> Alcotest.fail "corrupt entry should have been dropped");
  level.Hier.cluster_of.(0) <- level.Hier.cluster_of.(0) - 1;
  Cache.add cache "k" (build_hier h);
  match Cache.find cache "k" with
  | Cache.Hit recomputed ->
      check Alcotest.bool "recomputed entry verifies" true
        (Cache.checksum recomputed = Cache.checksum hier)
  | _ -> Alcotest.fail "rebuilt entry should hit"

(* ---- pool drain ordering (PR satellite) ---- *)

let test_pool_drain_then_exit () =
  (* a job is mid-flight on the shared pool when drain_shared runs: it must
     wait for idle, join cleanly, and leave get() able to mint a new pool *)
  let pool = Pool.get ~jobs:2 in
  let started = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        ignore
          (Pool.map pool
             (fun ms ->
               Atomic.set started true;
               Unix.sleepf (float_of_int ms /. 1000.);
               ms)
             [| 20; 20; 20; 20 |]
            : int array))
      ()
  in
  while not (Atomic.get started) do
    Thread.yield ()
  done;
  Pool.drain_shared ();
  Thread.join th;
  let pool' = Pool.get ~jobs:2 in
  let doubled = Pool.map pool' (fun x -> 2 * x) [| 1; 2; 3 |] in
  check Alcotest.bool "fresh shared pool works after drain" true
    (doubled = [| 2; 4; 6 |]);
  Pool.drain_shared ()

(* ---- engine ---- *)

let test_engine_cache_hit_skips_coarsen () =
  let engine = Engine.create ~config:{ Engine.default with cache_capacity = 4 } () in
  let text = inline_hgr 21 in
  let line id = request_line ~id ~seed:9 ~side:true (Protocol.Inline text) in
  Trace.enable ();
  let cold = ask engine (line "cold") in
  let has_span name =
    List.exists (fun e -> e.Trace.name = name) (Trace.events ())
  in
  let cold_coarsened = has_span "ml/coarsen" in
  Trace.reset ();
  let warm = ask engine (line "warm") in
  let warm_coarsened = has_span "ml/coarsen" in
  let warm_refined = has_span "ml/refine" in
  Trace.disable ();
  Engine.drain engine;
  check Alcotest.bool "cold run coarsens" true cold_coarsened;
  check Alcotest.bool "warm run skips coarsening" false warm_coarsened;
  check Alcotest.bool "warm run still refines" true warm_refined;
  check Alcotest.bool "miss then hit" true
    (cold.Protocol.cache = `Miss && warm.Protocol.cache = `Hit);
  check Alcotest.bool "cuts equal" true (cold.Protocol.cut = warm.Protocol.cut);
  check Alcotest.bool "sides bit-identical" true
    (cold.Protocol.side = warm.Protocol.side
    && cold.Protocol.side <> None)

let test_engine_deadline_degrades () =
  let engine = Engine.create () in
  let resp =
    ask engine
      (request_line ~id:"doomed" ~starts:8 ~timeout_ms:1
         (Protocol.Inline (inline_hgr 22)))
  in
  Engine.drain engine;
  check Alcotest.bool "degraded" true (resp.Protocol.status = Protocol.Degraded);
  check Alcotest.bool "still has a partition" true (resp.Protocol.cut <> None);
  check Alcotest.bool "carries a timeout warning" true
    (List.exists
       (fun d -> d.Diag.code = Diag.Timeout && d.Diag.severity = Diag.Warning)
       resp.Protocol.diags);
  check Alcotest.int "maps to exit 5" 5 (Protocol.exit_code_of_response resp)

let test_engine_admission_control () =
  (* every job sleeps 150 ms, so one occupies the worker while the queue
     (capacity 3) and the per-client cap (2) fill deterministically *)
  let faults =
    { Faults.none with Faults.seed = 1; slow_p = 1.0; slow_ms = 150 }
  in
  let config =
    { Engine.default with
      Engine.queue_capacity = 3; client_inflight = 2; faults }
  in
  let engine = Engine.create ~config () in
  let text = inline_hgr ~modules:40 23 in
  let submit id client =
    Engine.submit_line engine (request_line ~id ~client (Protocol.Inline text))
  in
  let rej_queue0 = counter "serve.rejected.queue_full" in
  let rej_client0 = counter "serve.rejected.client_cap" in
  let t1 = submit "a1" "alice" in
  (* wait until the worker has taken a1, so the queue is empty again *)
  let rec wait_pickup n =
    if n = 0 then Alcotest.fail "worker never picked up the job";
    match Json.int_member "queue_depth" (Engine.stats_json engine) with
    | Some 0 -> ()
    | _ ->
        Unix.sleepf 0.005;
        wait_pickup (n - 1)
  in
  wait_pickup 1000;
  (* a1 running; queue fills with b1, a2, b2; alice reaches her cap of 2 *)
  let t2 = submit "b1" "bob" in
  let t3 = submit "a2" "alice" in
  let r_alice = submit "a3" "alice" in
  let t4 = submit "b2" "bob" in
  let r_carol = submit "c1" "carol" in
  (match r_alice with
  | Engine.Reply r ->
      check Alcotest.bool "client cap rejects" true
        (r.Protocol.status = Protocol.Rejected);
      check Alcotest.bool "retry-after hint" true
        (match r.Protocol.retry_after_ms with Some t -> t > 0 | None -> false);
      check Alcotest.bool "queue-full diag" true
        (List.exists (fun d -> d.Diag.code = Diag.Queue_full) r.Protocol.diags);
      check Alcotest.int "exit 6" 6 (Protocol.exit_code_of_response r)
  | Engine.Queued _ -> Alcotest.fail "third alice job should be rejected");
  (match r_carol with
  | Engine.Reply r ->
      check Alcotest.bool "full queue sheds" true
        (r.Protocol.status = Protocol.Rejected);
      check Alcotest.bool "retry-after scales with load" true
        (match r.Protocol.retry_after_ms with Some t -> t >= 10 | None -> false)
  | Engine.Queued _ -> Alcotest.fail "queue is full; carol must be shed");
  check Alcotest.int "client-cap rejection counted" (rej_client0 + 1)
    (counter "serve.rejected.client_cap");
  check Alcotest.int "queue-full rejection counted" (rej_queue0 + 1)
    (counter "serve.rejected.queue_full");
  List.iter
    (fun o ->
      match o with
      | Engine.Queued ticket ->
          let r = Engine.wait ticket in
          check Alcotest.bool "admitted job completes" true
            (r.Protocol.status = Protocol.Done)
      | Engine.Reply _ -> Alcotest.fail "admitted submissions were queued")
    [ t1; t2; t3; t4 ];
  Engine.drain engine

let test_engine_crash_isolation_and_retry () =
  (* every request crashes transiently on its first attempts with p=1 …
     make crashes certain but transient, with retries allowed: every job
     must still come back, some with attempts > 1 after backoff *)
  let faults =
    { Faults.none with
      Faults.seed = 5; crash_p = 0.4; transient_p = 1.0 }
  in
  let config =
    { Engine.default with
      Engine.max_retries = 8; retry_base_ms = 1; retry_cap_ms = 2;
      queue_capacity = 64; client_inflight = 64; faults }
  in
  let engine = Engine.create ~config () in
  let text = inline_hgr ~modules:60 24 in
  let tickets =
    List.init 40 (fun i ->
        Engine.submit_line engine
          (request_line ~id:(Printf.sprintf "c%d" i) (Protocol.Inline text)))
  in
  let responses =
    List.map
      (function Engine.Queued t -> Engine.wait t | Engine.Reply r -> r)
      tickets
  in
  Engine.drain engine;
  check Alcotest.bool "transient crashes never fail the job" true
    (List.for_all (fun r -> r.Protocol.status = Protocol.Done) responses);
  check Alcotest.bool "some jobs recovered by retrying" true
    (List.exists (fun r -> r.Protocol.attempts > 1) responses);
  (* permanent crashes exhaust isolation instead: rerun with transient_p=0 *)
  let engine =
    Engine.create
      ~config:
        { config with
          Engine.faults =
            { faults with Faults.crash_p = 1.0; transient_p = 0.0 } }
      ()
  in
  let r = ask engine (request_line ~id:"perm" (Protocol.Inline text)) in
  Engine.drain engine;
  check Alcotest.bool "permanent crash fails with a diagnostic" true
    (r.Protocol.status = Protocol.Failed
    && List.exists (fun d -> d.Diag.code = Diag.Invariant) r.Protocol.diags)

(* ---- the soak: 1000 requests at a >10% fault rate ---- *)

let test_engine_soak_ledger_balances () =
  let faults = Faults.uniform ~seed:42 ~rate:0.15 in
  (* the queue outsizes the soak so admission never depends on worker
     timing — that is what makes the whole run replayable bit for bit;
     queue-full shedding has its own deterministic test above *)
  let config =
    { Engine.default with
      Engine.workers = 2; queue_capacity = 2048; client_inflight = 2048;
      cache_capacity = 4; max_retries = 3; retry_base_ms = 1;
      retry_cap_ms = 2; faults }
  in
  let engine = Engine.create ~config () in
  let texts = Array.init 3 (fun i -> inline_hgr ~modules:50 (30 + i)) in
  let received0 = counter "serve.requests.received" in
  let completed0 = counter "serve.requests.completed" in
  let rejected0 = counter "serve.requests.rejected" in
  let failed0 = counter "serve.requests.failed" in
  let n = 1000 in
  let soak_line i =
    request_line ~id:(Printf.sprintf "s%d" i) ~seed:i
      (Protocol.Inline texts.(i mod 3))
  in
  let outcomes = List.init n (fun i -> Engine.submit_line engine (soak_line i)) in
  let responses =
    List.map
      (function Engine.Queued t -> Engine.wait t | Engine.Reply r -> r)
      outcomes
  in
  Engine.drain engine;
  let received = counter "serve.requests.received" - received0 in
  let completed = counter "serve.requests.completed" - completed0 in
  let rejected = counter "serve.requests.rejected" - rejected0 in
  let failed = counter "serve.requests.failed" - failed0 in
  check Alcotest.int "every request was received" n received;
  check Alcotest.int "ledger balances exactly" received
    (completed + rejected + failed);
  check Alcotest.int "one response per request" n (List.length responses);
  (* the profile actually exercised every failure mode *)
  check Alcotest.bool "some requests failed" true (failed > 0);
  check Alcotest.bool "most requests completed" true (completed > n / 2);
  check Alcotest.bool "faults were injected" true
    (counter "serve.faults.crash" > 0 && counter "serve.faults.slow" > 0);
  (* client-side view agrees with the server-side ledger *)
  let seen status =
    List.length (List.filter (fun r -> r.Protocol.status = status) responses)
  in
  check Alcotest.int "completed agree" completed
    (seen Protocol.Done + seen Protocol.Degraded);
  check Alcotest.int "rejected agree" rejected (seen Protocol.Rejected);
  check Alcotest.int "failed agree" failed (seen Protocol.Failed);
  (* and the whole soak replays identically: same seed, same ledger *)
  let engine = Engine.create ~config () in
  let failed1 = counter "serve.requests.failed" in
  let replay = List.init n (fun i -> Engine.submit_line engine (soak_line i)) in
  let replay_responses =
    List.map
      (function Engine.Queued t -> Engine.wait t | Engine.Reply r -> r)
      replay
  in
  Engine.drain engine;
  check Alcotest.int "fault schedule replays: same failures" failed
    (counter "serve.requests.failed" - failed1);
  List.iter2
    (fun a b ->
      check Alcotest.bool "replayed status matches" true
        (a.Protocol.status = b.Protocol.status);
      check Alcotest.bool "replayed cut matches" true
        (a.Protocol.cut = b.Protocol.cut))
    responses replay_responses

(* ---- socket round-trip ---- *)

let test_server_socket_roundtrip () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mlpart-test-%d.sock" (Unix.getpid ()))
  in
  let engine = Engine.create () in
  let addr = Server.Unix_path path in
  let server =
    Thread.create (fun () -> Server.run ~max_requests:3 engine addr) ()
  in
  let rec wait_for_socket n =
    if n = 0 then Alcotest.fail "server socket never appeared";
    if not (Sys.file_exists path) then begin
      Unix.sleepf 0.01;
      wait_for_socket (n - 1)
    end
  in
  wait_for_socket 500;
  let text = inline_hgr ~modules:60 31 in
  Server.with_connection addr (fun ic oc ->
      (match Server.roundtrip ic oc {|{"op":"ping","id":"p1"}|} with
      | Ok r ->
          check Alcotest.bool "ping ok" true (r.Protocol.status = Protocol.Done);
          check Alcotest.string "ping id echoes" "p1" r.Protocol.rid
      | Error e -> Alcotest.failf "ping failed: %s" e);
      (match
         Server.roundtrip ic oc
           (request_line ~id:"sock1" ~side:true (Protocol.Inline text))
       with
      | Ok r ->
          check Alcotest.bool "partition ok" true
            (r.Protocol.status = Protocol.Done);
          check Alcotest.bool "has cut and side" true
            (r.Protocol.cut <> None && r.Protocol.side <> None)
      | Error e -> Alcotest.failf "partition failed: %s" e);
      match Server.roundtrip ic oc "garbage" with
      | Ok r ->
          check Alcotest.bool "garbage fails typed" true
            (r.Protocol.status = Protocol.Failed)
      | Error e -> Alcotest.failf "garbage round-trip lost: %s" e);
  (* three requests served: the budget triggers the drain and run returns *)
  Thread.join server;
  check Alcotest.bool "socket cleaned up" false (Sys.file_exists path)

let () =
  (* cache/engine counters are gated on the shared metrics flag *)
  Metrics.enable ();
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick
            test_protocol_request_roundtrip;
          Alcotest.test_case "defaults and controls" `Quick
            test_protocol_defaults_and_controls;
          Alcotest.test_case "hostile lines" `Quick
            test_protocol_rejects_hostile_lines;
          Alcotest.test_case "response round-trip" `Quick
            test_protocol_response_roundtrip;
          Alcotest.test_case "exit codes" `Quick test_protocol_exit_codes;
        ] );
      ( "faults",
        [
          Alcotest.test_case "deterministic" `Quick test_faults_deterministic;
          Alcotest.test_case "distribution" `Quick test_faults_distribution;
        ] );
      ( "cache",
        [
          Alcotest.test_case "fingerprint" `Quick test_cache_fingerprint;
          Alcotest.test_case "hit is bit-identical" `Quick
            test_cache_hit_bit_identical;
          Alcotest.test_case "eviction respects capacity" `Quick
            test_cache_eviction_respects_capacity;
          Alcotest.test_case "detects corruption" `Quick
            test_cache_detects_corruption;
        ] );
      ( "pool",
        [
          Alcotest.test_case "drain-then-exit ordering" `Quick
            test_pool_drain_then_exit;
        ] );
      ( "engine",
        [
          Alcotest.test_case "cache hit skips coarsening" `Quick
            test_engine_cache_hit_skips_coarsen;
          Alcotest.test_case "deadline degrades gracefully" `Quick
            test_engine_deadline_degrades;
          Alcotest.test_case "admission control" `Quick
            test_engine_admission_control;
          Alcotest.test_case "crash isolation and retry" `Quick
            test_engine_crash_isolation_and_retry;
          Alcotest.test_case "1000-request fault soak" `Slow
            test_engine_soak_ledger_balances;
        ] );
      ( "server",
        [
          Alcotest.test_case "socket round-trip" `Quick
            test_server_socket_roundtrip;
        ] );
    ]
