(* Deterministic I/O fuzzing: SplitMix64-driven valid, truncated and
   byte-mutated [.hgr] / [.netD] documents thrown at both parse modes.

   The property under test is totality: every input either parses ([Ok])
   or yields typed diagnostics ([Error]) — the parsers never raise, and in
   lenient mode every successfully parsed hypergraph additionally passes
   [Hypergraph.validate].  The case count is overridable through the
   MLPART_FUZZ_CASES environment variable (CI runs a larger budget). *)

module H = Mlpart_hypergraph.Hypergraph
module Hgr_io = Mlpart_hypergraph.Hgr_io
module Netd_io = Mlpart_hypergraph.Netd_io
module Diag = Mlpart_util.Diag
module Rng = Mlpart_util.Rng

let cases =
  match Sys.getenv_opt "MLPART_FUZZ_CASES" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 400)
  | None -> 400

(* ---- generators ---- *)

(* A random hypergraph whose every net has >= 2 distinct pins: the valid
   baseline that both formats can render and re-read. *)
let random_hypergraph rng =
  let modules = 2 + Rng.int rng 12 in
  let num_nets = Rng.int rng 10 in
  let areas = Array.init modules (fun _ -> 1 + Rng.int rng 8) in
  let nets =
    Array.init num_nets (fun _ ->
        let degree = 2 + Rng.int rng (Stdlib.min 4 (modules - 1)) in
        let perm = Rng.permutation rng modules in
        let pins = Array.sub perm 0 degree in
        (* both parsers normalise pins to sorted order (as the original
           reader did), so generate them sorted to make round-trips exact *)
        Array.sort Int.compare pins;
        (pins, 1 + Rng.int rng 5))
  in
  H.make ~areas ~nets ()

let random_hgr_doc rng = Hgr_io.to_string (random_hypergraph rng)
let random_netd_doc rng = Netd_io.write_net_string (random_hypergraph rng)

(* Structured junk tokens a mutation may splice in: the interesting
   neighbourhood of both grammars. *)
let junk = [| "0"; "-1"; "999999"; "a0"; "p1"; "s"; "l"; "%"; "x"; "1 2 3"; "" |]

let mutate rng s =
  let n = String.length s in
  match Rng.int rng 5 with
  | 0 ->
      (* truncate at a random byte *)
      String.sub s 0 (Rng.int rng (n + 1))
  | 1 when n > 0 ->
      (* flip one byte to an arbitrary value *)
      let b = Bytes.of_string s in
      Bytes.set b (Rng.int rng n) (Char.chr (Rng.int rng 256));
      Bytes.to_string b
  | 2 ->
      (* splice a junk token at a random position *)
      let at = Rng.int rng (n + 1) in
      let tok = junk.(Rng.int rng (Array.length junk)) in
      String.sub s 0 at ^ tok ^ " " ^ String.sub s at (n - at)
  | 3 ->
      (* drop a random line *)
      let lines = String.split_on_char '\n' s in
      let count = List.length lines in
      if count <= 1 then s
      else begin
        let victim = Rng.int rng count in
        lines
        |> List.filteri (fun i _ -> i <> victim)
        |> String.concat "\n"
      end
  | _ ->
      (* duplicate a random line *)
      let lines = String.split_on_char '\n' s in
      let count = List.length lines in
      if count = 0 then s
      else begin
        let victim = Rng.int rng count in
        lines
        |> List.mapi (fun i l -> if i = victim then [ l; l ] else [ l ])
        |> List.concat
        |> String.concat "\n"
      end

(* ---- totality assertions ---- *)

let mode_name = function Hgr_io.Strict -> "strict" | Hgr_io.Lenient -> "lenient"

let assert_total ~what ~mode parse =
  match parse () with
  | Ok { Hgr_io.hypergraph; warnings } ->
      if mode = Hgr_io.Lenient then begin
        (match H.validate hypergraph with
        | Ok () -> ()
        | Error diags ->
            Alcotest.failf "%s (%s): lenient Ok fails validate: %s" what
              (mode_name mode)
              (String.concat "; " (List.map Diag.to_string diags)));
        List.iter
          (fun d ->
            if d.Diag.severity <> Diag.Warning then
              Alcotest.failf "%s (%s): non-warning in warnings: %s" what
                (mode_name mode) (Diag.to_string d))
          warnings
      end
  | Error [] -> Alcotest.failf "%s (%s): Error with no diagnostics" what (mode_name mode)
  | Error _ -> ()
  | exception e ->
      Alcotest.failf "%s (%s): raised %s" what (mode_name mode)
        (Printexc.to_string e)

let assert_total_netd ~what ~mode parse =
  match parse () with
  | Ok { Netd_io.hypergraph; warnings } ->
      if mode = Hgr_io.Lenient then begin
        (match H.validate hypergraph with
        | Ok () -> ()
        | Error diags ->
            Alcotest.failf "%s (%s): lenient Ok fails validate: %s" what
              (mode_name mode)
              (String.concat "; " (List.map Diag.to_string diags)));
        List.iter
          (fun d ->
            if d.Diag.severity <> Diag.Warning then
              Alcotest.failf "%s (%s): non-warning in warnings: %s" what
                (mode_name mode) (Diag.to_string d))
          warnings
      end
  | Error [] -> Alcotest.failf "%s (%s): Error with no diagnostics" what (mode_name mode)
  | Error _ -> ()
  | exception e ->
      Alcotest.failf "%s (%s): raised %s" what (mode_name mode)
        (Printexc.to_string e)

(* ---- fuzz drivers ---- *)

let test_fuzz_hgr () =
  let rng = Rng.create 0x46555A48 (* "FUZH" *) in
  for case = 1 to cases do
    let doc = random_hgr_doc rng in
    (* the unmutated document must parse strictly *)
    (match Hgr_io.parse_string ~mode:Hgr_io.Strict doc with
    | Ok _ -> ()
    | Error diags ->
        Alcotest.failf "case %d: valid doc rejected: %s" case
          (String.concat "; " (List.map Diag.to_string diags)));
    let mutated = mutate rng (mutate rng doc) in
    List.iter
      (fun mode ->
        assert_total
          ~what:(Printf.sprintf "hgr case %d %S" case mutated)
          ~mode
          (fun () -> Hgr_io.parse_string ~mode mutated))
      [ Hgr_io.Strict; Hgr_io.Lenient ]
  done

let test_fuzz_netd () =
  let rng = Rng.create 0x46555A4E (* "FUZN" *) in
  for case = 1 to cases do
    let doc = random_netd_doc rng in
    (match Netd_io.parse_net_string ~mode:Hgr_io.Strict doc with
    | Ok _ -> ()
    | Error diags ->
        Alcotest.failf "case %d: valid doc rejected: %s" case
          (String.concat "; " (List.map Diag.to_string diags)));
    let mutated = mutate rng (mutate rng doc) in
    (* random .are contents ride along half the time *)
    let are = if Rng.bool rng then Some (mutate rng "a0 3\na1 2\n") else None in
    List.iter
      (fun mode ->
        assert_total_netd
          ~what:(Printf.sprintf "netd case %d %S" case mutated)
          ~mode
          (fun () -> Netd_io.parse_net_string ?are ~mode mutated))
      [ Hgr_io.Strict; Hgr_io.Lenient ]
  done

(* ---- round-trip property ---- *)

let same_hypergraph a b =
  H.num_modules a = H.num_modules b
  && H.num_nets a = H.num_nets b
  && H.num_pins a = H.num_pins b
  && Array.init (H.num_modules a) (H.area a)
     = Array.init (H.num_modules b) (H.area b)
  && Array.init (H.num_nets a) (fun e ->
         (H.net_weight a e, Array.to_list (H.pins_of a e)))
     = Array.init (H.num_nets b) (fun e ->
            (H.net_weight b e, Array.to_list (H.pins_of b e)))

let test_roundtrip_hgr () =
  let rng = Rng.create 0x52545248 in
  for case = 1 to Stdlib.min cases 200 do
    let h = random_hypergraph rng in
    match Hgr_io.parse_string ~mode:Hgr_io.Strict (Hgr_io.to_string h) with
    | Ok { Hgr_io.hypergraph; _ } ->
        if not (same_hypergraph h hypergraph) then
          Alcotest.failf "case %d: hgr round-trip changed the hypergraph" case
    | Error diags ->
        Alcotest.failf "case %d: round-trip rejected: %s" case
          (String.concat "; " (List.map Diag.to_string diags))
  done

let test_roundtrip_netd () =
  let rng = Rng.create 0x5254524E in
  for case = 1 to Stdlib.min cases 200 do
    let h = random_hypergraph rng in
    match
      Netd_io.parse_net_string ~mode:Hgr_io.Strict (Netd_io.write_net_string h)
    with
    | Ok { Netd_io.hypergraph; _ } ->
        (* .net carries no weights/areas, so compare the pin structure *)
        if
          H.num_modules hypergraph <> H.num_modules h
          || H.num_nets hypergraph <> H.num_nets h
          || Array.init (H.num_nets h) (fun e -> Array.to_list (H.pins_of h e))
             <> Array.init (H.num_nets hypergraph) (fun e ->
                    Array.to_list (H.pins_of hypergraph e))
        then Alcotest.failf "case %d: netd round-trip changed the netlist" case
    | Error diags ->
        Alcotest.failf "case %d: round-trip rejected: %s" case
          (String.concat "; " (List.map Diag.to_string diags))
  done

(* ---- checked-in corrupt corpus ---- *)

(* dune runtest runs from _build/default/test; dune exec may run from the
   project root — accept either. *)
let corpus_dir =
  let candidates =
    [
      Filename.concat (Filename.concat ".." "examples") "corrupt";
      Filename.concat "examples" "corrupt";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some dir -> dir
  | None -> List.hd candidates

let test_corpus () =
  if not (Sys.file_exists corpus_dir) then
    Alcotest.failf "missing corrupt corpus at %s" corpus_dir;
  let entries = Sys.readdir corpus_dir in
  Array.sort compare entries;
  let hgr = ref 0 and netd = ref 0 in
  Array.iter
    (fun file ->
      let path = Filename.concat corpus_dir file in
      if Filename.check_suffix file ".hgr" then begin
        incr hgr;
        (* every corpus .hgr is corrupt: strict must reject, and neither
           mode may raise *)
        (match Hgr_io.parse_file ~mode:Hgr_io.Strict path with
        | Ok _ -> Alcotest.failf "%s: strict accepted corrupt input" file
        | Error [] -> Alcotest.failf "%s: no diagnostics" file
        | Error _ -> ()
        | exception e ->
            Alcotest.failf "%s: raised %s" file (Printexc.to_string e));
        assert_total ~what:file ~mode:Hgr_io.Lenient (fun () ->
            Hgr_io.parse_file ~mode:Hgr_io.Lenient path)
      end
      else if Filename.check_suffix file ".netD" then begin
        incr netd;
        (match Netd_io.parse_files ~mode:Hgr_io.Strict path with
        | Ok _ -> Alcotest.failf "%s: strict accepted corrupt input" file
        | Error [] -> Alcotest.failf "%s: no diagnostics" file
        | Error _ -> ()
        | exception e ->
            Alcotest.failf "%s: raised %s" file (Printexc.to_string e));
        assert_total_netd ~what:file ~mode:Hgr_io.Lenient (fun () ->
            Netd_io.parse_files ~mode:Hgr_io.Lenient path)
      end)
    entries;
  Alcotest.(check bool) "corpus has .hgr cases" true (!hgr >= 5);
  Alcotest.(check bool) "corpus has .netD cases" true (!netd >= 3)

let () =
  Alcotest.run "fuzz-io"
    [
      ( "fuzz",
        [
          Alcotest.test_case "hgr totality" `Quick test_fuzz_hgr;
          Alcotest.test_case "netd totality" `Quick test_fuzz_netd;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "hgr" `Quick test_roundtrip_hgr;
          Alcotest.test_case "netd" `Quick test_roundtrip_netd;
        ] );
      ("corpus", [ Alcotest.test_case "corrupt files" `Quick test_corpus ]);
    ]
