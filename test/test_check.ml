(* Tests of the verification subsystem itself: integrated shrinking,
   replay-token round trips, the exact bipartition/k-way oracles on
   hand-checked fixtures, generator validity, and a small end-to-end
   selfcheck run.  The last test records the tightest bound the oracle
   currently certifies for the multilevel engine — a regression alarm
   if refinement quality ever degrades. *)

module Rng = Mlpart_util.Rng
module H = Mlpart_hypergraph.Hypergraph
module Bp = Mlpart_partition.Bipartition
module Gen = Mlpart_check.Gen
module Property = Mlpart_check.Property
module Hgen = Mlpart_check.Hgen
module Oracle = Mlpart_check.Oracle
module Engines = Mlpart_check.Engines
module Selfcheck = Mlpart_check.Selfcheck

(* areas 1..5; optimum {4} vs the rest cuts only the third net *)
let sample () =
  H.make ~areas:[| 1; 2; 3; 4; 5 |]
    ~nets:[| ([| 0; 1 |], 1); ([| 1; 2; 3 |], 2); ([| 0; 3; 4 |], 1) |]
    ()

(* ---- generator core ---- *)

let test_int_range_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 200 do
    let v = Gen.root (Gen.int_range 3 17) ~size:5 rng in
    Alcotest.(check bool) "in range" true (v >= 3 && v <= 17)
  done

let test_int_shrink_to_boundary () =
  (* the classic: "all ints are < 25" must shrink to exactly 25 *)
  let prop =
    {
      Property.name = "int-lt-25";
      gen = Gen.int_range 0 1000;
      show = string_of_int;
      law =
        (fun x -> if x >= 25 then Property.Fail "not < 25" else Property.Pass);
    }
  in
  let stats = Property.check ~seed:3 prop in
  match stats.Property.failure with
  | None -> Alcotest.fail "expected a counterexample"
  | Some f ->
      Alcotest.(check string) "shrunk to the boundary" "25"
        f.Property.counterexample

let test_bool_shrinks () =
  let t = Gen.generate Gen.bool ~size:0 (Rng.create 1) in
  let shrink_values = List.of_seq (Seq.map (fun c -> c.Gen.value) t.Gen.shrinks) in
  if t.Gen.value then
    Alcotest.(check (list bool)) "true shrinks to false" [ false ] shrink_values
  else Alcotest.(check (list bool)) "false is minimal" [] shrink_values

let test_list_shrink_drops_elements () =
  let prop =
    {
      Property.name = "list-short";
      gen = Gen.list_n (Gen.int_range 0 8) (Gen.int_range 0 9);
      show = (fun l -> String.concat "," (List.map string_of_int l));
      law =
        (fun l ->
          if List.length l >= 3 then Property.Fail "too long" else Property.Pass);
    }
  in
  let stats = Property.check ~seed:5 prop in
  match stats.Property.failure with
  | None -> Alcotest.fail "expected a counterexample"
  | Some f ->
      (* minimal failing list has exactly 3 elements, all shrunk to 0 *)
      Alcotest.(check string) "minimal list" "0,0,0" f.Property.counterexample

(* ---- replay ---- *)

let failing_prop =
  {
    Property.name = "replay/int-lt-25";
    gen = Gen.int_range 0 1000;
    show = string_of_int;
    law = (fun x -> if x >= 25 then Property.Fail "not < 25" else Property.Pass);
  }

let test_replay_token_roundtrip () =
  let stats = Property.check ~seed:9 failing_prop in
  let f = Option.get stats.Property.failure in
  let token = Property.replay_token f in
  (match Property.parse_token token with
  | Some (name, seed, case) ->
      Alcotest.(check string) "name" f.Property.property name;
      Alcotest.(check int) "seed" f.Property.seed seed;
      Alcotest.(check int) "case" f.Property.case case
  | None -> Alcotest.fail "token did not parse");
  (* replaying the token reproduces the identical shrunk counterexample *)
  match
    Property.replay ~seed:f.Property.seed ~case:f.Property.case failing_prop
  with
  | None -> Alcotest.fail "replay passed but the original run failed"
  | Some f' ->
      Alcotest.(check string) "same counterexample" f.Property.counterexample
        f'.Property.counterexample;
      Alcotest.(check string) "same message" f.Property.message
        f'.Property.message;
      Alcotest.(check int) "same shrink walk" f.Property.shrink_steps
        f'.Property.shrink_steps

let test_parse_token_malformed () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "reject %S" s) true
        (Property.parse_token s = None))
    [ ""; "abc"; "a:1"; "a:b:c"; ":1:2"; "a:1:-3" ];
  Alcotest.(check bool) "accept NAME:SEED:CASE" true
    (Property.parse_token "oracle/fm:12:3" = Some ("oracle/fm", 12, 3))

(* ---- exact oracles ---- *)

let test_oracle_bipartition_fixture () =
  let h = sample () in
  match Oracle.bipartition ~bounds:(Bp.bounds h) h with
  | None -> Alcotest.fail "fixture is feasible"
  | Some best ->
      Alcotest.(check int) "optimum cut" 1 best.Oracle.cut;
      (* module 4 alone on one side; ties resolve to the lowest mask *)
      Alcotest.(check (array int)) "optimum side" [| 1; 1; 1; 1; 0 |]
        best.Oracle.side

let test_oracle_bipartition_fixed () =
  let h = sample () in
  let fixed = [| 0; -1; -1; -1; 0 |] in
  match Oracle.bipartition ~fixed ~bounds:(Bp.bounds h) h with
  | None -> Alcotest.fail "pinned fixture is feasible"
  | Some best ->
      Alcotest.(check int) "pinned optimum cut" 2 best.Oracle.cut;
      Alcotest.(check int) "pin 0 respected" 0 best.Oracle.side.(0);
      Alcotest.(check int) "pin 4 respected" 0 best.Oracle.side.(4)

let test_oracle_bipartition_infeasible () =
  let h = sample () in
  Alcotest.(check bool) "empty bounds yield None" true
    (Oracle.bipartition ~bounds:{ Bp.lo = 1; hi = 0 } h = None)

let test_oracle_bipartition_cap () =
  let areas = Array.make 17 1 in
  let h = H.make ~areas ~nets:[| ([| 0; 16 |], 1) |] () in
  Alcotest.check_raises "17 modules exceed the cap"
    (Invalid_argument "Oracle.bipartition: 17 modules exceeds the 16 cap")
    (fun () -> ignore (Oracle.bipartition ~bounds:{ Bp.lo = 0; hi = 17 } h))

let test_oracle_kway_chain () =
  (* unit-area path of 4 modules: any feasible 2-way split cuts >= 1 *)
  let h =
    H.make ~areas:[| 1; 1; 1; 1 |]
      ~nets:[| ([| 0; 1 |], 1); ([| 1; 2 |], 1); ([| 2; 3 |], 1) |]
      ()
  in
  let bounds = Mlpart_partition.Kpartition.bounds h ~k:2 in
  (match Oracle.kway ~bounds ~k:2 h with
  | None -> Alcotest.fail "chain is feasible"
  | Some best ->
      Alcotest.(check int) "2-way optimum" 1 best.Oracle.cut;
      (* lexicographically-least minimiser: peel off the last module *)
      Alcotest.(check (array int)) "2-way side" [| 0; 0; 0; 1 |]
        best.Oracle.side);
  (* unconstrained, everything lands in part 0 at cut 0 *)
  match Oracle.kway ~k:2 h with
  | None -> Alcotest.fail "unconstrained is feasible"
  | Some best ->
      Alcotest.(check int) "unconstrained optimum" 0 best.Oracle.cut;
      Alcotest.(check (array int)) "all in part 0" [| 0; 0; 0; 0 |]
        best.Oracle.side

let test_oracle_kway_cap () =
  let areas = Array.make 10 1 in
  let h = H.make ~areas ~nets:[| ([| 0; 9 |], 1) |] () in
  Alcotest.check_raises "4^10 exceeds the cap"
    (Invalid_argument "Oracle.kway: 4^10 assignments exceed the 2^18 cap")
    (fun () -> ignore (Oracle.kway ~k:4 h))

(* ---- instance generators ---- *)

let test_hgen_instances_valid () =
  let rng = Rng.create 21 in
  for size = 0 to 14 do
    for _ = 1 to 20 do
      let spec = Gen.root Hgen.instance ~size rng in
      let n = Hgen.num_modules spec in
      Alcotest.(check bool) "within oracle cap" true (n >= 2 && n <= 16);
      let h = Hgen.build spec in
      Alcotest.(check bool)
        (Printf.sprintf "valid: %s" (Hgen.show spec))
        true
        (H.validate h = Ok ())
    done
  done

let test_hgen_shrinks_valid () =
  let rng = Rng.create 22 in
  for _ = 1 to 50 do
    let spec = Gen.root Hgen.instance ~size:10 rng in
    Seq.iter
      (fun spec' ->
        Alcotest.(check bool)
          (Printf.sprintf "shrink stays valid: %s" (Hgen.show spec'))
          true
          (Hgen.num_modules spec' >= 2 && H.validate (Hgen.build spec') = Ok ()))
      (Hgen.shrink spec)
  done

(* Shrinking used to leak sub-2-pin nets: dropping the last module could
   leave a net with one pin, and net-drop candidates skipped renormalizing
   entirely.  Every candidate now passes through [normalize]; pin the
   invariant directly on a spec built to trigger every degenerate shape. *)
let test_hgen_normalize_restores_invariant () =
  let dirty =
    {
      Hgen.label = "dirty";
      areas = [| 1; 1; 1; 1 |];
      nets =
        [|
          ([||], 2) (* zero pins *);
          ([| 2 |], 1) (* one pin *);
          ([| 3; 3 |], 1) (* duplicates collapse to one pin *);
          ([| 2; 0; 2 |], 1) (* unsorted with a duplicate *);
          ([| 1; 3 |], 4) (* already fine *);
        |];
    }
  in
  let spec = Hgen.normalize dirty in
  Alcotest.(check int) "degenerate nets dropped" 2 (Array.length spec.Hgen.nets);
  Array.iter
    (fun (pins, _) ->
      Alcotest.(check bool) "at least two pins" true (Array.length pins >= 2);
      for i = 1 to Array.length pins - 1 do
        Alcotest.(check bool) "sorted distinct" true (pins.(i - 1) < pins.(i))
      done)
    spec.Hgen.nets;
  Alcotest.(check bool) "builds a valid hypergraph" true
    (H.validate (Hgen.build spec) = Ok ());
  (* and every shrink of a spec that *can* produce a singleton net after
     module-dropping stays valid *)
  let fragile =
    {
      Hgen.label = "fragile";
      areas = [| 1; 1; 1 |];
      nets = [| ([| 0; 2 |], 1); ([| 1; 2 |], 1); ([| 0; 1 |], 1) |];
    }
  in
  Seq.iter
    (fun spec' ->
      Array.iter
        (fun (pins, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "shrunk net valid: %s" (Hgen.show spec'))
            true
            (Array.length pins >= 2))
        spec'.Hgen.nets)
    (Hgen.shrink fragile)

(* The bipartition oracle indexes a net's first pin; a zero-pin net at the
   end of the store (reachable via make_unchecked on degenerate input) must
   be skipped, not read out of bounds or counted as cut. *)
let test_oracle_zero_pin_net () =
  let spec =
    {
      Hgen.label = "degen";
      areas = [| 1; 1 |];
      nets = [| ([| 0; 1 |], 3); ([||], 5) |];
    }
  in
  let h = Hgen.build_unchecked spec in
  match Oracle.bipartition ~bounds:{ Bp.lo = 1; hi = 1 } h with
  | None -> Alcotest.fail "feasible split not found"
  | Some opt ->
      Alcotest.(check int) "only the real net counts" 3 opt.Oracle.cut

(* ---- end-to-end ---- *)

let test_selfcheck_smoke () =
  let report = Selfcheck.run { Selfcheck.seed = 7; cases = 5; max_size = 8 } in
  Alcotest.(check int) "all properties present" 20
    (List.length report.Selfcheck.props);
  Alcotest.(check int) "no failures"
    0
    (List.length report.Selfcheck.failures)

(* Tightest bound the oracle currently certifies on a fixed 60-case sweep:
   the multilevel engine's cut exceeds the enumerated optimum by at most 7
   (worst case: a plateau where every improving move sequence passes
   through a balance-infeasible intermediate state, so single-move FM
   passes cannot cross it — seen on dup{6 modules, nets over {0,1,3,4}}).
   No correctness bug: cut >= optimum and balance hold on every case; this
   pins the refinement *quality* so a regression is caught here before any
   benchmark notices. *)
let test_ml_oracle_gap_bound () =
  let max_gap = ref 0 in
  for case = 0 to 59 do
    let rng = Rng.stream (Rng.create 1) case in
    let spec = Gen.root Hgen.instance ~size:(case mod 15) rng in
    let h = Hgen.build spec in
    let r = Engines.ml.Engines.run (Rng.create (1000 + case)) h in
    match Oracle.bipartition ~bounds:(Bp.bounds h) h with
    | None -> Alcotest.fail "engine solved an instance the oracle calls infeasible"
    | Some opt ->
        Alcotest.(check bool)
          (Printf.sprintf "case %d: cut %d >= optimum %d" case r.Engines.cut
             opt.Oracle.cut)
          true
          (r.Engines.cut >= opt.Oracle.cut);
        if r.Engines.cut - opt.Oracle.cut > !max_gap then
          max_gap := r.Engines.cut - opt.Oracle.cut
  done;
  Alcotest.(check bool)
    (Printf.sprintf "max ml-vs-oracle gap %d within the recorded bound 7"
       !max_gap)
    true (!max_gap <= 7)

let () =
  Alcotest.run "check"
    [
      ( "gen",
        [
          Alcotest.test_case "int_range bounds" `Quick test_int_range_bounds;
          Alcotest.test_case "int shrinks to boundary" `Quick
            test_int_shrink_to_boundary;
          Alcotest.test_case "bool shrinks" `Quick test_bool_shrinks;
          Alcotest.test_case "list shrinks drop elements" `Quick
            test_list_shrink_drops_elements;
        ] );
      ( "replay",
        [
          Alcotest.test_case "token roundtrip + determinism" `Quick
            test_replay_token_roundtrip;
          Alcotest.test_case "malformed tokens" `Quick test_parse_token_malformed;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "bipartition fixture" `Quick
            test_oracle_bipartition_fixture;
          Alcotest.test_case "bipartition fixed pins" `Quick
            test_oracle_bipartition_fixed;
          Alcotest.test_case "bipartition infeasible" `Quick
            test_oracle_bipartition_infeasible;
          Alcotest.test_case "bipartition cap" `Quick test_oracle_bipartition_cap;
          Alcotest.test_case "kway chain" `Quick test_oracle_kway_chain;
          Alcotest.test_case "kway cap" `Quick test_oracle_kway_cap;
          Alcotest.test_case "zero-pin net skipped" `Quick
            test_oracle_zero_pin_net;
        ] );
      ( "hgen",
        [
          Alcotest.test_case "instances valid" `Quick test_hgen_instances_valid;
          Alcotest.test_case "shrinks valid" `Quick test_hgen_shrinks_valid;
          Alcotest.test_case "normalize restores invariant" `Quick
            test_hgen_normalize_restores_invariant;
        ] );
      ( "selfcheck",
        [
          Alcotest.test_case "suite smoke" `Quick test_selfcheck_smoke;
          Alcotest.test_case "ml-vs-oracle gap regression bound" `Quick
            test_ml_oracle_gap_bound;
        ] );
    ]
