(* Tests for the experiment harness: algorithm wrappers, the measurement
   runner and the published reference data. *)

module Algos = Mlpart_experiments.Algos
module Report = Mlpart_experiments.Report
module Paper = Mlpart_experiments.Paper
module Suite = Mlpart_gen.Suite
module Rng = Mlpart_util.Rng
module Fm = Mlpart_partition.Fm
module Mw = Mlpart_partition.Multiway

let check = Alcotest.check

let tiny () =
  let rng = Rng.create 12 in
  Mlpart_gen.Generate.rent ~rng ~modules:90 ~nets:110 ~pins:330 ()

let bipartitioners =
  [
    Algos.fm; Algos.fm_fifo; Algos.fm_random; Algos.clip; Algos.mlf 0.5;
    Algos.mlc 0.5; Algos.cl_la3f; Algos.cd_la3f; Algos.cl_prf; Algos.lsmc 3;
    Algos.eig; Algos.eig_fm; Algos.two_phase; Algos.ga_fm; Algos.kl;
    Algos.mlc_vcycles 2;
  ]

let quadrisectors =
  [ Algos.q_mlf; Algos.q_fm; Algos.q_clip; Algos.q_lsmc_f; Algos.q_lsmc_c;
    Algos.q_gordian ]

let test_all_bipartitioners_valid () =
  let h = tiny () in
  List.iter
    (fun algo ->
      let side, cut = algo.Algos.run (Rng.create 3) h in
      check Alcotest.int (algo.Algos.name ^ " cut consistent")
        (Fm.cut_of h side) cut)
    bipartitioners

let test_all_quadrisectors_valid () =
  let h = tiny () in
  List.iter
    (fun algo ->
      let side, cut = algo.Algos.qrun (Rng.create 4) h in
      check Alcotest.int (algo.Algos.qname ^ " cut consistent")
        (Mw.cut_of h ~k:4 side) cut)
    quadrisectors

let test_algo_names_distinct () =
  let names = List.map (fun a -> a.Algos.name) bipartitioners in
  check Alcotest.int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_measure_aggregates () =
  let h = tiny () in
  let m = Report.measure ~runs:4 ~seed:1 h Algos.fm in
  check Alcotest.int "runs recorded" 4 m.Report.runs;
  check Alcotest.bool "min <= avg" true
    (float_of_int m.Report.min_cut <= m.Report.avg_cut);
  check Alcotest.bool "cpu non-negative" true (m.Report.cpu >= 0.0)

let test_measure_deterministic () =
  let h = tiny () in
  let a = Report.measure ~runs:3 ~seed:9 h Algos.clip in
  let b = Report.measure ~runs:3 ~seed:9 h Algos.clip in
  check Alcotest.int "same min" a.Report.min_cut b.Report.min_cut;
  check (Alcotest.float 1e-9) "same avg" a.Report.avg_cut b.Report.avg_cut

let test_measure_seed_changes_runs () =
  (* Use a high-variance engine (FIFO buckets) on an unstructured netlist so
     that two seeds coinciding on all of min/avg/std is vanishingly
     unlikely; this checks the seed actually reaches the runs. *)
  let rng = Rng.create 77 in
  let h = Mlpart_gen.Generate.random ~rng ~modules:120 ~nets:150 ~pins:450 () in
  let a = Report.measure ~runs:6 ~seed:1 h Algos.fm_fifo in
  let b = Report.measure ~runs:6 ~seed:2 h Algos.fm_fifo in
  check Alcotest.bool "different seeds differ" true
    (a.Report.avg_cut <> b.Report.avg_cut
    || a.Report.min_cut <> b.Report.min_cut
    || a.Report.std_cut <> b.Report.std_cut)

let test_measure_parallel_identical () =
  (* pre-split rng streams make results independent of job count *)
  let h = tiny () in
  let serial = Report.measure ~jobs:1 ~runs:6 ~seed:5 h Algos.fm in
  let parallel = Report.measure ~jobs:3 ~runs:6 ~seed:5 h Algos.fm in
  check Alcotest.int "same min" serial.Report.min_cut parallel.Report.min_cut;
  check (Alcotest.float 1e-9) "same avg" serial.Report.avg_cut
    parallel.Report.avg_cut;
  check (Alcotest.float 1e-9) "same std" serial.Report.std_cut
    parallel.Report.std_cut

let test_measure_jobs4_identical_mlc () =
  (* the full multilevel path through a 4-domain pool: a seeded run with
     jobs=4 must reproduce the jobs=1 cuts exactly *)
  let h = tiny () in
  let serial = Report.measure ~jobs:1 ~runs:8 ~seed:3 h (Algos.mlc 0.5) in
  let parallel = Report.measure ~jobs:4 ~runs:8 ~seed:3 h (Algos.mlc 0.5) in
  check Alcotest.int "same min" serial.Report.min_cut parallel.Report.min_cut;
  check (Alcotest.float 1e-9) "same avg" serial.Report.avg_cut
    parallel.Report.avg_cut;
  check (Alcotest.float 1e-9) "same std" serial.Report.std_cut
    parallel.Report.std_cut

let test_cells () =
  check Alcotest.string "value" "42" (Report.cell (Some 42));
  check Alcotest.string "blank" "-" (Report.cell None);
  check Alcotest.string "fvalue" "1.5" (Report.fcell (Some 1.5))

(* ---- published data ---- *)

let test_paper_table2_complete () =
  List.iter
    (fun spec ->
      if spec.Suite.circuit <> "golem3" then
        check Alcotest.bool
          (spec.Suite.circuit ^ " present in Table II")
          true
          (Paper.table2 spec.Suite.circuit <> None))
    Suite.all

let test_paper_table3_values () =
  match Paper.table3 "golem3" with
  | Some row ->
      let fm_min, clip_min = row.Paper.t3_min in
      check Alcotest.int "golem3 FM min" 2847 fm_min;
      check Alcotest.int "golem3 CLIP min" 2276 clip_min
  | None -> Alcotest.fail "golem3 missing from Table III"

let test_paper_table6_values () =
  match Paper.table6 "golem3" with
  | Some row ->
      let _, r05, r033 = row.Paper.r_min in
      check Alcotest.int "golem3 R=0.5" 1346 r05;
      check Alcotest.int "golem3 R=0.33" 1340 r033
  | None -> Alcotest.fail "golem3 missing from Table VI"

let test_paper_table7_blanks () =
  match Paper.table7 "golem3" with
  | Some row ->
      check Alcotest.bool "HB blank for golem3" true (row.Paper.hb = None);
      check Alcotest.bool "MLc present" true (row.Paper.mlc100 = Some 1346)
  | None -> Alcotest.fail "golem3 missing from Table VII"

let test_paper_table9_shape () =
  (* the headline claim: MLf min beats GORDIAN on every Table IX circuit *)
  List.iter
    (fun spec ->
      match Paper.table9 spec.Suite.circuit with
      | Some row ->
          check Alcotest.bool
            (spec.Suite.circuit ^ ": published MLf < GORDIAN")
            true
            (row.Paper.t9_mlf_min < row.Paper.t9_gordian)
      | None -> ())
    Suite.all

let test_paper_unknown_circuit () =
  check Alcotest.bool "unknown is None" true (Paper.table2 "nonexistent" = None)

let () =
  Alcotest.run "experiments"
    [
      ( "algos",
        [
          Alcotest.test_case "bipartitioners valid" `Slow
            test_all_bipartitioners_valid;
          Alcotest.test_case "quadrisectors valid" `Slow
            test_all_quadrisectors_valid;
          Alcotest.test_case "names distinct" `Quick test_algo_names_distinct;
        ] );
      ( "report",
        [
          Alcotest.test_case "aggregates" `Quick test_measure_aggregates;
          Alcotest.test_case "deterministic" `Quick test_measure_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_measure_seed_changes_runs;
          Alcotest.test_case "parallel identical" `Quick
            test_measure_parallel_identical;
          Alcotest.test_case "jobs 4 identical (mlc)" `Quick
            test_measure_jobs4_identical_mlc;
          Alcotest.test_case "cells" `Quick test_cells;
        ] );
      ( "paper",
        [
          Alcotest.test_case "table2 complete" `Quick test_paper_table2_complete;
          Alcotest.test_case "table3 values" `Quick test_paper_table3_values;
          Alcotest.test_case "table6 values" `Quick test_paper_table6_values;
          Alcotest.test_case "table7 blanks" `Quick test_paper_table7_blanks;
          Alcotest.test_case "table9 shape" `Quick test_paper_table9_shape;
          Alcotest.test_case "unknown circuit" `Quick test_paper_unknown_circuit;
        ] );
    ]
