(* Tests for the hypergraph substrate: construction, CSR consistency,
   induce (Definition 1), builder and .hgr I/O. *)

module H = Mlpart_hypergraph.Hypergraph
module Builder = Mlpart_hypergraph.Builder
module Hgr_io = Mlpart_hypergraph.Hgr_io
module Rng = Mlpart_util.Rng
module Diag = Mlpart_util.Diag

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* A small reference netlist used across tests:
   modules 0..4, nets {0,1}, {1,2,3}, {0,3,4}, weights 1,2,1. *)
let sample () =
  H.make ~name:"sample"
    ~areas:[| 1; 2; 3; 4; 5 |]
    ~nets:[| ([| 0; 1 |], 1); ([| 1; 2; 3 |], 2); ([| 0; 3; 4 |], 1) |]
    ()

(* ---- construction and validation ---- *)

let test_sizes () =
  let h = sample () in
  check Alcotest.int "modules" 5 (H.num_modules h);
  check Alcotest.int "nets" 3 (H.num_nets h);
  check Alcotest.int "pins" 8 (H.num_pins h);
  check Alcotest.int "total area" 15 (H.total_area h);
  check Alcotest.int "max area" 5 (H.max_area h);
  check Alcotest.string "name" "sample" (H.name h)

let expect_invalid f =
  match f () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_reject_small_net () =
  expect_invalid (fun () ->
      H.make ~areas:[| 1; 1 |] ~nets:[| ([| 0 |], 1) |] ())

let test_reject_duplicate_pin () =
  expect_invalid (fun () ->
      H.make ~areas:[| 1; 1 |] ~nets:[| ([| 0; 0 |], 1) |] ())

let test_reject_out_of_range_pin () =
  expect_invalid (fun () ->
      H.make ~areas:[| 1; 1 |] ~nets:[| ([| 0; 5 |], 1) |] ())

let test_reject_bad_area () =
  expect_invalid (fun () -> H.make ~areas:[| 0; 1 |] ~nets:[||] ())

let test_reject_bad_weight () =
  expect_invalid (fun () ->
      H.make ~areas:[| 1; 1 |] ~nets:[| ([| 0; 1 |], 0) |] ())

let test_empty_nets_ok () =
  let h = H.make ~areas:[| 1; 1 |] ~nets:[||] () in
  check Alcotest.int "no nets" 0 (H.num_nets h);
  check Alcotest.int "no pins" 0 (H.num_pins h);
  check Alcotest.int "degree" 0 (H.module_degree h 0)

(* ---- CSR consistency ---- *)

let test_incidence_inverse () =
  let h = sample () in
  (* every (net, pin) pair appears in both directions *)
  for e = 0 to H.num_nets h - 1 do
    H.iter_pins_of h e (fun v ->
        let nets = Array.to_list (H.nets_of h v) in
        if not (List.mem e nets) then
          Alcotest.failf "net %d missing from nets_of %d" e v)
  done;
  for v = 0 to H.num_modules h - 1 do
    H.iter_nets_of h v (fun e ->
        let pins = Array.to_list (H.pins_of h e) in
        if not (List.mem v pins) then
          Alcotest.failf "module %d missing from pins_of %d" v e)
  done

let test_degrees () =
  let h = sample () in
  check Alcotest.int "degree of 0" 2 (H.module_degree h 0);
  check Alcotest.int "degree of 2" 1 (H.module_degree h 2);
  check Alcotest.int "max degree" 2 (H.max_module_degree h);
  (* module 3 touches nets of weight 2 and 1 *)
  check Alcotest.int "max weighted degree" 3 (H.max_weighted_degree h);
  check Alcotest.int "total net weight" 4 (H.total_net_weight h)

let test_net_accessors () =
  let h = sample () in
  check Alcotest.int "net 1 size" 3 (H.net_size h 1);
  check Alcotest.int "net 1 weight" 2 (H.net_weight h 1);
  check Alcotest.(array int) "net 1 pins" [| 1; 2; 3 |] (H.pins_of h 1)

let test_pin_slots () =
  let h = sample () in
  for e = 0 to H.num_nets h - 1 do
    let base = H.net_offset h e in
    let via_slots = Array.init (H.net_size h e) (fun i -> H.pin_at h (base + i)) in
    check Alcotest.(array int) "slots agree with pins_of" (H.pins_of h e) via_slots
  done

let test_folds () =
  let h = sample () in
  let sum_pins = H.fold_pins_of h 1 ~init:0 ~f:( + ) in
  check Alcotest.int "fold pins" 6 sum_pins;
  let count_nets = H.fold_nets_of h 0 ~init:0 ~f:(fun acc _ -> acc + 1) in
  check Alcotest.int "fold nets" 2 count_nets

(* ---- induce ---- *)

let test_induce_basic () =
  let h = sample () in
  (* clusters: {0,1} -> 0, {2,3} -> 1, {4} -> 2 *)
  let coarse, k = H.induce h [| 0; 0; 1; 1; 2 |] in
  check Alcotest.int "clusters" 3 k;
  check Alcotest.int "coarse modules" 3 (H.num_modules coarse);
  (* net {0,1} collapses inside cluster 0 and is dropped; {1,2,3} spans
     {0,1}; {0,3,4} spans {0,1,2} *)
  check Alcotest.int "coarse nets" 2 (H.num_nets coarse);
  check Alcotest.int "areas summed" 3 (H.area coarse 0);
  check Alcotest.int "areas summed" 7 (H.area coarse 1);
  check Alcotest.int "areas summed" 5 (H.area coarse 2);
  check Alcotest.int "total area preserved" (H.total_area h) (H.total_area coarse)

let test_induce_merge_duplicates () =
  let h =
    H.make ~areas:[| 1; 1; 1; 1 |]
      ~nets:[| ([| 0; 2 |], 1); ([| 1; 3 |], 3); ([| 0; 1 |], 1) |]
      ()
  in
  (* clusters {0,1} and {2,3}: first two nets both become {0,1} coarse *)
  let merged, _ = H.induce ~merge_duplicates:true h [| 0; 0; 1; 1 |] in
  check Alcotest.int "merged nets" 1 (H.num_nets merged);
  check Alcotest.int "weights summed" 4 (H.net_weight merged 0);
  let unmerged, _ = H.induce h [| 0; 0; 1; 1 |] in
  check Alcotest.int "duplicates kept" 2 (H.num_nets unmerged)

let test_induce_rejects_empty_cluster () =
  let h = sample () in
  expect_invalid (fun () -> H.induce h [| 0; 0; 2; 2; 2 |])

let test_induce_rejects_length_mismatch () =
  let h = sample () in
  expect_invalid (fun () -> H.induce h [| 0; 0 |])

(* ---- builder ---- *)

let test_builder_basics () =
  let b = Builder.create ~name:"b" () in
  let v0 = Builder.add_module b () in
  let v1 = Builder.add_module b ~area:7 () in
  Builder.add_modules b 2;
  check Alcotest.int "ids sequential" 0 v0;
  check Alcotest.int "ids sequential" 1 v1;
  Builder.add_net b [ 0; 1; 2 ];
  Builder.add_net b [ 3; 3 ];
  (* collapses to 1 pin: dropped *)
  Builder.add_net b [ 2; 2; 3 ];
  (* dedups to {2,3} *)
  let h = Builder.build b in
  check Alcotest.int "modules" 4 (H.num_modules h);
  check Alcotest.int "degenerate dropped" 2 (H.num_nets h);
  check Alcotest.int "area honoured" 7 (H.area h 1)

let test_builder_reusable () =
  let b = Builder.create () in
  Builder.add_modules b 2;
  Builder.add_net b [ 0; 1 ];
  let h1 = Builder.build b in
  Builder.add_net b [ 0; 1 ];
  let h2 = Builder.build b in
  check Alcotest.int "first build" 1 (H.num_nets h1);
  check Alcotest.int "second build sees new net" 2 (H.num_nets h2)

(* ---- validate / repair ---- *)

(* [make_unchecked] lets tests build the degenerate values that lenient
   ingestion has to survive. *)
let degenerate () =
  H.make_unchecked ~name:"degen"
    ~areas:[| 1; 0; 3; -2 |]
    ~nets:
      [|
        ([| 0; 1 |], 1); (* fine *)
        ([| 2; 2; 3 |], 0); (* duplicate pin, bad weight *)
        ([| 1 |], 1); (* singleton *)
        ([||], 1); (* empty *)
      |]
    ()

let test_validate_clean () =
  check Alcotest.bool "sample validates" true (H.validate (sample ()) = Ok ())

let test_validate_degenerate () =
  match H.validate (degenerate ()) with
  | Ok () -> Alcotest.fail "expected violations"
  | Error diags ->
      let count c = List.length (List.filter (fun d -> d.Diag.code = c) diags) in
      check Alcotest.int "bad areas" 2 (count Diag.Bad_area);
      check Alcotest.int "bad weight" 1 (count Diag.Bad_weight);
      check Alcotest.int "duplicate pin" 1 (count Diag.Duplicate_pin);
      check Alcotest.int "singleton" 1 (count Diag.Singleton_net);
      check Alcotest.int "empty" 1 (count Diag.Empty_net);
      check Alcotest.bool "all errors" true
        (List.for_all (fun d -> d.Diag.severity = Diag.Error) diags)

let test_repair_degenerate () =
  let repaired, report = H.repair (degenerate ()) in
  check Alcotest.bool "repaired validates" true (H.validate repaired = Ok ());
  check Alcotest.int "nets dropped" 2 report.H.dropped_nets;
  check Alcotest.int "pins deduped" 1 report.H.deduped_pins;
  check Alcotest.int "areas clamped" 2 report.H.clamped_areas;
  check Alcotest.int "weights clamped" 1 report.H.clamped_weights;
  check Alcotest.int "surviving nets" 2 (H.num_nets repaired);
  check Alcotest.(array int) "net order preserved" [| 0; 1 |] (H.pins_of repaired 0);
  check Alcotest.(array int) "deduped net" [| 2; 3 |] (H.pins_of repaired 1);
  check Alcotest.int "clamped area" 1 (H.area repaired 1);
  check Alcotest.int "clamped weight" 1 (H.net_weight repaired 1)

let test_repair_identity_on_valid () =
  let h = sample () in
  let repaired, report = H.repair h in
  check Alcotest.int "no drops" 0 report.H.dropped_nets;
  check Alcotest.int "no dedup" 0 report.H.deduped_pins;
  check Alcotest.int "no clamps" 0
    (report.H.clamped_areas + report.H.clamped_weights);
  check Alcotest.bool "no diags" true (report.H.repair_diags = []);
  check Alcotest.int "same nets" (H.num_nets h) (H.num_nets repaired);
  check Alcotest.int "same pins" (H.num_pins h) (H.num_pins repaired)

(* ---- hgr io ---- *)

let test_io_roundtrip_plain () =
  let h = sample () in
  (* sample has non-unit areas and weights -> fmt 11 *)
  let text = Hgr_io.to_string h in
  let h' = Hgr_io.of_string text in
  check Alcotest.int "modules" (H.num_modules h) (H.num_modules h');
  check Alcotest.int "nets" (H.num_nets h) (H.num_nets h');
  check Alcotest.int "pins" (H.num_pins h) (H.num_pins h');
  for v = 0 to H.num_modules h - 1 do
    check Alcotest.int "area" (H.area h v) (H.area h' v)
  done;
  for e = 0 to H.num_nets h - 1 do
    check Alcotest.int "weight" (H.net_weight h e) (H.net_weight h' e);
    check Alcotest.(array int) "pins" (H.pins_of h e) (H.pins_of h' e)
  done

let test_io_unit_weights_header () =
  let h = H.make ~areas:[| 1; 1 |] ~nets:[| ([| 0; 1 |], 1) |] () in
  let text = Hgr_io.to_string h in
  check Alcotest.string "no fmt field" "1 2" (List.hd (String.split_on_char '\n' text))

let test_io_comments_and_blanks () =
  let text = "% header comment\n\n2 3\n 1 2 \n% another\n2 3\n" in
  let h = Hgr_io.of_string text in
  check Alcotest.int "nets parsed" 2 (H.num_nets h);
  check Alcotest.int "modules" 3 (H.num_modules h)

(* Typed rejection: the legacy entry points raise [Diag.Mlpart_error]
   carrying the expected code. *)
let expect_diag code f =
  match f () with
  | _ -> Alcotest.fail "expected Mlpart_error"
  | exception Diag.Mlpart_error diags ->
      check Alcotest.bool
        (Printf.sprintf "carries %s" (Diag.code_name code))
        true
        (List.exists (fun d -> d.Diag.code = code) diags)

let test_io_rejects_bad_header () =
  expect_diag Diag.Bad_header (fun () -> Hgr_io.of_string "abc\n")

let test_io_rejects_out_of_range_pin () =
  expect_diag Diag.Pin_out_of_range (fun () -> Hgr_io.of_string "1 2\n1 3\n")

let test_io_rejects_truncated () =
  expect_diag Diag.Truncated (fun () -> Hgr_io.of_string "2 3\n1 2\n")

let test_io_single_pin_net_strict_vs_lenient () =
  let text = "2 3\n1 1\n1 2\n" in
  (* strict: the drop would silently renumber nets -> typed error with the
     original net index *)
  expect_diag Diag.Singleton_net (fun () -> Hgr_io.of_string text);
  (* lenient: dropped, and the warning names the original net index 0 and
     its source line *)
  match Hgr_io.parse_string ~mode:Hgr_io.Lenient text with
  | Error _ -> Alcotest.fail "lenient parse should succeed"
  | Ok { Hgr_io.hypergraph = h; warnings } ->
      check Alcotest.int "degenerate net dropped" 1 (H.num_nets h);
      let w = List.find (fun d -> d.Diag.code = Diag.Singleton_net) warnings in
      check Alcotest.int "warning line" 2 w.Diag.line;
      check Alcotest.bool "warning names net 0" true
        (String.length w.Diag.message >= 5 && String.sub w.Diag.message 0 5 = "net 0")

let test_io_lenient_recovers_degenerate () =
  (* out-of-range pin dropped, duplicate collapsed, weight clamped, short
     module-weight section defaulted — one warning each, result valid *)
  let text = "2 3 11\n0 1 2 9\n2 2 3 3\n4\n" in
  match Hgr_io.parse_string ~mode:Hgr_io.Lenient text with
  | Error ds ->
      Alcotest.failf "lenient parse failed: %s"
        (String.concat "; " (List.map Diag.to_string ds))
  | Ok { Hgr_io.hypergraph = h; warnings } ->
      check Alcotest.int "both nets kept" 2 (H.num_nets h);
      check Alcotest.(array int) "net 0 pins" [| 0; 1 |] (H.pins_of h 0);
      check Alcotest.(array int) "net 1 pins" [| 1; 2 |] (H.pins_of h 1);
      check Alcotest.int "weight clamped" 1 (H.net_weight h 0);
      check Alcotest.int "area read" 4 (H.area h 0);
      check Alcotest.int "missing areas default" 1 (H.area h 2);
      check Alcotest.bool "validates" true (H.validate h = Ok ());
      let has c = List.exists (fun d -> d.Diag.code = c) warnings in
      check Alcotest.bool "pin range warning" true (has Diag.Pin_out_of_range);
      check Alcotest.bool "duplicate warning" true (has Diag.Duplicate_pin);
      check Alcotest.bool "weight warning" true (has Diag.Bad_weight);
      check Alcotest.bool "truncation warning" true (has Diag.Truncated)

let test_io_strict_reports_all_issues () =
  (* strict mode scans the whole file: both problems reported, not just
     the first *)
  match Hgr_io.parse_string ~mode:Hgr_io.Strict "2 3\n1 9\n4 2\n" with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error diags ->
      let codes = List.map (fun d -> d.Diag.code) diags in
      check Alcotest.bool "range error present" true
        (List.mem Diag.Pin_out_of_range codes);
      check Alcotest.bool "second line's error present" true
        (List.length (List.filter (fun c -> c = Diag.Pin_out_of_range) codes) >= 2)

let test_io_net_weights_only () =
  let h =
    H.make ~areas:[| 1; 1; 1 |]
      ~nets:[| ([| 0; 1 |], 3); ([| 1; 2 |], 1) |]
      ()
  in
  let text = Hgr_io.to_string h in
  check Alcotest.string "fmt 1 header" "2 3 1"
    (List.hd (String.split_on_char '\n' text));
  let h' = Hgr_io.of_string text in
  check Alcotest.int "weight preserved" 3 (H.net_weight h' 0);
  check Alcotest.int "unit area stays" 1 (H.area h' 0)

let test_io_file_roundtrip () =
  let h = sample () in
  let path = Filename.temp_file "mlpart_test" ".hgr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Hgr_io.write_file path h;
      let h' = Hgr_io.read_file path in
      check Alcotest.int "pins preserved" (H.num_pins h) (H.num_pins h');
      check Alcotest.bool "named after file" true (String.length (H.name h') > 0))

(* ---- properties ---- *)

let arbitrary_hypergraph =
  (* Random netlists via the rent generator; shrinking is not useful here. *)
  QCheck.make
    (QCheck.Gen.map
       (fun seed ->
         let rng = Rng.create seed in
         Mlpart_gen.Generate.rent ~rng ~modules:60 ~nets:80 ~pins:220 ())
       QCheck.Gen.small_int)

let prop_io_roundtrip =
  QCheck.Test.make ~name:"hgr roundtrip preserves structure" ~count:50
    arbitrary_hypergraph (fun h ->
      let h' = Hgr_io.of_string (Hgr_io.to_string h) in
      H.num_modules h = H.num_modules h'
      && H.num_nets h = H.num_nets h'
      && H.num_pins h = H.num_pins h')

let prop_induce_preserves_area =
  QCheck.Test.make ~name:"induce preserves total area" ~count:50
    QCheck.(pair arbitrary_hypergraph small_int)
    (fun (h, seed) ->
      let rng = Rng.create seed in
      let k = 1 + Rng.int rng (H.num_modules h) in
      (* random clustering made contiguous: ensure every id < k used *)
      let cluster_of =
        Array.init (H.num_modules h) (fun v -> if v < k then v else Rng.int rng k)
      in
      let coarse, k' = H.induce h cluster_of in
      k' = k && H.total_area coarse = H.total_area h)

let prop_induce_net_sizes =
  QCheck.Test.make ~name:"induced nets have >= 2 pins and weights preserved"
    ~count:50
    QCheck.(pair arbitrary_hypergraph small_int)
    (fun (h, seed) ->
      let rng = Rng.create seed in
      let k = Stdlib.max 2 (H.num_modules h / 3) in
      let cluster_of =
        Array.init (H.num_modules h) (fun v -> if v < k then v else Rng.int rng k)
      in
      let coarse, _ = H.induce h cluster_of in
      let ok = ref true in
      for e = 0 to H.num_nets coarse - 1 do
        if H.net_size coarse e < 2 || H.net_weight coarse e < 1 then ok := false
      done;
      !ok)

(* Pin-for-pin equality of two hypergraphs: same sizes, same areas, same
   nets in the same order with identical sorted pin runs and weights. *)
let equal_hypergraphs a b =
  H.num_modules a = H.num_modules b
  && H.num_nets a = H.num_nets b
  && H.num_pins a = H.num_pins b
  && Array.init (H.num_modules a) (H.area a)
     = Array.init (H.num_modules b) (H.area b)
  && begin
       let ok = ref true in
       for e = 0 to H.num_nets a - 1 do
         if H.net_weight a e <> H.net_weight b e || H.pins_of a e <> H.pins_of b e
         then ok := false
       done;
       !ok
     end

(* One arena shared across every generated case exercises the generational
   stamping: reuse across hypergraphs of different sizes must not leak
   marks between calls. *)
let shared_arena = H.create_arena ()

let prop_induce_matches_reference =
  QCheck.Test.make
    ~name:"direct-CSR induce equals reference impl (both merge settings)"
    ~count:100
    QCheck.(pair arbitrary_hypergraph small_int)
    (fun (h, seed) ->
      let rng = Rng.create seed in
      let n = H.num_modules h in
      (* small cluster counts make duplicate coarse nets likely *)
      let k = 1 + Rng.int rng (Stdlib.max 1 (n / 2)) in
      let cluster_of =
        Array.init n (fun v -> if v < k then v else Rng.int rng k)
      in
      List.for_all
        (fun merge_duplicates ->
          let fast, kf =
            H.induce ~merge_duplicates ~arena:shared_arena h cluster_of
          in
          let fresh, kn = H.induce ~merge_duplicates h cluster_of in
          let slow, ks = H.induce_reference ~merge_duplicates h cluster_of in
          kf = ks && kn = ks && equal_hypergraphs fast slow
          && equal_hypergraphs fresh slow)
        [ false; true ])

(* ---- netD io ---- *)

module Netd = Mlpart_hypergraph.Netd_io

let sample_net =
  "0\n7\n2\n4\n2\na0 s\na1 l\np1 l\na2 s I\na0 l O\na1 l\np1 l\n"
(* modules: a0,a1,a2 (cells, pad offset 2), p1 -> id 3; nets {0,1,3} and
   {2,0,1,3} *)

let test_netd_parse () =
  let h = Netd.read_net_string ~name:"tiny" sample_net in
  check Alcotest.int "modules" 4 (H.num_modules h);
  check Alcotest.int "nets" 2 (H.num_nets h);
  check Alcotest.(array int) "net 0 pins" [| 0; 1; 3 |] (H.pins_of h 0);
  check Alcotest.(array int) "net 1 pins" [| 0; 1; 2; 3 |] (H.pins_of h 1)

let test_netd_areas () =
  let are = "a0 5\np1 7\n" in
  let h = Netd.read_net_string ~are sample_net in
  check Alcotest.int "cell area" 5 (H.area h 0);
  check Alcotest.int "pad area" 7 (H.area h 3);
  check Alcotest.int "default area" 1 (H.area h 1)

let test_netd_pads () =
  let h = Netd.read_net_string sample_net in
  check Alcotest.(list int) "pad ids" [ 3 ] (Netd.pads h sample_net)

let test_netd_rejects_bad () =
  expect_diag Diag.Bad_header (fun () ->
      Netd.read_net_string "1\n1\n1\n1\n1\na0 s\n" (* leading 0 missing *));
  expect_diag Diag.Bad_token (fun () ->
      Netd.read_net_string "0\n1\n1\n2\n1\na0 l\n" (* continuation first *));
  expect_diag Diag.Bad_module_name (fun () ->
      Netd.read_net_string "0\n1\n1\n2\n1\nq0 s\n" (* bad name *));
  expect_diag Diag.Pin_out_of_range (fun () ->
      Netd.read_net_string "0\n2\n1\n2\n1\na0 s\na9 l\n" (* beyond count *))

let test_netd_count_check () =
  expect_diag Diag.Count_mismatch (fun () ->
      Netd.read_net_string "0\n5\n2\n4\n2\na0 s\na1 l\n")

(* Golden diagnostics: exact rendered lines, strict mode.  These pin the
   structured-output contract the CLI prints and scripts can grep. *)
let strict_diag_lines s =
  match Netd.parse_net_string ~name:"bad" ~mode:Netd.Strict s with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error diags -> List.map Diag.to_string diags

let test_netd_golden_bad_name () =
  check
    Alcotest.(list string)
    "golden"
    [ "error[bad-module-name] bad:6: module name \"q0\" must start with 'a' or 'p'" ]
    (strict_diag_lines "0\n3\n1\n3\n2\nq0 s\na1 l\na2 l\n")

let test_netd_golden_pad_offset () =
  (* a9 with pad offset 2: outside the cell namespace, and its id also
     exceeds the declared module count *)
  check
    Alcotest.(list string)
    "golden"
    [ "error[pad-offset] bad:7: cell \"a9\" outside pad offset 2";
      "error[pin-out-of-range] bad:7: module \"a9\" maps to id 9 outside \
       declared count 3" ]
    (strict_diag_lines "0\n3\n1\n3\n2\na0 s\na9 l\na1 l\n");
  check
    Alcotest.(list string)
    "golden pad index"
    [ "error[pad-offset] bad:6: bad pad index in \"p0\"" ]
    (strict_diag_lines "0\n3\n1\n3\n2\np0 s\na1 l\na2 l\n")

let test_netd_golden_truncated () =
  check
    Alcotest.(list string)
    "golden"
    [ "error[truncated] bad:3: missing or malformed header (need 5 \
       single-token header lines)" ]
    (strict_diag_lines "0\n4\n2\n")

(* The same inputs in lenient mode: parse succeeds, each problem becomes a
   warning with the same code, and the offending pin is dropped. *)
let test_netd_lenient_recovers () =
  let parse s =
    match Netd.parse_net_string ~name:"bad" ~mode:Netd.Lenient s with
    | Ok p -> p
    | Error ds ->
        Alcotest.failf "lenient parse failed: %s"
          (String.concat "; " (List.map Diag.to_string ds))
  in
  let has code p = List.exists (fun d -> d.Diag.code = code) p.Netd.warnings in
  let all_warnings p =
    List.for_all (fun d -> d.Diag.severity = Diag.Warning) p.Netd.warnings
  in
  let p = parse "0\n3\n1\n3\n2\nq0 s\na1 l\na2 l\n" in
  check Alcotest.bool "bad name warned" true (has Diag.Bad_module_name p);
  check Alcotest.bool "only warnings" true (all_warnings p);
  check Alcotest.int "net survives without the bad pin" 1
    (H.num_nets p.Netd.hypergraph);
  check Alcotest.(array int) "remaining pins" [| 1; 2 |]
    (H.pins_of p.Netd.hypergraph 0);
  let p = parse "0\n2\n1\n3\n2\na0 s\na9 l\n" in
  check Alcotest.bool "pad-offset warned" true (has Diag.Pad_offset p);
  check Alcotest.bool "range warned" true (has Diag.Pin_out_of_range p);
  (* a0 alone is a singleton -> dropped with a warning *)
  check Alcotest.bool "singleton warned" true (has Diag.Singleton_net p);
  check Alcotest.int "degenerate net dropped" 0 (H.num_nets p.Netd.hypergraph);
  (* truncated header stays fatal even in lenient mode *)
  match Netd.parse_net_string ~name:"bad" ~mode:Netd.Lenient "0\n4\n2\n" with
  | Ok _ -> Alcotest.fail "truncated header must stay fatal"
  | Error diags ->
      check Alcotest.bool "truncated" true
        (List.exists (fun d -> d.Diag.code = Diag.Truncated) diags)

let test_netd_roundtrip () =
  let rng = Rng.create 9 in
  let h = Mlpart_gen.Generate.rent ~rng ~modules:40 ~nets:50 ~pins:150 () in
  let h' = Netd.read_net_string (Netd.write_net_string h) in
  check Alcotest.int "modules" (H.num_modules h) (H.num_modules h');
  check Alcotest.int "nets" (H.num_nets h) (H.num_nets h');
  check Alcotest.int "pins" (H.num_pins h) (H.num_pins h')

let test_netd_file_read () =
  let path = Filename.temp_file "mlpart_test" ".net" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> output_string oc sample_net);
      let h = Netd.read_files path in
      check Alcotest.int "modules" 4 (H.num_modules h);
      check Alcotest.bool "named" true (String.length (H.name h) > 0))

(* ---- analysis ---- *)

module An = Mlpart_hypergraph.Analysis

let test_analysis_components () =
  (* two disjoint rings plus one isolated module *)
  let b = Builder.create () in
  Builder.add_modules b 9;
  for v = 0 to 3 do
    Builder.add_net b [ v; (v + 1) mod 4 ]
  done;
  for v = 4 to 7 do
    Builder.add_net b [ v; 4 + ((v - 3) mod 4) ]
  done;
  let h = Builder.build b in
  let component_of, count = An.connected_components h in
  check Alcotest.int "three components" 3 count;
  check Alcotest.int "ring 1 together" component_of.(0) component_of.(3);
  check Alcotest.int "ring 2 together" component_of.(4) component_of.(7);
  check Alcotest.bool "rings apart" true (component_of.(0) <> component_of.(4));
  check Alcotest.bool "not connected" false (An.is_connected h)

let test_analysis_connected () =
  let h = Mlpart_gen.Generate.ring 12 in
  check Alcotest.bool "ring connected" true (An.is_connected h)

let test_analysis_histograms () =
  let h = Mlpart_gen.Generate.ring 5 in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "degree histogram" [ (2, 5) ] (An.degree_histogram h);
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "net size histogram" [ (2, 5) ] (An.net_size_histogram h);
  check (Alcotest.float 1e-9) "average net size" 2.0 (An.average_net_size h)

let test_analysis_empty_nets () =
  let h = H.make ~areas:[| 1; 1 |] ~nets:[||] () in
  check (Alcotest.float 1e-9) "avg net size of none" 0.0 (An.average_net_size h);
  let _, count = An.connected_components h in
  check Alcotest.int "isolated modules are components" 2 count

let test_analysis_pin_check () =
  let h = sample () in
  check Alcotest.bool "CSR directions agree" true (An.pin_count_check h)

let test_analysis_report_renders () =
  let buf = Buffer.create 128 in
  let ppf = Format.formatter_of_buffer buf in
  An.pp_report ppf (sample ());
  Format.pp_print_flush ppf ();
  check Alcotest.bool "non-empty report" true (Buffer.length buf > 50)

let prop_components_cover =
  QCheck.Test.make ~name:"component ids are contiguous and cover all modules"
    ~count:40 arbitrary_hypergraph (fun h ->
      let component_of, count = An.connected_components h in
      let seen = Array.make count false in
      Array.iter (fun c -> seen.(c) <- true) component_of;
      Array.for_all Fun.id seen
      && Array.for_all (fun c -> c >= 0 && c < count) component_of)

let prop_nets_within_component =
  QCheck.Test.make ~name:"no net spans two components" ~count:40
    arbitrary_hypergraph (fun h ->
      let component_of, _ = An.connected_components h in
      let ok = ref true in
      for e = 0 to H.num_nets h - 1 do
        let c = ref (-1) in
        H.iter_pins_of h e (fun v ->
            if !c < 0 then c := component_of.(v)
            else if component_of.(v) <> !c then ok := false)
      done;
      !ok)

let () =
  Alcotest.run "hypergraph"
    [
      ( "construction",
        [
          Alcotest.test_case "sizes" `Quick test_sizes;
          Alcotest.test_case "reject small net" `Quick test_reject_small_net;
          Alcotest.test_case "reject duplicate pin" `Quick test_reject_duplicate_pin;
          Alcotest.test_case "reject out-of-range pin" `Quick
            test_reject_out_of_range_pin;
          Alcotest.test_case "reject bad area" `Quick test_reject_bad_area;
          Alcotest.test_case "reject bad weight" `Quick test_reject_bad_weight;
          Alcotest.test_case "empty net set" `Quick test_empty_nets_ok;
        ] );
      ( "csr",
        [
          Alcotest.test_case "incidence inverse" `Quick test_incidence_inverse;
          Alcotest.test_case "degrees" `Quick test_degrees;
          Alcotest.test_case "net accessors" `Quick test_net_accessors;
          Alcotest.test_case "pin slots" `Quick test_pin_slots;
          Alcotest.test_case "folds" `Quick test_folds;
        ] );
      ( "induce",
        [
          Alcotest.test_case "basic" `Quick test_induce_basic;
          Alcotest.test_case "merge duplicates" `Quick test_induce_merge_duplicates;
          Alcotest.test_case "reject empty cluster" `Quick
            test_induce_rejects_empty_cluster;
          Alcotest.test_case "reject length mismatch" `Quick
            test_induce_rejects_length_mismatch;
          qtest prop_induce_preserves_area;
          qtest prop_induce_net_sizes;
          qtest prop_induce_matches_reference;
        ] );
      ( "netd_io",
        [
          Alcotest.test_case "parse" `Quick test_netd_parse;
          Alcotest.test_case "areas" `Quick test_netd_areas;
          Alcotest.test_case "pads" `Quick test_netd_pads;
          Alcotest.test_case "rejects bad" `Quick test_netd_rejects_bad;
          Alcotest.test_case "count check" `Quick test_netd_count_check;
          Alcotest.test_case "roundtrip" `Quick test_netd_roundtrip;
          Alcotest.test_case "file read" `Quick test_netd_file_read;
          Alcotest.test_case "golden bad name" `Quick test_netd_golden_bad_name;
          Alcotest.test_case "golden pad offset" `Quick
            test_netd_golden_pad_offset;
          Alcotest.test_case "golden truncated" `Quick
            test_netd_golden_truncated;
          Alcotest.test_case "lenient recovers" `Quick test_netd_lenient_recovers;
        ] );
      ( "validate_repair",
        [
          Alcotest.test_case "clean validates" `Quick test_validate_clean;
          Alcotest.test_case "degenerate violations" `Quick
            test_validate_degenerate;
          Alcotest.test_case "repair degenerate" `Quick test_repair_degenerate;
          Alcotest.test_case "repair identity" `Quick
            test_repair_identity_on_valid;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "components" `Quick test_analysis_components;
          Alcotest.test_case "connected" `Quick test_analysis_connected;
          Alcotest.test_case "histograms" `Quick test_analysis_histograms;
          Alcotest.test_case "pin check" `Quick test_analysis_pin_check;
          Alcotest.test_case "empty nets" `Quick test_analysis_empty_nets;
          Alcotest.test_case "report renders" `Quick test_analysis_report_renders;
          qtest prop_components_cover;
          qtest prop_nets_within_component;
        ] );
      ( "builder",
        [
          Alcotest.test_case "basics" `Quick test_builder_basics;
          Alcotest.test_case "reusable" `Quick test_builder_reusable;
        ] );
      ( "hgr_io",
        [
          Alcotest.test_case "roundtrip weighted" `Quick test_io_roundtrip_plain;
          Alcotest.test_case "unit-weight header" `Quick test_io_unit_weights_header;
          Alcotest.test_case "comments and blanks" `Quick test_io_comments_and_blanks;
          Alcotest.test_case "reject bad header" `Quick test_io_rejects_bad_header;
          Alcotest.test_case "reject bad pin" `Quick test_io_rejects_out_of_range_pin;
          Alcotest.test_case "reject truncated" `Quick test_io_rejects_truncated;
          Alcotest.test_case "single-pin net strict vs lenient" `Quick
            test_io_single_pin_net_strict_vs_lenient;
          Alcotest.test_case "lenient recovers degenerate" `Quick
            test_io_lenient_recovers_degenerate;
          Alcotest.test_case "strict reports all issues" `Quick
            test_io_strict_reports_all_issues;
          Alcotest.test_case "net weights only" `Quick test_io_net_weights_only;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          qtest prop_io_roundtrip;
        ] );
    ]
