(* Tests for the FM engine family: plain FM, bucket policies, CLIP,
   lookahead, CDIP backtracking, early exit, PROP and LSMC. *)

module H = Mlpart_hypergraph.Hypergraph
module Bp = Mlpart_partition.Bipartition
module Fm = Mlpart_partition.Fm
module Prop = Mlpart_partition.Prop
module Lsmc = Mlpart_partition.Lsmc
module Gb = Mlpart_partition.Gain_bucket
module Rng = Mlpart_util.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let random_instance ?(modules = 120) seed =
  let rng = Rng.create seed in
  Mlpart_gen.Generate.rent ~rng ~modules ~nets:(modules * 5 / 4)
    ~pins:(4 * modules) ()

(* Two 8-module cliques with one bridge net: optimal cut is 1. *)
let two_cliques () =
  let b = Mlpart_hypergraph.Builder.create ~name:"two-cliques" () in
  Mlpart_hypergraph.Builder.add_modules b 16;
  for v = 0 to 7 do
    for w = v + 1 to 7 do
      Mlpart_hypergraph.Builder.add_net b [ v; w ];
      Mlpart_hypergraph.Builder.add_net b [ v + 8; w + 8 ]
    done
  done;
  Mlpart_hypergraph.Builder.add_net b [ 0; 8 ];
  Mlpart_hypergraph.Builder.build b

let balanced h side =
  let bp = Bp.create h side in
  Bp.is_balanced bp (Bp.bounds h)

let run ?config ?init seed h = Fm.run ?config ?init (Rng.create seed) h

let test_fm_finds_clique_split () =
  let h = two_cliques () in
  let best = ref max_int in
  for seed = 1 to 5 do
    let r = run seed h in
    best := Stdlib.min !best r.Fm.cut
  done;
  check Alcotest.int "optimal cut found" 1 !best

let test_fm_result_consistent () =
  let h = random_instance 1 in
  let r = run 2 h in
  check Alcotest.int "reported cut matches recount" (Fm.cut_of h r.Fm.side)
    r.Fm.cut;
  check Alcotest.bool "balanced" true (balanced h r.Fm.side);
  check Alcotest.bool "at least one pass" true (r.Fm.passes >= 1)

let test_fm_improves_on_refinement () =
  let h = random_instance 3 in
  (* refining any starting solution never worsens it *)
  let rng = Rng.create 4 in
  let start = Bp.random rng h in
  let init = Bp.side_array start in
  let r = run ~init 5 h in
  check Alcotest.bool "no worse than start" true (r.Fm.cut <= Bp.cut start)

let test_fm_refines_good_init () =
  let h = two_cliques () in
  let init = Array.init 16 (fun v -> if v < 8 then 0 else 1) in
  let r = run ~init 6 h in
  check Alcotest.int "optimal preserved" 1 r.Fm.cut

let test_fm_max_passes () =
  let h = random_instance 7 in
  let r = run ~config:{ Fm.default with max_passes = 1 } 8 h in
  check Alcotest.int "single pass honoured" 1 r.Fm.passes

let test_fm_policies_all_valid () =
  let h = random_instance 9 in
  List.iter
    (fun policy ->
      let r = run ~config:{ Fm.default with policy } 10 h in
      check Alcotest.int
        (Printf.sprintf "cut consistent (%s)" (Gb.policy_to_string policy))
        (Fm.cut_of h r.Fm.side) r.Fm.cut;
      check Alcotest.bool "balanced" true (balanced h r.Fm.side))
    [ Gb.Lifo; Gb.Fifo; Gb.Random ]

let test_clip_valid () =
  let h = random_instance 11 in
  let r = run ~config:Fm.clip 12 h in
  check Alcotest.int "clip cut consistent" (Fm.cut_of h r.Fm.side) r.Fm.cut;
  check Alcotest.bool "balanced" true (balanced h r.Fm.side)

let test_lookahead_valid () =
  let h = random_instance 13 in
  List.iter
    (fun levels ->
      let config = { Fm.clip with tie_break = Fm.Lookahead levels } in
      let r = run ~config 14 h in
      check Alcotest.int
        (Printf.sprintf "lookahead-%d cut consistent" levels)
        (Fm.cut_of h r.Fm.side) r.Fm.cut)
    [ 1; 2; 3 ]

let test_cdip_valid () =
  let h = random_instance 15 in
  let r = run ~config:{ Fm.clip with backtrack = Some (10, 4) } 16 h in
  check Alcotest.int "cdip cut consistent" (Fm.cut_of h r.Fm.side) r.Fm.cut;
  check Alcotest.bool "balanced" true (balanced h r.Fm.side)

let test_early_exit_valid () =
  let h = random_instance 17 in
  let r = run ~config:{ Fm.default with early_exit = Some 5 } 18 h in
  check Alcotest.int "early-exit cut consistent" (Fm.cut_of h r.Fm.side) r.Fm.cut

let test_boundary_valid () =
  let h = random_instance 27 in
  let r = run ~config:{ Fm.default with boundary = true } 28 h in
  check Alcotest.int "boundary cut consistent" (Fm.cut_of h r.Fm.side) r.Fm.cut;
  check Alcotest.bool "balanced" true (balanced h r.Fm.side)

let test_boundary_refines_good_init () =
  let h = two_cliques () in
  let init = Array.init 16 (fun v -> if v < 8 then 0 else 1) in
  let r = run ~config:{ Fm.default with boundary = true } ~init 29 h in
  check Alcotest.int "optimal preserved under boundary FM" 1 r.Fm.cut

let test_wide_balance_valid () =
  let h = random_instance 19 in
  let r = run ~config:{ Fm.default with wide_balance = true } 20 h in
  let bp = Bp.create h r.Fm.side in
  check Alcotest.bool "within wide bounds" true
    (Bp.is_balanced bp (Bp.wide_bounds h))

let test_fm_deterministic () =
  let h = random_instance 21 in
  let a = run 22 h and b = run 22 h in
  check Alcotest.int "same seed, same cut" a.Fm.cut b.Fm.cut;
  check Alcotest.(array int) "same sides" a.Fm.side b.Fm.side

let test_fm_net_threshold_cut_counted () =
  (* A big net above the threshold must still show up in the cut. *)
  let b = Mlpart_hypergraph.Builder.create () in
  Mlpart_hypergraph.Builder.add_modules b 12;
  Mlpart_hypergraph.Builder.add_net b (List.init 12 Fun.id);
  for v = 0 to 4 do
    Mlpart_hypergraph.Builder.add_net b [ v; v + 1 ]
  done;
  for v = 6 to 10 do
    Mlpart_hypergraph.Builder.add_net b [ v; v + 1 ]
  done;
  let h = Mlpart_hypergraph.Builder.build b in
  let r = run ~config:{ Fm.default with net_threshold = 4 } 23 h in
  (* the 12-pin net spans any balanced split *)
  check Alcotest.bool "large net counted in cut" true (r.Fm.cut >= 1);
  check Alcotest.int "consistent" (Fm.cut_of h r.Fm.side) r.Fm.cut

let test_fm_unbalanced_init_repaired () =
  let h = random_instance 24 in
  let init = Array.make (H.num_modules h) 0 in
  let r = run ~init 25 h in
  check Alcotest.bool "balanced result from degenerate init" true
    (balanced h r.Fm.side)

let test_fm_tiny_instance () =
  (* The paper's balance slack includes max(A(v_max), ...), so a 2-module
     instance may legally collapse to one side with cut 0. *)
  let h = H.make ~areas:[| 1; 1 |] ~nets:[| ([| 0; 1 |], 1) |] () in
  let r = run 26 h in
  check Alcotest.int "consistent" (Fm.cut_of h r.Fm.side) r.Fm.cut;
  check Alcotest.bool "cut 0 or 1" true (r.Fm.cut = 0 || r.Fm.cut = 1)

let prop_fm_all_configs_consistent =
  let configs =
    [
      ("fm", Fm.default);
      ("clip", Fm.clip);
      ("fifo", { Fm.default with policy = Gb.Fifo });
      ("rnd", { Fm.default with policy = Gb.Random });
      ("la2", { Fm.clip with tie_break = Fm.Lookahead 2 });
      ("cdip", { Fm.clip with backtrack = Some (8, 3) });
      ("early", { Fm.default with early_exit = Some 10 });
      ("boundary", { Fm.default with boundary = true });
      ("boundary-clip", { Fm.clip with boundary = true });
    ]
  in
  QCheck.Test.make ~name:"every engine config: cut consistent and balanced"
    ~count:30
    QCheck.(pair small_int (int_range 0 8))
    (fun (seed, which) ->
      let _, config = List.nth configs which in
      let h = random_instance ~modules:60 seed in
      let r = Fm.run ~config (Rng.create (seed + 100)) h in
      r.Fm.cut = Fm.cut_of h r.Fm.side && balanced h r.Fm.side)

let prop_fm_weighted_nets =
  QCheck.Test.make ~name:"weighted coarse netlists partition consistently"
    ~count:20 QCheck.small_int (fun seed ->
      let h = random_instance ~modules:80 seed in
      (* coarsen with duplicate merging to create weighted nets *)
      let rng = Rng.create (seed + 7) in
      let cluster_of, _ = Mlpart_multilevel.Match.run rng h ~ratio:1.0 in
      let coarse, _ = H.induce ~merge_duplicates:true h cluster_of in
      let r = Fm.run (Rng.create (seed + 8)) coarse in
      r.Fm.cut = Fm.cut_of coarse r.Fm.side)

let test_fm_fixed_modules_pinned () =
  let h = random_instance 50 in
  let fixed = Array.make (H.num_modules h) (-1) in
  fixed.(0) <- 0;
  fixed.(1) <- 1;
  fixed.(2) <- 0;
  let r = Fm.run ~fixed (Rng.create 51) h in
  check Alcotest.int "module 0 pinned left" 0 r.Fm.side.(0);
  check Alcotest.int "module 1 pinned right" 1 r.Fm.side.(1);
  check Alcotest.int "module 2 pinned left" 0 r.Fm.side.(2);
  check Alcotest.int "consistent" (Fm.cut_of h r.Fm.side) r.Fm.cut

let test_fm_fixed_overrides_init () =
  let h = random_instance 52 in
  let n = H.num_modules h in
  let init = Array.make n 0 in
  let fixed = Array.make n (-1) in
  fixed.(3) <- 1;
  let r = Fm.run ~init ~fixed (Rng.create 53) h in
  check Alcotest.int "fixed wins over init" 1 r.Fm.side.(3)

let test_fm_fixed_with_clip_and_backtrack () =
  let h = random_instance 54 in
  let fixed = Array.make (H.num_modules h) (-1) in
  for v = 0 to 5 do
    fixed.(v) <- v land 1
  done;
  let config = { Fm.clip with backtrack = Some (12, 4) } in
  let r = Fm.run ~config ~fixed (Rng.create 55) h in
  for v = 0 to 5 do
    check Alcotest.int "pinned through CDIP rebuilds" (v land 1) r.Fm.side.(v)
  done

(* ---- Engine-overhaul regression: CDIP + boundary behaviour ---- *)

let hash_side side =
  Array.fold_left (fun acc s -> (acc * 1000003) + s) 5381 side land 0x3FFFFFFF

(* Exact (cut, passes, moves, side-hash) recorded from the engine BEFORE the
   epoch-bucket/arena/fused-move overhaul, on the same generated instances;
   the overhaul is required to be bit-identical, so these must never drift. *)
let test_engine_golden () =
  let cases =
    [
      ("cdip", { Fm.clip with backtrack = Some (8, 3) }, 60, 1, (9, 4, 227, 46779324));
      ("cdip", { Fm.clip with backtrack = Some (8, 3) }, 120, 1, (16, 4, 468, 99476278));
      ("boundary", { Fm.default with boundary = true }, 60, 1, (9, 2, 115, 166745785));
      ("boundary", { Fm.default with boundary = true }, 120, 2, (20, 4, 472, 789123538));
      ("boundary-clip", { Fm.clip with boundary = true }, 60, 1, (3, 3, 168, 289235633));
      ( "boundary-cdip",
        { Fm.clip with boundary = true; backtrack = Some (6, 2) },
        120, 2, (20, 5, 577, 885012033) );
    ]
  in
  List.iter
    (fun (name, config, modules, seed, (cut, passes, moves, h_side)) ->
      let h = random_instance ~modules seed in
      let r = Fm.run ~config (Rng.create (seed + 100)) h in
      let label = Printf.sprintf "%s n%d s%d" name modules seed in
      check Alcotest.int (label ^ " cut") cut r.Fm.cut;
      check Alcotest.int (label ^ " passes") passes r.Fm.passes;
      check Alcotest.int (label ^ " moves") moves r.Fm.moves;
      check Alcotest.int (label ^ " side hash") h_side (hash_side r.Fm.side))
    cases

(* ---- Refine_core: the shared move loop, driven by scripted ops ----

   The FM engines all run through [Refine_core.run_pass] now; these tests
   pin its best-prefix, early-exit and backtrack semantics on a scripted
   gain sequence, independently of any hypergraph. *)

module Rc = Mlpart_partition.Refine_core

let scripted gains =
  let i = ref 0 in
  let log = ref [] in
  let ops =
    {
      Rc.select = (fun () -> if !i >= Array.length gains then -1 else !i);
      commit =
        (fun v ->
          log := `Commit v :: !log;
          incr i;
          gains.(v));
      undo = (fun v -> log := `Undo v :: !log);
      rebuild =
        (fun ~first_bad ~kept -> log := `Rebuild (first_bad, kept) :: !log);
    }
  in
  (ops, fun () -> List.rev !log)

let run_scripted ?early_exit ?backtrack gains =
  let ops, log = scripted gains in
  let order = Array.make (Stdlib.max 1 (Array.length gains)) (-1) in
  let p = Rc.run_pass ~order ?early_exit ?backtrack ops in
  (p, log ())

let test_refine_core_best_prefix () =
  (* cumulative gains 3,2,4,-1: the best prefix is the first three moves,
     so exactly the fourth is undone *)
  let p, log = run_scripted [| 3; -1; 2; -5 |] in
  check Alcotest.int "gain" 4 p.Rc.gain;
  check Alcotest.int "moves" 4 p.Rc.moves;
  check Alcotest.int "rolled back" 1 p.Rc.rolled_back;
  check Alcotest.bool "only move 3 undone" true
    (log = [ `Commit 0; `Commit 1; `Commit 2; `Commit 3; `Undo 3 ])

let test_refine_core_all_negative () =
  (* never above zero: the empty prefix wins and everything is undone, in
     reverse commit order *)
  let p, log = run_scripted [| -2; -1 |] in
  check Alcotest.int "gain" 0 p.Rc.gain;
  check Alcotest.int "rolled back" 2 p.Rc.rolled_back;
  check Alcotest.bool "all undone in reverse" true
    (log = [ `Commit 0; `Commit 1; `Undo 1; `Undo 0 ])

let test_refine_core_early_exit () =
  (* the losing streak hits the early-exit budget after two non-improving
     moves; the remaining script is never selected *)
  let p, log = run_scripted ~early_exit:2 [| 2; -1; -1; -1; -1 |] in
  check Alcotest.int "gain" 2 p.Rc.gain;
  check Alcotest.int "moves" 3 p.Rc.moves;
  check Alcotest.int "rolled back" 2 p.Rc.rolled_back;
  check Alcotest.bool "stopped after the streak" true
    (log = [ `Commit 0; `Commit 1; `Commit 2; `Undo 2; `Undo 1 ])

let test_refine_core_backtrack () =
  (* window 2, limit 1: the two losing moves are undone mid-pass, the host
     is asked to rebuild with the streak's first module flagged, and the
     pass then ends at the restored best prefix with nothing left to
     roll back *)
  let p, log = run_scripted ~backtrack:(2, 1) [| 3; -1; -1 |] in
  check Alcotest.int "gain" 3 p.Rc.gain;
  check Alcotest.int "moves" 1 p.Rc.moves;
  check Alcotest.int "rolled back" 0 p.Rc.rolled_back;
  check Alcotest.bool "streak undone then rebuild" true
    (log
    = [
        `Commit 0; `Commit 1; `Commit 2; `Undo 2; `Undo 1; `Rebuild (1, 1);
      ])

let test_refine_core_backtrack_limit () =
  (* limit 0 must behave exactly like no backtracking *)
  let a, _ = run_scripted ~backtrack:(2, 0) [| 3; -1; -1 |] in
  let b, _ = run_scripted [| 3; -1; -1 |] in
  check Alcotest.int "same gain" b.Rc.gain a.Rc.gain;
  check Alcotest.int "same moves" b.Rc.moves a.Rc.moves;
  check Alcotest.int "same rollback" b.Rc.rolled_back a.Rc.rolled_back

let test_refine_core_drive () =
  (* drive stops after the first non-positive pass and sums moves *)
  let script = [| (5, 10); (2, 20); (0, 30); (9, 40) |] in
  let calls = ref [] in
  let passes, moves =
    Rc.drive ~max_passes:10 (fun ~pass ->
        calls := pass :: !calls;
        let gain, moves = script.(pass - 1) in
        { Rc.gain; moves; rolled_back = 0 })
  in
  check Alcotest.int "passes" 3 passes;
  check Alcotest.int "moves summed" 60 moves;
  check Alcotest.bool "pass numbers 1..3" true (List.rev !calls = [ 1; 2; 3 ]);
  (* and respects max_passes even while improving *)
  let passes, moves =
    Rc.drive ~max_passes:2 (fun ~pass ->
        { Rc.gain = 1; moves = pass; rolled_back = 0 })
  in
  check Alcotest.int "capped passes" 2 passes;
  check Alcotest.int "capped moves" 3 moves

(* Each pass keeps only its best prefix, so with a fixed seed the cut after
   [p] passes is non-increasing in [p] — for CDIP and boundary mode too,
   whose backtracks and partial frontiers must not break the invariant. *)
let test_pass_cut_monotone () =
  List.iter
    (fun (name, config) ->
      let h = random_instance ~modules:100 31 in
      let prev = ref max_int in
      for p = 1 to 5 do
        let r = run ~config:{ config with Fm.max_passes = p } 32 h in
        check Alcotest.bool
          (Printf.sprintf "%s: cut non-increasing at pass %d" name p)
          true (r.Fm.cut <= !prev);
        prev := r.Fm.cut
      done)
    [
      ("cdip", { Fm.clip with backtrack = Some (8, 3) });
      ("boundary", { Fm.default with boundary = true });
      ("boundary-cdip", { Fm.clip with boundary = true; backtrack = Some (6, 2) });
    ]

(* A backtrack budget of zero must behave exactly like no backtracking: the
   limit check gates every rollback. *)
let test_cdip_zero_limit_is_plain () =
  let h = random_instance ~modules:90 33 in
  let a = run ~config:{ Fm.clip with backtrack = Some (8, 0) } 34 h in
  let b = run ~config:Fm.clip 34 h in
  check Alcotest.int "same cut" b.Fm.cut a.Fm.cut;
  check Alcotest.(array int) "same sides" b.Fm.side a.Fm.side;
  check Alcotest.int "same moves" b.Fm.moves a.Fm.moves

(* Permanently-frozen (fixed) modules must stay out of the move sequence
   through boundary frontiers and CDIP backtrack rebuilds alike. *)
let test_boundary_fixed_stay_out () =
  let h = random_instance ~modules:80 35 in
  let n = H.num_modules h in
  let fixed = Array.make n (-1) in
  for v = 0 to 7 do
    fixed.(v) <- v land 1
  done;
  List.iter
    (fun (name, config) ->
      let r = Fm.run ~config ~fixed (Rng.create 36) h in
      for v = 0 to 7 do
        check Alcotest.int
          (Printf.sprintf "%s: module %d stays pinned" name v)
          (v land 1) r.Fm.side.(v)
      done;
      check Alcotest.int (name ^ ": consistent") (Fm.cut_of h r.Fm.side) r.Fm.cut)
    [
      ("boundary", { Fm.default with boundary = true });
      ("boundary-cdip", { Fm.clip with boundary = true; backtrack = Some (6, 2) });
    ]

(* ---- Arena reuse ---- *)

(* Reusing one arena across runs — including across netlists of different
   sizes, forcing [ensure_arena] growth and shrink of [ids] — must be
   bit-identical to fresh engine state, for every engine feature that
   touches the arena (buckets, gain0, frontier marks, move stack). *)
let prop_arena_reuse_bit_identical =
  let configs =
    [
      Fm.default;
      Fm.clip;
      { Fm.default with policy = Gb.Fifo };
      { Fm.default with policy = Gb.Random };
      { Fm.clip with policy = Gb.Fifo };
      { Fm.clip with policy = Gb.Random };
      { Fm.clip with tie_break = Fm.Lookahead 3 };
      { Fm.clip with backtrack = Some (8, 3) };
      { Fm.default with boundary = true };
      { Fm.clip with boundary = true; backtrack = Some (6, 2) };
    ]
  in
  QCheck.Test.make ~name:"arena reuse is bit-identical to fresh state"
    ~count:25
    QCheck.(pair small_int (int_range 0 9))
    (fun (seed, which) ->
      let config = List.nth configs which in
      let h_small = random_instance ~modules:50 seed in
      let h_large = random_instance ~modules:110 (seed + 1) in
      let arena = Fm.create_arena () in
      (* grow, shrink, regrow across three runs on two netlists *)
      let a1 = Fm.run ~config ~arena (Rng.create (seed + 10)) h_large in
      let a2 = Fm.run ~config ~arena (Rng.create (seed + 11)) h_small in
      let a3 = Fm.run ~config ~arena (Rng.create (seed + 10)) h_large in
      let f1 = Fm.run ~config (Rng.create (seed + 10)) h_large in
      let f2 = Fm.run ~config (Rng.create (seed + 11)) h_small in
      let same a f =
        a.Fm.cut = f.Fm.cut && a.Fm.passes = f.Fm.passes
        && a.Fm.moves = f.Fm.moves && a.Fm.side = f.Fm.side
      in
      same a1 f1 && same a2 f2 && same a3 f1)

(* The multilevel multi-start driver gives each pool domain its own arena;
   results must not depend on the worker count. *)
let test_arena_pool_jobs_identical () =
  let module Ml = Mlpart_multilevel.Ml in
  let module Pool = Mlpart_util.Pool in
  let h = random_instance ~modules:200 37 in
  let config = { Ml.mlc with Ml.coarsest_starts = 2 } in
  let seq = Ml.run_starts ~config ~starts:4 (Rng.create 38) h in
  Pool.with_pool ~jobs:1 (fun pool ->
      let r = Ml.run_starts ~config ~pool ~starts:4 (Rng.create 38) h in
      check Alcotest.int "jobs 1: same cut" seq.Ml.cut r.Ml.cut;
      check Alcotest.(array int) "jobs 1: same sides" seq.Ml.side r.Ml.side);
  Pool.with_pool ~jobs:4 (fun pool ->
      let r = Ml.run_starts ~config ~pool ~starts:4 (Rng.create 38) h in
      check Alcotest.int "jobs 4: same cut" seq.Ml.cut r.Ml.cut;
      check Alcotest.(array int) "jobs 4: same sides" seq.Ml.side r.Ml.side)

(* ---- Objective ---- *)

module Obj = Mlpart_partition.Objective

let test_objective_report () =
  let h =
    H.make ~areas:[| 1; 2; 3; 4; 5 |]
      ~nets:[| ([| 0; 1 |], 1); ([| 1; 2; 3 |], 2); ([| 0; 3; 4 |], 1) |]
      ()
  in
  let r = Obj.evaluate h [| 0; 0; 1; 1; 2 |] in
  check Alcotest.int "parts" 3 r.Obj.parts;
  check Alcotest.int "cut" 3 r.Obj.net_cut;
  (* net1 spans 2 (w2 -> 2), net2 spans 3 (w1 -> 2), net0 internal *)
  check Alcotest.int "soed" 4 r.Obj.sum_degrees;
  check Alcotest.int "absorbed" 1 r.Obj.absorbed;
  check Alcotest.(array int) "areas" [| 3; 7; 5 |] r.Obj.part_areas;
  check Alcotest.int "largest" 7 r.Obj.largest_part;
  check Alcotest.int "smallest" 3 r.Obj.smallest_part

let test_objective_rejects_bad () =
  let h = H.make ~areas:[| 1; 1 |] ~nets:[| ([| 0; 1 |], 1) |] () in
  (match Obj.evaluate h [| 0 |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

let test_objective_assignment_roundtrip () =
  let side = [| 0; 3; 1; 2; 0 |] in
  let path = Filename.temp_file "mlpart_parts" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obj.write_assignment path side;
      check Alcotest.(array int) "roundtrip" side (Obj.read_assignment path))

let test_objective_read_rejects_garbage () =
  let path = Filename.temp_file "mlpart_parts" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> output_string oc "0\nxyz\n");
      match Obj.read_assignment path with
      | _ -> Alcotest.fail "expected Mlpart_error"
      | exception Mlpart_util.Diag.Mlpart_error (d :: _) ->
          Alcotest.(check bool)
            "bad-part code" true
            (d.Mlpart_util.Diag.code = Mlpart_util.Diag.Bad_part);
          Alcotest.(check int) "line number" 2 d.Mlpart_util.Diag.line)

(* ---- PROP ---- *)

let test_prop_valid () =
  let h = random_instance 30 in
  let r = Prop.run (Rng.create 31) h in
  check Alcotest.int "prop cut consistent" (Fm.cut_of h r.Prop.side) r.Prop.cut;
  check Alcotest.bool "balanced" true (balanced h r.Prop.side)

let test_prop_clip_valid () =
  let h = random_instance 32 in
  let r = Prop.run ~config:{ Prop.default with clip = true } (Rng.create 33) h in
  check Alcotest.int "cl-pr cut consistent" (Fm.cut_of h r.Prop.side) r.Prop.cut

let test_prop_finds_clique_split () =
  let h = two_cliques () in
  let best = ref max_int in
  for seed = 1 to 5 do
    let r = Prop.run (Rng.create seed) h in
    best := Stdlib.min !best r.Prop.cut
  done;
  check Alcotest.int "optimal found" 1 !best

let test_prop_limit_is_fm_like () =
  (* With p -> 0 PROP's ordering degenerates to FM's; it should still
     produce a valid, decent solution. *)
  let h = random_instance 34 in
  let r = Prop.run ~config:{ Prop.default with p = 1e-9 } (Rng.create 35) h in
  check Alcotest.int "valid at p=0 limit" (Fm.cut_of h r.Prop.side) r.Prop.cut

let prop_prop_consistent =
  QCheck.Test.make ~name:"PROP cut consistent on random instances" ~count:20
    QCheck.small_int (fun seed ->
      let h = random_instance ~modules:60 seed in
      let r = Prop.run (Rng.create (seed + 50)) h in
      r.Prop.cut = Fm.cut_of h r.Prop.side && balanced h r.Prop.side)

let test_prop_max_passes () =
  let h = random_instance 80 in
  let r =
    Prop.run ~config:{ Prop.default with max_passes = 1 } (Rng.create 81) h
  in
  check Alcotest.int "single pass" 1 r.Prop.passes

(* ---- Genetic ---- *)

module Genetic = Mlpart_partition.Genetic

let test_genetic_valid () =
  let h = random_instance 60 in
  let r = Genetic.run (Rng.create 61) h in
  check Alcotest.int "cut consistent" (Fm.cut_of h r.Genetic.side) r.Genetic.cut;
  check Alcotest.bool "balanced" true (balanced h r.Genetic.side);
  check Alcotest.int "evaluations counted"
    (Genetic.default.Genetic.population + Genetic.default.Genetic.generations)
    r.Genetic.evaluations

let test_genetic_no_worse_than_population_best () =
  (* GA's first population member uses the same stream prefix as one FM
     run would; across a few seeds the GA must never lose to single FM. *)
  let h = random_instance 62 in
  let wins = ref 0 in
  for seed = 1 to 4 do
    let ga = Genetic.run (Rng.create seed) h in
    let fm = Fm.run (Rng.create seed) h in
    if ga.Genetic.cut <= fm.Fm.cut then incr wins
  done;
  check Alcotest.bool "ga at least as good in most trials" true (!wins >= 3)

let test_genetic_seeded_init () =
  let h = two_cliques () in
  let init = Array.init 16 (fun v -> if v < 8 then 0 else 1) in
  let r = Genetic.run ~init (Rng.create 63) h in
  check Alcotest.int "optimum preserved" 1 r.Genetic.cut

let test_genetic_rejects_tiny_population () =
  let h = random_instance 64 in
  let config = { Genetic.default with Genetic.population = 1 } in
  (match Genetic.run ~config (Rng.create 1) h with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

(* ---- KL ---- *)

module Kl = Mlpart_partition.Kl

let test_kl_valid () =
  let h = random_instance 70 in
  let r = Kl.run (Rng.create 71) h in
  check Alcotest.int "cut consistent" (Fm.cut_of h r.Kl.side) r.Kl.cut;
  check Alcotest.bool "passes counted" true (r.Kl.passes >= 1)

let test_kl_preserves_exact_balance () =
  (* swaps keep side populations exactly as the initial solution had them *)
  let h = random_instance 72 in
  let n = H.num_modules h in
  let init = Array.init n (fun v -> v land 1) in
  let r = Kl.run ~init (Rng.create 73) h in
  let count0 = Array.fold_left (fun acc s -> acc + (1 - s)) 0 r.Kl.side in
  check Alcotest.int "side sizes unchanged" (n - (n / 2)) count0

let test_kl_improves_over_random () =
  let h = random_instance 74 in
  let start = Bp.random (Rng.create 75) h in
  let init = Bp.side_array start in
  let r = Kl.run ~init (Rng.create 76) h in
  check Alcotest.bool "no worse than start" true (r.Kl.cut <= Bp.cut start)

let test_kl_finds_clique_split () =
  let h = two_cliques () in
  let best = ref max_int in
  for seed = 1 to 5 do
    let r = Kl.run (Rng.create seed) h in
    best := Stdlib.min !best r.Kl.cut
  done;
  check Alcotest.bool "near-optimal" true (!best <= 3)

(* ---- metamorphic net-weight property ---- *)

let prop_duplicate_net_equals_weight =
  (* A netlist with net e duplicated is cut-equivalent to one where e has
     weight 2, for every side assignment — ties weights, induce and the cut
     accounting together. *)
  QCheck.Test.make ~name:"duplicated net == doubled weight" ~count:40
    QCheck.(pair small_int small_int)
    (fun (seed, which) ->
      let h = random_instance ~modules:40 seed in
      let e = which mod H.num_nets h in
      let nets_dup = ref [] and nets_weighted = ref [] in
      for i = H.num_nets h - 1 downto 0 do
        let pins = H.pins_of h i and w = H.net_weight h i in
        if i = e then begin
          nets_dup := (pins, w) :: (Array.copy pins, w) :: !nets_dup;
          nets_weighted := (pins, 2 * w) :: !nets_weighted
        end
        else begin
          nets_dup := (pins, w) :: !nets_dup;
          nets_weighted := (pins, w) :: !nets_weighted
        end
      done;
      let areas = Array.init (H.num_modules h) (H.area h) in
      let dup = H.make ~areas ~nets:(Array.of_list !nets_dup) () in
      let weighted = H.make ~areas ~nets:(Array.of_list !nets_weighted) () in
      let side =
        Array.init (H.num_modules h) (fun v -> (v + seed) land 1)
      in
      Fm.cut_of dup side = Fm.cut_of weighted side)

(* ---- LSMC ---- *)

let test_lsmc_valid () =
  let h = random_instance 40 in
  let r = Lsmc.run ~config:{ Lsmc.default with descents = 5 } (Rng.create 41) h in
  check Alcotest.int "lsmc cut consistent" (Fm.cut_of h r.Lsmc.side) r.Lsmc.cut;
  check Alcotest.bool "balanced" true (balanced h r.Lsmc.side)

let test_lsmc_no_worse_than_first_descent () =
  let h = random_instance 42 in
  (* LSMC's first descent is exactly Fm.run with the same rng stream;
     additional descents can only keep or improve the best. *)
  let lsmc =
    Lsmc.run ~config:{ Lsmc.default with descents = 8 } (Rng.create 43) h
  in
  let first = Fm.run (Rng.create 43) h in
  check Alcotest.bool "monotone improvement" true (lsmc.Lsmc.cut <= first.Fm.cut)

let test_lsmc_single_descent_equals_fm () =
  let h = random_instance 44 in
  let lsmc =
    Lsmc.run ~config:{ Lsmc.default with descents = 1 } (Rng.create 45) h
  in
  let fm = Fm.run (Rng.create 45) h in
  check Alcotest.int "one descent = one FM run" fm.Fm.cut lsmc.Lsmc.cut

(* ---- engine coverage on the known two-cliques instance ---- *)

(* Seeded with the optimal split (cut 1, only the bridge net): no engine
   may lose it, and each must honour its balance contract — weighted-area
   bounds for LSMC and Genetic, exact side populations for KL (pair swaps
   preserve counts, not areas). *)
let test_engines_preserve_two_cliques_optimum () =
  let h = two_cliques () in
  let init = Array.init 16 (fun v -> if v < 8 then 0 else 1) in
  let kl = Kl.run ~init (Rng.create 91) h in
  check Alcotest.int "kl cut consistent" (Fm.cut_of h kl.Kl.side) kl.Kl.cut;
  check Alcotest.int "kl preserves the optimum" 1 kl.Kl.cut;
  check Alcotest.int "kl side sizes unchanged" 8
    (Array.fold_left (fun acc s -> acc + (1 - s)) 0 kl.Kl.side);
  let lsmc =
    Lsmc.run ~init ~config:{ Lsmc.default with descents = 4 } (Rng.create 92) h
  in
  check Alcotest.int "lsmc cut consistent" (Fm.cut_of h lsmc.Lsmc.side)
    lsmc.Lsmc.cut;
  check Alcotest.int "lsmc preserves the optimum" 1 lsmc.Lsmc.cut;
  check Alcotest.bool "lsmc balanced" true (balanced h lsmc.Lsmc.side);
  let ga = Genetic.run ~init (Rng.create 93) h in
  check Alcotest.int "genetic cut consistent" (Fm.cut_of h ga.Genetic.side)
    ga.Genetic.cut;
  check Alcotest.int "genetic preserves the optimum" 1 ga.Genetic.cut;
  check Alcotest.bool "genetic balanced" true (balanced h ga.Genetic.side)

let test_engines_improve_bad_two_cliques_split () =
  (* the alternating start cuts 16 edges inside each clique; every engine
     must improve on it, not merely preserve it *)
  let h = two_cliques () in
  let init = Array.init 16 (fun v -> v land 1) in
  let start = Fm.cut_of h init in
  let kl = Kl.run ~init (Rng.create 94) h in
  check Alcotest.bool "kl improves" true (kl.Kl.cut < start);
  check Alcotest.int "kl side sizes unchanged" 8
    (Array.fold_left (fun acc s -> acc + (1 - s)) 0 kl.Kl.side);
  let lsmc =
    Lsmc.run ~init ~config:{ Lsmc.default with descents = 4 } (Rng.create 95) h
  in
  check Alcotest.bool "lsmc improves" true (lsmc.Lsmc.cut < start);
  check Alcotest.bool "lsmc balanced" true (balanced h lsmc.Lsmc.side);
  let ga = Genetic.run ~init (Rng.create 96) h in
  check Alcotest.bool "genetic improves" true (ga.Genetic.cut < start);
  check Alcotest.bool "genetic balanced" true (balanced h ga.Genetic.side)

let () =
  Alcotest.run "fm-engines"
    [
      ( "fm",
        [
          Alcotest.test_case "finds clique split" `Quick test_fm_finds_clique_split;
          Alcotest.test_case "result consistent" `Quick test_fm_result_consistent;
          Alcotest.test_case "refinement never worsens" `Quick
            test_fm_improves_on_refinement;
          Alcotest.test_case "refines good init" `Quick test_fm_refines_good_init;
          Alcotest.test_case "max passes" `Quick test_fm_max_passes;
          Alcotest.test_case "all policies valid" `Quick test_fm_policies_all_valid;
          Alcotest.test_case "deterministic" `Quick test_fm_deterministic;
          Alcotest.test_case "large nets counted" `Quick
            test_fm_net_threshold_cut_counted;
          Alcotest.test_case "unbalanced init repaired" `Quick
            test_fm_unbalanced_init_repaired;
          Alcotest.test_case "tiny instance" `Quick test_fm_tiny_instance;
          Alcotest.test_case "fixed pinned" `Quick test_fm_fixed_modules_pinned;
          Alcotest.test_case "fixed overrides init" `Quick
            test_fm_fixed_overrides_init;
          Alcotest.test_case "fixed with clip+cdip" `Quick
            test_fm_fixed_with_clip_and_backtrack;
          qtest prop_fm_all_configs_consistent;
          qtest prop_fm_weighted_nets;
        ] );
      ( "variants",
        [
          Alcotest.test_case "clip" `Quick test_clip_valid;
          Alcotest.test_case "lookahead" `Quick test_lookahead_valid;
          Alcotest.test_case "cdip" `Quick test_cdip_valid;
          Alcotest.test_case "early exit" `Quick test_early_exit_valid;
          Alcotest.test_case "boundary" `Quick test_boundary_valid;
          Alcotest.test_case "boundary refines" `Quick
            test_boundary_refines_good_init;
          Alcotest.test_case "wide balance" `Quick test_wide_balance_valid;
        ] );
      ( "refine-core",
        [
          Alcotest.test_case "best prefix" `Quick test_refine_core_best_prefix;
          Alcotest.test_case "all negative" `Quick test_refine_core_all_negative;
          Alcotest.test_case "early exit" `Quick test_refine_core_early_exit;
          Alcotest.test_case "backtrack" `Quick test_refine_core_backtrack;
          Alcotest.test_case "zero backtrack limit" `Quick
            test_refine_core_backtrack_limit;
          Alcotest.test_case "drive" `Quick test_refine_core_drive;
        ] );
      ( "engine-regression",
        [
          Alcotest.test_case "pre-overhaul golden values" `Quick
            test_engine_golden;
          Alcotest.test_case "pass cut monotone" `Quick test_pass_cut_monotone;
          Alcotest.test_case "zero backtrack limit = plain" `Quick
            test_cdip_zero_limit_is_plain;
          Alcotest.test_case "fixed stay out of frontier" `Quick
            test_boundary_fixed_stay_out;
          qtest prop_arena_reuse_bit_identical;
          Alcotest.test_case "pool jobs identical" `Quick
            test_arena_pool_jobs_identical;
        ] );
      ( "objective",
        [
          Alcotest.test_case "report" `Quick test_objective_report;
          Alcotest.test_case "rejects bad" `Quick test_objective_rejects_bad;
          Alcotest.test_case "assignment roundtrip" `Quick
            test_objective_assignment_roundtrip;
          Alcotest.test_case "read rejects garbage" `Quick
            test_objective_read_rejects_garbage;
        ] );
      ( "prop",
        [
          Alcotest.test_case "valid" `Quick test_prop_valid;
          Alcotest.test_case "clip variant" `Quick test_prop_clip_valid;
          Alcotest.test_case "finds clique split" `Quick
            test_prop_finds_clique_split;
          Alcotest.test_case "fm-like limit" `Quick test_prop_limit_is_fm_like;
          Alcotest.test_case "max passes" `Quick test_prop_max_passes;
          qtest prop_prop_consistent;
        ] );
      ( "genetic",
        [
          Alcotest.test_case "valid" `Quick test_genetic_valid;
          Alcotest.test_case "no worse than FM" `Slow
            test_genetic_no_worse_than_population_best;
          Alcotest.test_case "seeded init" `Quick test_genetic_seeded_init;
          Alcotest.test_case "rejects tiny population" `Quick
            test_genetic_rejects_tiny_population;
        ] );
      ( "kl",
        [
          Alcotest.test_case "valid" `Quick test_kl_valid;
          Alcotest.test_case "exact balance" `Quick test_kl_preserves_exact_balance;
          Alcotest.test_case "improves over random" `Quick
            test_kl_improves_over_random;
          Alcotest.test_case "finds clique split" `Quick test_kl_finds_clique_split;
          qtest prop_duplicate_net_equals_weight;
        ] );
      ( "lsmc",
        [
          Alcotest.test_case "valid" `Quick test_lsmc_valid;
          Alcotest.test_case "monotone" `Quick test_lsmc_no_worse_than_first_descent;
          Alcotest.test_case "single descent = FM" `Quick
            test_lsmc_single_descent_equals_fm;
        ] );
      ( "engine-coverage",
        [
          Alcotest.test_case "preserve two-cliques optimum" `Quick
            test_engines_preserve_two_cliques_optimum;
          Alcotest.test_case "improve bad two-cliques split" `Quick
            test_engines_improve_bad_two_cliques_split;
        ] );
    ]
