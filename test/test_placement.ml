(* Tests for the analytical-placement substrate and the GORDIAN-style
   quadrisection baseline. *)

module H = Mlpart_hypergraph.Hypergraph
module Q = Mlpart_placement.Quadratic
module G = Mlpart_placement.Gordian
module Rng = Mlpart_util.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let close ?(eps = 1e-5) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f got %.6f" msg expected actual

(* ---- quadratic solver ---- *)

let path n =
  (* 0 - 1 - 2 - ... - (n-1) with 2-pin nets *)
  let b = Mlpart_hypergraph.Builder.create () in
  Mlpart_hypergraph.Builder.add_modules b n;
  for v = 0 to n - 2 do
    Mlpart_hypergraph.Builder.add_net b [ v; v + 1 ]
  done;
  Mlpart_hypergraph.Builder.build b

let test_path_interpolates () =
  (* Fixing the ends of a path at 0 and 1, the quadratic optimum spaces the
     free modules uniformly. *)
  let n = 5 in
  let h = path n in
  let sys = Q.build h ~fixed:[ (0, 0.0); (n - 1, 1.0) ] in
  let x = Q.solve sys in
  for v = 0 to n - 1 do
    close (Printf.sprintf "module %d" v)
      (float_of_int v /. float_of_int (n - 1))
      x.(v)
  done;
  check Alcotest.bool "residual tiny" true (Q.residual sys x < 1e-5)

let test_star_centroid () =
  (* A 3-pin net with two pinned modules: the free one sits at the mean
     under the clique model. *)
  let h = H.make ~areas:[| 1; 1; 1 |] ~nets:[| ([| 0; 1; 2 |], 1) |] () in
  let sys = Q.build h ~fixed:[ (0, 0.0); (1, 1.0) ] in
  let x = Q.solve sys in
  close "centroid" 0.5 x.(2)

let test_fixed_positions_kept () =
  let h = path 4 in
  let sys = Q.build h ~fixed:[ (0, 0.25); (3, 0.75) ] in
  let x = Q.solve sys in
  close "left pad" 0.25 x.(0);
  close "right pad" 0.75 x.(3)

let test_build_requires_fixed () =
  let h = path 3 in
  (match Q.build h ~fixed:[] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

let test_chain_model_large_net () =
  (* Force the chain model with a tiny clique limit: still solvable, ends
     pinned, interior strictly between. *)
  let b = Mlpart_hypergraph.Builder.create () in
  Mlpart_hypergraph.Builder.add_modules b 6;
  Mlpart_hypergraph.Builder.add_net b [ 0; 1; 2; 3; 4; 5 ];
  let h = Mlpart_hypergraph.Builder.build b in
  let sys = Q.build ~clique_limit:3 h ~fixed:[ (0, 0.0); (5, 1.0) ] in
  let x = Q.solve sys in
  for v = 1 to 4 do
    check Alcotest.bool "interior inside" true (x.(v) > 0.0 && x.(v) < 1.0)
  done

let test_weighted_net_pulls_harder () =
  (* Free module connected to 0.0 with weight 3 and to 1.0 with weight 1:
     optimum at 1/4. *)
  let h =
    H.make ~areas:[| 1; 1; 1 |]
      ~nets:[| ([| 0; 2 |], 3); ([| 1; 2 |], 1) |]
      ()
  in
  let sys = Q.build h ~fixed:[ (0, 0.0); (1, 1.0) ] in
  let x = Q.solve sys in
  close "weighted balance point" 0.25 x.(2)

let test_hpwl () =
  let h = H.make ~areas:[| 1; 1; 1 |] ~nets:[| ([| 0; 1; 2 |], 2) |] () in
  let x = [| 0.0; 1.0; 0.5 |] and y = [| 0.0; 0.0; 2.0 |] in
  close "hpwl" (2.0 *. (1.0 +. 2.0)) (Q.hpwl h ~x ~y)

let prop_cg_residual_small =
  QCheck.Test.make ~name:"CG residual below tolerance on random instances"
    ~count:25 QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let h = Mlpart_gen.Generate.rent ~rng ~modules:60 ~nets:80 ~pins:240 () in
      let fixed = [ (0, 0.0); (1, 1.0); (2, 0.3) ] in
      let sys = Q.build h ~fixed in
      let x = Q.solve ~tol:1e-8 sys in
      Q.residual sys x < 1e-5)

let prop_solution_within_pad_hull =
  QCheck.Test.make ~name:"free coordinates stay within the pad hull" ~count:25
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let h = Mlpart_gen.Generate.rent ~rng ~modules:50 ~nets:70 ~pins:200 () in
      let sys = Q.build h ~fixed:[ (0, 0.0); (1, 1.0) ] in
      let x = Q.solve sys in
      (* the exact optimum obeys the maximum principle; CG's finite
         tolerance can overshoot by the solver's own epsilon *)
      Array.for_all (fun v -> v >= -1e-6 && v <= 1.0 +. 1e-6) x)

(* ---- GORDIAN ---- *)

let gordian_instance seed =
  let rng = Rng.create seed in
  Mlpart_gen.Generate.rent ~rng ~modules:300 ~nets:360 ~pins:1100 ()

let test_gordian_quadrants_balanced () =
  let h = gordian_instance 1 in
  let r = G.run h in
  let areas = Array.make 4 0 in
  Array.iteri (fun v q -> areas.(q) <- areas.(q) + H.area h v) r.G.side;
  let total = H.total_area h in
  Array.iter
    (fun a ->
      check Alcotest.bool "quadrant within 10% of quarter" true
        (abs (a - (total / 4)) <= (total / 10) + 1))
    areas

let test_gordian_cut_consistent () =
  let h = gordian_instance 2 in
  let r = G.run h in
  check Alcotest.int "cut recount"
    (Mlpart_partition.Multiway.cut_of h ~k:4 r.G.side)
    r.G.cut

let test_gordian_deterministic () =
  let h = gordian_instance 3 in
  let a = G.run h and b = G.run h in
  check Alcotest.(array int) "same quadrants" a.G.side b.G.side;
  close "same hpwl" a.G.hpwl b.G.hpwl

let test_gordian_pads_on_boundary () =
  let h = gordian_instance 4 in
  let r = G.run h in
  Array.iter
    (fun pad ->
      let x = r.G.x.(pad) and y = r.G.y.(pad) in
      let on_edge v = abs_float v < 1e-9 || abs_float (v -. 1.0) < 1e-9 in
      check Alcotest.bool "pad on die boundary" true (on_edge x || on_edge y))
    r.G.pads

let test_gordian_pad_count_option () =
  let h = gordian_instance 5 in
  let r = G.run ~config:{ G.default with num_pads = Some 7 } h in
  check Alcotest.int "pad count honoured" 7 (Array.length r.G.pads)

let test_gordian_beaten_by_ml () =
  (* The paper's Table IX claim: ML quadrisection beats the analytic
     splits.  Statistical, but stable at this size/seed. *)
  let h = gordian_instance 6 in
  let g = G.run h in
  let best_ml = ref max_int in
  for seed = 1 to 3 do
    let r = Mlpart_multilevel.Ml_multiway.run (Rng.create seed) h ~k:4 in
    best_ml := Stdlib.min !best_ml r.Mlpart_multilevel.Ml_multiway.cut
  done;
  check Alcotest.bool "ML at least as good as GORDIAN" true (!best_ml <= g.G.cut)

let test_quadrants_of_placement_median () =
  (* 4 modules on a unit square map to the 4 quadrants. *)
  let h = path 4 in
  let x = [| 0.0; 0.0; 1.0; 1.0 |] and y = [| 0.0; 1.0; 0.0; 1.0 |] in
  let q = G.quadrants_of_placement h ~x ~y in
  check Alcotest.(array int) "quadrant ids" [| 0; 1; 2; 3 |] q

(* ---- Spectral ---- *)

module Sp = Mlpart_placement.Spectral

let test_spectral_valid () =
  let h = gordian_instance 10 in
  let r = Sp.run h in
  check Alcotest.int "cut recount"
    (Mlpart_partition.Fm.cut_of h r.Sp.side)
    r.Sp.cut;
  check Alcotest.bool "iterations used" true (r.Sp.iterations_used > 0);
  check Alcotest.bool "fiedler unit norm" true
    (let n = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 r.Sp.fiedler in
     abs_float (n -. 1.0) < 1e-6)

let test_spectral_deterministic () =
  let h = gordian_instance 11 in
  let a = Sp.run h and b = Sp.run h in
  check Alcotest.(array int) "same split" a.Sp.side b.Sp.side

let test_spectral_separates_cliques () =
  (* two cliques with a bridge: the Fiedler vector must separate them *)
  let b = Mlpart_hypergraph.Builder.create () in
  Mlpart_hypergraph.Builder.add_modules b 16;
  for v = 0 to 7 do
    for w = v + 1 to 7 do
      Mlpart_hypergraph.Builder.add_net b [ v; w ];
      Mlpart_hypergraph.Builder.add_net b [ v + 8; w + 8 ]
    done
  done;
  Mlpart_hypergraph.Builder.add_net b [ 0; 8 ];
  let h = Mlpart_hypergraph.Builder.build b in
  let r = Sp.run h in
  check Alcotest.int "bridge only" 1 r.Sp.cut

let test_spectral_refined_no_worse () =
  let h = gordian_instance 12 in
  let pure = Sp.run h in
  let refined = Sp.run ~config:Sp.eig_fm h in
  check Alcotest.bool "FM refinement helps" true (refined.Sp.cut <= pure.Sp.cut)

let test_spectral_balanced_split () =
  let h = gordian_instance 13 in
  let r = Sp.run h in
  let areas = [| 0; 0 |] in
  Array.iteri (fun v s -> areas.(s) <- areas.(s) + H.area h v) r.Sp.side;
  let total = H.total_area h in
  check Alcotest.bool "median split within 2%" true
    (abs (areas.(0) - (total / 2)) <= (total / 50) + 1)

(* ---- Topdown ---- *)

module T = Mlpart_placement.Topdown

let test_topdown_places_everything () =
  let h = gordian_instance 14 in
  let r = T.run (Rng.create 1) h in
  let n = H.num_modules h in
  check Alcotest.int "x for every module" n (Array.length r.T.x);
  for v = 0 to n - 1 do
    if r.T.x.(v) < 0.0 || r.T.x.(v) > 1.0 || r.T.y.(v) < 0.0 || r.T.y.(v) > 1.0
    then Alcotest.failf "module %d outside the die" v
  done;
  check Alcotest.bool "recursed" true (r.T.regions > 0);
  check Alcotest.bool "hpwl positive" true (r.T.hpwl > 0.0)

let test_topdown_spreads_cells () =
  (* no more than a leaf-full of modules may share a position *)
  let h = gordian_instance 15 in
  let config = { T.default with T.leaf_size = 8 } in
  let r = T.run ~config (Rng.create 2) h in
  let seen = Hashtbl.create 64 in
  Array.iteri
    (fun v _ ->
      let key = (r.T.x.(v), r.T.y.(v)) in
      Hashtbl.replace seen key (1 + Option.value ~default:0 (Hashtbl.find_opt seen key)))
    r.T.x;
  Hashtbl.iter
    (fun _ c ->
      if c > 8 then Alcotest.failf "%d modules stacked on one slot" c)
    seen

let test_topdown_deadline_degrades_gracefully () =
  let module Deadline = Mlpart_util.Deadline in
  let h = gordian_instance 16 in
  let dl = Deadline.make ~seconds:0.0 in
  let r = T.run ~deadline:dl (Rng.create 3) h in
  check Alcotest.bool "flagged timed out" true r.T.timed_out;
  check Alcotest.int "no quadrisection ran" 0 r.T.regions;
  (* graceful degradation: every module still gets an in-die coordinate *)
  for v = 0 to H.num_modules h - 1 do
    if r.T.x.(v) < 0.0 || r.T.x.(v) > 1.0 || r.T.y.(v) < 0.0 || r.T.y.(v) > 1.0
    then Alcotest.failf "module %d outside the die after timeout" v
  done;
  (* a generous deadline is a no-op: identical to the untimed run *)
  let dl = Deadline.make ~seconds:3600.0 in
  let timed = T.run ~deadline:dl (Rng.create 4) h in
  let untimed = T.run (Rng.create 4) h in
  check Alcotest.bool "not timed out" false timed.T.timed_out;
  check Alcotest.(array (float 1e-9)) "same x" untimed.T.x timed.T.x;
  check Alcotest.(array (float 1e-9)) "same y" untimed.T.y timed.T.y

let test_topdown_terminal_propagation_helps () =
  let h = gordian_instance 16 in
  let with_tp = T.run (Rng.create 3) h in
  let without =
    T.run ~config:{ T.default with T.terminal_model = T.Ignore_external }
      (Rng.create 3) h
  in
  (* statistical but stable at this size: propagation should not lose *)
  check Alcotest.bool "propagation no worse" true
    (with_tp.T.hpwl <= without.T.hpwl *. 1.05)

let test_topdown_beats_legalized_gordian () =
  let h = gordian_instance 17 in
  let g = G.run h in
  let gx, gy = T.grid_legalize h ~x:g.G.x ~y:g.G.y in
  let g_hpwl = Q.hpwl h ~x:gx ~y:gy in
  let td = T.run (Rng.create 4) h in
  check Alcotest.bool "top-down at least as good" true (td.T.hpwl <= g_hpwl)

let test_grid_legalize_separates () =
  let h = gordian_instance 18 in
  let n = H.num_modules h in
  (* everything stacked at one point legalizes to distinct grid slots *)
  let x = Array.make n 0.5 and y = Array.make n 0.5 in
  let lx, ly = T.grid_legalize h ~x ~y in
  let seen = Hashtbl.create n in
  for v = 0 to n - 1 do
    let key = (lx.(v), ly.(v)) in
    if Hashtbl.mem seen key then Alcotest.failf "slot reused for %d" v;
    Hashtbl.add seen key ()
  done

let test_grid_legalize_preserves_order () =
  let h = Mlpart_gen.Generate.ring 9 in
  let x = Array.init 9 (fun v -> float_of_int v /. 10.0) in
  let y = Array.make 9 0.5 in
  let lx, _ = T.grid_legalize h ~x ~y in
  (* module 0 (leftmost) must stay in the leftmost column *)
  check Alcotest.bool "order kept" true (lx.(0) <= lx.(8))

(* ---- SVG ---- *)

let test_svg_renders () =
  let h = gordian_instance 20 in
  let r = G.run h in
  let svg = Mlpart_placement.Svg.render ~side:r.G.side h ~x:r.G.x ~y:r.G.y in
  check Alcotest.bool "has svg root" true
    (String.length svg > 100
    && String.sub svg 0 4 = "<svg"
    && String.length svg - 7 >= 0);
  (* one circle per module *)
  let circles = ref 0 in
  String.split_on_char '\n' svg
  |> List.iter (fun line ->
         if String.length line >= 7 && String.sub line 0 7 = "<circle" then
           incr circles);
  check Alcotest.int "one dot per module" (H.num_modules h) !circles

let test_svg_write () =
  let h = Mlpart_gen.Generate.ring 8 in
  let x = Array.init 8 (fun v -> float_of_int v /. 8.0) in
  let y = Array.make 8 0.5 in
  let path = Filename.temp_file "mlpart_svg" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Mlpart_placement.Svg.write ~draw_nets:true path h ~x ~y;
      let contents = In_channel.with_open_text path In_channel.input_all in
      check Alcotest.bool "file written" true (String.length contents > 100))

let () =
  Alcotest.run "placement"
    [
      ( "quadratic",
        [
          Alcotest.test_case "path interpolates" `Quick test_path_interpolates;
          Alcotest.test_case "star centroid" `Quick test_star_centroid;
          Alcotest.test_case "fixed kept" `Quick test_fixed_positions_kept;
          Alcotest.test_case "requires fixed" `Quick test_build_requires_fixed;
          Alcotest.test_case "chain model" `Quick test_chain_model_large_net;
          Alcotest.test_case "weighted pull" `Quick test_weighted_net_pulls_harder;
          Alcotest.test_case "hpwl" `Quick test_hpwl;
          qtest prop_cg_residual_small;
          qtest prop_solution_within_pad_hull;
        ] );
      ( "spectral",
        [
          Alcotest.test_case "valid" `Quick test_spectral_valid;
          Alcotest.test_case "deterministic" `Quick test_spectral_deterministic;
          Alcotest.test_case "separates cliques" `Quick
            test_spectral_separates_cliques;
          Alcotest.test_case "refined no worse" `Quick test_spectral_refined_no_worse;
          Alcotest.test_case "balanced split" `Quick test_spectral_balanced_split;
        ] );
      ( "topdown",
        [
          Alcotest.test_case "places everything" `Quick
            test_topdown_places_everything;
          Alcotest.test_case "spreads cells" `Quick test_topdown_spreads_cells;
          Alcotest.test_case "deadline degrades gracefully" `Quick
            test_topdown_deadline_degrades_gracefully;
          Alcotest.test_case "terminal propagation" `Slow
            test_topdown_terminal_propagation_helps;
          Alcotest.test_case "beats legalized gordian" `Slow
            test_topdown_beats_legalized_gordian;
          Alcotest.test_case "legalize separates" `Quick test_grid_legalize_separates;
          Alcotest.test_case "legalize preserves order" `Quick
            test_grid_legalize_preserves_order;
        ] );
      ( "svg",
        [
          Alcotest.test_case "renders" `Quick test_svg_renders;
          Alcotest.test_case "write" `Quick test_svg_write;
        ] );
      ( "gordian",
        [
          Alcotest.test_case "quadrants balanced" `Quick
            test_gordian_quadrants_balanced;
          Alcotest.test_case "cut consistent" `Quick test_gordian_cut_consistent;
          Alcotest.test_case "deterministic" `Quick test_gordian_deterministic;
          Alcotest.test_case "pads on boundary" `Quick test_gordian_pads_on_boundary;
          Alcotest.test_case "pad count option" `Quick test_gordian_pad_count_option;
          Alcotest.test_case "beaten by ML" `Slow test_gordian_beaten_by_ml;
          Alcotest.test_case "median quadrants" `Quick
            test_quadrants_of_placement_median;
        ] );
    ]
