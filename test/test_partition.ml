(* Tests for the shared partition state (Bipartition, Kpartition) and the
   gain-bucket structure. *)

module H = Mlpart_hypergraph.Hypergraph
module Bp = Mlpart_partition.Bipartition
module Kp = Mlpart_partition.Kpartition
module Gb = Mlpart_partition.Gain_bucket
module Rng = Mlpart_util.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let sample () =
  H.make ~name:"sample"
    ~areas:[| 1; 2; 3; 4; 5 |]
    ~nets:[| ([| 0; 1 |], 1); ([| 1; 2; 3 |], 2); ([| 0; 3; 4 |], 1) |]
    ()

let random_instance seed =
  let rng = Rng.create seed in
  Mlpart_gen.Generate.rent ~rng ~modules:80 ~nets:100 ~pins:300 ()

(* ---- Bipartition ---- *)

let test_bp_cut () =
  let h = sample () in
  let bp = Bp.create h [| 0; 0; 1; 1; 1 |] in
  (* net0 inside X, net1 cut (w=2), net2 cut (w=1) *)
  check Alcotest.int "cut" 3 (Bp.cut bp);
  check Alcotest.int "recomputed" 3 (Bp.recompute_cut bp);
  check Alcotest.int "area X" 3 (Bp.area_of_side bp 0);
  check Alcotest.int "area Y" 12 (Bp.area_of_side bp 1)

let test_bp_pins_on () =
  let h = sample () in
  let bp = Bp.create h [| 0; 0; 1; 1; 1 |] in
  check Alcotest.int "net1 on X" 1 (Bp.pins_on bp 1 0);
  check Alcotest.int "net1 on Y" 2 (Bp.pins_on bp 1 1)

let test_bp_move_updates () =
  let h = sample () in
  let bp = Bp.create h [| 0; 0; 1; 1; 1 |] in
  Bp.move bp 1;
  (* module 1 to side 1: net0 becomes cut, net1 becomes internal to Y *)
  check Alcotest.int "cut after move" 2 (Bp.cut bp);
  check Alcotest.int "area X" 1 (Bp.area_of_side bp 0);
  check Alcotest.int "side updated" 1 (Bp.side bp 1);
  Bp.move bp 1;
  check Alcotest.int "move is self-inverse" 3 (Bp.cut bp)

let test_bp_gain_matches_move () =
  let h = sample () in
  let bp = Bp.create h [| 0; 0; 1; 1; 1 |] in
  for v = 0 to 4 do
    let g = Bp.gain bp v in
    let before = Bp.cut bp in
    Bp.move bp v;
    check Alcotest.int
      (Printf.sprintf "gain of %d equals cut delta" v)
      g (before - Bp.cut bp);
    Bp.move bp v
  done

let test_bp_gain_threshold () =
  let h = sample () in
  let bp = Bp.create h [| 0; 0; 1; 1; 1 |] in
  (* with a threshold of 2, only the 2-pin net {0,1} contributes: moving 1
     to Y cuts it, so the gain is -1; the 3-pin net is invisible *)
  let g = Bp.gain ~net_threshold:2 bp 1 in
  check Alcotest.int "only small nets counted" (-1) g;
  (* without the threshold the 3-pin net adds +2 (it becomes uncut) *)
  check Alcotest.int "full gain" 1 (Bp.gain bp 1)

let test_bp_create_rejects_bad_side () =
  let h = sample () in
  (match Bp.create h [| 0; 0; 2; 1; 1 |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

let test_bp_bounds () =
  let h = sample () in
  (* total 15, max area 5, r = 0.1: slack = max(5, 0) = 5 *)
  let b = Bp.bounds h in
  check Alcotest.bool "lo" true (b.Bp.lo <= 7 - 5 + 1);
  check Alcotest.bool "hi" true (b.Bp.hi >= 7 + 5);
  let wide = Bp.wide_bounds h in
  check Alcotest.bool "wide at least as permissive" true
    (wide.Bp.lo <= b.Bp.lo && wide.Bp.hi >= b.Bp.hi)

let test_bp_random_balanced () =
  let h = random_instance 3 in
  let rng = Rng.create 1 in
  let bp = Bp.random rng h in
  let b = Bp.bounds h in
  check Alcotest.bool "random start balanced" true (Bp.is_balanced bp b)

let test_bp_rebalance () =
  let h = random_instance 4 in
  let n = H.num_modules h in
  (* grossly unbalanced start: everything on side 0 *)
  let bp = Bp.create h (Array.make n 0) in
  let b = Bp.bounds h in
  check Alcotest.bool "unbalanced" false (Bp.is_balanced bp b);
  let moves = Bp.rebalance (Rng.create 2) bp b in
  check Alcotest.bool "rebalanced" true (Bp.is_balanced bp b);
  check Alcotest.bool "made moves" true (moves > 0);
  check Alcotest.int "cut still consistent" (Bp.recompute_cut bp) (Bp.cut bp)

let test_bp_copy_isolated () =
  let h = sample () in
  let bp = Bp.create h [| 0; 0; 1; 1; 1 |] in
  let bp' = Bp.copy bp in
  Bp.move bp 0;
  check Alcotest.int "copy untouched" 3 (Bp.cut bp');
  check Alcotest.int "original moved" (Bp.recompute_cut bp) (Bp.cut bp)

let prop_bp_incremental_cut =
  QCheck.Test.make ~name:"cut stays consistent under random move sequences"
    ~count:60
    QCheck.(pair small_int (list_of_size Gen.(int_range 1 60) small_int))
    (fun (seed, moves) ->
      let h = random_instance seed in
      let rng = Rng.create (seed + 1) in
      let bp = Bp.random rng h in
      List.iter (fun m -> Bp.move bp (m mod H.num_modules h)) moves;
      Bp.cut bp = Bp.recompute_cut bp)

let prop_bp_gain_is_cut_delta =
  QCheck.Test.make ~name:"gain equals cut delta for any module" ~count:60
    QCheck.(pair small_int small_int)
    (fun (seed, which) ->
      let h = random_instance seed in
      let bp = Bp.random (Rng.create (seed + 9)) h in
      let v = which mod H.num_modules h in
      let g = Bp.gain bp v in
      let before = Bp.cut bp in
      Bp.move bp v;
      g = before - Bp.cut bp)

(* ---- Gain buckets ---- *)

let mk policy = Gb.create ~policy ~min_gain:(-5) ~max_gain:5 ~capacity:16 ()

let test_gb_basic () =
  let t = mk Gb.Lifo in
  check Alcotest.bool "empty" true (Gb.is_empty t);
  Gb.insert t 3 2;
  Gb.insert t 4 (-1);
  check Alcotest.int "size" 2 (Gb.size t);
  check Alcotest.bool "contains" true (Gb.contains t 3);
  check Alcotest.int "gain_of" 2 (Gb.gain_of t 3);
  (match Gb.select_max t with
  | Some (v, g) ->
      check Alcotest.int "max module" 3 v;
      check Alcotest.int "max gain" 2 g
  | None -> Alcotest.fail "expected max");
  Gb.remove t 3;
  check Alcotest.bool "removed" false (Gb.contains t 3);
  Gb.remove t 3 (* no-op *)

let test_gb_lifo_order () =
  let t = mk Gb.Lifo in
  Gb.insert t 1 0;
  Gb.insert t 2 0;
  Gb.insert t 3 0;
  (match Gb.pop_max t with
  | Some (v, _) -> check Alcotest.int "most recent first" 3 v
  | None -> Alcotest.fail "empty");
  match Gb.pop_max t with
  | Some (v, _) -> check Alcotest.int "then previous" 2 v
  | None -> Alcotest.fail "empty"

let test_gb_fifo_order () =
  let t = mk Gb.Fifo in
  Gb.insert t 1 0;
  Gb.insert t 2 0;
  Gb.insert t 3 0;
  match Gb.pop_max t with
  | Some (v, _) -> check Alcotest.int "oldest first" 1 v
  | None -> Alcotest.fail "empty"

let test_gb_random_selects_within_top () =
  let rng = Rng.create 77 in
  let t = Gb.create ~rng ~policy:Gb.Random ~min_gain:(-5) ~max_gain:5 ~capacity:16 () in
  Gb.insert t 1 3;
  Gb.insert t 2 3;
  Gb.insert t 3 1;
  let seen = Hashtbl.create 4 in
  for _ = 1 to 40 do
    match Gb.select_max t with
    | Some (v, g) ->
        check Alcotest.int "always top bucket" 3 g;
        Hashtbl.replace seen v ()
    | None -> Alcotest.fail "empty"
  done;
  check Alcotest.int "both top modules seen" 2 (Hashtbl.length seen)

let test_gb_adjust () =
  let t = mk Gb.Lifo in
  Gb.insert t 1 0;
  Gb.insert t 2 3;
  Gb.adjust t 1 5;
  (match Gb.select_max t with
  | Some (v, g) ->
      check Alcotest.int "adjusted to top" 1 v;
      check Alcotest.int "new gain" 5 g
  | None -> Alcotest.fail "empty");
  Gb.adjust t 1 (-8);
  match Gb.select_max t with
  | Some (v, _) -> check Alcotest.int "dropped below" 2 v
  | None -> Alcotest.fail "empty"

let test_gb_insert_out_of_range () =
  let t = mk Gb.Lifo in
  (match Gb.insert t 0 6 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

let test_gb_double_insert_rejected () =
  let t = mk Gb.Lifo in
  Gb.insert t 0 1;
  (match Gb.insert t 0 2 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

let test_gb_select_satisfying () =
  let t = mk Gb.Lifo in
  Gb.insert t 1 4;
  Gb.insert t 2 4;
  Gb.insert t 3 2;
  (* refuse the whole top bucket: falls to gain 2 *)
  match Gb.select_max_satisfying t (fun v -> v = 3) with
  | Some (v, g) ->
      check Alcotest.int "fallback module" 3 v;
      check Alcotest.int "fallback gain" 2 g
  | None -> Alcotest.fail "expected fallback"

let test_gb_select_satisfying_none () =
  let t = mk Gb.Lifo in
  Gb.insert t 1 0;
  check Alcotest.bool "no satisfying" true
    (Gb.select_max_satisfying t (fun _ -> false) = None)

let test_gb_clear () =
  let t = mk Gb.Lifo in
  Gb.insert t 1 1;
  Gb.clear t;
  check Alcotest.bool "cleared" true (Gb.is_empty t);
  check Alcotest.bool "select on empty" true (Gb.select_max t = None)

let test_gb_max_key_and_iter () =
  let t = mk Gb.Lifo in
  check Alcotest.bool "no key when empty" true (Gb.max_key t = None);
  Gb.insert t 1 2;
  Gb.insert t 2 2;
  Gb.insert t 3 0;
  check Alcotest.bool "max key" true (Gb.max_key t = Some 2);
  let collected = ref [] in
  Gb.iter_key t 2 (fun v -> collected := v :: !collected);
  check Alcotest.(list int) "iter in policy order" [ 2; 1 ] (List.rev !collected)

(* Model test: the bucket structure behaves like sorting by (gain, recency). *)
let prop_gb_pop_order_descending =
  QCheck.Test.make ~name:"pop_max yields non-increasing gains" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 16) (int_range (-5) 5))
    (fun gains ->
      let t = mk Gb.Lifo in
      List.iteri (fun v g -> Gb.insert t v g) gains;
      let rec drain last =
        match Gb.pop_max t with
        | None -> true
        | Some (_, g) -> g <= last && drain g
      in
      drain 6)

let prop_gb_size_tracks =
  QCheck.Test.make ~name:"size tracks inserts and removes" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 16) (int_range (-5) 5))
    (fun gains ->
      let t = mk Gb.Lifo in
      List.iteri (fun v g -> Gb.insert t v g) gains;
      let n = List.length gains in
      let ok1 = Gb.size t = n in
      List.iteri (fun v _ -> Gb.remove t v) gains;
      ok1 && Gb.is_empty t)

(* ---- Kpartition ---- *)

let test_kp_objectives () =
  let h = sample () in
  let kp = Kp.create h ~k:3 [| 0; 0; 1; 1; 2 |] in
  (* net0 internal; net1 spans {0,1} (w2); net2 spans {0,1,2} (w1) *)
  check Alcotest.int "cut" 3 (Kp.cut kp);
  check Alcotest.int "sum of degrees" 4 (Kp.sum_degrees kp);
  check Alcotest.int "spans net2" 3 (Kp.spans kp 2);
  check Alcotest.int "recomputed" 3 (Kp.recompute_cut kp)

let test_kp_move () =
  let h = sample () in
  let kp = Kp.create h ~k:3 [| 0; 0; 1; 1; 2 |] in
  Kp.move kp 4 1;
  (* net2 = {0,3,4} now spans {0,1} *)
  check Alcotest.int "spans drop" 2 (Kp.spans kp 2);
  check Alcotest.int "cut unchanged" 3 (Kp.cut kp);
  check Alcotest.int "soed drops" 3 (Kp.sum_degrees kp);
  check Alcotest.int "area moved" (3 + 4 + 5) (Kp.area_of_part kp 1);
  Kp.move kp 4 2;
  check Alcotest.int "back" 4 (Kp.sum_degrees kp)

let test_kp_random_respects_fixed () =
  let h = random_instance 5 in
  let fixed = Array.make (H.num_modules h) (-1) in
  fixed.(0) <- 3;
  fixed.(1) <- 0;
  let kp = Kp.random ~fixed (Rng.create 1) h ~k:4 in
  check Alcotest.int "fixed module 0" 3 (Kp.side kp 0);
  check Alcotest.int "fixed module 1" 0 (Kp.side kp 1)

let test_kp_random_balanced () =
  let h = random_instance 6 in
  let kp = Kp.random (Rng.create 2) h ~k:4 in
  let b = Kp.bounds h ~k:4 in
  check Alcotest.bool "balanced" true (Kp.is_balanced kp b)

let test_kp_move_feasibility () =
  let h = sample () in
  let kp = Kp.create h ~k:2 [| 0; 0; 1; 1; 1 |] in
  let b = { Kp.lo = 1; hi = 14 } in
  check Alcotest.bool "same part infeasible" false (Kp.move_is_feasible kp b 0 0);
  check Alcotest.bool "legal move" true (Kp.move_is_feasible kp b 1 1)

let prop_kp_incremental =
  QCheck.Test.make ~name:"k-way cut and soed consistent under moves" ~count:50
    QCheck.(pair small_int (list_of_size Gen.(int_range 1 40) (pair small_int small_int)))
    (fun (seed, moves) ->
      let h = random_instance seed in
      let kp = Kp.random (Rng.create (seed + 3)) h ~k:4 in
      List.iter
        (fun (m, p) -> Kp.move kp (m mod H.num_modules h) (p mod 4))
        moves;
      let fresh = Kp.create h ~k:4 (Kp.side_array kp) in
      Kp.cut kp = Kp.cut fresh && Kp.sum_degrees kp = Kp.sum_degrees fresh)

let prop_kp_soed_dominates_cut =
  QCheck.Test.make ~name:"sum of degrees >= cut" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let h = random_instance seed in
      let kp = Kp.random (Rng.create (seed + 4)) h ~k:4 in
      Kp.sum_degrees kp >= Kp.cut kp)

(* ---- Objective ---- *)

module Objective = Mlpart_partition.Objective

(* sample(): net0 = {0,1} w1, net1 = {1,2,3} w2, net2 = {0,3,4} w1 *)

let test_obj_bipartition () =
  let h = sample () in
  (* net0 internal to part 0; net1 and net2 both span 2 parts *)
  let r = Objective.evaluate h [| 0; 0; 1; 1; 1 |] in
  check Alcotest.int "parts" 2 r.Objective.parts;
  check Alcotest.int "cut" 3 r.Objective.net_cut;
  check Alcotest.int "soed" 3 r.Objective.sum_degrees;
  check Alcotest.int "absorbed" 1 r.Objective.absorbed;
  check Alcotest.(array int) "areas" [| 3; 12 |] r.Objective.part_areas;
  check Alcotest.int "largest" 12 r.Objective.largest_part;
  check Alcotest.int "smallest" 3 r.Objective.smallest_part

let test_obj_three_parts () =
  let h = sample () in
  (* net2 now spans 3 parts: same cut as above but SOED rises by 1 *)
  let r = Objective.evaluate h [| 0; 0; 1; 1; 2 |] in
  check Alcotest.int "parts" 3 r.Objective.parts;
  check Alcotest.int "cut" 3 r.Objective.net_cut;
  check Alcotest.int "soed" 4 r.Objective.sum_degrees;
  check Alcotest.int "absorbed" 1 r.Objective.absorbed;
  check Alcotest.(array int) "areas" [| 3; 7; 5 |] r.Objective.part_areas;
  check Alcotest.int "largest" 7 r.Objective.largest_part;
  check Alcotest.int "smallest" 3 r.Objective.smallest_part

let test_obj_single_part () =
  let h = sample () in
  let r = Objective.evaluate h [| 0; 0; 0; 0; 0 |] in
  check Alcotest.int "parts" 1 r.Objective.parts;
  check Alcotest.int "cut" 0 r.Objective.net_cut;
  check Alcotest.int "soed" 0 r.Objective.sum_degrees;
  (* every net absorbed: total weight 1 + 2 + 1 *)
  check Alcotest.int "absorbed" 4 r.Objective.absorbed;
  check Alcotest.(array int) "areas" [| 15 |] r.Objective.part_areas

let test_obj_weighted_net_internal () =
  let h = sample () in
  (* the weight-2 net is the only absorbed one; both unit nets are cut *)
  let r = Objective.evaluate h [| 1; 0; 0; 0; 1 |] in
  check Alcotest.int "cut" 2 r.Objective.net_cut;
  check Alcotest.int "soed" 2 r.Objective.sum_degrees;
  check Alcotest.int "absorbed" 2 r.Objective.absorbed

let test_obj_rejects_bad_input () =
  let h = sample () in
  check Alcotest.bool "length mismatch" true
    (match Objective.evaluate h [| 0; 1 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check Alcotest.bool "negative part" true
    (match Objective.evaluate h [| 0; 0; -1; 1; 1 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "partition-state"
    [
      ( "bipartition",
        [
          Alcotest.test_case "cut" `Quick test_bp_cut;
          Alcotest.test_case "pins_on" `Quick test_bp_pins_on;
          Alcotest.test_case "move updates" `Quick test_bp_move_updates;
          Alcotest.test_case "gain matches move" `Quick test_bp_gain_matches_move;
          Alcotest.test_case "gain threshold" `Quick test_bp_gain_threshold;
          Alcotest.test_case "reject bad side" `Quick test_bp_create_rejects_bad_side;
          Alcotest.test_case "bounds" `Quick test_bp_bounds;
          Alcotest.test_case "random balanced" `Quick test_bp_random_balanced;
          Alcotest.test_case "rebalance" `Quick test_bp_rebalance;
          Alcotest.test_case "copy isolated" `Quick test_bp_copy_isolated;
          qtest prop_bp_incremental_cut;
          qtest prop_bp_gain_is_cut_delta;
        ] );
      ( "gain_bucket",
        [
          Alcotest.test_case "basic" `Quick test_gb_basic;
          Alcotest.test_case "lifo order" `Quick test_gb_lifo_order;
          Alcotest.test_case "fifo order" `Quick test_gb_fifo_order;
          Alcotest.test_case "random within top" `Quick
            test_gb_random_selects_within_top;
          Alcotest.test_case "adjust" `Quick test_gb_adjust;
          Alcotest.test_case "insert out of range" `Quick test_gb_insert_out_of_range;
          Alcotest.test_case "double insert rejected" `Quick
            test_gb_double_insert_rejected;
          Alcotest.test_case "select satisfying" `Quick test_gb_select_satisfying;
          Alcotest.test_case "select satisfying none" `Quick
            test_gb_select_satisfying_none;
          Alcotest.test_case "clear" `Quick test_gb_clear;
          Alcotest.test_case "max key and iter" `Quick test_gb_max_key_and_iter;
          qtest prop_gb_pop_order_descending;
          qtest prop_gb_size_tracks;
        ] );
      ( "kpartition",
        [
          Alcotest.test_case "objectives" `Quick test_kp_objectives;
          Alcotest.test_case "move" `Quick test_kp_move;
          Alcotest.test_case "fixed respected" `Quick test_kp_random_respects_fixed;
          Alcotest.test_case "random balanced" `Quick test_kp_random_balanced;
          Alcotest.test_case "move feasibility" `Quick test_kp_move_feasibility;
          qtest prop_kp_incremental;
          qtest prop_kp_soed_dominates_cut;
        ] );
      ( "objective",
        [
          Alcotest.test_case "bipartition metrics" `Quick test_obj_bipartition;
          Alcotest.test_case "three parts" `Quick test_obj_three_parts;
          Alcotest.test_case "single part" `Quick test_obj_single_part;
          Alcotest.test_case "weighted net internal" `Quick
            test_obj_weighted_net_internal;
          Alcotest.test_case "rejects bad input" `Quick
            test_obj_rejects_bad_input;
        ] );
    ]
