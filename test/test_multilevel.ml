(* Tests for the multilevel machinery: Match coarsening, projection, the ML
   driver and multilevel quadrisection. *)

module H = Mlpart_hypergraph.Hypergraph
module Match = Mlpart_multilevel.Match
module Ml = Mlpart_multilevel.Ml
module Mlw = Mlpart_multilevel.Ml_multiway
module Fm = Mlpart_partition.Fm
module Bp = Mlpart_partition.Bipartition
module Rng = Mlpart_util.Rng
module Pool = Mlpart_util.Pool

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let random_instance ?(modules = 200) seed =
  let rng = Rng.create seed in
  Mlpart_gen.Generate.rent ~rng ~modules ~nets:(modules * 5 / 4)
    ~pins:(7 * modules / 2) ()

(* ---- Match ---- *)

let check_valid_clustering h (cluster_of, k) =
  check Alcotest.int "length" (H.num_modules h) (Array.length cluster_of);
  let sizes = Array.make k 0 in
  Array.iter
    (fun c ->
      if c < 0 || c >= k then Alcotest.failf "cluster id %d out of range" c;
      sizes.(c) <- sizes.(c) + 1)
    cluster_of;
  Array.iteri
    (fun c s ->
      if s = 0 then Alcotest.failf "cluster %d empty" c;
      if s > 2 then Alcotest.failf "cluster %d has %d members (matching!)" c s)
    sizes;
  sizes

let test_match_full_ratio () =
  let h = random_instance 1 in
  let result = Match.run (Rng.create 2) h ~ratio:1.0 in
  let sizes = check_valid_clustering h result in
  let pairs = Array.fold_left (fun acc s -> if s = 2 then acc + 1 else acc) 0 sizes in
  (* a connected instance should pair up the vast majority of modules *)
  check Alcotest.bool "mostly pairs" true
    (2 * pairs > (4 * H.num_modules h) / 5)

let test_match_half_ratio () =
  let h = random_instance 3 in
  let cluster_of, k = Match.run (Rng.create 4) h ~ratio:0.5 in
  let sizes = check_valid_clustering h (cluster_of, k) in
  let matched =
    Array.fold_left (fun acc s -> if s = 2 then acc + 2 else acc) 0 sizes
  in
  let n = H.num_modules h in
  (* stops promptly once the ratio is reached *)
  check Alcotest.bool "about half matched" true
    (matched >= n * 45 / 100 && matched <= n * 60 / 100)

let test_match_ratio_controls_reduction () =
  let h = random_instance 5 in
  let _, k_full = Match.run (Rng.create 6) h ~ratio:1.0 in
  let _, k_half = Match.run (Rng.create 6) h ~ratio:0.5 in
  check Alcotest.bool "slower coarsening keeps more clusters" true
    (k_half > k_full)

let test_match_rejects_bad_ratio () =
  let h = random_instance 7 in
  (match Match.run (Rng.create 1) h ~ratio:0.0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

let test_match_matchable_exclusion () =
  let h = random_instance 8 in
  let excluded v = v < 10 in
  let cluster_of, k =
    Match.run ~matchable:(fun v -> not (excluded v)) (Rng.create 9) h ~ratio:1.0
  in
  (* excluded modules must be singletons *)
  let size = Array.make k 0 in
  Array.iter (fun c -> size.(c) <- size.(c) + 1) cluster_of;
  for v = 0 to 9 do
    check Alcotest.int "excluded module is singleton" 1 size.(cluster_of.(v))
  done

let test_match_ignores_large_nets () =
  (* one giant net only: nothing to match on *)
  let b = Mlpart_hypergraph.Builder.create () in
  Mlpart_hypergraph.Builder.add_modules b 20;
  Mlpart_hypergraph.Builder.add_net b (List.init 20 Fun.id);
  let h = Mlpart_hypergraph.Builder.build b in
  let _, k = Match.run ~max_net_size:10 (Rng.create 10) h ~ratio:1.0 in
  check Alcotest.int "all singletons" 20 k;
  let _, k' = Match.run ~max_net_size:25 (Rng.create 10) h ~ratio:1.0 in
  check Alcotest.bool "large net usable when allowed" true (k' < 20)

let test_match_prefers_strong_connection () =
  (* v0 shares a 2-pin net with v1 and only a 3-pin net with v2: conn to
     v1 is 1, to v2 is 1/2, so {v0,v1} must match. *)
  let h =
    H.make ~areas:[| 1; 1; 1; 1 |]
      ~nets:[| ([| 0; 1 |], 1); ([| 0; 2; 3 |], 1) |]
      ()
  in
  (* module 0 is visited first for some permutation; try several seeds and
     demand that whenever 0 and 1 are co-clustered the run had the choice *)
  let co01 = ref 0 and runs = 20 in
  for seed = 1 to runs do
    let cluster_of, _ = Match.run (Rng.create seed) h ~ratio:1.0 in
    if cluster_of.(0) = cluster_of.(1) then incr co01
  done;
  check Alcotest.bool "0-1 matched in the majority of runs" true
    (2 * !co01 > runs)

let test_match_area_preference () =
  (* equal net structure, but w has a huge area: conn prefers the light one *)
  let h =
    H.make ~areas:[| 1; 1; 50 |]
      ~nets:[| ([| 0; 1 |], 1); ([| 0; 2 |], 1) |]
      ()
  in
  let co01 = ref 0 and runs = 20 in
  for seed = 1 to runs do
    let cluster_of, _ = Match.run (Rng.create seed) h ~ratio:1.0 in
    if cluster_of.(0) = cluster_of.(1) then incr co01
  done;
  check Alcotest.bool "light neighbour preferred" true (2 * !co01 > runs)

let test_match_respects_area_cap () =
  (* pairing stops once the combined area would exceed the cap *)
  let h =
    H.make ~areas:[| 10; 10; 1; 1 |]
      ~nets:[| ([| 0; 1 |], 5); ([| 2; 3 |], 1); ([| 0; 2 |], 1) |]
      ()
  in
  for seed = 1 to 8 do
    let cluster_of, _ =
      Match.run ~max_cluster_area:12 (Rng.create seed) h ~ratio:1.0
    in
    check Alcotest.bool "heavy pair refused" true
      (cluster_of.(0) <> cluster_of.(1))
  done

let test_match_pair_ok_respected () =
  let h = random_instance 30 in
  let forbid v w = (v + w) mod 2 = 0 in
  let cluster_of, k =
    Match.run ~pair_ok:(fun v w -> not (forbid v w)) (Rng.create 31) h
      ~ratio:1.0
  in
  (* reconstruct pairs and check none is forbidden *)
  let members = Array.make k [] in
  Array.iteri (fun v c -> members.(c) <- v :: members.(c)) cluster_of;
  Array.iter
    (fun cluster ->
      match cluster with
      | [ v; w ] ->
          check Alcotest.bool "pair allowed" false (forbid v w)
      | [ _ ] | [] -> ()
      | _ -> Alcotest.fail "cluster larger than a pair")
    members

let prop_hierarchy_cluster_cap =
  QCheck.Test.make ~name:"hierarchy keeps cluster areas under the cap"
    ~count:20 QCheck.small_int (fun seed ->
      let h = random_instance ~modules:300 seed in
      let threshold = 20 in
      let hierarchy =
        Mlpart_multilevel.Hierarchy.build ~threshold ~ratio:1.0
          ~match_net_size:10 ~merge_duplicates:false ~max_levels:64
          (Rng.create (seed + 1)) h
      in
      let cap = 4 * H.total_area h / threshold in
      let coarsest = hierarchy.Mlpart_multilevel.Hierarchy.coarsest in
      H.max_area coarsest <= Stdlib.max cap 2)

(* ---- projection ---- *)

let test_project () =
  let cluster_of = [| 0; 0; 1; 2; 1 |] in
  let coarse_side = [| 1; 0; 1 |] in
  check Alcotest.(array int) "projection" [| 1; 1; 0; 1; 0 |]
    (Ml.project cluster_of coarse_side)

let prop_projection_preserves_cut =
  (* Definition 1 drops only internal-to-cluster nets, so the weighted cut
     of a coarse solution equals the cut of its projection. *)
  QCheck.Test.make ~name:"projection preserves cut" ~count:40 QCheck.small_int
    (fun seed ->
      let h = random_instance ~modules:80 seed in
      let rng = Rng.create (seed + 1) in
      let cluster_of, k = Match.run rng h ~ratio:1.0 in
      let coarse, _ = H.induce h cluster_of in
      let kp = Mlpart_partition.Kpartition.random rng coarse ~k:2 in
      let coarse_side = Mlpart_partition.Kpartition.side_array kp in
      let fine_side = Ml.project cluster_of coarse_side in
      ignore k;
      Fm.cut_of coarse coarse_side = Fm.cut_of h fine_side)

(* ---- coarsening hierarchy ---- *)

let test_coarsen_reaches_threshold () =
  let h = random_instance ~modules:400 1 in
  let config = { Ml.mlf with Ml.threshold = 35 } in
  let hierarchy, coarsest = Ml.coarsen ~config (Rng.create 2) h in
  check Alcotest.bool "several levels" true (List.length hierarchy >= 3);
  check Alcotest.bool "coarsest small" true (H.num_modules coarsest <= 35)

let test_coarsen_depth_grows_as_ratio_drops () =
  let h = random_instance ~modules:400 3 in
  let depth ratio =
    let config = Ml.with_ratio Ml.mlf ratio in
    List.length (fst (Ml.coarsen ~config (Rng.create 4) h))
  in
  check Alcotest.bool "R=0.33 deeper than R=1" true (depth 0.33 > depth 1.0)

let test_coarsen_small_input_no_levels () =
  let h = random_instance ~modules:20 5 in
  let hierarchy, coarsest = Ml.coarsen (Rng.create 6) h in
  check Alcotest.int "no coarsening below threshold" 0 (List.length hierarchy);
  check Alcotest.int "coarsest is input" (H.num_modules h)
    (H.num_modules coarsest)

(* ---- ML driver ---- *)

let test_ml_consistent_and_balanced () =
  let h = random_instance 7 in
  let r = Ml.run (Rng.create 8) h in
  check Alcotest.int "cut recount" (Fm.cut_of h r.Ml.side) r.Ml.cut;
  check Alcotest.bool "balanced" true
    (Bp.is_balanced (Bp.create h r.Ml.side) (Bp.bounds h));
  check Alcotest.bool "levels recorded" true (r.Ml.levels > 0)

let test_ml_beats_flat_fm_on_average () =
  let h = random_instance ~modules:400 9 in
  let rng = Rng.create 10 in
  let avg f =
    let total = ref 0 in
    for _ = 1 to 5 do
      total := !total + f (Rng.split rng)
    done;
    !total
  in
  let ml = avg (fun rng -> (Ml.run ~config:Ml.mlc rng h).Ml.cut) in
  let fm = avg (fun rng -> (Fm.run rng h).Fm.cut) in
  check Alcotest.bool "multilevel no worse than flat on average" true (ml <= fm)

let test_ml_deterministic () =
  let h = random_instance 11 in
  let a = Ml.run (Rng.create 12) h and b = Ml.run (Rng.create 12) h in
  check Alcotest.(array int) "same result" a.Ml.side b.Ml.side

let test_ml_merge_duplicates_variant () =
  let h = random_instance 13 in
  let config = { Ml.mlc with Ml.merge_duplicates = true } in
  let r = Ml.run ~config (Rng.create 14) h in
  check Alcotest.int "cut recount" (Fm.cut_of h r.Ml.side) r.Ml.cut

let test_ml_multi_start_no_worse () =
  let h = random_instance ~modules:300 22 in
  let one = Ml.run ~config:Ml.mlc (Rng.create 23) h in
  let multi =
    Ml.run ~config:{ Ml.mlc with Ml.coarsest_starts = 8 } (Rng.create 23) h
  in
  check Alcotest.int "cut recount" (Fm.cut_of h multi.Ml.side) multi.Ml.cut;
  (* not guaranteed pointwise, but at this size/seed extra starts never
     hurt the final cut *)
  check Alcotest.bool "multi-start competitive" true
    (multi.Ml.cut <= one.Ml.cut + 5)

let test_ml_finds_clique_split () =
  let b = Mlpart_hypergraph.Builder.create () in
  Mlpart_hypergraph.Builder.add_modules b 32;
  for v = 0 to 15 do
    for w = v + 1 to 15 do
      Mlpart_hypergraph.Builder.add_net b [ v; w ];
      Mlpart_hypergraph.Builder.add_net b [ v + 16; w + 16 ]
    done
  done;
  Mlpart_hypergraph.Builder.add_net b [ 0; 16 ];
  let h = Mlpart_hypergraph.Builder.build b in
  let config = { Ml.mlc with Ml.threshold = 8 } in
  let r = Ml.run ~config (Rng.create 15) h in
  check Alcotest.int "optimal cut" 1 r.Ml.cut

let prop_ml_consistent =
  QCheck.Test.make ~name:"ML consistent across ratios" ~count:20
    QCheck.(pair small_int (int_range 0 2))
    (fun (seed, ri) ->
      let ratio = List.nth [ 1.0; 0.5; 0.33 ] ri in
      let h = random_instance ~modules:150 seed in
      let r = Ml.run ~config:(Ml.with_ratio Ml.mlc ratio) (Rng.create (seed + 30)) h in
      r.Ml.cut = Fm.cut_of h r.Ml.side
      && Bp.is_balanced (Bp.create h r.Ml.side) (Bp.bounds h))

let test_vcycles_monotone () =
  let h = random_instance ~modules:300 24 in
  for seed = 30 to 33 do
    let single = Ml.run ~config:Ml.mlc (Rng.create seed) h in
    let cycled = Ml.run_vcycles ~config:Ml.mlc ~cycles:4 (Rng.create seed) h in
    check Alcotest.bool "cycles never lose" true (cycled.Ml.cut <= single.Ml.cut);
    check Alcotest.int "cut recount" (Fm.cut_of h cycled.Ml.side) cycled.Ml.cut
  done

let test_vcycles_one_equals_run () =
  let h = random_instance 25 in
  let a = Ml.run ~config:Ml.mlc (Rng.create 26) h in
  let b = Ml.run_vcycles ~config:Ml.mlc ~cycles:1 (Rng.create 26) h in
  check Alcotest.(array int) "identical" a.Ml.side b.Ml.side

let test_ml_run_starts_pool_identical () =
  (* pre-split generator streams + (cut, index) winner selection: the pool
     size must not change the outcome, even with multi-start enabled at the
     coarsest level too *)
  let h = random_instance ~modules:300 28 in
  let config = { Ml.mlc with Ml.coarsest_starts = 4 } in
  let seq = Ml.run_starts ~config ~starts:6 (Rng.create 29) h in
  let par =
    Pool.with_pool ~jobs:4 (fun pool ->
        Ml.run_starts ~config ~pool ~starts:6 (Rng.create 29) h)
  in
  check Alcotest.int "same cut" seq.Ml.cut par.Ml.cut;
  check Alcotest.(array int) "same side" seq.Ml.side par.Ml.side;
  check Alcotest.int "cut recount" (Fm.cut_of h par.Ml.side) par.Ml.cut

(* Jobs values for the intra-run determinism tests.  The CI matrix sets
   MLPART_TEST_JOBS so both the sequential schedule and a multi-domain
   schedule are exercised; the default covers 2 and 4 domains. *)
let intra_jobs_list () =
  match Sys.getenv_opt "MLPART_TEST_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j > 1 -> [ j ]
      | Some _ -> [ 2 ]
      | None -> [ 2; 4 ])
  | None -> [ 2; 4 ]

let test_ml_intra_run_pool_identical () =
  (* Intra-run parallelism (round-based matching, parallel induce, round
     pre-pass refinement) is bit-identical for any pool size: the round
     algorithms also run sequentially, so the schedule cannot leak into the
     output.  300 modules crosses rounds_min_modules = 128, so every
     parallel stage actually executes. *)
  let h = random_instance ~modules:300 44 in
  let seq = Ml.run ~config:Ml.mlc (Rng.create 45) h in
  List.iter
    (fun jobs ->
      let par =
        Pool.with_pool ~jobs (fun pool ->
            Ml.run ~config:Ml.mlc ~pool (Rng.create 45) h)
      in
      check Alcotest.int
        (Printf.sprintf "same cut at jobs=%d" jobs)
        seq.Ml.cut par.Ml.cut;
      check
        Alcotest.(array int)
        (Printf.sprintf "same side at jobs=%d" jobs)
        seq.Ml.side par.Ml.side;
      check Alcotest.int "cut recount" (Fm.cut_of h par.Ml.side) par.Ml.cut)
    (intra_jobs_list ())

let test_ml_run_starts_deadline () =
  let module Deadline = Mlpart_util.Deadline in
  let h = random_instance ~modules:200 31 in
  (* an already-expired deadline still completes the first start and returns
     its (valid) partition — never an empty or partial result *)
  let dl = Deadline.make ~seconds:0.0 in
  let timed = Ml.run_starts ~deadline:dl ~starts:8 (Rng.create 32) h in
  let first = Ml.run_starts ~starts:1 (Rng.create 32) h in
  check Alcotest.bool "deadline reported expired" true (Deadline.expired dl);
  check Alcotest.int "first start only" first.Ml.cut timed.Ml.cut;
  check Alcotest.(array int) "same side" first.Ml.side timed.Ml.side;
  check Alcotest.int "cut recount" (Fm.cut_of h timed.Ml.side) timed.Ml.cut;
  (* a generous deadline changes nothing: all starts complete *)
  let dl = Deadline.make ~seconds:3600.0 in
  let full = Ml.run_starts ~deadline:dl ~starts:4 (Rng.create 32) h in
  let untimed = Ml.run_starts ~starts:4 (Rng.create 32) h in
  check Alcotest.bool "not expired" false (Deadline.expired dl);
  check Alcotest.int "untimed cut" untimed.Ml.cut full.Ml.cut;
  check Alcotest.(array int) "untimed side" untimed.Ml.side full.Ml.side

(* Golden determinism: recorded cuts for a fixed seed.  Any change here
   means the seeded pipeline output changed — intentional algorithm edits
   must update the constants; accidental nondeterminism (or a pool-size
   dependence) fails loudly. *)
let test_golden_vcycles_cut () =
  let h = random_instance ~modules:200 90 in
  let r = Ml.run_vcycles ~config:Ml.mlc ~cycles:2 (Rng.create 91) h in
  check Alcotest.int "recorded 2-cycle cut" 23 r.Ml.cut;
  check Alcotest.int "cut recount" (Fm.cut_of h r.Ml.side) r.Ml.cut

let test_golden_run_starts_cut () =
  let h = random_instance ~modules:200 90 in
  let seq = Ml.run_starts ~config:Ml.mlc ~starts:4 (Rng.create 92) h in
  check Alcotest.int "recorded 4-start cut" 23 seq.Ml.cut;
  check Alcotest.int "cut recount" (Fm.cut_of h seq.Ml.side) seq.Ml.cut;
  (* the same recorded value must hold through a domain pool *)
  let par =
    Pool.with_pool ~jobs:3 (fun pool ->
        Ml.run_starts ~config:Ml.mlc ~pool ~starts:4 (Rng.create 92) h)
  in
  check Alcotest.int "pooled run matches the record" seq.Ml.cut par.Ml.cut;
  check Alcotest.(array int) "pooled side identical" seq.Ml.side par.Ml.side

let test_vcycles_rejects_zero () =
  let h = random_instance 27 in
  (match Ml.run_vcycles ~cycles:0 (Rng.create 1) h with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

(* ---- multilevel quadrisection ---- *)

let test_mlw_consistent () =
  let h = random_instance 16 in
  let r = Mlw.run (Rng.create 17) h ~k:4 in
  check Alcotest.int "cut recount"
    (Mlpart_partition.Multiway.cut_of h ~k:4 r.Mlw.side)
    r.Mlw.cut

let test_mlw_fixed_respected_through_levels () =
  let h = random_instance ~modules:300 18 in
  let fixed = Array.make (H.num_modules h) (-1) in
  List.iteri (fun i v -> fixed.(v) <- i mod 4) [ 0; 11; 22; 33; 44; 55; 66; 77 ];
  let r = Mlw.run ~fixed (Rng.create 19) h ~k:4 in
  Array.iteri
    (fun v p -> if p >= 0 then check Alcotest.int "pad pinned" p r.Mlw.side.(v))
    fixed

let test_mlw_beats_flat_on_average () =
  let h = random_instance ~modules:400 20 in
  let rng = Rng.create 21 in
  let avg f =
    let total = ref 0 in
    for _ = 1 to 3 do
      total := !total + f (Rng.split rng)
    done;
    !total
  in
  let ml = avg (fun rng -> (Mlw.run rng h ~k:4).Mlw.cut) in
  let flat =
    avg (fun rng -> (Mlpart_partition.Multiway.run rng h ~k:4).Mlpart_partition.Multiway.cut)
  in
  check Alcotest.bool "multilevel 4-way no worse" true (ml <= flat)

(* ---- recursive bisection ---- *)

module Rb = Mlpart_multilevel.Rb

let test_rb_consistent () =
  let h = random_instance 40 in
  let r = Rb.run (Rng.create 41) h ~k:4 in
  let report = Mlpart_partition.Objective.evaluate h r.Rb.side in
  check Alcotest.int "cut recount" report.Mlpart_partition.Objective.net_cut r.Rb.cut;
  check Alcotest.int "soed recount"
    report.Mlpart_partition.Objective.sum_degrees r.Rb.sum_degrees;
  check Alcotest.int "k parts used" 4 report.Mlpart_partition.Objective.parts;
  check Alcotest.int "bisections for k=4" 3 r.Rb.bisections

let test_rb_balanced_parts () =
  let h = random_instance ~modules:400 42 in
  let r = Rb.run (Rng.create 43) h ~k:4 in
  let report = Mlpart_partition.Objective.evaluate h r.Rb.side in
  let quarter = H.total_area h / 4 in
  Array.iter
    (fun a ->
      check Alcotest.bool "each part near a quarter" true
        (abs (a - quarter) <= (quarter / 3) + 2))
    report.Mlpart_partition.Objective.part_areas

let test_rb_rejects_non_power () =
  let h = random_instance 44 in
  (match Rb.run (Rng.create 1) h ~k:3 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

let test_rb_k2_matches_ml () =
  let h = random_instance 45 in
  let rb = Rb.run (Rng.create 46) h ~k:2 in
  let ml = Ml.run ~config:Ml.mlc (Rng.create 46) h in
  check Alcotest.int "k=2 RB is one ML call" ml.Ml.cut rb.Rb.cut

let test_rb_intra_run_pool_identical () =
  (* the recursive driver threads the pool into every sub-bisection; the
     whole k-way labelling must be schedule-independent *)
  let h = random_instance ~modules:400 48 in
  let seq = Rb.run (Rng.create 49) h ~k:4 in
  List.iter
    (fun jobs ->
      let par =
        Pool.with_pool ~jobs (fun pool ->
            Rb.run ~pool (Rng.create 49) h ~k:4)
      in
      check Alcotest.int
        (Printf.sprintf "same cut at jobs=%d" jobs)
        seq.Rb.cut par.Rb.cut;
      check
        Alcotest.(array int)
        (Printf.sprintf "same side at jobs=%d" jobs)
        seq.Rb.side par.Rb.side)
    (intra_jobs_list ())

let test_rb_objective_tradeoff () =
  (* keeping cut nets optimises soed, dropping them optimises cut — weak
     inequality over a few seeds to stay robust *)
  let h = random_instance ~modules:400 47 in
  let total filter =
    let acc = ref 0 in
    for seed = 1 to 3 do
      let config = { Rb.default with Rb.keep_cut_nets = filter } in
      let r = Rb.run ~config (Rng.create seed) h ~k:4 in
      acc := !acc + r.Rb.sum_degrees
    done;
    !acc
  in
  check Alcotest.bool "keeping cut nets helps soed" true
    (total true <= total false + 2)

(* ---- direct k-way n-level engine ---- *)

module Nlevel = Mlpart_multilevel.Nlevel

let test_nlevel_consistent () =
  let h = random_instance ~modules:300 50 in
  List.iter
    (fun k ->
      let r = Nlevel.run (Rng.create 51) h ~k in
      let report = Mlpart_partition.Objective.evaluate h r.Nlevel.side in
      check Alcotest.int
        (Printf.sprintf "%d-way cut recount" k)
        report.Mlpart_partition.Objective.net_cut r.Nlevel.cut;
      check Alcotest.int
        (Printf.sprintf "%d parts used" k)
        k report.Mlpart_partition.Objective.parts;
      check Alcotest.bool "contracted down" true
        (r.Nlevel.contractions > H.num_modules h / 2))
    [ 2; 3; 4 ]

(* Golden determinism on a Table I stand-in: fixed instantiation seed,
   fixed engine seed.  Any change here means the one-pair-at-a-time
   pipeline (rating order, memento replay, gain-cache refinement) changed
   output — intentional edits must update the constants. *)
let balu () =
  Mlpart_gen.Suite.instantiate ~seed:5 (Mlpart_gen.Suite.find "balu")

let test_nlevel_golden_balu () =
  let h = balu () in
  List.iter
    (fun (k, recorded) ->
      let r = Nlevel.run (Rng.create 5) h ~k in
      check Alcotest.int
        (Printf.sprintf "recorded balu %d-way cut" k)
        recorded r.Nlevel.cut;
      check Alcotest.int "cut recount"
        (Nlevel.cut_of h ~k r.Nlevel.side)
        r.Nlevel.cut)
    [ (2, 69); (4, 161) ]

let test_nlevel_jobs_invariance () =
  (* the engine is strictly sequential: running it with live worker
     domains around (as the CLI does when --jobs > 1) must be bit-identical
     to the bare run *)
  let h = balu () in
  let seq = Nlevel.run (Rng.create 5) h ~k:4 in
  List.iter
    (fun jobs ->
      let par =
        Pool.with_pool ~jobs (fun _pool -> Nlevel.run (Rng.create 5) h ~k:4)
      in
      check Alcotest.int
        (Printf.sprintf "same cut at jobs=%d" jobs)
        seq.Nlevel.cut par.Nlevel.cut;
      check
        Alcotest.(array int)
        (Printf.sprintf "same side at jobs=%d" jobs)
        seq.Nlevel.side par.Nlevel.side)
    (intra_jobs_list ())

let test_nlevel_deterministic () =
  let h = random_instance ~modules:250 52 in
  let a = Nlevel.run (Rng.create 53) h ~k:3 in
  let b = Nlevel.run (Rng.create 53) h ~k:3 in
  check Alcotest.int "same cut" a.Nlevel.cut b.Nlevel.cut;
  check Alcotest.(array int) "same side" a.Nlevel.side b.Nlevel.side

let test_nlevel_trail_covers_input () =
  (* contraction must reach the threshold and the trail must account for
     every vanished module; replaying it restores every module and area *)
  let h = random_instance ~modules:200 54 in
  let hy = Nlevel.coarsen_only ~threshold:40 (Rng.create 55) h in
  let alive = Nlevel.num_alive hy in
  check Alcotest.bool "reached threshold" true (alive <= 40);
  check Alcotest.int "trail accounts for the rest"
    (H.num_modules h - alive)
    (Nlevel.trail_length hy);
  Nlevel.uncontract_all hy;
  check Alcotest.int "all alive" (H.num_modules h) (Nlevel.num_alive hy);
  for v = 0 to H.num_modules h - 1 do
    if Nlevel.module_area hy v <> H.area h v then
      Alcotest.failf "module %d area %d after replay, expected %d" v
        (Nlevel.module_area hy v) (H.area h v)
  done

let test_nlevel_rejects_bad_k () =
  let h = random_instance 56 in
  match Nlevel.run (Rng.create 1) h ~k:1 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "multilevel"
    [
      ( "match",
        [
          Alcotest.test_case "full ratio" `Quick test_match_full_ratio;
          Alcotest.test_case "half ratio" `Quick test_match_half_ratio;
          Alcotest.test_case "ratio controls reduction" `Quick
            test_match_ratio_controls_reduction;
          Alcotest.test_case "rejects bad ratio" `Quick test_match_rejects_bad_ratio;
          Alcotest.test_case "matchable exclusion" `Quick
            test_match_matchable_exclusion;
          Alcotest.test_case "ignores large nets" `Quick
            test_match_ignores_large_nets;
          Alcotest.test_case "prefers strong connection" `Quick
            test_match_prefers_strong_connection;
          Alcotest.test_case "area preference" `Quick test_match_area_preference;
          Alcotest.test_case "area cap" `Quick test_match_respects_area_cap;
          Alcotest.test_case "pair_ok" `Quick test_match_pair_ok_respected;
          qtest prop_hierarchy_cluster_cap;
        ] );
      ( "projection",
        [
          Alcotest.test_case "project" `Quick test_project;
          qtest prop_projection_preserves_cut;
        ] );
      ( "coarsen",
        [
          Alcotest.test_case "reaches threshold" `Quick
            test_coarsen_reaches_threshold;
          Alcotest.test_case "depth grows as R drops" `Quick
            test_coarsen_depth_grows_as_ratio_drops;
          Alcotest.test_case "small input" `Quick test_coarsen_small_input_no_levels;
        ] );
      ( "ml",
        [
          Alcotest.test_case "consistent and balanced" `Quick
            test_ml_consistent_and_balanced;
          Alcotest.test_case "no worse than flat FM" `Slow
            test_ml_beats_flat_fm_on_average;
          Alcotest.test_case "deterministic" `Quick test_ml_deterministic;
          Alcotest.test_case "merge duplicates" `Quick
            test_ml_merge_duplicates_variant;
          Alcotest.test_case "multi-start coarsest" `Quick
            test_ml_multi_start_no_worse;
          Alcotest.test_case "finds clique split" `Quick test_ml_finds_clique_split;
          qtest prop_ml_consistent;
          Alcotest.test_case "vcycles monotone" `Slow test_vcycles_monotone;
          Alcotest.test_case "one vcycle = run" `Quick test_vcycles_one_equals_run;
          Alcotest.test_case "vcycles reject zero" `Quick test_vcycles_rejects_zero;
          Alcotest.test_case "golden vcycles cut" `Quick test_golden_vcycles_cut;
          Alcotest.test_case "golden run_starts cut" `Quick
            test_golden_run_starts_cut;
          Alcotest.test_case "run_starts pool identical" `Quick
            test_ml_run_starts_pool_identical;
          Alcotest.test_case "run_starts deadline" `Quick
            test_ml_run_starts_deadline;
          Alcotest.test_case "intra-run pool identical" `Quick
            test_ml_intra_run_pool_identical;
        ] );
      ( "rb",
        [
          Alcotest.test_case "consistent" `Quick test_rb_consistent;
          Alcotest.test_case "balanced parts" `Quick test_rb_balanced_parts;
          Alcotest.test_case "rejects non-power" `Quick test_rb_rejects_non_power;
          Alcotest.test_case "k=2 is ML" `Quick test_rb_k2_matches_ml;
          Alcotest.test_case "objective tradeoff" `Slow test_rb_objective_tradeoff;
          Alcotest.test_case "intra-run pool identical" `Quick
            test_rb_intra_run_pool_identical;
        ] );
      ( "ml_multiway",
        [
          Alcotest.test_case "consistent" `Quick test_mlw_consistent;
          Alcotest.test_case "fixed through levels" `Quick
            test_mlw_fixed_respected_through_levels;
          Alcotest.test_case "no worse than flat" `Slow test_mlw_beats_flat_on_average;
        ] );
      ( "nlevel",
        [
          Alcotest.test_case "consistent" `Quick test_nlevel_consistent;
          Alcotest.test_case "golden balu cuts" `Quick test_nlevel_golden_balu;
          Alcotest.test_case "jobs invariance" `Quick
            test_nlevel_jobs_invariance;
          Alcotest.test_case "deterministic" `Quick test_nlevel_deterministic;
          Alcotest.test_case "trail covers input" `Quick
            test_nlevel_trail_covers_input;
          Alcotest.test_case "rejects k < 2" `Quick test_nlevel_rejects_bad_k;
        ] );
    ]
