(* Quickstart: build a small netlist by hand, bipartition it with the ML
   multilevel algorithm, and inspect the result.

   Run with:  dune exec examples/quickstart.exe *)

module H = Mlpart_hypergraph.Hypergraph
module Builder = Mlpart_hypergraph.Builder
module Rng = Mlpart_util.Rng
module Ml = Mlpart_multilevel.Ml

let () =
  (* A toy netlist: two 8-module cliques joined by a single bridge net.
     The optimal bipartition cuts exactly that one net. *)
  let b = Builder.create ~name:"two-cliques" () in
  Builder.add_modules b 16;
  for v = 0 to 7 do
    for w = v + 1 to 7 do
      Builder.add_net b [ v; w ];
      Builder.add_net b [ v + 8; w + 8 ]
    done
  done;
  Builder.add_net b [ 3; 11 ];
  let h = Builder.build b in
  Format.printf "netlist: %a@." H.pp_summary h;

  (* Partition: MLc is the paper's strongest configuration (CLIP engine);
     the coarsening threshold is lowered because the instance is tiny. *)
  let config = { (Ml.with_ratio Ml.mlc 0.5) with Ml.threshold = 4 } in
  let rng = Rng.create 42 in
  let result = Ml.run ~config rng h in

  Format.printf "cut = %d net(s), %d coarsening level(s)@." result.Ml.cut
    result.Ml.levels;
  Format.printf "side of each module: ";
  Array.iter (fun s -> Format.printf "%d" s) result.Ml.side;
  Format.printf "@.";

  (* The two cliques should land on opposite sides with cut 1. *)
  let side0 = result.Ml.side.(0) in
  let clean =
    Array.for_all (fun v -> result.Ml.side.(v) = side0) (Array.init 8 Fun.id)
    && Array.for_all
         (fun v -> result.Ml.side.(v + 8) = 1 - side0)
         (Array.init 8 Fun.id)
  in
  Format.printf "cliques separated cleanly: %b@." clean;

  (* Round-trip through the hMETIS-style exchange format. *)
  let text = Mlpart_hypergraph.Hgr_io.to_string h in
  let h' = Mlpart_hypergraph.Hgr_io.of_string ~name:"reparsed" text in
  Format.printf "hgr round-trip: %d nets, %d pins (same as above: %b)@."
    (H.num_nets h') (H.num_pins h')
    (H.num_nets h' = H.num_nets h && H.num_pins h' = H.num_pins h)
