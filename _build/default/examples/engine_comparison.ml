(* Engine comparison: exercise every iterative-improvement engine in the
   library on one circuit — the menu of §II of the paper.

   Run with:  dune exec examples/engine_comparison.exe -- [circuit] [runs] *)

module Rng = Mlpart_util.Rng
module Stats = Mlpart_util.Stats
module Fm = Mlpart_partition.Fm
module Prop = Mlpart_partition.Prop
module Lsmc = Mlpart_partition.Lsmc
module Gain_bucket = Mlpart_partition.Gain_bucket
module Ml = Mlpart_multilevel.Ml

let engines =
  [
    ("FM (LIFO)", fun rng h -> (Fm.run rng h).Fm.cut);
    ("FM (FIFO)",
     fun rng h ->
       (Fm.run ~config:{ Fm.default with policy = Gain_bucket.Fifo } rng h).Fm.cut);
    ("FM (random)",
     fun rng h ->
       (Fm.run ~config:{ Fm.default with policy = Gain_bucket.Random } rng h)
         .Fm.cut);
    ("CLIP", fun rng h -> (Fm.run ~config:Fm.clip rng h).Fm.cut);
    ("CLIP + LA3",
     fun rng h ->
       (Fm.run ~config:{ Fm.clip with tie_break = Fm.Lookahead 3 } rng h).Fm.cut);
    ("CDIP",
     fun rng h ->
       (Fm.run ~config:{ Fm.clip with backtrack = Some (64, 8) } rng h).Fm.cut);
    ("PROP", fun rng h -> (Prop.run rng h).Prop.cut);
    ("CL-PR",
     fun rng h -> (Prop.run ~config:{ Prop.default with clip = true } rng h).Prop.cut);
    ("LSMC(10)",
     fun rng h ->
       (Lsmc.run ~config:{ Lsmc.default with descents = 10 } rng h).Lsmc.cut);
    ("MLf (R=0.5)",
     fun rng h -> (Ml.run ~config:(Ml.with_ratio Ml.mlf 0.5) rng h).Ml.cut);
    ("MLc (R=0.5)",
     fun rng h -> (Ml.run ~config:(Ml.with_ratio Ml.mlc 0.5) rng h).Ml.cut);
  ]

let () =
  let circuit = if Array.length Sys.argv > 1 then Sys.argv.(1) else "primary1" in
  let runs =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 10
  in
  let h = Mlpart_gen.Suite.(instantiate (find circuit)) in
  Format.printf "circuit: %a, %d runs/engine@."
    Mlpart_hypergraph.Hypergraph.pp_summary h runs;
  let rows =
    List.map
      (fun (name, run) ->
        let rng = Rng.create 11 in
        let stats = Stats.create () in
        let start = Sys.time () in
        for _ = 1 to runs do
          Stats.add stats (float_of_int (run (Rng.split rng) h))
        done;
        [
          name;
          string_of_int (int_of_float (Stats.min stats));
          Printf.sprintf "%.1f" (Stats.mean stats);
          Printf.sprintf "%.1f" (Stats.stddev stats);
          Printf.sprintf "%.2f" (Sys.time () -. start);
        ])
      engines
  in
  Mlpart_util.Tab.print ~header:[ "engine"; "min"; "avg"; "std"; "cpu (s)" ] rows
