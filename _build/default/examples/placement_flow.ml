(* Placement flow: the scenario that motivated the paper's quadrisection
   work (§IV.D) — top-down placement starts by cutting the die into four
   quadrants, and the partitioner's quality decides the wirelength.

   This example runs three quadrisection strategies on a mid-size circuit
   and compares both the 4-way cut and the half-perimeter wirelength of a
   placement seeded with the resulting quadrants:
     1. GORDIAN-style analytic placement splits,
     2. flat 4-way FM (Sanchis engine),
     3. multilevel 4-way (the paper's ML, with pre-assigned pads).

   Run with:  dune exec examples/placement_flow.exe *)

module H = Mlpart_hypergraph.Hypergraph
module Rng = Mlpart_util.Rng
module Gordian = Mlpart_placement.Gordian
module Quadratic = Mlpart_placement.Quadratic
module Multiway = Mlpart_partition.Multiway
module Ml_multiway = Mlpart_multilevel.Ml_multiway

(* Wirelength proxy: place each quadrant's modules at its centre and measure
   HPWL — the quantity a top-down placer refines from this starting point. *)
let quadrant_hpwl h side =
  let centre = [| (0.25, 0.25); (0.25, 0.75); (0.75, 0.25); (0.75, 0.75) |] in
  let n = H.num_modules h in
  let x = Array.make n 0.0 and y = Array.make n 0.0 in
  for v = 0 to n - 1 do
    let cx, cy = centre.(side.(v)) in
    x.(v) <- cx;
    y.(v) <- cy
  done;
  Quadratic.hpwl h ~x ~y

let () =
  let h = Mlpart_gen.Suite.(instantiate (find "primary2")) in
  Format.printf "circuit: %a@." H.pp_summary h;
  let rng = Rng.create 7 in

  (* GORDIAN pre-places the highest-degree modules as pads; reuse the same
     pad assignment for the ML run so the comparison is fair. *)
  let gordian = Gordian.run h in
  Format.printf "GORDIAN:   cut %4d   quadrant-HPWL %8.1f@." gordian.Gordian.cut
    (quadrant_hpwl h gordian.Gordian.side);

  let flat = Multiway.run (Rng.split rng) h ~k:4 in
  Format.printf "flat FM4:  cut %4d   quadrant-HPWL %8.1f@." flat.Multiway.cut
    (quadrant_hpwl h flat.Multiway.side);

  (* Pre-assign the GORDIAN pads to the quadrant the analytic placement
     chose for them — the paper's "user can pre-assign I/O pads" hook. *)
  let fixed = Array.make (H.num_modules h) (-1) in
  Array.iter
    (fun pad -> fixed.(pad) <- gordian.Gordian.side.(pad))
    gordian.Gordian.pads;
  let ml = Ml_multiway.run ~fixed (Rng.split rng) h ~k:4 in
  Format.printf "ML 4-way:  cut %4d   quadrant-HPWL %8.1f@." ml.Ml_multiway.cut
    (quadrant_hpwl h ml.Ml_multiway.side);

  (* Verify the pads stayed where they were pinned. *)
  let pads_respected =
    Array.for_all
      (fun pad -> ml.Ml_multiway.side.(pad) = gordian.Gordian.side.(pad))
      gordian.Gordian.pads
  in
  Format.printf "pads respected by ML: %b@." pads_respected;

  (* Full global placement: recursive ML quadrisection with terminal
     propagation (the paper's [24] application), against GORDIAN's analytic
     placement legalized to the same grid discipline. *)
  let module Topdown = Mlpart_placement.Topdown in
  let gx, gy =
    Topdown.grid_legalize h ~x:gordian.Gordian.x ~y:gordian.Gordian.y
  in
  let gordian_hpwl = Quadratic.hpwl h ~x:gx ~y:gy in
  let placed = Topdown.run (Rng.split rng) h in
  let no_tp =
    Topdown.run
      ~config:{ Topdown.default with terminal_model = Topdown.Ignore_external }
      (Rng.split rng) h
  in
  Format.printf "full placement HPWL:@.";
  Format.printf "  GORDIAN (legalized)        %8.1f@." gordian_hpwl;
  Format.printf "  top-down ML, term. prop.   %8.1f  (%d quadrisection calls)@."
    placed.Topdown.hpwl placed.Topdown.regions;
  Format.printf "  top-down ML, no term.prop. %8.1f@." no_tp.Topdown.hpwl;
  Format.printf "wirelength saving vs GORDIAN: %.1f%%@."
    (100.0 *. (1.0 -. (placed.Topdown.hpwl /. gordian_hpwl)))
