(* Baseline tour: three decades of min-cut bipartitioning on one circuit,
   in historical order — the lineage the paper's introduction walks:

     KL (1970)       pair swaps, exact balance
     FM (1982)       single moves, gain buckets, linear-time passes
     EIG (1992)      spectral bisection (Fiedler vector)
     CLIP (1996)     cluster-oriented gain offsets
     GA-FM (1994)    hybrid genetic evolution of FM solutions
     2-phase (1987+) one clustering level + refinement
     ML (1997)       the paper: full multilevel hierarchy

   Run with:  dune exec examples/baseline_tour.exe -- [circuit] [runs] *)

module Rng = Mlpart_util.Rng
module Stats = Mlpart_util.Stats
module Algos = Mlpart_experiments.Algos

let lineage =
  [
    ("KL  (1970)", Algos.kl);
    ("FM  (1982)", Algos.fm);
    ("EIG (1992)", Algos.eig);
    ("CLIP (1996)", Algos.clip);
    ("GA-FM (1994)", Algos.ga_fm);
    ("2-phase", Algos.two_phase);
    ("ML  (1997)", Algos.mlc 0.5);
  ]

let () =
  let circuit = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s9234" in
  let runs = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 5 in
  let h = Mlpart_gen.Suite.(instantiate (find circuit)) in
  Format.printf "circuit: %a, %d runs/algorithm@."
    Mlpart_hypergraph.Hypergraph.pp_summary h runs;
  let rows =
    List.map
      (fun (label, algo) ->
        let rng = Rng.create 17 in
        let stats = Stats.create () in
        let start = Sys.time () in
        for _ = 1 to runs do
          let _, cut = algo.Algos.run (Rng.split rng) h in
          Stats.add stats (float_of_int cut)
        done;
        [
          label;
          string_of_int (int_of_float (Stats.min stats));
          Printf.sprintf "%.1f" (Stats.mean stats);
          Printf.sprintf "%.2f" (Sys.time () -. start);
        ])
      lineage
  in
  Mlpart_util.Tab.print ~header:[ "algorithm"; "min cut"; "avg cut"; "cpu (s)" ]
    rows;
  print_endline
    "Each generation tightens the average; the multilevel hierarchy (the\n\
     paper's contribution) is what finally makes the minimum reliable."
