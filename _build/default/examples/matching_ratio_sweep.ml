(* Matching-ratio sweep: reproduces the trade-off behind Figure 4 of the
   paper on one circuit — as R decreases, coarsening slows, the hierarchy
   deepens, average cut drops, and CPU time rises.

   Run with:  dune exec examples/matching_ratio_sweep.exe -- [circuit] *)

module Rng = Mlpart_util.Rng
module Stats = Mlpart_util.Stats
module Ml = Mlpart_multilevel.Ml

let () =
  let circuit = if Array.length Sys.argv > 1 then Sys.argv.(1) else "19ks" in
  let h = Mlpart_gen.Suite.(instantiate (find circuit)) in
  Format.printf "circuit: %a@." Mlpart_hypergraph.Hypergraph.pp_summary h;
  let runs = 8 in
  let rows =
    List.map
      (fun ratio ->
        let rng = Rng.create 1 in
        let config = Ml.with_ratio Ml.mlc ratio in
        let stats = Stats.create () in
        let levels = ref 0 in
        let start = Sys.time () in
        for _ = 1 to runs do
          let r = Ml.run ~config (Rng.split rng) h in
          levels := r.Ml.levels;
          Stats.add stats (float_of_int r.Ml.cut)
        done;
        [
          Printf.sprintf "%.2f" ratio;
          string_of_int !levels;
          string_of_int (int_of_float (Stats.min stats));
          Printf.sprintf "%.1f" (Stats.mean stats);
          Printf.sprintf "%.2f" (Sys.time () -. start);
        ])
      [ 1.0; 0.75; 0.5; 0.33; 0.25; 0.15 ]
  in
  Mlpart_util.Tab.print
    ~header:[ "R"; "levels"; "min cut"; "avg cut"; "cpu (s)" ]
    rows;
  print_endline
    "Lower R -> more levels -> lower (and more stable) cuts at higher CPU \
     cost, as in Figure 4."
