examples/baseline_tour.mli:
