examples/baseline_tour.ml: Array Format List Mlpart_experiments Mlpart_gen Mlpart_hypergraph Mlpart_util Printf Sys
