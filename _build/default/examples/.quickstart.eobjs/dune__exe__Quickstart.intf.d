examples/quickstart.mli:
