examples/quickstart.ml: Array Format Fun Mlpart_hypergraph Mlpart_multilevel Mlpart_util
