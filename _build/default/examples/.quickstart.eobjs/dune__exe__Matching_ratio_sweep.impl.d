examples/matching_ratio_sweep.ml: Array Format List Mlpart_gen Mlpart_hypergraph Mlpart_multilevel Mlpart_util Printf Sys
