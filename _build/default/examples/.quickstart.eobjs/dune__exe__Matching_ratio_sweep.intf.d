examples/matching_ratio_sweep.mli:
