examples/engine_comparison.ml: Array Format List Mlpart_gen Mlpart_hypergraph Mlpart_multilevel Mlpart_partition Mlpart_util Printf Sys
