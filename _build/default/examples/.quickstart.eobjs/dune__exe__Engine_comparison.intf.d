examples/engine_comparison.mli:
