examples/placement_flow.mli:
