module H = Mlpart_hypergraph.Hypergraph
module Rng = Mlpart_util.Rng
module Fm = Mlpart_partition.Fm

let log_src = Logs.Src.create "mlpart.ml" ~doc:"multilevel driver traces"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  threshold : int;
  ratio : float;
  match_net_size : int;
  merge_duplicates : bool;
  engine : Fm.config;
  max_levels : int;
  coarsest_starts : int;
}

let mlf =
  {
    threshold = 35;
    ratio = 1.0;
    match_net_size = 10;
    merge_duplicates = false;
    engine = Fm.default;
    max_levels = 64;
    coarsest_starts = 1;
  }

let mlc = { mlf with engine = Fm.clip }
let with_ratio config ratio = { config with ratio }

type result = { side : int array; cut : int; levels : int; coarsest_modules : int }

let build_hierarchy config ?fixed ?pair_ok rng h =
  Hierarchy.build ~threshold:config.threshold ~ratio:config.ratio
    ~match_net_size:config.match_net_size
    ~merge_duplicates:config.merge_duplicates ~max_levels:config.max_levels
    ?fixed ?pair_ok rng h

let coarsen ?(config = mlf) rng h =
  let hierarchy = build_hierarchy config rng h in
  ( List.map
      (fun { Hierarchy.netlist; cluster_of; fixed = _ } -> (netlist, cluster_of))
      hierarchy.Hierarchy.levels,
    hierarchy.Hierarchy.coarsest )

let project cluster_of coarse_side =
  Array.map (fun c -> coarse_side.(c)) cluster_of

(* Partition the coarsest netlist (steps 6 of Figure 2), optionally from an
   initial solution, with multi-start as the §V extension. *)
let partition_coarsest config ?init ?fixed rng coarsest =
  let once () = Fm.run ~config:config.engine ?init ?fixed rng coarsest in
  let best = ref (once ()) in
  for _ = 2 to config.coarsest_starts do
    let r = once () in
    if r.Fm.cut < !best.Fm.cut then best := r
  done;
  !best

(* Uncoarsening: project and refine level by level (steps 7-9). *)
let refine_up config rng hierarchy initial_side =
  List.fold_left
    (fun coarse_side { Hierarchy.netlist; cluster_of; fixed } ->
      let projected = project cluster_of coarse_side in
      let refined =
        Fm.run ~config:config.engine ~init:projected ?fixed rng netlist
      in
      Log.debug (fun m ->
          m "refined level |V|=%d: projected cut %d -> %d (%d passes)"
            (H.num_modules netlist)
            (Fm.cut_of netlist projected)
            refined.Fm.cut refined.Fm.passes);
      refined.Fm.side)
    initial_side
    (List.rev hierarchy.Hierarchy.levels)

let run ?(config = mlf) ?fixed rng h =
  let hierarchy = build_hierarchy config ?fixed rng h in
  Log.debug (fun m ->
      m "%s: %d levels, coarsest |V|=%d (T=%d, R=%.2f)" (H.name h)
        (List.length hierarchy.Hierarchy.levels)
        (H.num_modules hierarchy.Hierarchy.coarsest)
        config.threshold config.ratio);
  let initial =
    partition_coarsest config ?fixed:hierarchy.Hierarchy.coarsest_fixed rng
      hierarchy.Hierarchy.coarsest
  in
  let side = refine_up config rng hierarchy initial.Fm.side in
  {
    side;
    cut = Fm.cut_of h side;
    levels = List.length hierarchy.Hierarchy.levels;
    coarsest_modules = H.num_modules hierarchy.Hierarchy.coarsest;
  }

(* One solution-preserving V-cycle: coarsen with matching restricted to
   same-side pairs (every cluster is side-pure, so the solution projects
   without loss), refine the projected solution at each level on the way
   back up. *)
let vcycle config ?fixed rng h side =
  let pair_ok v w = side.(v) = side.(w) in
  let hierarchy = build_hierarchy config ?fixed ~pair_ok rng h in
  (* Restrict the side assignment down the hierarchy. *)
  let coarsest_side, _ =
    List.fold_left
      (fun (fine_side, _) { Hierarchy.cluster_of; _ } ->
        let k = Array.fold_left Stdlib.max (-1) cluster_of + 1 in
        let coarse = Array.make k 0 in
        Array.iteri (fun v c -> coarse.(c) <- fine_side.(v)) cluster_of;
        (coarse, k))
      (side, H.num_modules h)
      hierarchy.Hierarchy.levels
  in
  let initial =
    Fm.run ~config:config.engine ~init:coarsest_side
      ?fixed:hierarchy.Hierarchy.coarsest_fixed rng hierarchy.Hierarchy.coarsest
  in
  refine_up config rng hierarchy initial.Fm.side

let run_vcycles ?(config = mlf) ?fixed ~cycles rng h =
  if cycles < 1 then invalid_arg "Ml.run_vcycles: cycles < 1";
  let first = run ~config ?fixed rng h in
  let side = ref first.side in
  let cut = ref first.cut in
  for _ = 2 to cycles do
    let refined = vcycle config ?fixed rng h !side in
    let refined_cut = Fm.cut_of h refined in
    if refined_cut <= !cut then begin
      side := refined;
      cut := refined_cut
    end
  done;
  { first with side = !side; cut = !cut }
