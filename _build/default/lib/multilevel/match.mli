(** The Match coarsening procedure (Figure 3 of the paper).

    Modules are visited in random order; each unmatched module is paired
    with the unmatched neighbour maximising the connectivity

    {v conn(v, w) = (1 / (A(v) A(w))) * Σ over shared nets of 1 / (|e| - 1) v}

    (nets larger than [max_net_size] pins — 10 in the paper — are ignored).
    Matching stops once the fraction of matched modules reaches the matching
    ratio [R]; everything still unmatched becomes a singleton cluster.  [R]
    is the knob that slows coarsening and deepens the hierarchy — the
    paper's key departure from Chaco/Metis maximal matching. *)

val run :
  ?max_net_size:int ->
  ?matchable:(int -> bool) ->
  ?pair_ok:(int -> int -> bool) ->
  ?max_cluster_area:int ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  ratio:float ->
  int array * int
(** [run rng h ~ratio] returns [(cluster_of, k)]: a map from module id to
    cluster id in [0 .. k-1].  [matchable v = false] excludes [v] from
    pairing (it always ends up a singleton) — used to keep pre-assigned
    pads unclustered in the quadrisection flow.  [pair_ok v w = false]
    forbids the specific pair — V-cycles use it to coarsen only within the
    sides of the current solution so the solution projects exactly.
    [ratio] must be in [(0, 1]]. *)
