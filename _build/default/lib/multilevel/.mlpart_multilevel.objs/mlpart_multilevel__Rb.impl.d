lib/multilevel/rb.ml: Array Fun Hashtbl Ml Mlpart_hypergraph Mlpart_partition Mlpart_util
