lib/multilevel/hierarchy.mli: Mlpart_hypergraph Mlpart_util
