lib/multilevel/match.mli: Mlpart_hypergraph Mlpart_util
