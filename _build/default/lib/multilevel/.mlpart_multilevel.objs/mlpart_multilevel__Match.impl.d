lib/multilevel/match.ml: Array List Mlpart_hypergraph Mlpart_util
