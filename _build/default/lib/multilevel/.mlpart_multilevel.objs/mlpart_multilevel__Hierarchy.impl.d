lib/multilevel/hierarchy.ml: Array List Match Mlpart_hypergraph Option Stdlib
