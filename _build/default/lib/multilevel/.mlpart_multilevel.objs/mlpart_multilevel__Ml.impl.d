lib/multilevel/ml.ml: Array Hierarchy List Logs Mlpart_hypergraph Mlpart_partition Mlpart_util Stdlib
