lib/multilevel/ml_multiway.ml: Hierarchy List Ml Mlpart_hypergraph Mlpart_partition Mlpart_util
