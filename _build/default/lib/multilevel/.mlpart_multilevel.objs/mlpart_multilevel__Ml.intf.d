lib/multilevel/ml.mli: Mlpart_hypergraph Mlpart_partition Mlpart_util
