lib/multilevel/rb.mli: Ml Mlpart_hypergraph Mlpart_util
