(** Multilevel k-way partitioning (the paper's quadrisection extension,
    §III.C and Table IX).

    Same coarsen / initial-partition / project-and-refine structure as
    {!Ml}, with {!Mlpart_partition.Multiway} as the refinement engine.
    Pre-assigned modules (I/O pads in a placement flow) are never matched
    during coarsening and never moved during refinement. *)

type config = {
  threshold : int;  (** paper uses T = 100 for quadrisection *)
  ratio : float;
  match_net_size : int;
  merge_duplicates : bool;
  engine : Mlpart_partition.Multiway.config;
  max_levels : int;
}

val default : config
(** T = 100, R = 1.0, sum-of-degrees gain — the Table IX MLf setting. *)

type result = {
  side : int array;
  cut : int;  (** nets spanning at least two parts *)
  levels : int;
  coarsest_modules : int;
}

val run :
  ?config:config ->
  ?fixed:int array ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  k:int ->
  result
(** [fixed.(v) >= 0] pins module [v] to that part throughout. *)
