(** Named algorithm wrappers used by the experiment harness.

    Each bipartitioner maps an RNG and a hypergraph to a cut value (plus the
    side assignment); each quadrisection algorithm does the same for k = 4.
    The names match the paper's: FM/CLIP (with bucket-policy variants), the
    ML multilevel family, and the Table VII competitors implemented here. *)

type bipartitioner = {
  name : string;
  run :
    Mlpart_util.Rng.t -> Mlpart_hypergraph.Hypergraph.t -> int array * int;
      (** returns (side assignment, cut) *)
}

val fm : bipartitioner
(** Plain FM, LIFO buckets. *)

val fm_fifo : bipartitioner
val fm_random : bipartitioner
val clip : bipartitioner

val mlf : float -> bipartitioner
(** ML with the FM engine at matching ratio [r]. *)

val mlc : float -> bipartitioner
(** ML with the CLIP engine at matching ratio [r]. *)

val cl_la3f : bipartitioner
(** CLIP with level-3 lookahead, followed by an FM refinement run (the
    [f] subscript of the paper's Table VII). *)

val cd_la3f : bipartitioner
(** CDIP (CLIP + backtracking) with level-3 lookahead, FM-refined. *)

val cl_prf : bipartitioner
(** CLIP-flavoured PROP, FM-refined. *)

val lsmc : int -> bipartitioner
(** LSMC with FM descents; the argument is the number of descents. *)

val eig : bipartitioner
(** Pure spectral bisection (deterministic). *)

val eig_fm : bipartitioner
(** Spectral bisection followed by FM refinement. *)

val two_phase : bipartitioner
(** Classic "two-phase FM": a single Match clustering level, then CLIP —
    the §II.C baseline the multilevel approach generalises. *)

val ga_fm : bipartitioner
(** Hybrid genetic/FM (the Bui–Moon-style evolution behind the GMet
    column's genetic component). *)

val kl : bipartitioner
(** Kernighan–Lin pair swaps (beam-pruned) — the §I ancestor baseline. *)

val mlc_vcycles : int -> bipartitioner
(** MLc (R = 0.5) followed by the given number of V-cycles (extension). *)

type quadrisector = {
  qname : string;
  qrun :
    Mlpart_util.Rng.t -> Mlpart_hypergraph.Hypergraph.t -> int array * int;
}

val q_mlf : quadrisector
(** Multilevel quadrisection, FM-family engine, R = 1.0, T = 100,
    sum-of-degrees gain (the paper's Table IX configuration). *)

val q_fm : quadrisector
(** Flat 4-way FM (Sanchis, net-cut gain). *)

val q_clip : quadrisector
(** Flat 4-way FM with sum-of-degrees gain (the CLIP-flavoured column). *)

val q_lsmc_f : quadrisector
(** LSMC over flat 4-way FM: kick the best 4-way solution and re-descend. *)

val q_lsmc_c : quadrisector
(** LSMC over the sum-of-degrees 4-way engine. *)

val q_gordian : quadrisector
(** GORDIAN-style analytic quadrisection (deterministic; the RNG is
    unused). *)
