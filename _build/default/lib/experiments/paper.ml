(* Transcribed from the paper.  Each table is an association list keyed by
   circuit name; the row types mirror the published columns. *)

type table2_row = { t2_min : int * int * int; t2_avg : int * int * int }

let table2_data =
  [
    ("balu", { t2_min = (27, 75, 27); t2_avg = (39, 107, 39) });
    ("bm1", { t2_min = (47, 64, 51); t2_avg = (76, 107, 76) });
    ("primary1", { t2_min = (49, 57, 47); t2_avg = (74, 111, 76) });
    ("test04", { t2_min = (71, 139, 66); t2_avg = (138, 208, 135) });
    ("test03", { t2_min = (64, 112, 69); t2_avg = (109, 184, 118) });
    ("test02", { t2_min = (109, 185, 122); t2_avg = (172, 169, 243) });
    ("test06", { t2_min = (66, 146, 60); t2_avg = (90, 196, 90) });
    ("struct", { t2_min = (38, 131, 42); t2_avg = (54, 184, 42) });
    ("test05", { t2_min = (104, 251, 93); t2_avg = (175, 335, 175) });
    ("19ks", { t2_min = (121, 261, 120); t2_avg = (175, 332, 180) });
    ("primary2", { t2_min = (215, 310, 177); t2_avg = (285, 428, 278) });
    ("s9234", { t2_min = (50, 246, 49); t2_avg = (95, 335, 90) });
    ("biomed", { t2_min = (83, 392, 83); t2_avg = (134, 445, 130) });
    ("s13207", { t2_min = (87, 278, 88); t2_avg = (129, 340, 125) });
    ("s15850", { t2_min = (108, 416, 98); t2_avg = (184, 506, 177) });
    ("industry2", { t2_min = (319, 667, 304); t2_avg = (623, 1192, 603) });
    ("industry3", { t2_min = (241, 408, 259); t2_avg = (497, 2225, 491) });
    ("s35932", { t2_min = (113, 719, 103); t2_avg = (230, 953, 230) });
    ("s38584", { t2_min = (59, 1474, 54); t2_avg = (251, 1641, 258) });
    ("avqsmall", { t2_min = (319, 1415, 295); t2_avg = (597, 1667, 624) });
    ("s38417", { t2_min = (167, 1120, 132); t2_avg = (383, 1194, 381) });
    ("avqlarge", { t2_min = (262, 1839, 345); t2_avg = (787, 2024, 772) });
  ]

let table2 name = List.assoc_opt name table2_data

type table3_row = {
  t3_min : int * int;
  t3_avg : int * int;
  t3_cpu : int * int;
}

let table3_data =
  [
    ("balu", { t3_min = (27, 27); t3_avg = (39, 35); t3_cpu = (26, 26) });
    ("bm1", { t3_min = (47, 47); t3_avg = (76, 63); t3_cpu = (27, 29) });
    ("primary1", { t3_min = (49, 47); t3_avg = (74, 62); t3_cpu = (27, 30) });
    (* FM average printed as "38" in the scan; 138 per Table II's LIFO avg *)
    ("test04", { t3_min = (71, 55); t3_avg = (138, 80); t3_cpu = (45, 63) });
    ("test03", { t3_min = (64, 57); t3_avg = (109, 74); t3_cpu = (61, 67) });
    ("test02", { t3_min = (109, 88); t3_avg = (172, 112); t3_cpu = (49, 73) });
    ("test06", { t3_min = (66, 60); t3_avg = (90, 72); t3_cpu = (61, 65) });
    ("struct", { t3_min = (38, 34); t3_avg = (54, 46); t3_cpu = (55, 55) });
    ("test05", { t3_min = (104, 72); t3_avg = (175, 72); t3_cpu = (92, 116) });
    ("19ks", { t3_min = (121, 110); t3_avg = (175, 151); t3_cpu = (134, 144) });
    ("primary2", { t3_min = (215, 143); t3_avg = (285, 215); t3_cpu = (142, 168) });
    ("s9234", { t3_min = (50, 45); t3_avg = (95, 74); t3_cpu = (273, 237) });
    ("biomed", { t3_min = (83, 84); t3_avg = (134, 109); t3_cpu = (326, 267) });
    ("s13207", { t3_min = (87, 78); t3_avg = (129, 125); t3_cpu = (423, 370) });
    ("s15850", { t3_min = (108, 79); t3_avg = (184, 143); t3_cpu = (435, 505) });
    ("industry2", { t3_min = (319, 203); t3_avg = (623, 342); t3_cpu = (838, 991) });
    ("industry3", { t3_min = (241, 242); t3_avg = (497, 406); t3_cpu = (974, 1199) });
    ("s35932", { t3_min = (113, 45); t3_avg = (230, 118); t3_cpu = (1075, 935) });
    ("s38584", { t3_min = (59, 48); t3_avg = (251, 101); t3_cpu = (1523, 1363) });
    ("avqsmall", { t3_min = (319, 204); t3_avg = (597, 340); t3_cpu = (1447, 1538) });
    ("s38417", { t3_min = (167, 72); t3_avg = (383, 140); t3_cpu = (1595, 1423) });
    ("avqlarge", { t3_min = (262, 224); t3_avg = (787, 352); t3_cpu = (1662, 1896) });
    ("golem3",
     { t3_min = (2847, 2276); t3_avg = (3500, 3403); t3_cpu = (38028, 146301) });
  ]

let table3 name = List.assoc_opt name table3_data

type table4_row = {
  t4_min : int * int * int;
  t4_avg : int * int * int;
  t4_cpu : int * int * int;
}

let table4_data =
  [
    ("balu",
     { t4_min = (27, 27, 27); t4_avg = (35, 35, 33); t4_cpu = (26, 100, 110) });
    ("bm1",
     { t4_min = (47, 47, 47); t4_avg = (63, 57, 55); t4_cpu = (29, 93, 107) });
    ("primary1",
     { t4_min = (47, 47, 47); t4_avg = (62, 56, 55); t4_cpu = (30, 93, 106) });
    ("test04",
     { t4_min = (55, 48, 48); t4_avg = (80, 64, 56); t4_cpu = (63, 219, 263) });
    ("test03",
     { t4_min = (57, 56, 57); t4_avg = (74, 64, 61); t4_cpu = (67, 258, 294) });
    ("test02",
     { t4_min = (88, 89, 89); t4_avg = (112, 101, 100); t4_cpu = (73, 243, 288) });
    ("test06",
     { t4_min = (60, 60, 60); t4_avg = (72, 77, 71); t4_cpu = (65, 309, 354) });
    ("struct",
     { t4_min = (34, 33, 33); t4_avg = (46, 39, 38); t4_cpu = (55, 199, 233) });
    ("test05",
     { t4_min = (72, 75, 71); t4_avg = (72, 91, 83); t4_cpu = (116, 386, 459) });
    ("19ks",
     { t4_min = (110, 104, 106); t4_avg = (151, 114, 114); t4_cpu = (144, 447, 510) });
    ("primary2",
     { t4_min = (143, 139, 139); t4_avg = (215, 158, 156); t4_cpu = (168, 414, 522) });
    ("s9234",
     { t4_min = (45, 40, 41); t4_avg = (74, 50, 48); t4_cpu = (237, 542, 582) });
    ("biomed",
     { t4_min = (84, 86, 83); t4_avg = (109, 103, 92); t4_cpu = (267, 909, 1036) });
    ("s13207",
     { t4_min = (78, 58, 60); t4_avg = (125, 77, 76); t4_cpu = (370, 857, 950) });
    ("s15850",
     { t4_min = (79, 43, 43); t4_avg = (143, 63, 59); t4_cpu = (505, 997, 1126) });
    ("industry2",
     { t4_min = (203, 168, 174); t4_avg = (342, 213, 197);
       t4_cpu = (991, 2360, 3015) });
    ("industry3",
     { t4_min = (242, 243, 248); t4_avg = (406, 275, 274);
       t4_cpu = (1199, 2932, 3931) });
    ("s35932",
     { t4_min = (45, 41, 40); t4_avg = (118, 46, 46); t4_cpu = (935, 2108, 2351) });
    ("s38584",
     { t4_min = (48, 49, 48); t4_avg = (101, 77, 58); t4_cpu = (1363, 2574, 3106) });
    ("avqsmall",
     { t4_min = (204, 139, 133); t4_avg = (340, 194, 182);
       t4_cpu = (1538, 3022, 3811) });
    ("s38417",
     { t4_min = (72, 53, 50); t4_avg = (140, 82, 66); t4_cpu = (1423, 2544, 3032) });
    ("avqlarge",
     { t4_min = (224, 144, 140); t4_avg = (352, 200, 183);
       t4_cpu = (1896, 3338, 4230) });
    ("golem3",
     { t4_min = (2276, 1663, 1661); t4_avg = (3403, 2026, 2006);
       t4_cpu = (146301, 48495, 89800) });
  ]

let table4 name = List.assoc_opt name table4_data

type ratio_row = {
  r_min : int * int * int;
  r_avg : int * int * int;
  r_cpu : int * int * int;
}

let table5_data =
  [
    ("balu", { r_min = (27, 27, 27); r_avg = (35, 32, 30); r_cpu = (100, 166, 234) });
    ("bm1", { r_min = (47, 47, 47); r_avg = (57, 55, 55); r_cpu = (93, 166, 236) });
    ("primary1",
     { r_min = (47, 47, 47); r_avg = (56, 54, 54); r_cpu = (93, 171, 231) });
    ("test04",
     { r_min = (48, 48, 48); r_avg = (64, 61, 57); r_cpu = (219, 394, 543) });
    ("test03",
     { r_min = (56, 58, 58); r_avg = (64, 61, 61); r_cpu = (258, 543, 625) });
    ("test02",
     { r_min = (89, 88, 88); r_avg = (101, 98, 97); r_cpu = (243, 435, 601) });
    ("test06",
     { r_min = (60, 60, 60); r_avg = (77, 68, 66); r_cpu = (309, 534, 732) });
    ("struct",
     { r_min = (33, 33, 34); r_avg = (39, 37, 38); r_cpu = (199, 346, 493) });
    ("test05",
     { r_min = (75, 72, 71); r_avg = (91, 80, 79); r_cpu = (386, 696, 946) });
    ("19ks",
     { r_min = (104, 105, 105); r_avg = (114, 118, 116); r_cpu = (447, 783, 1077) });
    ("primary2",
     { r_min = (139, 141, 139); r_avg = (158, 161, 157); r_cpu = (414, 771, 1089) });
    ("s9234",
     { r_min = (40, 40, 40); r_avg = (50, 47, 47); r_cpu = (542, 939, 1386) });
    ("biomed",
     { r_min = (86, 83, 83); r_avg = (103, 96, 94); r_cpu = (909, 1604, 2199) });
    ("s13207",
     { r_min = (58, 55, 58); r_avg = (77, 72, 71); r_cpu = (857, 1472, 2150) });
    ("s15850",
     { r_min = (43, 43, 42); r_avg = (63, 58, 59); r_cpu = (997, 1793, 2596) });
    ("industry2",
     { r_min = (168, 171, 169); r_avg = (213, 207, 207);
       r_cpu = (2360, 4232, 5885) });
    ("industry3",
     { r_min = (243, 243, 241); r_avg = (275, 277, 275);
       r_cpu = (2932, 5393, 7859) });
    ("s35932",
     { r_min = (41, 42, 42); r_avg = (46, 48, 49); r_cpu = (2108, 3978, 5586) });
    ("s38584",
     { r_min = (49, 48, 47); r_avg = (77, 56, 57); r_cpu = (2574, 4530, 6535) });
    ("avqsmall",
     { r_min = (139, 133, 132); r_avg = (194, 159, 156);
       r_cpu = (3022, 5184, 7476) });
    ("s38417",
     { r_min = (53, 50, 50); r_avg = (82, 72, 68); r_cpu = (2544, 4649, 6536) });
    ("avqlarge",
     { r_min = (144, 130, 131); r_avg = (200, 163, 157);
       r_cpu = (3338, 5799, 8407) });
    ("golem3",
     { r_min = (1663, 1348, 1347); r_avg = (2026, 1462, 1421);
       r_cpu = (48495, 68154, 99124) });
  ]

let table5 name = List.assoc_opt name table5_data

let table6_data =
  [
    ("balu", { r_min = (27, 27, 27); r_avg = (33, 29, 29); r_cpu = (110, 171, 234) });
    ("bm1", { r_min = (47, 47, 47); r_avg = (55, 55, 54); r_cpu = (107, 177, 248) });
    ("primary1",
     { r_min = (47, 47, 47); r_avg = (55, 54, 54); r_cpu = (106, 179, 243) });
    ("test04",
     { r_min = (48, 48, 48); r_avg = (66, 56, 55); r_cpu = (263, 414, 561) });
    ("test03",
     { r_min = (57, 56, 57); r_avg = (61, 60, 60); r_cpu = (294, 469, 622) });
    ("test02",
     { r_min = (89, 89, 88); r_avg = (100, 98, 97); r_cpu = (288, 452, 619) });
    ("test06",
     { r_min = (60, 60, 60); r_avg = (71, 65, 65); r_cpu = (354, 546, 720) });
    ("struct",
     { r_min = (33, 33, 33); r_avg = (38, 37, 37); r_cpu = (333, 351, 506) });
    ("test05",
     { r_min = (71, 71, 71); r_avg = (83, 77, 76); r_cpu = (459, 735, 984) });
    ("19ks",
     { r_min = (106, 106, 105); r_avg = (114, 114, 116); r_cpu = (510, 839, 1137) });
    ("primary2",
     { r_min = (139, 139, 139); r_avg = (156, 156, 156); r_cpu = (522, 900, 1234) });
    ("s9234",
     { r_min = (41, 40, 40); r_avg = (48, 45, 45); r_cpu = (582, 968, 1406) });
    ("biomed",
     { r_min = (83, 83, 83); r_avg = (92, 91, 91); r_cpu = (1036, 1723, 2300) });
    ("s13207",
     { r_min = (60, 55, 58); r_avg = (76, 71, 68); r_cpu = (950, 1552, 2183) });
    ("s15850",
     { r_min = (43, 44, 43); r_avg = (59, 56, 57); r_cpu = (1126, 1894, 2635) });
    (* avg at R=0.33 printed as "292" in the scan, inconsistent with the
       neighbouring columns (196); transcribed as printed *)
    ("industry2",
     { r_min = (174, 164, 167); r_avg = (197, 196, 292);
       r_cpu = (3016, 5023, 6893) });
    ("industry3",
     { r_min = (248, 243, 244); r_avg = (274, 276, 276);
       r_cpu = (3932, 6670, 9353) });
    ("s35932",
     { r_min = (40, 41, 42); r_avg = (46, 45, 46); r_cpu = (2351, 4266, 5921) });
    ("s38584",
     { r_min = (48, 47, 47); r_avg = (58, 52, 52); r_cpu = (3106, 4898, 6814) });
    ("avqsmall",
     { r_min = (133, 128, 128); r_avg = (182, 147, 148);
       r_cpu = (3811, 6031, 8228) });
    ("s38417",
     { r_min = (50, 49, 49); r_avg = (66, 56, 56); r_cpu = (3032, 4960, 6782) });
    ("avqlarge",
     { r_min = (140, 128, 129); r_avg = (183, 148, 148);
       r_cpu = (4230, 6657, 9276) });
    ("golem3",
     { r_min = (1661, 1346, 1340); r_avg = (2006, 1465, 1413);
       r_cpu = (89800, 104828, 141704) });
  ]

let table6 name = List.assoc_opt name table6_data

type table7_row = {
  mlc100 : int option;
  mlc10 : int option;
  gmet : int option;
  hb : int option;
  pb : int option;
  gfm : int option;
  gfm2 : int option;
  cl_la3f : int option;
  cd_la3f : int option;
  cl_prf : int option;
  lsmc : int option;
}

let t7 ?mlc100 ?mlc10 ?gmet ?hb ?pb ?gfm ?gfm2 ?cl ?cd ?pr ?lsmc () =
  { mlc100; mlc10; gmet; hb; pb; gfm; gfm2; cl_la3f = cl; cd_la3f = cd;
    cl_prf = pr; lsmc }

let table7_data =
  [
    ("balu",
     t7 ~mlc100:27 ~mlc10:27 ~gmet:41 ~pb:27 ~gfm:28 ~gfm2:27 ~cl:27 ~cd:27
       ~pr:27 ());
    ("bm1", t7 ~mlc100:47 ~mlc10:51 ~gmet:48 ~pb:51 ~cl:47 ~cd:47 ~lsmc:49 ());
    ("primary1",
     t7 ~mlc100:47 ~mlc10:52 ~gmet:47 ~hb:53 ~pb:47 ~gfm:51 ~gfm2:51 ~cl:47
       ~cd:51 ~lsmc:49 ());
    ("test04", t7 ~mlc100:48 ~mlc10:49 ~gmet:49 ~cl:49 ~cd:48 ~pr:52 ~lsmc:69 ());
    ("test03", t7 ~mlc100:56 ~mlc10:58 ~gmet:62 ~cl:56 ~cd:57 ~pr:57 ~lsmc:63 ());
    ("test02", t7 ~mlc100:89 ~mlc10:92 ~gmet:95 ~cl:91 ~cd:89 ~pr:87 ~lsmc:102 ());
    ("test06", t7 ~mlc100:60 ~mlc10:60 ~gmet:94 ~cl:60 ~cd:60 ~pr:60 ~lsmc:60 ());
    ("struct",
     t7 ~mlc100:33 ~mlc10:33 ~gmet:33 ~hb:40 ~pb:41 ~gfm:36 ~gfm2:33 ~cl:36
       ~cd:33 ~lsmc:43 ());
    ("test05",
     t7 ~mlc100:71 ~mlc10:72 ~gmet:104 ~cl:80 ~cd:74 ~pr:77 ~lsmc:97 ());
    ("19ks",
     t7 ~mlc100:106 ~mlc10:108 ~gmet:106 ~cl:104 ~cd:104 ~pr:104 ~lsmc:123 ());
    ("primary2",
     t7 ~mlc100:139 ~mlc10:145 ~gmet:142 ~hb:146 ~pb:139 ~gfm:139 ~gfm2:142
       ~cl:151 ~cd:152 ~lsmc:163 ());
    ("s9234",
     t7 ~mlc100:40 ~mlc10:41 ~gmet:43 ~hb:45 ~pb:74 ~gfm:41 ~gfm2:44 ~cl:45
       ~cd:44 ~pr:42 ~lsmc:44 ());
    ("biomed",
     t7 ~mlc100:83 ~mlc10:84 ~gmet:83 ~pb:135 ~gfm:84 ~gfm2:92 ~cl:83 ~cd:83
       ~pr:84 ~lsmc:83 ());
    ("s13207",
     t7 ~mlc100:55 ~mlc10:55 ~gmet:70 ~hb:62 ~pb:91 ~gfm:66 ~gfm2:61 ~cl:66
       ~cd:69 ~pr:71 ~lsmc:68 ());
    ("s15850",
     t7 ~mlc100:44 ~mlc10:56 ~gmet:53 ~hb:46 ~pb:91 ~gfm:63 ~gfm2:46 ~cl:71
       ~cd:59 ~pr:56 ~lsmc:91 ());
    ("industry2",
     t7 ~mlc100:164 ~mlc10:174 ~gmet:177 ~hb:193 ~pb:211 ~gfm:175 ~cl:200
       ~cd:182 ~pr:192 ~lsmc:246 ());
    ("industry3",
     t7 ~mlc100:243 ~mlc10:243 ~gmet:243 ~pb:267 ~gfm:241 ~gfm2:244 ~cl:260
       ~cd:243 ~pr:243 ~lsmc:242 ());
    ("s35932",
     t7 ~mlc100:41 ~mlc10:42 ~gmet:57 ~hb:46 ~pb:62 ~gfm:41 ~gfm2:44 ~cl:73
       ~cd:73 ~pr:42 ~lsmc:97 ());
    ("s38584",
     t7 ~mlc100:47 ~mlc10:48 ~gmet:53 ~hb:52 ~pb:55 ~gfm:47 ~gfm2:54 ~cl:50
       ~cd:47 ~pr:51 ~lsmc:51 ());
    ("avqsmall",
     t7 ~mlc100:128 ~mlc10:134 ~gmet:144 ~pb:224 ~gfm:129 ~cl:139 ~cd:144
       ~lsmc:270 ());
    ("s38417",
     t7 ~mlc100:49 ~mlc10:50 ~gmet:69 ~pb:49 ~gfm:81 ~gfm2:62 ~cl:70 ~cd:74
       ~pr:65 ~lsmc:116 ());
    ("avqlarge",
     t7 ~mlc100:128 ~mlc10:131 ~gmet:144 ~pb:139 ~gfm:127 ~cl:137 ~cd:143
       ~lsmc:255 ());
    ("golem3", t7 ~mlc100:1346 ~mlc10:1374 ~gmet:2111 ~pr:1629 ());
  ]

let table7 name = List.assoc_opt name table7_data

type table9_row = {
  t9_mlf_min : int;
  t9_mlf_avg : int;
  t9_gordian : int;
  t9_fm : int;
  t9_clip : int;
  t9_lsmc_f : int;
  t9_lsmc_c : int;
}

let table9_data =
  [
    ("primary1",
     { t9_mlf_min = 126; t9_mlf_avg = 153; t9_gordian = 157; t9_fm = 135;
       t9_clip = 169; t9_lsmc_f = 118; t9_lsmc_c = 129 });
    ("primary2",
     { t9_mlf_min = 346; t9_mlf_avg = 378; t9_gordian = 502; t9_fm = 591;
       t9_clip = 535; t9_lsmc_f = 495; t9_lsmc_c = 428 });
    ("biomed",
     { t9_mlf_min = 311; t9_mlf_avg = 390; t9_gordian = 479; t9_fm = 933;
       t9_clip = 697; t9_lsmc_f = 859; t9_lsmc_c = 567 });
    ("s13207",
     { t9_mlf_min = 472; t9_mlf_avg = 503; t9_gordian = 590; t9_fm = 653;
       t9_clip = 819; t9_lsmc_f = 337; t9_lsmc_c = 359 });
    ("s15850",
     { t9_mlf_min = 547; t9_mlf_avg = 594; t9_gordian = 678; t9_fm = 774;
       t9_clip = 958; t9_lsmc_f = 487; t9_lsmc_c = 392 });
    ("industry2",
     { t9_mlf_min = 398; t9_mlf_avg = 1369; t9_gordian = 1179; t9_fm = 2200;
       t9_clip = 1505; t9_lsmc_f = 1695; t9_lsmc_c = 1246 });
    ("industry3",
     { t9_mlf_min = 830; t9_mlf_avg = 1049; t9_gordian = 1965; t9_fm = 3005;
       t9_clip = 2223; t9_lsmc_f = 1605; t9_lsmc_c = 1572 });
    ("avqsmall",
     { t9_mlf_min = 408; t9_mlf_avg = 505; t9_gordian = 646; t9_fm = 2877;
       t9_clip = 1728; t9_lsmc_f = 2098; t9_lsmc_c = 1324 });
    ("avqlarge",
     { t9_mlf_min = 481; t9_mlf_avg = 519; t9_gordian = 661; t9_fm = 3131;
       t9_clip = 1890; t9_lsmc_f = 2511; t9_lsmc_c = 1435 });
  ]

let table9 name = List.assoc_opt name table9_data
