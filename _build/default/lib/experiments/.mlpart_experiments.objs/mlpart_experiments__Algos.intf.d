lib/experiments/algos.mli: Mlpart_hypergraph Mlpart_util
