lib/experiments/paper.ml: List
