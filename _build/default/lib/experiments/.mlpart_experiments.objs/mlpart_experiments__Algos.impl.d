lib/experiments/algos.ml: Array Mlpart_hypergraph Mlpart_multilevel Mlpart_partition Mlpart_placement Mlpart_util Printf Stdlib
