lib/experiments/paper.mli:
