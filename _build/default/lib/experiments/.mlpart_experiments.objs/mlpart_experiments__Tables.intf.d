lib/experiments/tables.mli: Mlpart_gen
