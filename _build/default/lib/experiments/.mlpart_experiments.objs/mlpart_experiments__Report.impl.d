lib/experiments/report.ml: Algos Array Domain List Mlpart_hypergraph Mlpart_partition Mlpart_util Printf Stdlib
