lib/experiments/report.mli: Algos Mlpart_hypergraph
