lib/experiments/tables.ml: Algos Format List Mlpart_gen Mlpart_hypergraph Mlpart_multilevel Mlpart_partition Mlpart_util Paper Printf Report Stdlib
