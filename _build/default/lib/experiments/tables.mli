(** Reproduction runners: one per table/figure of the paper's evaluation.

    Each runner prints the reproduced table with the paper's published
    values alongside the measured ones.  The published protocol (100 runs,
    23 circuits, one of them 103k modules) takes CPU-days, so runners take a
    {!protocol} that scales the run count and circuit tier; EXPERIMENTS.md
    records the shape comparison. *)

type protocol = {
  runs : int;  (** runs per (circuit, algorithm) pair *)
  seed : int;
  tier : Mlpart_gen.Suite.tier;  (** which circuits to include *)
  jobs : int;  (** domains used to parallelise the runs (default 1) *)
}

val default_protocol : protocol
(** 5 runs, seed 1, [Small] tier (12 circuits up to ~3k modules), 1 job. *)

val table1 : protocol -> unit
(** Benchmark characteristics: published vs generated counts. *)

val table2 : protocol -> unit
(** FM with LIFO / FIFO / Random gain buckets. *)

val table3 : protocol -> unit
(** FM vs CLIP, with CPU time. *)

val table4 : protocol -> unit
(** CLIP vs MLf vs MLc at R = 1. *)

val table5 : protocol -> unit
(** MLf at R = 1.0 / 0.5 / 0.33. *)

val table6 : protocol -> unit
(** MLc at R = 1.0 / 0.5 / 0.33. *)

val table7 : protocol -> unit
(** MLc vs the implemented Table VII competitors (CL-LA3f, CD-LA3f, CL-PRf,
    LSMC), with the paper's published columns for all nine. *)

val table8 : protocol -> unit
(** CPU comparison across the same algorithms. *)

val table9 : protocol -> unit
(** Quadrisection: multilevel vs GORDIAN-style vs flat 4-way engines. *)

val figure4 : protocol -> unit
(** Average cut as a function of the matching ratio R (the tier's two
    largest circuits stand in for avqsmall/avqlarge). *)

val ablations : protocol -> unit
(** Design-choice ablations DESIGN.md calls out: duplicate-net merging at
    Induce, balance-slack width, early pass exit, boundary FM, and
    multi-start coarsest partitioning. *)

val recursive : protocol -> unit
(** Recursive bisection (2-way ML applied log k times) vs the paper's
    direct multilevel k-way engine, for k = 4 and 8, under both the
    net-cut and sum-of-degrees objectives. *)

val extras : protocol -> unit
(** Beyond the paper's tables: spectral bisection (EIG, EIG+FM), classic
    two-phase clustering+FM, and iterated V-cycles, against MLc — isolating
    how much of the win comes from having {e many} levels. *)

val all : protocol -> unit
(** Every table and figure in order. *)
