module Rng = Mlpart_util.Rng
module H = Mlpart_hypergraph.Hypergraph
module Fm = Mlpart_partition.Fm
module Prop = Mlpart_partition.Prop
module Lsmc = Mlpart_partition.Lsmc
module Multiway = Mlpart_partition.Multiway
module Ml = Mlpart_multilevel.Ml
module Ml_multiway = Mlpart_multilevel.Ml_multiway
module Gordian = Mlpart_placement.Gordian

type bipartitioner = {
  name : string;
  run : Rng.t -> H.t -> int array * int;
}

let of_fm name config =
  { name; run = (fun rng h -> let r = Fm.run ~config rng h in (r.Fm.side, r.Fm.cut)) }

let fm = of_fm "FM" Fm.default
let fm_fifo = of_fm "FM-fifo" { Fm.default with policy = Mlpart_partition.Gain_bucket.Fifo }

let fm_random =
  of_fm "FM-rnd" { Fm.default with policy = Mlpart_partition.Gain_bucket.Random }

let clip = of_fm "CLIP" Fm.clip

let ml name config =
  {
    name;
    run = (fun rng h -> let r = Ml.run ~config rng h in (r.Ml.side, r.Ml.cut));
  }

let mlf r = ml (Printf.sprintf "MLf(%.2g)" r) (Ml.with_ratio Ml.mlf r)
let mlc r = ml (Printf.sprintf "MLc(%.2g)" r) (Ml.with_ratio Ml.mlc r)

(* The "f" subscript of Table VII: a final plain-FM refinement run after the
   main algorithm terminates. *)
let fm_refined name main =
  {
    name;
    run =
      (fun rng h ->
        let side, _ = main rng h in
        let r = Fm.run ~init:side rng h in
        (r.Fm.side, r.Fm.cut));
  }

let cl_la3f =
  fm_refined "CL-LA3f" (fun rng h ->
      let config = { Fm.clip with tie_break = Fm.Lookahead 3 } in
      let r = Fm.run ~config rng h in
      (r.Fm.side, r.Fm.cut))

let cd_la3f =
  fm_refined "CD-LA3f" (fun rng h ->
      let window = Stdlib.max 16 (H.num_modules h / 50) in
      let config =
        { Fm.clip with tie_break = Fm.Lookahead 3; backtrack = Some (window, 8) }
      in
      let r = Fm.run ~config rng h in
      (r.Fm.side, r.Fm.cut))

let cl_prf =
  fm_refined "CL-PRf" (fun rng h ->
      let config = { Prop.default with clip = true } in
      let r = Prop.run ~config rng h in
      (r.Prop.side, r.Prop.cut))

let lsmc descents =
  {
    name = Printf.sprintf "LSMC(%d)" descents;
    run =
      (fun rng h ->
        let config = { Lsmc.default with descents } in
        let r = Lsmc.run ~config rng h in
        (r.Lsmc.side, r.Lsmc.cut));
  }

let eig =
  {
    name = "EIG";
    run =
      (fun _rng h ->
        let r = Mlpart_placement.Spectral.run h in
        (r.Mlpart_placement.Spectral.side, r.Mlpart_placement.Spectral.cut));
  }

let eig_fm =
  {
    name = "EIG+FM";
    run =
      (fun _rng h ->
        let r =
          Mlpart_placement.Spectral.run
            ~config:Mlpart_placement.Spectral.eig_fm h
        in
        (r.Mlpart_placement.Spectral.side, r.Mlpart_placement.Spectral.cut));
  }

let ga_fm =
  {
    name = "GA-FM";
    run =
      (fun rng h ->
        let r = Mlpart_partition.Genetic.run rng h in
        (r.Mlpart_partition.Genetic.side, r.Mlpart_partition.Genetic.cut));
  }

let kl =
  {
    name = "KL";
    run =
      (fun rng h ->
        let r = Mlpart_partition.Kl.run rng h in
        (r.Mlpart_partition.Kl.side, r.Mlpart_partition.Kl.cut));
  }

let two_phase =
  ml "2-phase" { Ml.mlc with Ml.max_levels = 1 }

let mlc_vcycles cycles =
  {
    name = Printf.sprintf "MLc+%dvc" cycles;
    run =
      (fun rng h ->
        let config = Ml.with_ratio Ml.mlc 0.5 in
        let r = Ml.run_vcycles ~config ~cycles rng h in
        (r.Ml.side, r.Ml.cut));
  }

type quadrisector = {
  qname : string;
  qrun : Rng.t -> H.t -> int array * int;
}

let q_mlf =
  {
    qname = "MLf-4way";
    qrun =
      (fun rng h ->
        let r = Ml_multiway.run rng h ~k:4 in
        (r.Ml_multiway.side, r.Ml_multiway.cut));
  }

let of_multiway qname config =
  {
    qname;
    qrun =
      (fun rng h ->
        let r = Multiway.run ~config rng h ~k:4 in
        (r.Multiway.side, r.Multiway.cut));
  }

let q_fm = of_multiway "FM-4way" { Multiway.default with objective = Multiway.Net_cut }
let q_clip = of_multiway "SOED-4way" Multiway.default

(* 4-way LSMC: kick a random blob to a random part, re-descend, keep the
   best (temperature 0, kick from best — as in the 2-way version). *)
let q_lsmc qname config descents =
  {
    qname;
    qrun =
      (fun rng h ->
        let descend init =
          Multiway.run ~config ?init rng h ~k:4
        in
        let first = descend None in
        let best_side = ref first.Multiway.side in
        let best_cut = ref first.Multiway.cut in
        let n = H.num_modules h in
        for _ = 2 to descents do
          let kicked = Array.copy !best_side in
          let blob = Stdlib.max 2 (n / 40) in
          let target = Rng.int rng 4 in
          for _ = 1 to blob do
            kicked.(Rng.int rng n) <- target
          done;
          let r = descend (Some kicked) in
          if r.Multiway.cut < !best_cut then begin
            best_cut := r.Multiway.cut;
            best_side := r.Multiway.side
          end
        done;
        (!best_side, !best_cut));
  }

let q_lsmc_f =
  q_lsmc "LSMCf-4way" { Multiway.default with objective = Multiway.Net_cut } 20

let q_lsmc_c = q_lsmc "LSMCc-4way" Multiway.default 20

let q_gordian =
  {
    qname = "GORDIAN";
    qrun =
      (fun _rng h ->
        let r = Gordian.run h in
        (r.Gordian.side, r.Gordian.cut));
  }
