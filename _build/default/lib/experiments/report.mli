(** Measurement harness: repeated runs, aggregated the way the paper's
    tables report them (min cut, average cut, standard deviation, total CPU
    seconds). *)

type measurement = {
  min_cut : int;
  avg_cut : float;
  std_cut : float;
  cpu : float;  (** total processor seconds over all runs *)
  runs : int;
}

val measure :
  ?jobs:int ->
  runs:int ->
  seed:int ->
  Mlpart_hypergraph.Hypergraph.t ->
  Algos.bipartitioner ->
  measurement
(** Run a bipartitioner [runs] times with independent generators derived
    from [seed]; every run's cut is verified against a from-scratch
    recount.  [jobs > 1] spreads the runs over that many domains (OCaml 5
    parallelism); the per-run generators are pre-split from [seed] first,
    so the statistics are identical for any job count.  The [cpu] field
    stays the summed processor time. *)

val measure_quad :
  ?jobs:int ->
  runs:int ->
  seed:int ->
  Mlpart_hypergraph.Hypergraph.t ->
  Algos.quadrisector ->
  measurement
(** Same for 4-way algorithms. *)

val cell : int option -> string
(** Render an optional published value ("-" when the paper leaves the cell
    blank). *)

val fcell : float option -> string
