(** Published numbers from the paper's tables, used as reference columns in
    the reproduction reports.

    Values are transcribed from the DAC-97/TCAD text; a few cells in the
    source scan are visibly corrupted by OCR — those are noted in
    EXPERIMENTS.md and transcribed at the most plausible reading.  Lookup is
    by circuit name; [None] means the paper leaves the cell blank (or the
    circuit is absent from that table). *)

type table2_row = {
  t2_min : int * int * int;  (** LIFO, FIFO, RND minimum cut, 100 runs *)
  t2_avg : int * int * int;  (** LIFO, FIFO, RND average cut *)
}

val table2 : string -> table2_row option

type table3_row = {
  t3_min : int * int;  (** FM, CLIP *)
  t3_avg : int * int;
  t3_cpu : int * int;  (** Sun Sparc 5 seconds, 100 runs *)
}

val table3 : string -> table3_row option

type table4_row = {
  t4_min : int * int * int;  (** CLIP, MLf, MLc (R = 1) *)
  t4_avg : int * int * int;
  t4_cpu : int * int * int;
}

val table4 : string -> table4_row option

type ratio_row = {
  r_min : int * int * int;  (** R = 1.0, 0.5, 0.33 *)
  r_avg : int * int * int;
  r_cpu : int * int * int;
}

val table5 : string -> ratio_row option
(** MLf at the three matching ratios. *)

val table6 : string -> ratio_row option
(** MLc at the three matching ratios. *)

type table7_row = {
  mlc100 : int option;
  mlc10 : int option;
  gmet : int option;
  hb : int option;
  pb : int option;
  gfm : int option;
  gfm2 : int option;
  cl_la3f : int option;
  cd_la3f : int option;
  cl_prf : int option;
  lsmc : int option;
}

val table7 : string -> table7_row option

type table9_row = {
  t9_mlf_min : int;
  t9_mlf_avg : int;
  t9_gordian : int;
  t9_fm : int;
  t9_clip : int;
  t9_lsmc_f : int;
  t9_lsmc_c : int;
}

val table9 : string -> table9_row option
