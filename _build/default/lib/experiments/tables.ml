module Suite = Mlpart_gen.Suite
module Tab = Mlpart_util.Tab
module H = Mlpart_hypergraph.Hypergraph

type protocol = { runs : int; seed : int; tier : Suite.tier; jobs : int }

let default_protocol = { runs = 5; seed = 1; tier = Suite.Small; jobs = 1 }

let circuits p = Suite.tier_specs p.tier

let banner title note =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "%s\n" note;
  Printf.printf "================================================================\n"

let protocol_note p =
  Printf.sprintf
    "Protocol: %d runs/algorithm, seed %d, synthetic circuits (see DESIGN.md).\n\
     Paper columns are the published values (100 runs on the real benchmarks)."
    p.runs p.seed

let i = string_of_int
let f1 = Tab.ff1

let table1 p =
  banner "Table I: benchmark circuit characteristics"
    "Published counts vs the synthetic instantiation used throughout.";
  Format.printf "%a@?" Suite.pp_table1 (circuits p)

(* Shared skeleton: run a list of bipartitioners over the tier and render
   one measured row per circuit next to the paper's reference cells. *)
let run_row p h algos =
  List.map
    (fun algo -> Report.measure ~jobs:p.jobs ~runs:p.runs ~seed:p.seed h algo)
    algos

let table2 p =
  banner "Table II: FM bucket tie-breaking schemes (LIFO / FIFO / RND)"
    (protocol_note p);
  let rows =
    List.map
      (fun spec ->
        let h = Suite.instantiate ~seed:p.seed spec in
        let ms = run_row p h [ Algos.fm; Algos.fm_fifo; Algos.fm_random ] in
        let paper = Paper.table2 spec.Suite.circuit in
        let pcell f = match paper with None -> "-" | Some row -> f row in
        match ms with
        | [ l; ff; r ] ->
            [
              spec.Suite.circuit;
              i l.Report.min_cut; i ff.Report.min_cut; i r.Report.min_cut;
              f1 l.Report.avg_cut; f1 ff.Report.avg_cut; f1 r.Report.avg_cut;
              pcell (fun { Paper.t2_min = a, b, c; _ } ->
                  Printf.sprintf "%d/%d/%d" a b c);
              pcell (fun { Paper.t2_avg = a, b, c; _ } ->
                  Printf.sprintf "%d/%d/%d" a b c);
            ]
        | _ -> assert false)
      (circuits p)
  in
  Tab.print
    ~header:
      [ "circuit"; "minL"; "minF"; "minR"; "avgL"; "avgF"; "avgR";
        "paper min L/F/R"; "paper avg L/F/R" ]
    rows

let table3 p =
  banner "Table III: FM vs CLIP" (protocol_note p);
  let rows =
    List.map
      (fun spec ->
        let h = Suite.instantiate ~seed:p.seed spec in
        match run_row p h [ Algos.fm; Algos.clip ] with
        | [ fm; cl ] ->
            let paper = Paper.table3 spec.Suite.circuit in
            let pcell f = match paper with None -> "-" | Some row -> f row in
            [
              spec.Suite.circuit;
              i fm.Report.min_cut; i cl.Report.min_cut;
              f1 fm.Report.avg_cut; f1 cl.Report.avg_cut;
              Tab.ff2 fm.Report.cpu; Tab.ff2 cl.Report.cpu;
              pcell (fun { Paper.t3_min = a, b; _ } -> Printf.sprintf "%d/%d" a b);
              pcell (fun { Paper.t3_avg = a, b; _ } -> Printf.sprintf "%d/%d" a b);
            ]
        | _ -> assert false)
      (circuits p)
  in
  Tab.print
    ~header:
      [ "circuit"; "minFM"; "minCLIP"; "avgFM"; "avgCLIP"; "cpuFM"; "cpuCLIP";
        "paper min"; "paper avg" ]
    rows

let table4 p =
  banner "Table IV: CLIP vs MLf vs MLc (R = 1)" (protocol_note p);
  let rows =
    List.map
      (fun spec ->
        let h = Suite.instantiate ~seed:p.seed spec in
        match run_row p h [ Algos.clip; Algos.mlf 1.0; Algos.mlc 1.0 ] with
        | [ cl; mf; mc ] ->
            let paper = Paper.table4 spec.Suite.circuit in
            let pcell f = match paper with None -> "-" | Some row -> f row in
            [
              spec.Suite.circuit;
              i cl.Report.min_cut; i mf.Report.min_cut; i mc.Report.min_cut;
              f1 cl.Report.avg_cut; f1 mf.Report.avg_cut; f1 mc.Report.avg_cut;
              Tab.ff2 cl.Report.cpu; Tab.ff2 mf.Report.cpu; Tab.ff2 mc.Report.cpu;
              pcell (fun { Paper.t4_min = a, b, c; _ } ->
                  Printf.sprintf "%d/%d/%d" a b c);
              pcell (fun { Paper.t4_avg = a, b, c; _ } ->
                  Printf.sprintf "%d/%d/%d" a b c);
            ]
        | _ -> assert false)
      (circuits p)
  in
  Tab.print
    ~header:
      [ "circuit"; "minCLIP"; "minMLf"; "minMLc"; "avgCLIP"; "avgMLf"; "avgMLc";
        "cpuCLIP"; "cpuMLf"; "cpuMLc"; "paper min C/F/C"; "paper avg C/F/C" ]
    rows

let ratio_table p ~title ~mk_algo ~paper_lookup =
  banner title (protocol_note p);
  let ratios = [ 1.0; 0.5; 0.33 ] in
  let rows =
    List.map
      (fun spec ->
        let h = Suite.instantiate ~seed:p.seed spec in
        let ms = run_row p h (List.map mk_algo ratios) in
        let paper = paper_lookup spec.Suite.circuit in
        let pcell f = match paper with None -> "-" | Some row -> f row in
        spec.Suite.circuit
        :: List.map (fun m -> i m.Report.min_cut) ms
        @ List.map (fun m -> f1 m.Report.avg_cut) ms
        @ List.map (fun m -> Tab.ff2 m.Report.cpu) ms
        @ [
            pcell (fun { Paper.r_min = a, b, c; _ } ->
                Printf.sprintf "%d/%d/%d" a b c);
            pcell (fun { Paper.r_avg = a, b, c; _ } ->
                Printf.sprintf "%d/%d/%d" a b c);
          ])
      (circuits p)
  in
  Tab.print
    ~header:
      [ "circuit"; "min1.0"; "min0.5"; "min.33"; "avg1.0"; "avg0.5"; "avg.33";
        "cpu1.0"; "cpu0.5"; "cpu.33"; "paper min"; "paper avg" ]
    rows

let table5 p =
  ratio_table p ~title:"Table V: MLf under matching ratios R = 1.0 / 0.5 / 0.33"
    ~mk_algo:Algos.mlf ~paper_lookup:Paper.table5

let table6 p =
  ratio_table p ~title:"Table VI: MLc under matching ratios R = 1.0 / 0.5 / 0.33"
    ~mk_algo:Algos.mlc ~paper_lookup:Paper.table6

let table7_algos p =
  [
    Algos.mlc 0.5;
    Algos.cl_la3f;
    Algos.cd_la3f;
    Algos.cl_prf;
    Algos.lsmc (Stdlib.max 10 (2 * p.runs));
  ]

let table7 p =
  banner "Table VII: MLc (R = 0.5) vs other bipartitioners — min cut"
    (protocol_note p
    ^ "\nGMet/HB/PB/GFM are external systems: published values only.");
  let rows =
    List.map
      (fun spec ->
        let h = Suite.instantiate ~seed:p.seed spec in
        let ms = run_row p h (table7_algos p) in
        let paper = Paper.table7 spec.Suite.circuit in
        let pc f = match paper with None -> "-" | Some row -> Report.cell (f row) in
        spec.Suite.circuit
        :: List.map (fun m -> i m.Report.min_cut) ms
        @ List.map (fun m -> f1 m.Report.avg_cut) ms
        @ [
            pc (fun r -> r.Paper.mlc100); pc (fun r -> r.Paper.cl_la3f);
            pc (fun r -> r.Paper.cd_la3f); pc (fun r -> r.Paper.cl_prf);
            pc (fun r -> r.Paper.lsmc); pc (fun r -> r.Paper.gmet);
            pc (fun r -> r.Paper.hb); pc (fun r -> r.Paper.pb);
            pc (fun r -> r.Paper.gfm);
          ])
      (circuits p)
  in
  Tab.print
    ~header:
      [ "circuit"; "MLc"; "CL-LA3f"; "CD-LA3f"; "CL-PRf"; "LSMC";
        "aMLc"; "aCL"; "aCD"; "aPR"; "aLSMC";
        "pMLc"; "pCL"; "pCD"; "pPR"; "pLSMC"; "pGMet"; "pHB"; "pPB"; "pGFM" ]
    rows

let table8 p =
  banner "Table VIII: CPU seconds for the same algorithms"
    (protocol_note p ^ "\nWall ratios matter, not absolute seconds.");
  let rows =
    List.map
      (fun spec ->
        let h = Suite.instantiate ~seed:p.seed spec in
        let ms = run_row p h (table7_algos p) in
        spec.Suite.circuit :: List.map (fun m -> Tab.ff2 m.Report.cpu) ms)
      (circuits p)
  in
  Tab.print ~header:[ "circuit"; "MLc"; "CL-LA3f"; "CD-LA3f"; "CL-PRf"; "LSMC" ]
    rows

let table9 p =
  banner "Table IX: 4-way partitioning (min cut, ML also avg)"
    (protocol_note p
    ^ "\nGORDIAN column: our analytic-placement reimplementation.");
  let quads =
    [ Algos.q_mlf; Algos.q_gordian; Algos.q_fm; Algos.q_clip; Algos.q_lsmc_f;
      Algos.q_lsmc_c ]
  in
  let rows =
    List.map
      (fun spec ->
        let h = Suite.instantiate ~seed:p.seed spec in
        let ms =
          List.map
            (fun algo ->
              let runs =
                if algo.Algos.qname = "GORDIAN" then 1 else p.runs
              in
              Report.measure_quad ~jobs:p.jobs ~runs ~seed:p.seed h algo)
            quads
        in
        let paper = Paper.table9 spec.Suite.circuit in
        let pcell f = match paper with None -> "-" | Some row -> i (f row) in
        match ms with
        | [ ml; gord; fm; cl; lf; lc ] ->
            [
              spec.Suite.circuit;
              Printf.sprintf "%d (%.0f)" ml.Report.min_cut ml.Report.avg_cut;
              i gord.Report.min_cut; i fm.Report.min_cut; i cl.Report.min_cut;
              i lf.Report.min_cut; i lc.Report.min_cut;
              pcell (fun r -> r.Paper.t9_mlf_min);
              pcell (fun r -> r.Paper.t9_gordian);
              pcell (fun r -> r.Paper.t9_fm);
            ]
        | _ -> assert false)
      (circuits p)
  in
  Tab.print
    ~header:
      [ "circuit"; "MLf (avg)"; "GORD"; "FM4"; "SOED4"; "LSMCf"; "LSMCc";
        "pMLf"; "pGORD"; "pFM" ]
    rows

let figure4 p =
  banner "Figure 4: matching ratio R vs average cut"
    (protocol_note p
    ^ "\nPaper: 40 runs of MLc on avqsmall/avqlarge; here the two largest\n\
       circuits of the selected tier.");
  let specs = circuits p in
  let biggest =
    List.sort (fun a b -> compare b.Suite.modules a.Suite.modules) specs
    |> fun sorted ->
    (match sorted with a :: b :: _ -> [ b; a ] | other -> other)
  in
  let ratios = [ 0.15; 0.25; 0.33; 0.5; 0.75; 1.0 ] in
  let rows =
    List.concat_map
      (fun spec ->
        let h = Suite.instantiate ~seed:p.seed spec in
        List.map
          (fun r ->
            let m =
              Report.measure ~jobs:p.jobs ~runs:p.runs ~seed:p.seed h
                (Algos.mlc r)
            in
            [ spec.Suite.circuit; Printf.sprintf "%.2f" r;
              f1 m.Report.avg_cut; i m.Report.min_cut; Tab.ff2 m.Report.cpu ])
          ratios)
      biggest
  in
  Tab.print ~header:[ "circuit"; "R"; "avg cut"; "min cut"; "cpu" ] rows

let ablations p =
  banner "Ablations: design choices called out in DESIGN.md" (protocol_note p);
  let specs =
    match circuits p with
    | a :: b :: c :: _ -> [ a; b; c ]
    | other -> other
  in
  let module Fm = Mlpart_partition.Fm in
  let module Ml = Mlpart_multilevel.Ml in
  let variants =
    [
      ("MLc base", Ml.with_ratio Ml.mlc 0.5);
      ("MLc merge-dup nets",
       { (Ml.with_ratio Ml.mlc 0.5) with Ml.merge_duplicates = true });
      ("MLc wide balance",
       { (Ml.with_ratio Ml.mlc 0.5) with
         Ml.engine = { Fm.clip with wide_balance = true } });
      ("MLc early-exit 100",
       { (Ml.with_ratio Ml.mlc 0.5) with
         Ml.engine = { Fm.clip with early_exit = Some 100 } });
      ("MLc boundary FM",
       { (Ml.with_ratio Ml.mlc 0.5) with
         Ml.engine = { Fm.clip with boundary = true } });
      ("MLc 8 coarse starts",
       { (Ml.with_ratio Ml.mlc 0.5) with Ml.coarsest_starts = 8 });
    ]
  in
  let rows =
    List.concat_map
      (fun spec ->
        let h = Suite.instantiate ~seed:p.seed spec in
        List.map
          (fun (label, config) ->
            let algo =
              { Algos.name = label;
                run =
                  (fun rng h ->
                    let r = Ml.run ~config rng h in
                    (r.Ml.side, r.Ml.cut)) }
            in
            let m = Report.measure ~jobs:p.jobs ~runs:p.runs ~seed:p.seed h algo in
            [ spec.Suite.circuit; label; i m.Report.min_cut; f1 m.Report.avg_cut;
              Tab.ff2 m.Report.cpu ])
          variants)
      specs
  in
  Tab.print ~header:[ "circuit"; "variant"; "min"; "avg"; "cpu" ] rows

let recursive p =
  banner "Recursive bisection vs direct multilevel k-way (not in the paper)"
    (protocol_note p);
  let module Rb = Mlpart_multilevel.Rb in
  let module MLW = Mlpart_multilevel.Ml_multiway in
  let specs =
    match circuits p with a :: b :: c :: _ -> [ a; b; c ] | other -> other
  in
  let rows =
    List.concat_map
      (fun spec ->
        let h = Suite.instantiate ~seed:p.seed spec in
        List.map
          (fun k ->
            let rng = Mlpart_util.Rng.create p.seed in
            let best f =
              let cut = ref max_int and soed = ref max_int in
              for _ = 1 to p.runs do
                let c, s = f (Mlpart_util.Rng.split rng) in
                if c < !cut then cut := c;
                if s < !soed then soed := s
              done;
              (!cut, !soed)
            in
            let rb_soed =
              best (fun rng ->
                  let r = Rb.run rng h ~k in
                  (r.Rb.cut, r.Rb.sum_degrees))
            in
            let rb_cut =
              best (fun rng ->
                  let r =
                    Rb.run ~config:{ Rb.default with Rb.keep_cut_nets = false }
                      rng h ~k
                  in
                  (r.Rb.cut, r.Rb.sum_degrees))
            in
            let direct =
              best (fun rng ->
                  let r = MLW.run rng h ~k in
                  let kp =
                    Mlpart_partition.Kpartition.create h ~k r.MLW.side
                  in
                  (r.MLW.cut, Mlpart_partition.Kpartition.sum_degrees kp))
            in
            [
              spec.Suite.circuit; i k;
              i (fst rb_cut); i (snd rb_cut);
              i (fst rb_soed); i (snd rb_soed);
              i (fst direct); i (snd direct);
            ])
          [ 4; 8 ])
      specs
  in
  Tab.print
    ~header:
      [ "circuit"; "k"; "RBcut cut"; "RBcut soed"; "RBsoed cut"; "RBsoed soed";
        "MLk cut"; "MLk soed" ]
    rows

let extras p =
  banner "Extras: spectral / two-phase / V-cycle baselines (not in the paper)"
    (protocol_note p);
  let algos =
    [ Algos.kl; Algos.eig; Algos.eig_fm; Algos.ga_fm; Algos.two_phase;
      Algos.mlc 0.5; Algos.mlc_vcycles 4 ]
  in
  let rows =
    List.map
      (fun spec ->
        let h = Suite.instantiate ~seed:p.seed spec in
        let ms =
          List.map
            (fun (algo : Algos.bipartitioner) ->
              (* deterministic algorithms need a single run *)
              let runs =
                if algo.Algos.name = "EIG" || algo.Algos.name = "EIG+FM" then 1
                else p.runs
              in
              Report.measure ~jobs:p.jobs ~runs ~seed:p.seed h algo)
            algos
        in
        spec.Suite.circuit
        :: List.map (fun m -> i m.Report.min_cut) ms
        @ List.map (fun m -> f1 m.Report.avg_cut) ms)
      (circuits p)
  in
  Tab.print
    ~header:
      [ "circuit"; "KL"; "EIG"; "EIG+FM"; "GA-FM"; "2phase"; "MLc"; "MLc+4vc";
        "avgKL"; "avgEIG"; "avgE+F"; "avgGA"; "avg2ph"; "avgMLc"; "avgVC" ]
    rows

let all p =
  table1 p;
  table2 p;
  table3 p;
  table4 p;
  table5 p;
  table6 p;
  table7 p;
  table8 p;
  table9 p;
  figure4 p;
  ablations p;
  extras p;
  recursive p
