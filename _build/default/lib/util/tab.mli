(** Fixed-width ASCII table rendering for the experiment reports.

    The bench harness prints each reproduced table of the paper in the same
    row/column shape as published; this module handles alignment. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out [rows] under [header] with columns padded
    to the widest cell.  [align] gives per-column alignment (default: first
    column left, the rest right).  Rows shorter than the header are padded
    with empty cells. *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val fi : int -> string
(** Decimal rendering of an int. *)

val ff1 : float -> string
(** One-decimal rendering of a float. *)

val ff2 : float -> string
(** Two-decimal rendering of a float. *)
