(* Sys.time reports processor time, matching the "CPU seconds" columns of
   the paper rather than wall-clock latency. *)

let now () = Sys.time ()

let time f =
  let start = now () in
  let result = f () in
  (result, now () -. start)
