(** CPU timing for the CPU-seconds columns of the reproduced tables. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    processor seconds. *)

val now : unit -> float
(** Processor time in seconds since program start ([Sys.time]). *)
