type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let normalise row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalise rows in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> a
    | Some _ | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell ->
        if i < ncols && String.length cell > widths.(i) then
          widths.(i) <- String.length cell)
      row
  in
  measure header;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let emit_row row =
    List.iteri (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth aligns i) widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  let total =
    Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ?align ~header rows = print_string (render ?align ~header rows)

let fi = string_of_int
let ff1 x = Printf.sprintf "%.1f" x
let ff2 x = Printf.sprintf "%.2f" x
