lib/util/tab.ml: Array Buffer List Printf String
