lib/util/stats.mli:
