lib/util/rng.mli:
