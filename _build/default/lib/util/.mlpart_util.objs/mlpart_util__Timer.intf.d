lib/util/timer.mli:
