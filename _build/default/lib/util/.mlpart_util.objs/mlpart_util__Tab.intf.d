lib/util/tab.mli:
