(** Deterministic pseudo-random number generation.

    A small, fast SplitMix64 generator.  Every randomised algorithm in this
    repository threads an explicit [Rng.t] so that experiments are exactly
    reproducible from a seed, independent of the global [Random] state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] draws from [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream.  Used to give
    each run of a multi-run experiment its own generator. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of [0 .. n-1]. *)
