(** LSMC — Large-Step Markov Chain bipartitioning (Fukunaga, Huang & Kahng,
    ISCAS 1996), the competitor the paper re-implemented for Table VII.

    The chain repeatedly "kicks" the best solution seen so far — moving a
    random connected blob of modules across the cut to escape the current
    basin — then descends back to a local minimum with an FM-family engine,
    keeping the result if it improves.  The paper runs 100 descents with the
    kick applied to the best solution observed so far (temperature 0). *)

type config = {
  engine : Fm.config;  (** descent engine (plain FM or CLIP) *)
  descents : int;  (** number of kick+descend iterations; default 100 *)
  kick_fraction : float;
      (** blob size as a fraction of the module count; default 0.05 *)
}

val default : config
(** FM descents, 100 iterations, 5% kicks. *)

val default_clip : config
(** CLIP descents, otherwise as {!default}. *)

type result = { side : int array; cut : int; descents_run : int }

val run :
  ?config:config ->
  ?init:int array ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  result
