(** Hybrid genetic/FM bipartitioning in the style of Bui–Moon (DAC 1994)
    and the GMet column of Table VII: a small population of FM-refined
    solutions evolved by crossover + mutation, every offspring re-refined
    by FM before competing.

    The crossover normalises parent polarity first (a bipartition and its
    complement are the same solution), takes each module's side from a
    random parent, repairs balance, mutates a few modules, and descends
    with the configured FM engine.  Steady-state replacement of the worst
    member. *)

type config = {
  population : int;  (** default 8 *)
  generations : int;  (** offspring produced; default 24 *)
  mutation : float;  (** per-module flip probability; default 0.02 *)
  engine : Fm.config;  (** refinement engine; default plain FM *)
}

val default : config

type result = {
  side : int array;
  cut : int;
  evaluations : int;  (** FM descents performed *)
}

val run :
  ?config:config ->
  ?init:int array ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  result
(** [init], when given, seeds one population member. *)
