module Rng = Mlpart_util.Rng

type policy = Lifo | Fifo | Random

let policy_of_string = function
  | "lifo" -> Some Lifo
  | "fifo" -> Some Fifo
  | "random" | "rnd" -> Some Random
  | _ -> None

let policy_to_string = function Lifo -> "lifo" | Fifo -> "fifo" | Random -> "random"

(* Intrusive doubly-linked lists over a module-id-indexed arena.  [head] and
   [tail] per bucket; [bucket_of.(v) = min_gain - 1] marks absence. *)
type t = {
  policy : policy;
  rng : Rng.t;
  min_gain : int;
  max_gain : int;
  head : int array; (* bucket index - min_gain -> first module or -1 *)
  tail : int array;
  next : int array;
  prev : int array;
  bucket_of : int array; (* gain of stored module, or absent_mark *)
  absent_mark : int;
  mutable max_bucket : int; (* upper bound on highest non-empty bucket index *)
  mutable size : int;
}

let create ?rng ~policy ~min_gain ~max_gain ~capacity () =
  if max_gain < min_gain then invalid_arg "Gain_bucket.create: empty gain range";
  let nbuckets = max_gain - min_gain + 1 in
  let rng = match rng with Some r -> r | None -> Rng.create 0x6a11 in
  {
    policy;
    rng;
    min_gain;
    max_gain;
    head = Array.make nbuckets (-1);
    tail = Array.make nbuckets (-1);
    next = Array.make capacity (-1);
    prev = Array.make capacity (-1);
    bucket_of = Array.make capacity (min_gain - 1);
    absent_mark = min_gain - 1;
    max_bucket = min_gain - 1;
    size = 0;
  }

let clear t =
  Array.fill t.head 0 (Array.length t.head) (-1);
  Array.fill t.tail 0 (Array.length t.tail) (-1);
  Array.fill t.bucket_of 0 (Array.length t.bucket_of) t.absent_mark;
  t.max_bucket <- t.absent_mark;
  t.size <- 0

let size t = t.size
let is_empty t = t.size = 0
let contains t v = t.bucket_of.(v) <> t.absent_mark

let gain_of t v = t.bucket_of.(v)

let slot t g = g - t.min_gain

let insert t v g =
  if g < t.min_gain || g > t.max_gain then
    invalid_arg
      (Printf.sprintf "Gain_bucket.insert: gain %d outside [%d, %d]" g t.min_gain
         t.max_gain);
  if contains t v then invalid_arg "Gain_bucket.insert: module already present";
  let i = slot t g in
  (match t.policy with
  | Lifo | Random ->
      (* push front *)
      let old = t.head.(i) in
      t.next.(v) <- old;
      t.prev.(v) <- -1;
      if old >= 0 then t.prev.(old) <- v else t.tail.(i) <- v;
      t.head.(i) <- v
  | Fifo ->
      (* push back *)
      let old = t.tail.(i) in
      t.prev.(v) <- old;
      t.next.(v) <- -1;
      if old >= 0 then t.next.(old) <- v else t.head.(i) <- v;
      t.tail.(i) <- v);
  t.bucket_of.(v) <- g;
  if g > t.max_bucket then t.max_bucket <- g;
  t.size <- t.size + 1

let remove t v =
  if contains t v then begin
    let i = slot t (t.bucket_of.(v)) in
    let p = t.prev.(v) and n = t.next.(v) in
    if p >= 0 then t.next.(p) <- n else t.head.(i) <- n;
    if n >= 0 then t.prev.(n) <- p else t.tail.(i) <- p;
    t.bucket_of.(v) <- t.absent_mark;
    t.size <- t.size - 1
  end

let adjust t v delta =
  if not (contains t v) then invalid_arg "Gain_bucket.adjust: module absent";
  let g = t.bucket_of.(v) + delta in
  remove t v;
  insert t v g

(* Lower [max_bucket] past empty buckets. *)
let settle t =
  while t.max_bucket >= t.min_gain && t.head.(slot t t.max_bucket) < 0 do
    t.max_bucket <- t.max_bucket - 1
  done

let random_of_bucket t i =
  let count = ref 0 in
  let v = ref t.head.(i) in
  while !v >= 0 do
    incr count;
    v := t.next.(!v)
  done;
  let target = Rng.int t.rng !count in
  let v = ref t.head.(i) in
  for _ = 1 to target do
    v := t.next.(!v)
  done;
  !v

let select_max t =
  if t.size = 0 then None
  else begin
    settle t;
    let i = slot t t.max_bucket in
    let v =
      match t.policy with Lifo | Fifo -> t.head.(i) | Random -> random_of_bucket t i
    in
    Some (v, t.max_bucket)
  end

let select_max_satisfying t pred =
  if t.size = 0 then None
  else begin
    settle t;
    (* Scan buckets downward.  For Random, examining the bucket in a random
       rotation keeps selection unbiased among satisfying modules. *)
    let rec scan_bucket v =
      if v < 0 then None
      else if pred v then Some v
      else scan_bucket t.next.(v)
    in
    let rec scan g =
      if g < t.min_gain then None
      else
        let i = slot t g in
        let start =
          match t.policy with
          | Lifo | Fifo -> t.head.(i)
          | Random ->
              if t.head.(i) >= 0 then random_of_bucket t i else -1
        in
        match t.policy with
        | Lifo | Fifo -> begin
            match scan_bucket start with
            | Some v -> Some (v, g)
            | None -> scan (g - 1)
          end
        | Random -> begin
            (* Try the random pick first, then fall back to a linear scan
               from the head (bias acceptable for rejected candidates). *)
            if start >= 0 && pred start then Some (start, g)
            else
              match scan_bucket t.head.(i) with
              | Some v -> Some (v, g)
              | None -> scan (g - 1)
          end
    in
    scan t.max_bucket
  end

let pop_max t =
  match select_max t with
  | None -> None
  | Some (v, g) ->
      remove t v;
      Some (v, g)

let max_key t =
  if t.size = 0 then None
  else begin
    settle t;
    Some t.max_bucket
  end

let iter_key t g f =
  if g >= t.min_gain && g <= t.max_gain then begin
    let v = ref t.head.(slot t g) in
    while !v >= 0 do
      let cur = !v in
      v := t.next.(cur);
      f cur
    done
  end
