(** Mutable k-way partition state (k >= 2) for the quadrisection engines.

    Tracks per-net pin counts in every part, the number of parts each net
    spans, part areas, the weighted net cut (nets spanning >= 2 parts) and
    the weighted sum-of-cluster-degrees objective [Σ w(e) * (spans(e) - 1)]
    — the two gain objectives of the paper's §III.C. *)

type t

val create : Mlpart_hypergraph.Hypergraph.t -> k:int -> int array -> t
(** Adopt (copy) a part assignment in [0 .. k-1]. *)

val random :
  ?fixed:int array ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  k:int ->
  t
(** Random balanced assignment: modules in random order go to the currently
    lightest part.  [fixed.(v) >= 0] pre-assigns module [v] (the paper's
    pre-placed I/O pads); [-1] means free. *)

val copy : t -> t
val hypergraph : t -> Mlpart_hypergraph.Hypergraph.t
val k : t -> int
val side : t -> int -> int
val side_array : t -> int array
val area_of_part : t -> int -> int
val pins_on : t -> int -> int -> int
(** [pins_on t e p]: pins of net [e] in part [p]. *)

val spans : t -> int -> int
(** Number of parts net [e] touches. *)

val cut : t -> int
(** Weighted count of nets spanning at least two parts. *)

val sum_degrees : t -> int
(** Weighted [Σ (spans(e) - 1)]. *)

type bounds = { lo : int; hi : int }

val bounds : ?tolerance:float -> Mlpart_hypergraph.Hypergraph.t -> k:int -> bounds
(** Per-part area window [A(V)/k ± max (A(v_max), r * A(V) / k)]. *)

val is_balanced : t -> bounds -> bool

val move_is_feasible : t -> bounds -> int -> int -> bool
(** [move_is_feasible t b v q]: would moving [v] to part [q] keep both the
    source and destination parts within [b]? *)

val move : t -> int -> int -> unit
(** [move t v q] reassigns module [v] to part [q]. *)

val rebalance : ?fixed:int array -> Mlpart_util.Rng.t -> t -> bounds -> int
(** Move random free modules from over-full to under-full parts until
    balanced; returns the move count. *)

val recompute_cut : t -> int
(** From-scratch verification of [cut]. *)
