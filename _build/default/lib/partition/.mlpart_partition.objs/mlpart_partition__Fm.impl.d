lib/partition/fm.ml: Array Bipartition Gain_bucket Mlpart_hypergraph Mlpart_util Stdlib
