lib/partition/lsmc.mli: Fm Mlpart_hypergraph Mlpart_util
