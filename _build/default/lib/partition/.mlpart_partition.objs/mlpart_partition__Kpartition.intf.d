lib/partition/kpartition.mli: Mlpart_hypergraph Mlpart_util
