lib/partition/gain_bucket.ml: Array Mlpart_util Printf
