lib/partition/objective.mli: Format Mlpart_hypergraph
