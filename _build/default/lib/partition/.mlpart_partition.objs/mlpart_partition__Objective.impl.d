lib/partition/objective.ml: Array Format In_channel Kpartition List Mlpart_hypergraph Out_channel Printf Stdlib String
