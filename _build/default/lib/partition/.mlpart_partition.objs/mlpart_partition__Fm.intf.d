lib/partition/fm.mli: Gain_bucket Mlpart_hypergraph Mlpart_util
