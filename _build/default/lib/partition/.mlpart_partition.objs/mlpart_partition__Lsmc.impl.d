lib/partition/lsmc.ml: Array Fm Mlpart_hypergraph Mlpart_util Queue Stdlib
