lib/partition/genetic.mli: Fm Mlpart_hypergraph Mlpart_util
