lib/partition/bipartition.mli: Mlpart_hypergraph Mlpart_util
