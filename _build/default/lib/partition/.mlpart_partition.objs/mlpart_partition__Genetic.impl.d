lib/partition/genetic.ml: Array Fm Mlpart_hypergraph Mlpart_util
