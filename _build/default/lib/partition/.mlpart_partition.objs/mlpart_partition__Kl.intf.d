lib/partition/kl.mli: Mlpart_hypergraph Mlpart_util
