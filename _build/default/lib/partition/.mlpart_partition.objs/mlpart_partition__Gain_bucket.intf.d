lib/partition/gain_bucket.mli: Mlpart_util
