lib/partition/bipartition.ml: Array Mlpart_hypergraph Mlpart_util Printf Stdlib
