lib/partition/kpartition.ml: Array Mlpart_hypergraph Mlpart_util Printf Stdlib
