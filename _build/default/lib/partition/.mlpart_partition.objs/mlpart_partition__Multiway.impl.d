lib/partition/multiway.ml: Array Gain_bucket Kpartition List Mlpart_hypergraph Mlpart_util Stdlib
