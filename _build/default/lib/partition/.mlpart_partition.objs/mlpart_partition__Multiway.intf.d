lib/partition/multiway.mli: Gain_bucket Mlpart_hypergraph Mlpart_util
