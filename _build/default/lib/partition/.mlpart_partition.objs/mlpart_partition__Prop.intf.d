lib/partition/prop.mli: Mlpart_hypergraph Mlpart_util
