lib/partition/kl.ml: Array Bipartition List Mlpart_hypergraph Mlpart_util
