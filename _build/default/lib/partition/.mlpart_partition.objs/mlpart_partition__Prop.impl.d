lib/partition/prop.ml: Array Bipartition List Mlpart_hypergraph Mlpart_util Stdlib
