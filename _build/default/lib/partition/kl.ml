module H = Mlpart_hypergraph.Hypergraph
module Rng = Mlpart_util.Rng

type config = { beam : int; max_passes : int; net_threshold : int }

let default = { beam = 12; max_passes = max_int; net_threshold = 200 }

type result = { side : int array; cut : int; passes : int; swaps : int }

let run ?(config = default) ?init rng h =
  let n = H.num_modules h in
  let bp =
    match init with
    | Some side -> Bipartition.create h side
    | None -> Bipartition.random rng h
  in
  let gain = Array.make n 0 in
  let locked = Array.make n false in
  let recompute_gain v =
    gain.(v) <- Bipartition.gain ~net_threshold:config.net_threshold bp v
  in
  (* After a module moves, only its nets' pins see gain changes. *)
  let refresh_neighbours v =
    H.iter_nets_of h v (fun e ->
        H.iter_pins_of h e (fun u -> if not locked.(u) then recompute_gain u))
  in
  let top_candidates side_wanted =
    let best = Array.make config.beam (-1) in
    for v = 0 to n - 1 do
      if (not locked.(v)) && Bipartition.side bp v = side_wanted then begin
        (* insertion into a fixed-size descending-gain beam *)
        let rec place i candidate =
          if i < config.beam then
            if best.(i) < 0 || gain.(candidate) > gain.(best.(i)) then begin
              let displaced = best.(i) in
              best.(i) <- candidate;
              if displaced >= 0 then place (i + 1) displaced
            end
            else place (i + 1) candidate
        in
        place 0 v
      end
    done;
    Array.to_list best |> List.filter (fun v -> v >= 0)
  in
  let swap_stack = Array.make n (0, 0) in
  let run_pass () =
    Array.fill locked 0 n false;
    for v = 0 to n - 1 do
      recompute_gain v
    done;
    let swaps = ref 0 in
    let cum = ref 0 in
    let best = ref 0 in
    let best_count = ref 0 in
    let continue = ref true in
    while !continue do
      let cand0 = top_candidates 0 and cand1 = top_candidates 1 in
      if cand0 = [] || cand1 = [] then continue := false
      else begin
        (* exact pairwise swap gains: move a tentatively, read b's gain *)
        let best_pair = ref None in
        List.iter
          (fun a ->
            let ga = gain.(a) in
            Bipartition.move bp a;
            List.iter
              (fun b ->
                let total =
                  ga + Bipartition.gain ~net_threshold:config.net_threshold bp b
                in
                match !best_pair with
                | Some (_, _, bg) when bg >= total -> ()
                | Some _ | None -> best_pair := Some (a, b, total))
              cand1;
            Bipartition.move bp a)
          cand0;
        match !best_pair with
        | None -> continue := false
        | Some (a, b, g) ->
            Bipartition.move bp a;
            Bipartition.move bp b;
            locked.(a) <- true;
            locked.(b) <- true;
            refresh_neighbours a;
            refresh_neighbours b;
            swap_stack.(!swaps) <- (a, b);
            incr swaps;
            cum := !cum + g;
            if !cum > !best then begin
              best := !cum;
              best_count := !swaps
            end
      end
    done;
    (* keep the best prefix of swaps *)
    for i = !swaps - 1 downto !best_count do
      let a, b = swap_stack.(i) in
      Bipartition.move bp a;
      Bipartition.move bp b
    done;
    (!best, !best_count)
  in
  let passes = ref 0 in
  let swaps = ref 0 in
  let improving = ref true in
  while !improving && !passes < config.max_passes do
    let pass_gain, pass_swaps = run_pass () in
    incr passes;
    swaps := !swaps + pass_swaps;
    if pass_gain <= 0 then improving := false
  done;
  {
    side = Bipartition.side_array bp;
    cut = Bipartition.cut bp;
    passes = !passes;
    swaps = !swaps;
  }
