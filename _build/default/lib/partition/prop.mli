(** PROP — probability-based gains (Dutt & Deng, DAC 1996), as surveyed in
    §II.A of the paper.

    Instead of the immediate cut change, each move is scored by a global
    expectation: every free module is assumed to migrate with probability
    [p] (0.95 in the original work), so the gain of moving [v] across is

    {v g(v) = Σ_nets w(e) · (P[rest of v's side empties] − P[other side empties]) v}

    where a side containing a locked pin can never empty.  With [p -> 0]
    this degenerates to the classic FM gain.  Gains are non-discrete, so a
    binary heap with lazy invalidation replaces the bucket structure — the
    4–8x runtime factor the paper reports stems from exactly this change.

    We keep [p] constant while a module is free and drop it to zero on
    locking; this is the simplification documented in DESIGN.md (the
    original also adapts probabilities to gains).

    [clip = true] gives CL-PR: selection is by gain {e offset} from the
    pass-initial gain, as in CLIP. *)

type config = {
  p : float;  (** per-module move probability; default 0.95 *)
  clip : bool;
  net_threshold : int;
  tolerance : float;
  max_passes : int;
}

val default : config

type result = { side : int array; cut : int; passes : int; moves : int }

val run :
  ?config:config ->
  ?init:int array ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  result
(** Same contract as {!Fm.run}. *)
