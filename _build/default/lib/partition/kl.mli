(** Kernighan–Lin pair-swap bipartitioning (Bell Syst. Tech. J. 1970) —
    the ancestor of FM that the paper's §I departs from.  Provided as an
    educational baseline; it maintains exact balance by construction
    (modules swap rather than move), and its passes cost far more than
    FM's, which is precisely the motivation for Fiduccia–Mattheyses.

    Candidate pruning keeps it usable: each step evaluates exact swap
    gains only between the [beam] highest-gain modules of each side
    (classic KL evaluates all pairs). *)

type config = {
  beam : int;  (** candidates per side per step; default 12 *)
  max_passes : int;
  net_threshold : int;
}

val default : config

type result = { side : int array; cut : int; passes : int; swaps : int }

val run :
  ?config:config ->
  ?init:int array ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  result
