module H = Mlpart_hypergraph.Hypergraph
module Rng = Mlpart_util.Rng

type t = {
  h : H.t;
  k : int;
  side : int array;
  pins_on : int array; (* (k * e) + p *)
  spans : int array; (* per net *)
  areas : int array; (* per part *)
  mutable cut : int;
  mutable sum_degrees : int;
}

let compute_state h k side =
  let m = H.num_nets h in
  let pins_on = Array.make (k * m) 0 in
  let spans = Array.make m 0 in
  let cut = ref 0 in
  let sum_degrees = ref 0 in
  for e = 0 to m - 1 do
    H.iter_pins_of h e (fun v ->
        let p = side.(v) in
        let i = (k * e) + p in
        if pins_on.(i) = 0 then spans.(e) <- spans.(e) + 1;
        pins_on.(i) <- pins_on.(i) + 1);
    let w = H.net_weight h e in
    if spans.(e) >= 2 then cut := !cut + w;
    sum_degrees := !sum_degrees + (w * (spans.(e) - 1))
  done;
  (pins_on, spans, !cut, !sum_degrees)

let create h ~k side =
  let n = H.num_modules h in
  if k < 2 then invalid_arg "Kpartition.create: k < 2";
  if Array.length side <> n then invalid_arg "Kpartition.create: length mismatch";
  Array.iteri
    (fun v p ->
      if p < 0 || p >= k then
        invalid_arg (Printf.sprintf "Kpartition.create: part of %d is %d" v p))
    side;
  let side = Array.copy side in
  let areas = Array.make k 0 in
  for v = 0 to n - 1 do
    areas.(side.(v)) <- areas.(side.(v)) + H.area h v
  done;
  let pins_on, spans, cut, sum_degrees = compute_state h k side in
  { h; k; side; pins_on; spans; areas; cut; sum_degrees }

let random ?fixed rng h ~k =
  let n = H.num_modules h in
  let side = Array.make n (-1) in
  let areas = Array.make k 0 in
  (match fixed with
  | Some f ->
      Array.iteri
        (fun v p ->
          if p >= 0 then begin
            side.(v) <- p;
            areas.(p) <- areas.(p) + H.area h v
          end)
        f
  | None -> ());
  let perm = Rng.permutation rng n in
  Array.iter
    (fun v ->
      if side.(v) < 0 then begin
        let lightest = ref 0 in
        for p = 1 to k - 1 do
          if areas.(p) < areas.(!lightest) then lightest := p
        done;
        side.(v) <- !lightest;
        areas.(!lightest) <- areas.(!lightest) + H.area h v
      end)
    perm;
  create h ~k side

let copy t =
  {
    h = t.h;
    k = t.k;
    side = Array.copy t.side;
    pins_on = Array.copy t.pins_on;
    spans = Array.copy t.spans;
    areas = Array.copy t.areas;
    cut = t.cut;
    sum_degrees = t.sum_degrees;
  }

let hypergraph t = t.h
let k t = t.k
let side t v = t.side.(v)
let side_array t = Array.copy t.side
let area_of_part t p = t.areas.(p)
let pins_on t e p = t.pins_on.((t.k * e) + p)
let spans t e = t.spans.(e)
let cut t = t.cut
let sum_degrees t = t.sum_degrees

type bounds = { lo : int; hi : int }

let bounds ?(tolerance = 0.1) h ~k =
  let total = H.total_area h in
  let share = total / k in
  let slack =
    Stdlib.max (H.max_area h)
      (int_of_float (tolerance *. float_of_int total /. float_of_int k))
  in
  { lo = Stdlib.max 0 (share - slack); hi = Stdlib.min total (share + slack + k) }

let is_balanced t b =
  let ok = ref true in
  for p = 0 to t.k - 1 do
    if t.areas.(p) < b.lo || t.areas.(p) > b.hi then ok := false
  done;
  !ok

let move_is_feasible t b v q =
  let p = t.side.(v) in
  p <> q
  &&
  let a = H.area t.h v in
  t.areas.(p) - a >= b.lo && t.areas.(q) + a <= b.hi

let move t v q =
  let p = t.side.(v) in
  if p <> q then begin
    let a = H.area t.h v in
    t.side.(v) <- q;
    t.areas.(p) <- t.areas.(p) - a;
    t.areas.(q) <- t.areas.(q) + a;
    H.iter_nets_of t.h v (fun e ->
        let w = H.net_weight t.h e in
        let pi = (t.k * e) + p and qi = (t.k * e) + q in
        let old_spans = t.spans.(e) in
        t.pins_on.(pi) <- t.pins_on.(pi) - 1;
        t.pins_on.(qi) <- t.pins_on.(qi) + 1;
        let spans' =
          old_spans
          - (if t.pins_on.(pi) = 0 then 1 else 0)
          + if t.pins_on.(qi) = 1 then 1 else 0
        in
        if spans' <> old_spans then begin
          t.spans.(e) <- spans';
          t.sum_degrees <- t.sum_degrees + (w * (spans' - old_spans));
          if old_spans >= 2 && spans' < 2 then t.cut <- t.cut - w
          else if old_spans < 2 && spans' >= 2 then t.cut <- t.cut + w
        end)
  end

let rebalance ?fixed rng t b =
  let n = H.num_modules t.h in
  let is_free v = match fixed with Some f -> f.(v) < 0 | None -> true in
  let moves = ref 0 in
  let guard = ref (16 * (n + 1)) in
  while not (is_balanced t b) do
    decr guard;
    if !guard = 0 then failwith "Kpartition.rebalance: bounds unsatisfiable";
    (* Heaviest over-full part donates to the lightest part. *)
    let heavy = ref 0 and light = ref 0 in
    for p = 1 to t.k - 1 do
      if t.areas.(p) > t.areas.(!heavy) then heavy := p;
      if t.areas.(p) < t.areas.(!light) then light := p
    done;
    let rec pick tries =
      if tries = 0 then failwith "Kpartition.rebalance: no movable module"
      else
        let v = Rng.int rng n in
        if t.side.(v) = !heavy && is_free v then v else pick (tries - 1)
    in
    let v = pick (8 * n) in
    move t v !light;
    incr moves
  done;
  !moves

let recompute_cut t =
  let _, _, cut, _ = compute_state t.h t.k t.side in
  cut
