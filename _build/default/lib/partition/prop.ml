module H = Mlpart_hypergraph.Hypergraph
module Rng = Mlpart_util.Rng

type config = {
  p : float;
  clip : bool;
  net_threshold : int;
  tolerance : float;
  max_passes : int;
}

let default =
  { p = 0.95; clip = false; net_threshold = 200; tolerance = 0.1; max_passes = max_int }

type result = { side : int array; cut : int; passes : int; moves : int }

(* Lazy binary max-heap of (key, version, module).  Entries are invalidated
   by bumping the module's version; stale entries are skipped on pop. *)
module Heap = struct
  type entry = { key : float; version : int; v : int }

  type t = { mutable data : entry array; mutable len : int }

  let create () = { data = Array.make 64 { key = 0.0; version = 0; v = 0 }; len = 0 }

  let clear t = t.len <- 0

  let swap t i j =
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(j);
    t.data.(j) <- tmp

  let push t entry =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) entry in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- entry;
    t.len <- t.len + 1;
    let i = ref (t.len - 1) in
    while !i > 0 && t.data.((!i - 1) / 2).key < t.data.(!i).key do
      swap t !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop t =
    if t.len = 0 then None
    else begin
      let top = t.data.(0) in
      t.len <- t.len - 1;
      if t.len > 0 then begin
        t.data.(0) <- t.data.(t.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let largest = ref !i in
          if l < t.len && t.data.(l).key > t.data.(!largest).key then largest := l;
          if r < t.len && t.data.(r).key > t.data.(!largest).key then largest := r;
          if !largest <> !i then begin
            swap t !i !largest;
            i := !largest
          end
          else continue := false
        done
      end;
      Some top
    end
end

type state = {
  cfg : config;
  h : H.t;
  bp : Bipartition.t;
  bounds : Bipartition.bounds;
  gain : float array;
  gain0 : float array; (* clip offsets *)
  version : int array;
  locked : bool array;
  free_on : int array;
  contrib : float array; (* per net-side pin slot *)
  heap : Heap.t;
  pow : float array; (* pow.(k) = p^k, up to max net size *)
}

let key_of st v = if st.cfg.clip then st.gain.(v) -. st.gain0.(v) else st.gain.(v)

let push st v =
  Heap.push st.heap { key = key_of st v; version = st.version.(v); v }

(* Contribution of net [e] to the gain of free pin [u]. *)
let contribution st e u =
  let a = Bipartition.side st.bp u in
  let b = 1 - a in
  let w = float_of_int (H.net_weight st.h e) in
  let free_a = st.free_on.((2 * e) + a) and free_b = st.free_on.((2 * e) + b) in
  let locked_a = Bipartition.pins_on st.bp e a - free_a
  and locked_b = Bipartition.pins_on st.bp e b - free_b in
  let qf = if locked_a > 0 then 0.0 else st.pow.(free_a - 1) in
  let qt = if locked_b > 0 then 0.0 else st.pow.(free_b) in
  w *. (qf -. qt)

let init_pass st =
  let n = H.num_modules st.h in
  let m = H.num_nets st.h in
  Array.fill st.locked 0 n false;
  Array.fill st.gain 0 n 0.0;
  for e = 0 to m - 1 do
    st.free_on.(2 * e) <- Bipartition.pins_on st.bp e 0;
    st.free_on.((2 * e) + 1) <- Bipartition.pins_on st.bp e 1
  done;
  for e = 0 to m - 1 do
    if H.net_size st.h e <= st.cfg.net_threshold then begin
      let base = H.net_offset st.h e in
      for i = 0 to H.net_size st.h e - 1 do
        let u = H.pin_at st.h (base + i) in
        let c = contribution st e u in
        st.contrib.(base + i) <- c;
        st.gain.(u) <- st.gain.(u) +. c
      done
    end
  done;
  if st.cfg.clip then Array.blit st.gain 0 st.gain0 0 n;
  Heap.clear st.heap;
  for v = 0 to n - 1 do
    st.version.(v) <- st.version.(v) + 1;
    push st v
  done

(* Move [v], lock it, refresh contributions of its nets. *)
let apply_move st v =
  let from = Bipartition.side st.bp v in
  st.locked.(v) <- true;
  H.iter_nets_of st.h v (fun e ->
      st.free_on.((2 * e) + from) <- st.free_on.((2 * e) + from) - 1);
  Bipartition.move st.bp v;
  H.iter_nets_of st.h v (fun e ->
      if H.net_size st.h e <= st.cfg.net_threshold then begin
        let base = H.net_offset st.h e in
        for i = 0 to H.net_size st.h e - 1 do
          let u = H.pin_at st.h (base + i) in
          if not st.locked.(u) then begin
            let c = contribution st e u in
            let delta = c -. st.contrib.(base + i) in
            if delta <> 0.0 then begin
              st.contrib.(base + i) <- c;
              st.gain.(u) <- st.gain.(u) +. delta;
              st.version.(u) <- st.version.(u) + 1;
              push st u
            end
          end
        done
      end)

let unmove st v =
  let from = Bipartition.side st.bp v in
  Bipartition.move st.bp v;
  H.iter_nets_of st.h v (fun e ->
      st.free_on.((2 * e) + from) <- st.free_on.((2 * e) + from) + 1)

(* Pop the best valid, feasible entry; infeasible-but-valid entries are set
   aside and restored afterwards. *)
let select st =
  let stashed = ref [] in
  let rec go () =
    match Heap.pop st.heap with
    | None -> None
    | Some { key; version; v } ->
        if st.locked.(v) || version <> st.version.(v) || key <> key_of st v then go ()
        else if Bipartition.move_is_feasible st.bp st.bounds v then Some v
        else begin
          stashed := v :: !stashed;
          go ()
        end
  in
  let result = go () in
  List.iter (fun v -> push st v) !stashed;
  result

let run_pass st order =
  init_pass st;
  let moved = ref 0 in
  let cum = ref 0 in
  let best = ref 0 in
  let best_count = ref 0 in
  let continue = ref true in
  while !continue do
    match select st with
    | None -> continue := false
    | Some v ->
        (* The true cut change is the discrete FM gain, not the
           probabilistic score used for ordering. *)
        let g =
          Bipartition.gain ~net_threshold:st.cfg.net_threshold st.bp v
        in
        apply_move st v;
        order.(!moved) <- v;
        incr moved;
        cum := !cum + g;
        if !cum > !best then begin
          best := !cum;
          best_count := !moved
        end
  done;
  for i = !moved - 1 downto !best_count do
    unmove st order.(i)
  done;
  (!best, !moved)

let run ?(config = default) ?init rng h =
  let bounds = Bipartition.bounds ~tolerance:config.tolerance h in
  let bp =
    match init with
    | Some side -> Bipartition.create h side
    | None -> Bipartition.random rng h
  in
  if not (Bipartition.is_balanced bp bounds) then
    ignore (Bipartition.rebalance rng bp bounds);
  let n = H.num_modules h in
  let m = H.num_nets h in
  let max_size =
    let best = ref 0 in
    for e = 0 to m - 1 do
      if H.net_size h e > !best then best := H.net_size h e
    done;
    !best
  in
  let pow = Array.make (max_size + 2) 1.0 in
  for k = 1 to max_size + 1 do
    pow.(k) <- pow.(k - 1) *. config.p
  done;
  let st =
    {
      cfg = config;
      h;
      bp;
      bounds;
      gain = Array.make n 0.0;
      gain0 = Array.make n 0.0;
      version = Array.make n 0;
      locked = Array.make n false;
      free_on = Array.make (2 * m) 0;
      contrib = Array.make (Stdlib.max 1 (H.num_pins h)) 0.0;
      heap = Heap.create ();
      pow;
    }
  in
  let order = Array.make n 0 in
  let passes = ref 0 in
  let moves = ref 0 in
  let improving = ref true in
  while !improving && !passes < config.max_passes do
    let pass_gain, pass_moves = run_pass st order in
    incr passes;
    moves := !moves + pass_moves;
    if pass_gain <= 0 then improving := false
  done;
  {
    side = Bipartition.side_array st.bp;
    cut = Bipartition.cut st.bp;
    passes = !passes;
    moves = !moves;
  }
