(** Structural analysis of netlist hypergraphs: connectivity, degree and
    net-size distributions.  Used by the CLI's [info] command, by the
    spectral partitioner (which must handle disconnected netlists) and by
    tests validating the synthetic generator. *)

val connected_components : Hypergraph.t -> int array * int
(** [(component_of, count)]: modules connected through shared nets get the
    same component id in [0 .. count-1].  Runs in O(pins). *)

val is_connected : Hypergraph.t -> bool

val degree_histogram : Hypergraph.t -> (int * int) list
(** [(degree, how many modules)] pairs, ascending by degree. *)

val net_size_histogram : Hypergraph.t -> (int * int) list
(** [(size, how many nets)] pairs, ascending by size. *)

val average_net_size : Hypergraph.t -> float

val pin_count_check : Hypergraph.t -> bool
(** Internal consistency: the two CSR directions describe the same pin set
    (always true for values built by {!Hypergraph.make}; used as a test
    oracle). *)

val pp_report : Format.formatter -> Hypergraph.t -> unit
(** Multi-line human-readable report (sizes, connectivity, histograms). *)
