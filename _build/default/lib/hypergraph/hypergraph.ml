type t = {
  name : string;
  areas : int array;
  (* CSR net -> pins *)
  net_offsets : int array; (* length num_nets + 1 *)
  net_pins : int array;
  net_weights : int array;
  (* CSR module -> nets *)
  mod_offsets : int array; (* length num_modules + 1 *)
  mod_nets : int array;
  total_area : int;
  max_area : int;
}

let num_modules t = Array.length t.areas
let num_nets t = Array.length t.net_weights
let num_pins t = Array.length t.net_pins
let area t v = t.areas.(v)
let total_area t = t.total_area
let max_area t = t.max_area
let name t = t.name

let module_degree t v = t.mod_offsets.(v + 1) - t.mod_offsets.(v)

let iter_nets_of t v f =
  for i = t.mod_offsets.(v) to t.mod_offsets.(v + 1) - 1 do
    f t.mod_nets.(i)
  done

let nets_of t v =
  Array.sub t.mod_nets t.mod_offsets.(v) (module_degree t v)

let fold_nets_of t v ~init ~f =
  let acc = ref init in
  iter_nets_of t v (fun e -> acc := f !acc e);
  !acc

let net_size t e = t.net_offsets.(e + 1) - t.net_offsets.(e)
let net_weight t e = t.net_weights.(e)

let iter_pins_of t e f =
  for i = t.net_offsets.(e) to t.net_offsets.(e + 1) - 1 do
    f t.net_pins.(i)
  done

let pins_of t e = Array.sub t.net_pins t.net_offsets.(e) (net_size t e)

let net_offset t e = t.net_offsets.(e)
let pin_at t slot = t.net_pins.(slot)

let fold_pins_of t e ~init ~f =
  let acc = ref init in
  iter_pins_of t e (fun v -> acc := f !acc v);
  !acc

let max_module_degree t =
  let best = ref 0 in
  for v = 0 to num_modules t - 1 do
    if module_degree t v > !best then best := module_degree t v
  done;
  !best

let max_weighted_degree t =
  let best = ref 0 in
  for v = 0 to num_modules t - 1 do
    let w = fold_nets_of t v ~init:0 ~f:(fun acc e -> acc + net_weight t e) in
    if w > !best then best := w
  done;
  !best

let total_net_weight t = Array.fold_left ( + ) 0 t.net_weights

let pp_summary ppf t =
  Format.fprintf ppf "%s: %d modules, %d nets, %d pins"
    (if t.name = "" then "<hypergraph>" else t.name)
    (num_modules t) (num_nets t) (num_pins t)

(* Construction.  [nets] is validated: each net needs >= 2 distinct in-range
   pins; then both CSR directions are materialised. *)
let make ?(name = "") ~areas ~nets () =
  let n = Array.length areas in
  Array.iteri
    (fun v a ->
      if a <= 0 then
        invalid_arg (Printf.sprintf "Hypergraph.make: area of module %d is %d" v a))
    areas;
  let seen = Array.make n (-1) in
  Array.iteri
    (fun e (pins, w) ->
      if w <= 0 then
        invalid_arg (Printf.sprintf "Hypergraph.make: net %d has weight %d" e w);
      if Array.length pins < 2 then
        invalid_arg (Printf.sprintf "Hypergraph.make: net %d has < 2 pins" e);
      Array.iter
        (fun v ->
          if v < 0 || v >= n then
            invalid_arg
              (Printf.sprintf "Hypergraph.make: net %d pin %d out of range" e v);
          if seen.(v) = e then
            invalid_arg
              (Printf.sprintf "Hypergraph.make: net %d repeats pin %d" e v);
          seen.(v) <- e)
        pins)
    nets;
  (* The sentinel array [seen] uses net ids as marks, so reset is implicit;
     but net id 0 collides with the initial -1? No: marks store e >= 0 and
     initial value is -1, and within net e we only compare against e. *)
  let m = Array.length nets in
  let net_offsets = Array.make (m + 1) 0 in
  for e = 0 to m - 1 do
    let pins, _ = nets.(e) in
    net_offsets.(e + 1) <- net_offsets.(e) + Array.length pins
  done;
  let total_pins = net_offsets.(m) in
  let net_pins = Array.make (Stdlib.max 1 total_pins) 0 in
  let net_weights = Array.make (Stdlib.max 0 m) 0 in
  for e = 0 to m - 1 do
    let pins, w = nets.(e) in
    net_weights.(e) <- w;
    Array.blit pins 0 net_pins net_offsets.(e) (Array.length pins)
  done;
  let net_pins = if total_pins = 0 then [||] else Array.sub net_pins 0 total_pins in
  (* module -> nets CSR via counting sort *)
  let degree = Array.make n 0 in
  Array.iter (fun v -> degree.(v) <- degree.(v) + 1) net_pins;
  let mod_offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    mod_offsets.(v + 1) <- mod_offsets.(v) + degree.(v)
  done;
  let cursor = Array.copy mod_offsets in
  let mod_nets = Array.make (Stdlib.max 1 total_pins) 0 in
  for e = 0 to m - 1 do
    for i = net_offsets.(e) to net_offsets.(e + 1) - 1 do
      let v = net_pins.(i) in
      mod_nets.(cursor.(v)) <- e;
      cursor.(v) <- cursor.(v) + 1
    done
  done;
  let mod_nets = if total_pins = 0 then [||] else Array.sub mod_nets 0 total_pins in
  let total_area = Array.fold_left ( + ) 0 areas in
  let max_area = Array.fold_left Stdlib.max 0 areas in
  {
    name;
    areas;
    net_offsets;
    net_pins;
    net_weights;
    mod_offsets;
    mod_nets;
    total_area;
    max_area;
  }

(* Induce the coarse hypergraph of a clustering (Definition 1).  Cluster ids
   must be contiguous 0..k-1.  A scratch mark array deduplicates cluster
   occurrences per net in O(pins). *)
let induce ?(name = "") ?(merge_duplicates = false) t cluster_of =
  let n = num_modules t in
  if Array.length cluster_of <> n then
    invalid_arg "Hypergraph.induce: clustering length mismatch";
  let k = Array.fold_left Stdlib.max (-1) cluster_of + 1 in
  if k <= 0 then invalid_arg "Hypergraph.induce: empty clustering";
  Array.iteri
    (fun v c ->
      if c < 0 || c >= k then
        invalid_arg (Printf.sprintf "Hypergraph.induce: module %d cluster %d" v c))
    cluster_of;
  let coarse_areas = Array.make k 0 in
  for v = 0 to n - 1 do
    let c = cluster_of.(v) in
    coarse_areas.(c) <- coarse_areas.(c) + t.areas.(v)
  done;
  Array.iteri
    (fun c a ->
      if a = 0 then
        invalid_arg (Printf.sprintf "Hypergraph.induce: cluster %d is empty" c))
    coarse_areas;
  let mark = Array.make k (-1) in
  let scratch = Array.make k 0 in
  let coarse_nets = ref [] in
  for e = num_nets t - 1 downto 0 do
    let count = ref 0 in
    iter_pins_of t e (fun v ->
        let c = cluster_of.(v) in
        if mark.(c) <> e then begin
          mark.(c) <- e;
          scratch.(!count) <- c;
          incr count
        end);
    if !count >= 2 then begin
      let pins = Array.sub scratch 0 !count in
      Array.sort compare pins;
      coarse_nets := (pins, net_weight t e) :: !coarse_nets
    end
  done;
  let nets =
    if not merge_duplicates then Array.of_list !coarse_nets
    else begin
      (* Merge identical pin sets, summing weights.  Pin arrays are sorted,
         so a hash table keyed on the pin array works directly. *)
      let table : (int array, int) Hashtbl.t = Hashtbl.create 1024 in
      List.iter
        (fun (pins, w) ->
          match Hashtbl.find_opt table pins with
          | Some w0 -> Hashtbl.replace table pins (w0 + w)
          | None -> Hashtbl.add table pins w)
        !coarse_nets;
      let merged = Hashtbl.fold (fun pins w acc -> (pins, w) :: acc) table [] in
      Array.of_list merged
    end
  in
  (make ~name ~areas:coarse_areas ~nets (), k)
