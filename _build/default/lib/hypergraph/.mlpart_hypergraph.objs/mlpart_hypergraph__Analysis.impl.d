lib/hypergraph/analysis.ml: Array Format Hashtbl Hypergraph List Option Queue
