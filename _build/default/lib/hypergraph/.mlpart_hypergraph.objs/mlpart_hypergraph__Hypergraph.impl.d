lib/hypergraph/hypergraph.ml: Array Format Hashtbl List Printf Stdlib
