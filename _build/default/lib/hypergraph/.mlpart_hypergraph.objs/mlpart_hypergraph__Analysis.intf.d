lib/hypergraph/analysis.mli: Format Hypergraph
