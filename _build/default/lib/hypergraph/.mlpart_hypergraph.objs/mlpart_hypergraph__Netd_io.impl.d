lib/hypergraph/netd_io.ml: Array Buffer Filename Hashtbl Hypergraph In_channel List Option Printf String
