lib/hypergraph/netd_io.mli: Hypergraph
