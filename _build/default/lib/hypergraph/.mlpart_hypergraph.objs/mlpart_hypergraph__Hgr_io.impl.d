lib/hypergraph/hgr_io.ml: Array Buffer Filename Hypergraph In_channel List Out_channel Printf String
