lib/hypergraph/builder.ml: Array Hypergraph List
