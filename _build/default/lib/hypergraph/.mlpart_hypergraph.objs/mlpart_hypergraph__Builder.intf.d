lib/hypergraph/builder.mli: Hypergraph
