lib/hypergraph/hypergraph.mli: Format
