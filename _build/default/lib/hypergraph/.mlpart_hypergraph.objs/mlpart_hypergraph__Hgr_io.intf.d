lib/hypergraph/hgr_io.mli: Hypergraph
