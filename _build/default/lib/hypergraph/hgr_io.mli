(** hMETIS / PaToH-style [.hgr] hypergraph exchange format.

    Format (1-indexed, as emitted by hMETIS):
    {v
    % comment lines start with %
    <num_nets> <num_modules> [fmt]
    <net 1 pins...>          (weight-prefixed when fmt has the 1-bit)
    ...
    [module weights, one per line, when fmt has the 10-bit]
    v}
    [fmt] is omitted or one of [1] (net weights), [10] (module weights),
    [11] (both). *)

val read_channel : ?name:string -> in_channel -> Hypergraph.t
(** Parse from a channel.  Raises [Failure] with a line-numbered message on
    malformed input. *)

val read_file : string -> Hypergraph.t
(** Parse from a file; the hypergraph is named after the file's basename. *)

val write_channel : out_channel -> Hypergraph.t -> unit
(** Emit in [.hgr] format.  Net weights are written when any weight differs
    from 1, module weights when any area differs from 1. *)

val write_file : string -> Hypergraph.t -> unit

val to_string : Hypergraph.t -> string
(** [.hgr] rendering as a string (used by tests and small examples). *)

val of_string : ?name:string -> string -> Hypergraph.t
