(** Incremental construction of {!Hypergraph.t} values.

    Generators and parsers accumulate modules and nets one at a time;
    [build] validates and freezes into the immutable CSR form. *)

type t

val create : ?name:string -> unit -> t

val add_module : t -> ?area:int -> unit -> int
(** Appends a module and returns its id.  Default area 1. *)

val add_modules : t -> ?area:int -> int -> unit
(** [add_modules b n] appends [n] unit-area (or [area]) modules. *)

val add_net : t -> ?weight:int -> int list -> unit
(** Appends a net over the given pins.  Duplicate pins within the list are
    collapsed; nets with fewer than two distinct pins are silently dropped
    (the netlist definition requires size > 1, and generators routinely
    produce such degenerate nets). *)

val num_modules : t -> int
val num_nets : t -> int

val build : t -> Hypergraph.t
(** Freeze.  The builder remains usable afterwards. *)
