(** ACM/SIGDA benchmark netlist format (".net"/".netD" + ".are"), the format
    the paper's 23 circuits ship in (ftp.cbl.ncsu.edu).

    The [.net] file:
    {v
    0
    <num pins>
    <num nets>
    <num modules>
    <pad offset>
    <module> s [dir]     -- pin starting a new net
    <module> l [dir]     -- pin belonging to the current net
    ...
    v}
    Module names are [aN] (cells, N in [0 .. pad_offset]) or [pN] (pads,
    N in [1 ..]).  The optional [.are] file lists "<module> <area>" pairs;
    missing modules default to area 1.

    Having this reader means the reproduction runs on the original
    benchmark files wherever a user has them, with the synthetic suite as
    the offline fallback. *)

val read_net_string : ?name:string -> ?are:string -> string -> Hypergraph.t
(** Parse a [.net] file's contents (plus an optional [.are] contents).
    Single-pin nets are dropped, duplicate pins within a net collapsed.
    Raises [Failure] with a line number on malformed input. *)

val read_files : ?are_path:string -> string -> Hypergraph.t
(** Read from disk; the hypergraph is named after the net file. *)

val pads : Hypergraph.t -> string -> int list
(** [pads h net_contents] re-parses the pin lines and returns the module
    ids that were pads ([pN] names) — the modules a placement flow should
    pre-place.  (Pad identity is not stored in {!Hypergraph.t}.) *)

val write_net_string : Hypergraph.t -> string
(** Render in [.net] format (all modules as [aN] cells, no directions). *)
