(** The benchmark suite mirroring Table I of the paper.

    Each entry records the published module/net/pin counts of one of the 23
    ACM/SIGDA circuits; {!instantiate} generates a synthetic Rent-rule
    hypergraph with those counts (see DESIGN.md section 2 for why this
    substitution preserves the paper's claims). *)

type spec = {
  circuit : string;  (** published benchmark name *)
  modules : int;
  nets : int;
  pins : int;
}

val all : spec list
(** All 23 circuits of Table I, in the paper's (size) order. *)

val find : string -> spec
(** Lookup by circuit name.  Raises [Not_found]. *)

type tier = Tiny | Small | Standard | Full

val tier_specs : tier -> spec list
(** [Tiny] – 4 smallest circuits (fast tests);
    [Small] – circuits up to ~3k modules (12 circuits);
    [Standard] – circuits up to ~13k modules (16 circuits);
    [Full] – all 23 including golem3. *)

val tier_of_string : string -> tier option

val instantiate : ?seed:int -> spec -> Mlpart_hypergraph.Hypergraph.t
(** Deterministically generate the synthetic stand-in for a circuit.  The
    hypergraph is named after the circuit; the generator seed is derived
    from [seed] (default 1) and the circuit name, so different circuits get
    independent structure while remaining reproducible. *)

val pp_table1 : Format.formatter -> spec list -> unit
(** Render the Table I columns (circuit, #modules, #nets, #pins) together
    with the realised counts of the synthetic instantiation. *)
