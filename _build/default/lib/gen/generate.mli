(** Synthetic netlist generators.

    The ACM/SIGDA benchmark circuits used by the paper are not distributable
    here, so experiments run on synthetic netlists.  The central generator,
    {!rent}, produces hierarchically clustered hypergraphs in the spirit of
    Rent's rule: the module index range is split recursively into a binary
    block tree and each net is drawn from a block chosen with a locality
    bias, so most nets are short-range and good small-cut bipartitions exist
    along block boundaries — exactly the structure that multilevel
    partitioners exploit on real circuits.

    Simple structured generators ([ring], [grid], [clique]) support tests
    with analytically known optimal cuts. *)

val rent :
  ?name:string ->
  ?locality:float ->
  ?max_net_size:int ->
  rng:Mlpart_util.Rng.t ->
  modules:int ->
  nets:int ->
  pins:int ->
  unit ->
  Mlpart_hypergraph.Hypergraph.t
(** [rent ~rng ~modules ~nets ~pins ()] generates a hypergraph with exactly
    [modules] unit-area modules and approximately [nets] nets totalling
    approximately [pins] pins (nets that collapse to a single distinct pin
    are dropped, so realised counts can be slightly lower).

    [locality] in [0, 1) is the per-level probability of *staying* at a
    deeper (smaller) block when choosing a net's home block; higher values
    produce more local netlists with smaller optimal cuts.  Default [0.82].
    [max_net_size] caps net sizes (default 24).

    @raise Invalid_argument when [modules < 4], [nets < 1] or
    [pins < 2 * nets]. *)

val random :
  ?name:string ->
  ?max_net_size:int ->
  rng:Mlpart_util.Rng.t ->
  modules:int ->
  nets:int ->
  pins:int ->
  unit ->
  Mlpart_hypergraph.Hypergraph.t
(** Like {!rent} with no locality structure: pins are drawn uniformly from
    all modules.  Used as an unstructured control in tests and ablations. *)

val ring : ?name:string -> int -> Mlpart_hypergraph.Hypergraph.t
(** [ring n] is a cycle of [n >= 3] two-pin nets; any contiguous
    bipartition has cut 2. *)

val grid : ?name:string -> int -> int -> Mlpart_hypergraph.Hypergraph.t
(** [grid rows cols] is a 2-D mesh of two-pin nets. *)

val clique : ?name:string -> int -> Mlpart_hypergraph.Hypergraph.t
(** [clique n] has one two-pin net per module pair. *)

val caterpillar :
  ?name:string -> spine:int -> legs:int -> unit -> Mlpart_hypergraph.Hypergraph.t
(** A spine path of multi-pin nets: each spine position contributes one net
    joining it, its successor and [legs] private leaf modules.  Gives
    hypergraphs with nets of size [legs + 2] and known small cuts. *)
