lib/gen/suite.mli: Format Mlpart_hypergraph
