lib/gen/suite.ml: Char Format Generate List Mlpart_hypergraph Mlpart_util String
