lib/gen/generate.ml: Hashtbl List Mlpart_hypergraph Mlpart_util Stdlib
