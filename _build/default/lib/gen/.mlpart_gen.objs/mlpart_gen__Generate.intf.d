lib/gen/generate.mli: Mlpart_hypergraph Mlpart_util
