module Hypergraph = Mlpart_hypergraph.Hypergraph
type spec = { circuit : string; modules : int; nets : int; pins : int }

(* Table I of the paper. *)
let all =
  [
    { circuit = "balu"; modules = 801; nets = 735; pins = 2697 };
    { circuit = "bm1"; modules = 882; nets = 903; pins = 2910 };
    { circuit = "primary1"; modules = 833; nets = 902; pins = 2908 };
    { circuit = "test04"; modules = 1515; nets = 1658; pins = 5975 };
    { circuit = "test03"; modules = 1607; nets = 1618; pins = 5807 };
    { circuit = "test02"; modules = 1663; nets = 1720; pins = 6134 };
    { circuit = "test06"; modules = 1752; nets = 1541; pins = 6638 };
    { circuit = "struct"; modules = 1952; nets = 1920; pins = 5471 };
    { circuit = "test05"; modules = 2595; nets = 2750; pins = 10076 };
    { circuit = "19ks"; modules = 2844; nets = 3282; pins = 10547 };
    { circuit = "primary2"; modules = 3014; nets = 3029; pins = 11219 };
    { circuit = "s9234"; modules = 5866; nets = 5844; pins = 14065 };
    { circuit = "biomed"; modules = 6514; nets = 5742; pins = 21040 };
    { circuit = "s13207"; modules = 8772; nets = 8651; pins = 20606 };
    { circuit = "s15850"; modules = 10470; nets = 10383; pins = 24712 };
    { circuit = "industry2"; modules = 12637; nets = 13419; pins = 48404 };
    { circuit = "industry3"; modules = 15406; nets = 21923; pins = 65792 };
    { circuit = "s35932"; modules = 18148; nets = 17828; pins = 48145 };
    { circuit = "s38584"; modules = 20995; nets = 20717; pins = 55203 };
    { circuit = "avqsmall"; modules = 21918; nets = 22124; pins = 76231 };
    { circuit = "s38417"; modules = 23849; nets = 23843; pins = 57613 };
    { circuit = "avqlarge"; modules = 25178; nets = 25384; pins = 82751 };
    { circuit = "golem3"; modules = 103048; nets = 144949; pins = 338419 };
  ]

let find circuit =
  match List.find_opt (fun s -> s.circuit = circuit) all with
  | Some s -> s
  | None -> raise Not_found

type tier = Tiny | Small | Standard | Full

let tier_specs = function
  | Tiny -> List.filteri (fun i _ -> i < 4) all
  | Small -> List.filter (fun s -> s.modules <= 3100) all
  | Standard -> List.filter (fun s -> s.modules <= 13000) all
  | Full -> all

let tier_of_string = function
  | "tiny" -> Some Tiny
  | "small" -> Some Small
  | "standard" -> Some Standard
  | "full" -> Some Full
  | _ -> None

(* Stable string hash so circuit identity contributes to the seed without
   depending on list position. *)
let hash_name s =
  let h = ref 5381 in
  String.iter (fun c -> h := (!h * 33) + Char.code c) s;
  !h land max_int

let instantiate ?(seed = 1) spec =
  let rng = Mlpart_util.Rng.create (seed + hash_name spec.circuit) in
  (* Locality 0.9 yields min-cuts in the same range as the published
     benchmarks (e.g. tens of nets for the ~800-module circuits). *)
  Generate.rent ~name:spec.circuit ~locality:0.9 ~rng ~modules:spec.modules
    ~nets:spec.nets ~pins:spec.pins ()

let pp_table1 ppf specs =
  let rows =
    List.map
      (fun s ->
        let h = instantiate s in
        [
          s.circuit;
          string_of_int s.modules;
          string_of_int s.nets;
          string_of_int s.pins;
          string_of_int (Hypergraph.num_nets h);
          string_of_int (Hypergraph.num_pins h);
        ])
      specs
  in
  Format.pp_print_string ppf
    (Mlpart_util.Tab.render
       ~header:
         [ "circuit"; "#modules"; "#nets"; "#pins"; "gen #nets"; "gen #pins" ]
       rows)
