module Rng = Mlpart_util.Rng
module Hypergraph = Mlpart_hypergraph.Hypergraph
module Builder = Mlpart_hypergraph.Builder

(* Net sizes are drawn as 2 + geometric(p) capped at [max_net_size]; [p] is
   calibrated so the expected size matches [pins / nets]. *)
let draw_net_size rng ~mean ~max_net_size =
  let excess = Stdlib.max 0.0 (mean -. 2.0) in
  if excess <= 0.0 then 2
  else begin
    (* Geometric with mean [excess]: success probability 1/(1+excess). *)
    let p = 1.0 /. (1.0 +. excess) in
    let rec draw acc =
      if acc >= max_net_size - 2 then acc
      else if Rng.float rng 1.0 < p then acc
      else draw (acc + 1)
    in
    2 + draw 0
  end

(* Choose [k] distinct modules in [lo, hi) by rejection; the block is always
   comfortably larger than [k]. *)
let draw_pins rng ~lo ~hi k =
  let span = hi - lo in
  let chosen = Hashtbl.create (2 * k) in
  let rec fill acc remaining guard =
    if remaining = 0 || guard = 0 then acc
    else
      let v = lo + Rng.int rng span in
      if Hashtbl.mem chosen v then fill acc remaining (guard - 1)
      else begin
        Hashtbl.add chosen v ();
        fill (v :: acc) (remaining - 1) (guard - 1)
      end
  in
  fill [] (Stdlib.min k span) (64 * k)

let rent ?(name = "rent") ?(locality = 0.82) ?(max_net_size = 24) ~rng ~modules
    ~nets ~pins () =
  if modules < 4 then invalid_arg "Generate.rent: modules < 4";
  if nets < 1 then invalid_arg "Generate.rent: nets < 1";
  if pins < 2 * nets then invalid_arg "Generate.rent: pins < 2 * nets";
  if not (locality >= 0.0 && locality < 1.0) then
    invalid_arg "Generate.rent: locality outside [0, 1)";
  let mean = float_of_int pins /. float_of_int nets in
  let builder = Builder.create ~name () in
  Builder.add_modules builder modules;
  (* A net's home block: start from the whole range and descend into a
     random half with probability [locality] at each step, stopping when the
     block is too small to host the net comfortably. *)
  let choose_block size =
    let rec descend lo hi =
      let span = hi - lo in
      if span <= Stdlib.max (4 * size) 8 then (lo, hi)
      else if Rng.float rng 1.0 < locality then
        let mid = lo + (span / 2) in
        if Rng.bool rng then descend lo mid else descend mid hi
      else (lo, hi)
    in
    descend 0 modules
  in
  for _ = 1 to nets do
    let size = draw_net_size rng ~mean ~max_net_size in
    let lo, hi = choose_block size in
    Builder.add_net builder (draw_pins rng ~lo ~hi size)
  done;
  Builder.build builder

let random ?(name = "random") ?(max_net_size = 24) ~rng ~modules ~nets ~pins () =
  if modules < 4 then invalid_arg "Generate.random: modules < 4";
  if nets < 1 then invalid_arg "Generate.random: nets < 1";
  if pins < 2 * nets then invalid_arg "Generate.random: pins < 2 * nets";
  let mean = float_of_int pins /. float_of_int nets in
  let builder = Builder.create ~name () in
  Builder.add_modules builder modules;
  for _ = 1 to nets do
    let size = draw_net_size rng ~mean ~max_net_size in
    Builder.add_net builder (draw_pins rng ~lo:0 ~hi:modules size)
  done;
  Builder.build builder

let ring ?(name = "ring") n =
  if n < 3 then invalid_arg "Generate.ring: n < 3";
  let builder = Builder.create ~name () in
  Builder.add_modules builder n;
  for v = 0 to n - 1 do
    Builder.add_net builder [ v; (v + 1) mod n ]
  done;
  Builder.build builder

let grid ?(name = "grid") rows cols =
  if rows < 1 || cols < 1 || rows * cols < 2 then
    invalid_arg "Generate.grid: degenerate dimensions";
  let builder = Builder.create ~name () in
  Builder.add_modules builder (rows * cols);
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then Builder.add_net builder [ id r c; id r (c + 1) ];
      if r + 1 < rows then Builder.add_net builder [ id r c; id (r + 1) c ]
    done
  done;
  Builder.build builder

let clique ?(name = "clique") n =
  if n < 2 then invalid_arg "Generate.clique: n < 2";
  let builder = Builder.create ~name () in
  Builder.add_modules builder n;
  for v = 0 to n - 1 do
    for w = v + 1 to n - 1 do
      Builder.add_net builder [ v; w ]
    done
  done;
  Builder.build builder

let caterpillar ?(name = "caterpillar") ~spine ~legs () =
  if spine < 2 || legs < 0 then invalid_arg "Generate.caterpillar: bad shape";
  let builder = Builder.create ~name () in
  Builder.add_modules builder (spine * (1 + legs));
  (* Module layout: spine module s is at index s * (1 + legs); its legs
     follow immediately. *)
  let spine_id s = s * (1 + legs) in
  for s = 0 to spine - 2 do
    let members =
      spine_id s :: spine_id (s + 1)
      :: List.init legs (fun leg -> spine_id s + 1 + leg)
    in
    Builder.add_net builder members
  done;
  Builder.build builder
