(** Quadratic (analytical) placement substrate for the GORDIAN baseline.

    Minimises the squared-wirelength objective [x' L x] over the free
    modules, with selected modules fixed (the I/O pads GORDIAN pre-places).
    Nets are expanded with the standard clique model — every pin pair of a
    net [e] gets an edge of weight [2 w(e) / |e|] — with a chain fallback
    for very large nets to keep the Laplacian sparse.  The linear system
    [L_ff x_f = -L_fp x_p] is solved by Jacobi-preconditioned conjugate
    gradients. *)

type t
(** Sparse symmetric Laplacian system built from a hypergraph. *)

val net_model_edges :
  ?clique_limit:int -> Mlpart_hypergraph.Hypergraph.t -> (int * int * float) list
(** The weighted 2-pin expansion used for the Laplacian: clique model
    (weight [2 w / |e|] per pair) for nets up to [clique_limit] pins
    (default 32), chain model beyond.  Shared with {!Spectral}. *)

val build :
  ?clique_limit:int ->
  Mlpart_hypergraph.Hypergraph.t ->
  fixed:(int * float) list ->
  t
(** [build h ~fixed] prepares the system for one axis: [fixed] lists
    [(module, coordinate)] pins.  Nets larger than [clique_limit] pins
    (default 32) use the chain model.  At least one module must be fixed
    (otherwise the quadratic form is singular); raises [Invalid_argument]
    if [fixed] is empty. *)

val solve : ?tol:float -> ?max_iter:int -> t -> float array
(** Coordinates for all modules (fixed ones at their pinned positions).
    Defaults: [tol = 1e-7] (relative residual), [max_iter = 1000]. *)

val residual : t -> float array -> float
(** Relative residual norm of a solution — used by tests. *)

val hpwl : Mlpart_hypergraph.Hypergraph.t -> x:float array -> y:float array -> float
(** Weighted half-perimeter wirelength of a 2-D placement. *)
