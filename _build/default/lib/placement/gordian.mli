(** GORDIAN-style quadrisection baseline (Kleinhans et al., TCAD 1991), the
    comparison point of the paper's Table IX.

    The published GORDIAN mechanism: pre-place the I/O pads, minimise
    quadratic wirelength to obtain module coordinates, split the horizontal
    ordering into two equal-area halves, then split each half by the
    vertical ordering — yielding the 4-way partitioning that the placement
    preserves.  The benchmarks' pad lists are not available, so pads are
    substituted by the highest-degree modules, pinned at deterministic
    positions on the boundary of the unit die (see DESIGN.md §2). *)

type config = {
  num_pads : int option;
      (** pads to pre-place; default [None] = [max 16 (n / 100)] *)
  clique_limit : int;  (** net-model switch-over size; default 32 *)
  cg_tol : float;
  cg_max_iter : int;
}

val default : config

type result = {
  side : int array;  (** quadrant of each module, in [0 .. 3] *)
  cut : int;  (** nets spanning at least two quadrants *)
  x : float array;  (** placement coordinates *)
  y : float array;
  hpwl : float;
  pads : int array;  (** modules that were pre-placed *)
}

val run : ?config:config -> Mlpart_hypergraph.Hypergraph.t -> result
(** Deterministic: no RNG — the analytic placement and median splits have a
    single outcome, as with the real tool. *)

val quadrants_of_placement :
  Mlpart_hypergraph.Hypergraph.t -> x:float array -> y:float array -> int array
(** Equal-area median splits of an arbitrary placement: first by [x] into
    left/right, then each half by [y].  Quadrant ids: 0 = left-bottom,
    1 = left-top, 2 = right-bottom, 3 = right-top. *)
