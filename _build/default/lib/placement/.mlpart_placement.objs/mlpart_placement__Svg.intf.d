lib/placement/svg.mli: Mlpart_hypergraph
