lib/placement/gordian.ml: Array Mlpart_hypergraph Mlpart_partition Quadratic Stdlib
