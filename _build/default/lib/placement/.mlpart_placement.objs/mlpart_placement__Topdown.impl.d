lib/placement/topdown.ml: Array Fun Gordian Hashtbl List Mlpart_hypergraph Mlpart_multilevel Mlpart_util Quadratic Stdlib
