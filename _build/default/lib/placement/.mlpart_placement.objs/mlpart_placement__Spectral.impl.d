lib/placement/spectral.ml: Array List Mlpart_hypergraph Mlpart_partition Mlpart_util Quadratic Stdlib
