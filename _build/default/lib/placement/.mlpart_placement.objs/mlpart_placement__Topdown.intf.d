lib/placement/topdown.mli: Mlpart_hypergraph Mlpart_multilevel Mlpart_util
