lib/placement/quadratic.ml: Array List Mlpart_hypergraph Stdlib
