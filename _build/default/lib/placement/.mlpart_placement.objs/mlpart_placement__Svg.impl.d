lib/placement/svg.ml: Array Buffer Mlpart_hypergraph Out_channel Printf Stdlib
