lib/placement/spectral.mli: Mlpart_hypergraph Mlpart_partition
