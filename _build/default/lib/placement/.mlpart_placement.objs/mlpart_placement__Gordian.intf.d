lib/placement/gordian.mli: Mlpart_hypergraph
