lib/placement/quadratic.mli: Mlpart_hypergraph
