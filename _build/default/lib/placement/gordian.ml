module H = Mlpart_hypergraph.Hypergraph

type config = {
  num_pads : int option;
  clique_limit : int;
  cg_tol : float;
  cg_max_iter : int;
}

let default =
  { num_pads = None; clique_limit = 32; cg_tol = 1e-7; cg_max_iter = 500 }

type result = {
  side : int array;
  cut : int;
  x : float array;
  y : float array;
  hpwl : float;
  pads : int array;
}

(* Highest-degree modules stand in for the benchmark's I/O pads. *)
let choose_pads h count =
  let n = H.num_modules h in
  let ids = Array.init n (fun v -> v) in
  let deg v = H.module_degree h v in
  Array.sort (fun a b -> compare (deg b, a) (deg a, b)) ids;
  Array.sub ids 0 (Stdlib.min count n)

(* Pads are spread around the boundary of the unit die in index order. *)
let pad_positions pads =
  let count = Array.length pads in
  Array.mapi
    (fun i v ->
      let t = 4.0 *. float_of_int i /. float_of_int (Stdlib.max 1 count) in
      let x, y =
        if t < 1.0 then (t, 0.0)
        else if t < 2.0 then (1.0, t -. 1.0)
        else if t < 3.0 then (3.0 -. t, 1.0)
        else (0.0, 4.0 -. t)
      in
      (v, x, y))
    pads

(* Split an index ordering into two equal-area groups. *)
let median_split h order =
  let total = Array.fold_left (fun acc v -> acc + H.area h v) 0 order in
  let side = Array.make (Array.length order) 1 in
  let acc = ref 0 in
  (try
     Array.iteri
       (fun i v ->
         if 2 * !acc >= total then raise Exit;
         side.(i) <- 0;
         acc := !acc + H.area h v)
       order
   with Exit -> ());
  side

let quadrants_of_placement h ~x ~y =
  let n = H.num_modules h in
  let by_coordinate coord ids =
    let sorted = Array.copy ids in
    (* Ties broken by module id for determinism. *)
    Array.sort (fun a b -> compare (coord.(a), a) (coord.(b), b)) sorted;
    sorted
  in
  let all = Array.init n (fun v -> v) in
  let x_order = by_coordinate x all in
  let halves = median_split h x_order in
  let left = ref [] and right = ref [] in
  Array.iteri
    (fun i v -> if halves.(i) = 0 then left := v :: !left else right := v :: !right)
    x_order;
  let quadrant = Array.make n 0 in
  let split_half base members =
    let ids = Array.of_list members in
    let y_order = by_coordinate y ids in
    let spl = median_split h y_order in
    Array.iteri (fun i v -> quadrant.(v) <- base + spl.(i)) y_order
  in
  split_half 0 !left;
  split_half 2 !right;
  quadrant

let run ?(config = default) h =
  let n = H.num_modules h in
  let pad_count =
    match config.num_pads with
    | Some c -> Stdlib.max 1 (Stdlib.min c n)
    | None -> Stdlib.max 16 (n / 100) |> Stdlib.min n
  in
  let pads = choose_pads h pad_count in
  let placed = pad_positions pads in
  let fixed_x = Array.to_list (Array.map (fun (v, x, _) -> (v, x)) placed) in
  let fixed_y = Array.to_list (Array.map (fun (v, _, y) -> (v, y)) placed) in
  let solve fixed =
    let system = Quadratic.build ~clique_limit:config.clique_limit h ~fixed in
    Quadratic.solve ~tol:config.cg_tol ~max_iter:config.cg_max_iter system
  in
  let x = solve fixed_x in
  let y = solve fixed_y in
  let side = quadrants_of_placement h ~x ~y in
  let cut = Mlpart_partition.Multiway.cut_of h ~k:4 side in
  { side; cut; x; y; hpwl = Quadratic.hpwl h ~x ~y; pads }
