module H = Mlpart_hypergraph.Hypergraph

type t = {
  n : int;
  nfree : int;
  free_index : int array; (* module -> dense free index, -1 if fixed *)
  free_modules : int array; (* dense free index -> module *)
  position : float array; (* fixed coordinates; 0 for free *)
  is_fixed : bool array;
  (* CSR over free modules: off-diagonal free-free couplings *)
  row_offsets : int array;
  col : int array;
  weight : float array;
  diag : float array; (* per free module *)
  rhs : float array; (* per free module *)
}

(* Expand a hypergraph into weighted 2-pin edges: clique model for small
   nets (weight 2w/|e| per pair), chain model for large ones. *)
let edges_of ?(clique_limit = 32) h =
  let edges = ref [] in
  for e = 0 to H.num_nets h - 1 do
    let pins = H.pins_of h e in
    let size = Array.length pins in
    let w = float_of_int (H.net_weight h e) in
    if size <= clique_limit then begin
      let pair_w = 2.0 *. w /. float_of_int size in
      for i = 0 to size - 1 do
        for j = i + 1 to size - 1 do
          edges := (pins.(i), pins.(j), pair_w) :: !edges
        done
      done
    end
    else
      for i = 0 to size - 2 do
        edges := (pins.(i), pins.(i + 1), w) :: !edges
      done
  done;
  !edges

let net_model_edges ?clique_limit h = edges_of ?clique_limit h

let build ?(clique_limit = 32) h ~fixed =
  if fixed = [] then invalid_arg "Quadratic.build: no fixed modules";
  let n = H.num_modules h in
  let is_fixed = Array.make n false in
  let position = Array.make n 0.0 in
  List.iter
    (fun (v, pos) ->
      if v < 0 || v >= n then invalid_arg "Quadratic.build: fixed module out of range";
      is_fixed.(v) <- true;
      position.(v) <- pos)
    fixed;
  let free_index = Array.make n (-1) in
  let free_count = ref 0 in
  for v = 0 to n - 1 do
    if not is_fixed.(v) then begin
      free_index.(v) <- !free_count;
      incr free_count
    end
  done;
  let nf = !free_count in
  let free_modules = Array.make (Stdlib.max 1 nf) 0 in
  for v = 0 to n - 1 do
    if free_index.(v) >= 0 then free_modules.(free_index.(v)) <- v
  done;
  let edges = edges_of ~clique_limit h in
  let diag = Array.make (Stdlib.max 1 nf) 0.0 in
  let rhs = Array.make (Stdlib.max 1 nf) 0.0 in
  (* Count free-free entries (both directions) for CSR sizing. *)
  let degree = Array.make (Stdlib.max 1 nf) 0 in
  List.iter
    (fun (a, b, _) ->
      let fa = free_index.(a) and fb = free_index.(b) in
      if fa >= 0 && fb >= 0 then begin
        degree.(fa) <- degree.(fa) + 1;
        degree.(fb) <- degree.(fb) + 1
      end)
    edges;
  let row_offsets = Array.make (nf + 1) 0 in
  for i = 0 to nf - 1 do
    row_offsets.(i + 1) <- row_offsets.(i) + degree.(i)
  done;
  let nnz = row_offsets.(nf) in
  let col = Array.make (Stdlib.max 1 nnz) 0 in
  let weight = Array.make (Stdlib.max 1 nnz) 0.0 in
  let cursor = Array.copy row_offsets in
  List.iter
    (fun (a, b, w) ->
      let fa = free_index.(a) and fb = free_index.(b) in
      (match (fa >= 0, fb >= 0) with
      | true, true ->
          col.(cursor.(fa)) <- fb;
          weight.(cursor.(fa)) <- w;
          cursor.(fa) <- cursor.(fa) + 1;
          col.(cursor.(fb)) <- fa;
          weight.(cursor.(fb)) <- w;
          cursor.(fb) <- cursor.(fb) + 1
      | true, false -> rhs.(fa) <- rhs.(fa) +. (w *. position.(b))
      | false, true -> rhs.(fb) <- rhs.(fb) +. (w *. position.(a))
      | false, false -> ());
      if fa >= 0 then diag.(fa) <- diag.(fa) +. w;
      if fb >= 0 then diag.(fb) <- diag.(fb) +. w)
    edges;
  { n; nfree = nf; free_index; free_modules; position; is_fixed; row_offsets;
    col; weight; diag; rhs }

(* y = A x where A = diag - offdiag couplings (the reduced Laplacian). *)
let matvec t x y =
  let nf = Array.length x in
  for i = 0 to nf - 1 do
    let acc = ref (t.diag.(i) *. x.(i)) in
    for s = t.row_offsets.(i) to t.row_offsets.(i + 1) - 1 do
      acc := !acc -. (t.weight.(s) *. x.(t.col.(s)))
    done;
    y.(i) <- !acc
  done

let dot a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let solve ?(tol = 1e-7) ?(max_iter = 1000) t =
  let nfree = t.nfree in
  let x = Array.make (Stdlib.max 1 nfree) 0.0 in
  if nfree > 0 then begin
    (* Jacobi-preconditioned conjugate gradients on A x = rhs. *)
    let r = Array.copy t.rhs in
    let z = Array.make nfree 0.0 in
    let p = Array.make nfree 0.0 in
    let ap = Array.make nfree 0.0 in
    let precond () =
      for i = 0 to nfree - 1 do
        z.(i) <- (if t.diag.(i) > 0.0 then r.(i) /. t.diag.(i) else r.(i))
      done
    in
    precond ();
    Array.blit z 0 p 0 nfree;
    let rz = ref (dot r z) in
    let rhs_norm = sqrt (dot t.rhs t.rhs) in
    let threshold = tol *. Stdlib.max rhs_norm 1e-30 in
    let iter = ref 0 in
    let finished = ref (sqrt (dot r r) <= threshold) in
    while (not !finished) && !iter < max_iter do
      incr iter;
      matvec t p ap;
      let denom = dot p ap in
      if denom <= 0.0 then finished := true
      else begin
        let alpha = !rz /. denom in
        for i = 0 to nfree - 1 do
          x.(i) <- x.(i) +. (alpha *. p.(i));
          r.(i) <- r.(i) -. (alpha *. ap.(i))
        done;
        if sqrt (dot r r) <= threshold then finished := true
        else begin
          precond ();
          let rz' = dot r z in
          let beta = rz' /. !rz in
          rz := rz';
          for i = 0 to nfree - 1 do
            p.(i) <- z.(i) +. (beta *. p.(i))
          done
        end
      end
    done
  end;
  let out = Array.make t.n 0.0 in
  for v = 0 to t.n - 1 do
    out.(v) <- (if t.is_fixed.(v) then t.position.(v) else x.(t.free_index.(v)))
  done;
  out

let residual t solution =
  let nfree = t.nfree in
  if nfree = 0 then 0.0
  else begin
    let x = Array.init nfree (fun i -> solution.(t.free_modules.(i))) in
    let ax = Array.make nfree 0.0 in
    matvec t x ax;
    let acc = ref 0.0 in
    for i = 0 to nfree - 1 do
      let d = ax.(i) -. t.rhs.(i) in
      acc := !acc +. (d *. d)
    done;
    sqrt !acc /. Stdlib.max 1e-30 (sqrt (dot t.rhs t.rhs))
  end

let hpwl h ~x ~y =
  let total = ref 0.0 in
  for e = 0 to H.num_nets h - 1 do
    let min_x = ref infinity and max_x = ref neg_infinity in
    let min_y = ref infinity and max_y = ref neg_infinity in
    H.iter_pins_of h e (fun v ->
        if x.(v) < !min_x then min_x := x.(v);
        if x.(v) > !max_x then max_x := x.(v);
        if y.(v) < !min_y then min_y := y.(v);
        if y.(v) > !max_y then max_y := y.(v));
    total :=
      !total
      +. (float_of_int (H.net_weight h e) *. (!max_x -. !min_x +. !max_y -. !min_y))
  done;
  !total
