module H = Mlpart_hypergraph.Hypergraph

type config = {
  iterations : int;
  tol : float;
  clique_limit : int;
  refine : Mlpart_partition.Fm.config option;
}

let default = { iterations = 500; tol = 1e-7; clique_limit = 32; refine = None }
let eig_fm = { default with refine = Some Mlpart_partition.Fm.default }

type result = {
  side : int array;
  cut : int;
  fiedler : float array;
  iterations_used : int;
}

(* CSR Laplacian: diag and symmetric off-diagonal entries. *)
type laplacian = {
  diag : float array;
  row_offsets : int array;
  col : int array;
  weight : float array;
}

let build_laplacian ~clique_limit h =
  let n = H.num_modules h in
  let edges = Quadratic.net_model_edges ~clique_limit h in
  let diag = Array.make n 0.0 in
  let degree = Array.make n 0 in
  List.iter
    (fun (a, b, _) ->
      degree.(a) <- degree.(a) + 1;
      degree.(b) <- degree.(b) + 1)
    edges;
  let row_offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row_offsets.(v + 1) <- row_offsets.(v) + degree.(v)
  done;
  let nnz = row_offsets.(n) in
  let col = Array.make (Stdlib.max 1 nnz) 0 in
  let weight = Array.make (Stdlib.max 1 nnz) 0.0 in
  let cursor = Array.copy row_offsets in
  List.iter
    (fun (a, b, w) ->
      col.(cursor.(a)) <- b;
      weight.(cursor.(a)) <- w;
      cursor.(a) <- cursor.(a) + 1;
      col.(cursor.(b)) <- a;
      weight.(cursor.(b)) <- w;
      cursor.(b) <- cursor.(b) + 1;
      diag.(a) <- diag.(a) +. w;
      diag.(b) <- diag.(b) +. w)
    edges;
  { diag; row_offsets; col; weight }

let norm x = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x)

(* Shifted power iteration: the dominant eigenvector of (shift I - L)
   restricted to the complement of the constant vector is the Fiedler
   vector.  The start vector is a fixed pseudo-random pattern so runs are
   reproducible. *)
let fiedler_vector ~iterations ~tol lap n =
  let shift =
    2.0 *. Array.fold_left Stdlib.max 1.0 lap.diag
  in
  let x = Array.init n (fun v -> float_of_int (((v * 2654435761) land 0xffff) - 0x8000)) in
  let y = Array.make n 0.0 in
  let deflate v =
    let mean = Array.fold_left ( +. ) 0.0 v /. float_of_int n in
    for i = 0 to n - 1 do
      v.(i) <- v.(i) -. mean
    done
  in
  let normalise v =
    let len = norm v in
    if len > 0.0 then
      for i = 0 to n - 1 do
        v.(i) <- v.(i) /. len
      done
  in
  deflate x;
  normalise x;
  let used = ref 0 in
  let converged = ref false in
  while (not !converged) && !used < iterations do
    incr used;
    (* y = (shift I - L) x *)
    for i = 0 to n - 1 do
      let acc = ref ((shift -. lap.diag.(i)) *. x.(i)) in
      for s = lap.row_offsets.(i) to lap.row_offsets.(i + 1) - 1 do
        acc := !acc +. (lap.weight.(s) *. x.(lap.col.(s)))
      done;
      y.(i) <- !acc
    done;
    deflate y;
    normalise y;
    (* convergence: 1 - |<x, y>| small *)
    let dot = ref 0.0 in
    for i = 0 to n - 1 do
      dot := !dot +. (x.(i) *. y.(i))
    done;
    if 1.0 -. abs_float !dot < tol then converged := true;
    Array.blit y 0 x 0 n
  done;
  (x, !used)

(* [order] lists module ids sorted by Fiedler value; the prefix holding
   half the total area goes to side 0. *)
let median_split h order =
  let total = H.total_area h in
  let side = Array.make (Array.length order) 1 in
  let acc = ref 0 in
  (try
     Array.iter
       (fun v ->
         if 2 * !acc >= total then raise Exit;
         side.(v) <- 0;
         acc := !acc + H.area h v)
       order
   with Exit -> ());
  side

let run ?(config = default) h =
  let n = H.num_modules h in
  let lap = build_laplacian ~clique_limit:config.clique_limit h in
  let fiedler, iterations_used =
    fiedler_vector ~iterations:config.iterations ~tol:config.tol lap n
  in
  let order = Array.init n (fun v -> v) in
  Array.sort
    (fun a b -> compare (fiedler.(a), a) (fiedler.(b), b))
    order;
  let side = median_split h order in
  let side, cut =
    match config.refine with
    | None -> (side, Mlpart_partition.Fm.cut_of h side)
    | Some fm_config ->
        let r =
          Mlpart_partition.Fm.run ~config:fm_config ~init:side
            (Mlpart_util.Rng.create 0x5bec) h
        in
        (r.Mlpart_partition.Fm.side, r.Mlpart_partition.Fm.cut)
  in
  { side; cut; fiedler; iterations_used }
