(** Spectral (EIG) bipartitioning — the classical baseline the paper's
    competitors measure themselves against (Hagen–Kahng ratio-cut spectral
    methods [18]; PARABOLI is introduced as "50% better than spectral
    bisection").

    The netlist is expanded to a weighted graph with the same clique/chain
    model as {!Quadratic}; the Fiedler vector (eigenvector of the second
    smallest Laplacian eigenvalue) is computed by shifted power iteration
    with deflation of the constant vector, and the module ordering it
    induces is split at the area median.  An optional FM run refines the
    split (the classic "two-phase" EIG+FM). *)

type config = {
  iterations : int;  (** power-iteration cap; default 500 *)
  tol : float;  (** eigenvector convergence tolerance; default 1e-7 *)
  clique_limit : int;
  refine : Mlpart_partition.Fm.config option;
      (** run FM from the spectral split; default [None] (pure EIG) *)
}

val default : config

val eig_fm : config
(** [default] with plain-FM refinement. *)

type result = {
  side : int array;
  cut : int;
  fiedler : float array;  (** the computed eigenvector (unit norm) *)
  iterations_used : int;
}

val run : ?config:config -> Mlpart_hypergraph.Hypergraph.t -> result
(** Deterministic (the iteration starts from a fixed pseudo-random vector).
    On disconnected netlists the leading non-constant eigenvector separates
    components, which is the natural spectral behaviour. *)
