module H = Mlpart_hypergraph.Hypergraph

let palette =
  [| "#4363d8"; "#e6194b"; "#3cb44b"; "#f58231"; "#911eb4"; "#46f0f0";
     "#f032e6"; "#808000" |]

let render ?side ?(draw_nets = false) ?(size = 800) h ~x ~y =
  let n = H.num_modules h in
  let buf = Buffer.create (64 * n) in
  let px v = v *. float_of_int size in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\">\n"
       size size size size);
  Buffer.add_string buf
    (Printf.sprintf
       "<rect width=\"%d\" height=\"%d\" fill=\"white\" stroke=\"#888\"/>\n"
       size size);
  if draw_nets then
    for e = 0 to H.num_nets h - 1 do
      if H.net_size h e <= 8 then begin
        let cx = ref 0.0 and cy = ref 0.0 in
        H.iter_pins_of h e (fun v ->
            cx := !cx +. x.(v);
            cy := !cy +. y.(v));
        let count = float_of_int (H.net_size h e) in
        let cx = !cx /. count and cy = !cy /. count in
        H.iter_pins_of h e (fun v ->
            Buffer.add_string buf
              (Printf.sprintf
                 "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
                  stroke=\"#ccc\" stroke-width=\"0.5\"/>\n"
                 (px x.(v)) (px y.(v)) (px cx) (px cy)))
      end
    done;
  let radius = Stdlib.max 1.0 (float_of_int size /. 300.0) in
  for v = 0 to n - 1 do
    let colour =
      match side with
      | Some s -> palette.(s.(v) mod Array.length palette)
      | None -> "#333333"
    in
    Buffer.add_string buf
      (Printf.sprintf
         "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"%s\"/>\n"
         (px x.(v)) (px y.(v)) radius colour)
  done;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write ?side ?draw_nets ?size path h ~x ~y =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (render ?side ?draw_nets ?size h ~x ~y))
