(** SVG rendering of placements and partitions, for eyeballing results
    (`mlpart place --svg`).  Modules are dots coloured by part (when a
    side assignment is given); nets can optionally be drawn as star
    connections to their centroid. *)

val render :
  ?side:int array ->
  ?draw_nets:bool ->
  ?size:int ->
  Mlpart_hypergraph.Hypergraph.t ->
  x:float array ->
  y:float array ->
  string
(** Coordinates are expected in the unit square; [size] is the output
    pixel width/height (default 800).  [draw_nets] (default false: nets
    dominate visually on big circuits) draws centroid stars for nets of
    up to 8 pins. *)

val write :
  ?side:int array ->
  ?draw_nets:bool ->
  ?size:int ->
  string ->
  Mlpart_hypergraph.Hypergraph.t ->
  x:float array ->
  y:float array ->
  unit
