(* Tests for the Sanchis-style multiway FM engine. *)

module H = Mlpart_hypergraph.Hypergraph
module Kp = Mlpart_partition.Kpartition
module Mw = Mlpart_partition.Multiway
module Rng = Mlpart_util.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let random_instance ?(modules = 100) seed =
  let rng = Rng.create seed in
  Mlpart_gen.Generate.rent ~rng ~modules ~nets:(modules * 5 / 4)
    ~pins:(7 * modules / 2) ()

(* Four 6-module cliques joined in a ring by bridge nets: the natural 4-way
   partition cuts exactly the 4 bridges. *)
let four_cliques () =
  let b = Mlpart_hypergraph.Builder.create ~name:"four-cliques" () in
  Mlpart_hypergraph.Builder.add_modules b 24;
  for c = 0 to 3 do
    let base = 6 * c in
    for v = 0 to 5 do
      for w = v + 1 to 5 do
        Mlpart_hypergraph.Builder.add_net b [ base + v; base + w ]
      done
    done
  done;
  for c = 0 to 3 do
    Mlpart_hypergraph.Builder.add_net b [ 6 * c; 6 * ((c + 1) mod 4) ]
  done;
  Mlpart_hypergraph.Builder.build b

let balanced h k side =
  Kp.is_balanced (Kp.create h ~k side) (Kp.bounds h ~k)

let test_finds_four_cliques () =
  let h = four_cliques () in
  let best = ref max_int in
  for seed = 1 to 6 do
    let r = Mw.run (Rng.create seed) h ~k:4 in
    best := Stdlib.min !best r.Mw.cut
  done;
  check Alcotest.int "optimal 4-way cut" 4 !best

let test_result_consistent_soed () =
  let h = random_instance 1 in
  let r = Mw.run (Rng.create 2) h ~k:4 in
  check Alcotest.int "cut matches recount" (Mw.cut_of h ~k:4 r.Mw.side) r.Mw.cut;
  let kp = Kp.create h ~k:4 r.Mw.side in
  check Alcotest.int "soed matches recount" (Kp.sum_degrees kp) r.Mw.sum_degrees;
  check Alcotest.bool "balanced" true (balanced h 4 r.Mw.side)

let test_result_consistent_netcut () =
  let h = random_instance 3 in
  let config = { Mw.default with objective = Mw.Net_cut } in
  let r = Mw.run ~config (Rng.create 4) h ~k:4 in
  check Alcotest.int "cut matches recount" (Mw.cut_of h ~k:4 r.Mw.side) r.Mw.cut;
  check Alcotest.bool "balanced" true (balanced h 4 r.Mw.side)

let test_k2_matches_bipartition_quality () =
  (* k = 2 multiway should find cuts in the same league as FM. *)
  let h = random_instance 5 in
  let mw = Mw.run ~config:{ Mw.default with objective = Mw.Net_cut }
             (Rng.create 6) h ~k:2 in
  let fm = Mlpart_partition.Fm.run (Rng.create 6) h in
  check Alcotest.bool "within 3x of FM" true
    (mw.Mw.cut <= 3 * Stdlib.max 1 fm.Mlpart_partition.Fm.cut)

let test_fixed_modules_unmoved () =
  let h = random_instance 7 in
  let fixed = Array.make (H.num_modules h) (-1) in
  fixed.(0) <- 2;
  fixed.(5) <- 0;
  fixed.(9) <- 3;
  let r = Mw.run ~fixed (Rng.create 8) h ~k:4 in
  check Alcotest.int "module 0 pinned" 2 r.Mw.side.(0);
  check Alcotest.int "module 5 pinned" 0 r.Mw.side.(5);
  check Alcotest.int "module 9 pinned" 3 r.Mw.side.(9)

let test_init_refinement_never_worsens () =
  let h = random_instance 9 in
  let start = Kp.random (Rng.create 10) h ~k:4 in
  let init = Kp.side_array start in
  let r = Mw.run ~init (Rng.create 11) h ~k:4 in
  check Alcotest.bool "no worse than start" true (r.Mw.cut <= Kp.cut start)

let test_rejects_k1 () =
  let h = random_instance 12 in
  (match Mw.run (Rng.create 1) h ~k:1 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

let test_deterministic () =
  let h = random_instance 13 in
  let a = Mw.run (Rng.create 14) h ~k:4 and b = Mw.run (Rng.create 14) h ~k:4 in
  check Alcotest.(array int) "same assignment" a.Mw.side b.Mw.side

let test_max_passes () =
  let h = random_instance 24 in
  let config = { Mw.default with max_passes = 1 } in
  let r = Mw.run ~config (Rng.create 25) h ~k:4 in
  check Alcotest.int "single pass" 1 r.Mw.passes

let test_custom_objective () =
  (* A custom gain equal to the sum-of-degrees delta must behave exactly
     like Sum_degrees. *)
  let h = random_instance 20 in
  let soed_gain ~weight ~spans_before ~spans_after =
    weight * (spans_before - spans_after)
  in
  let custom = { Mw.default with objective = Mw.Custom soed_gain } in
  let a = Mw.run ~config:custom (Rng.create 21) h ~k:4 in
  let b = Mw.run ~config:Mw.default (Rng.create 21) h ~k:4 in
  check Alcotest.(array int) "same trajectory as Sum_degrees" b.Mw.side a.Mw.side

let test_custom_objective_quadratic () =
  (* A super-linear spans penalty still yields a consistent result. *)
  let h = random_instance 22 in
  let quadratic ~weight ~spans_before ~spans_after =
    weight * ((spans_before * spans_before) - (spans_after * spans_after))
  in
  let config = { Mw.default with objective = Mw.Custom quadratic } in
  let r = Mw.run ~config (Rng.create 23) h ~k:4 in
  check Alcotest.int "cut recount" (Mw.cut_of h ~k:4 r.Mw.side) r.Mw.cut

let prop_consistent_both_objectives =
  QCheck.Test.make ~name:"multiway consistent for both gains and k in 2..5"
    ~count:25
    QCheck.(triple small_int (int_range 2 5) bool)
    (fun (seed, k, soed) ->
      let h = random_instance ~modules:60 seed in
      let config =
        { Mw.default with objective = (if soed then Mw.Sum_degrees else Mw.Net_cut) }
      in
      let r = Mw.run ~config (Rng.create (seed + 20)) h ~k in
      r.Mw.cut = Mw.cut_of h ~k r.Mw.side && balanced h k r.Mw.side)

let () =
  Alcotest.run "multiway"
    [
      ( "multiway",
        [
          Alcotest.test_case "finds four cliques" `Quick test_finds_four_cliques;
          Alcotest.test_case "consistent (soed)" `Quick test_result_consistent_soed;
          Alcotest.test_case "consistent (net cut)" `Quick
            test_result_consistent_netcut;
          Alcotest.test_case "k=2 sane" `Quick test_k2_matches_bipartition_quality;
          Alcotest.test_case "fixed unmoved" `Quick test_fixed_modules_unmoved;
          Alcotest.test_case "refinement monotone" `Quick
            test_init_refinement_never_worsens;
          Alcotest.test_case "rejects k=1" `Quick test_rejects_k1;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "max passes" `Quick test_max_passes;
          Alcotest.test_case "custom objective = soed" `Quick test_custom_objective;
          Alcotest.test_case "custom quadratic objective" `Quick
            test_custom_objective_quadratic;
          qtest prop_consistent_both_objectives;
        ] );
    ]
