test/test_fm.ml: Alcotest Array Filename Fun List Mlpart_gen Mlpart_hypergraph Mlpart_multilevel Mlpart_partition Mlpart_util Out_channel Printf QCheck QCheck_alcotest Stdlib Sys
