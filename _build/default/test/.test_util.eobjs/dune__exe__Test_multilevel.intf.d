test/test_multilevel.mli:
