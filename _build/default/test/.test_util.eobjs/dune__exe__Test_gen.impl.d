test/test_gen.ml: Alcotest Array Buffer Format List Mlpart_gen Mlpart_hypergraph Mlpart_partition Mlpart_util QCheck QCheck_alcotest Stdlib String
