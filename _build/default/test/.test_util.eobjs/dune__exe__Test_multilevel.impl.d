test/test_multilevel.ml: Alcotest Array Fun List Mlpart_gen Mlpart_hypergraph Mlpart_multilevel Mlpart_partition Mlpart_util QCheck QCheck_alcotest Stdlib
