test/test_fm.mli:
