test/test_util.ml: Alcotest Array Fun Gen List Mlpart_util QCheck QCheck_alcotest String
