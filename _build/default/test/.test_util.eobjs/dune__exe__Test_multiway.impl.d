test/test_multiway.ml: Alcotest Array Mlpart_gen Mlpart_hypergraph Mlpart_partition Mlpart_util QCheck QCheck_alcotest Stdlib
