test/test_hypergraph.ml: Alcotest Array Buffer Filename Format Fun List Mlpart_gen Mlpart_hypergraph Mlpart_util Out_channel QCheck QCheck_alcotest Stdlib String Sys
