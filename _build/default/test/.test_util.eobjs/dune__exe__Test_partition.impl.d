test/test_partition.ml: Alcotest Array Gen Hashtbl List Mlpart_gen Mlpart_hypergraph Mlpart_partition Mlpart_util Printf QCheck QCheck_alcotest
