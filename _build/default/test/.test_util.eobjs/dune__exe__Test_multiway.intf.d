test/test_multiway.mli:
