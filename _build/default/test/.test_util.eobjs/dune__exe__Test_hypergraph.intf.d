test/test_hypergraph.mli:
