(* Tests for the synthetic netlist generators and the Table I suite. *)

module H = Mlpart_hypergraph.Hypergraph
module Gen = Mlpart_gen.Generate
module Suite = Mlpart_gen.Suite
module Rng = Mlpart_util.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---- structured generators ---- *)

let test_ring () =
  let h = Gen.ring 10 in
  check Alcotest.int "modules" 10 (H.num_modules h);
  check Alcotest.int "nets" 10 (H.num_nets h);
  check Alcotest.int "pins" 20 (H.num_pins h);
  (* every module has degree 2 *)
  for v = 0 to 9 do
    check Alcotest.int "degree" 2 (H.module_degree h v)
  done;
  (* a contiguous split cuts exactly 2 nets *)
  let side = Array.init 10 (fun v -> if v < 5 then 0 else 1) in
  check Alcotest.int "contiguous cut" 2 (Mlpart_partition.Fm.cut_of h side)

let test_ring_rejects_small () =
  (match Gen.ring 2 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

let test_grid () =
  let h = Gen.grid 3 4 in
  check Alcotest.int "modules" 12 (H.num_modules h);
  (* 3*(4-1) horizontal + (3-1)*4 vertical *)
  check Alcotest.int "nets" 17 (H.num_nets h);
  (* splitting between columns 1 and 2 cuts one net per row *)
  let side = Array.init 12 (fun v -> if v mod 4 < 2 then 0 else 1) in
  check Alcotest.int "column cut" 3 (Mlpart_partition.Fm.cut_of h side)

let test_clique () =
  let h = Gen.clique 6 in
  check Alcotest.int "nets" 15 (H.num_nets h);
  (* any 3/3 split cuts 9 edges *)
  let side = Array.init 6 (fun v -> if v < 3 then 0 else 1) in
  check Alcotest.int "bisection cut" 9 (Mlpart_partition.Fm.cut_of h side)

let test_caterpillar () =
  let h = Gen.caterpillar ~spine:5 ~legs:3 () in
  check Alcotest.int "modules" 20 (H.num_modules h);
  check Alcotest.int "nets" 4 (H.num_nets h);
  check Alcotest.int "net size" 5 (H.net_size h 0)

(* ---- random generators ---- *)

let test_rent_counts () =
  let rng = Rng.create 1 in
  let h = Gen.rent ~rng ~modules:500 ~nets:600 ~pins:2000 () in
  check Alcotest.int "modules exact" 500 (H.num_modules h);
  check Alcotest.bool "nets close" true
    (H.num_nets h > 550 && H.num_nets h <= 600);
  let pins = H.num_pins h in
  check Alcotest.bool "pins within 15%" true
    (float_of_int (abs (pins - 2000)) < 0.15 *. 2000.0)

let test_rent_deterministic () =
  let gen () =
    let rng = Rng.create 7 in
    Gen.rent ~rng ~modules:100 ~nets:120 ~pins:400 ()
  in
  let a = gen () and b = gen () in
  check Alcotest.string "same netlist"
    (Mlpart_hypergraph.Hgr_io.to_string a)
    (Mlpart_hypergraph.Hgr_io.to_string b)

let test_rent_locality_lowers_cut () =
  (* More locality must give lower achievable cuts on average. *)
  let cut_at locality =
    let grng = Rng.create 3 in
    let h = Gen.rent ~locality ~rng:grng ~modules:600 ~nets:700 ~pins:2200 () in
    let rng = Rng.create 5 in
    let best = ref max_int in
    for _ = 1 to 3 do
      let r = Mlpart_partition.Fm.run ~config:Mlpart_partition.Fm.clip
                (Rng.split rng) h in
      best := Stdlib.min !best r.Mlpart_partition.Fm.cut
    done;
    !best
  in
  check Alcotest.bool "local < unstructured" true (cut_at 0.9 < cut_at 0.0)

let test_rent_rejects_bad_args () =
  let rng = Rng.create 1 in
  let expect f =
    match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  expect (fun () -> Gen.rent ~rng ~modules:2 ~nets:5 ~pins:20 ());
  expect (fun () -> Gen.rent ~rng ~modules:10 ~nets:0 ~pins:20 ());
  expect (fun () -> Gen.rent ~rng ~modules:10 ~nets:5 ~pins:5 ());
  expect (fun () -> Gen.rent ~locality:1.0 ~rng ~modules:10 ~nets:5 ~pins:20 ())

let test_random_generator () =
  let rng = Rng.create 2 in
  let h = Gen.random ~rng ~modules:200 ~nets:250 ~pins:800 () in
  check Alcotest.int "modules" 200 (H.num_modules h);
  check Alcotest.bool "net sizes >= 2" true
    (let ok = ref true in
     for e = 0 to H.num_nets h - 1 do
       if H.net_size h e < 2 then ok := false
     done;
     !ok)

(* ---- suite ---- *)

let test_suite_has_23_circuits () =
  check Alcotest.int "Table I size" 23 (List.length Suite.all)

let test_suite_find () =
  let s = Suite.find "golem3" in
  check Alcotest.int "golem3 modules" 103048 s.Suite.modules;
  check Alcotest.int "golem3 nets" 144949 s.Suite.nets;
  (match Suite.find "nonexistent" with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ())

let test_suite_tiers_nested () =
  let size t = List.length (Suite.tier_specs t) in
  check Alcotest.bool "tiny < small < standard < full" true
    (size Suite.Tiny < size Suite.Small
    && size Suite.Small < size Suite.Standard
    && size Suite.Standard < size Suite.Full);
  check Alcotest.int "full is everything" 23 (size Suite.Full)

let test_suite_tier_parse () =
  check Alcotest.bool "small parses" true (Suite.tier_of_string "small" = Some Suite.Small);
  check Alcotest.bool "unknown rejected" true (Suite.tier_of_string "giant" = None)

let test_suite_instantiate_counts () =
  let spec = Suite.find "balu" in
  let h = Suite.instantiate spec in
  check Alcotest.int "modules exact" spec.Suite.modules (H.num_modules h);
  check Alcotest.string "named" "balu" (H.name h);
  (* realised nets/pins within 10% of the published counts *)
  let close real target =
    float_of_int (abs (real - target)) < 0.10 *. float_of_int target
  in
  check Alcotest.bool "nets close" true (close (H.num_nets h) spec.Suite.nets);
  check Alcotest.bool "pins close" true (close (H.num_pins h) spec.Suite.pins)

let test_suite_instantiate_deterministic () =
  let spec = Suite.find "bm1" in
  let a = Suite.instantiate ~seed:4 spec and b = Suite.instantiate ~seed:4 spec in
  check Alcotest.string "identical"
    (Mlpart_hypergraph.Hgr_io.to_string a)
    (Mlpart_hypergraph.Hgr_io.to_string b);
  let c = Suite.instantiate ~seed:5 spec in
  check Alcotest.bool "seed changes structure" true
    (Mlpart_hypergraph.Hgr_io.to_string a <> Mlpart_hypergraph.Hgr_io.to_string c)

let test_suite_table1_renders () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Suite.pp_table1 ppf (Suite.tier_specs Suite.Tiny);
  Format.pp_print_flush ppf ();
  check Alcotest.bool "mentions balu" true
    (let s = Buffer.contents buf in
     String.length s > 0
     &&
     let re_found = ref false in
     String.split_on_char '\n' s
     |> List.iter (fun line ->
            if String.length line >= 4 && String.sub line 0 4 = "balu" then
              re_found := true);
     !re_found)

let prop_rent_valid =
  QCheck.Test.make ~name:"rent output is always a valid hypergraph" ~count:40
    QCheck.(triple small_int (int_range 10 200) (int_range 10 200))
    (fun (seed, modules, nets) ->
      let modules = Stdlib.max 4 modules in
      let pins = 3 * nets in
      let rng = Rng.create seed in
      let h = Gen.rent ~rng ~modules ~nets ~pins () in
      (* validity is enforced by Hypergraph.make; check sane ranges here *)
      H.num_modules h = modules && H.num_nets h <= nets && H.num_pins h >= 0)

let () =
  Alcotest.run "gen"
    [
      ( "structured",
        [
          Alcotest.test_case "ring" `Quick test_ring;
          Alcotest.test_case "ring rejects small" `Quick test_ring_rejects_small;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "clique" `Quick test_clique;
          Alcotest.test_case "caterpillar" `Quick test_caterpillar;
        ] );
      ( "random",
        [
          Alcotest.test_case "rent counts" `Quick test_rent_counts;
          Alcotest.test_case "rent deterministic" `Quick test_rent_deterministic;
          Alcotest.test_case "locality lowers cut" `Slow
            test_rent_locality_lowers_cut;
          Alcotest.test_case "rent rejects bad args" `Quick
            test_rent_rejects_bad_args;
          Alcotest.test_case "random generator" `Quick test_random_generator;
          qtest prop_rent_valid;
        ] );
      ( "suite",
        [
          Alcotest.test_case "23 circuits" `Quick test_suite_has_23_circuits;
          Alcotest.test_case "find" `Quick test_suite_find;
          Alcotest.test_case "tiers nested" `Quick test_suite_tiers_nested;
          Alcotest.test_case "tier parse" `Quick test_suite_tier_parse;
          Alcotest.test_case "instantiate counts" `Quick
            test_suite_instantiate_counts;
          Alcotest.test_case "instantiate deterministic" `Quick
            test_suite_instantiate_deterministic;
          Alcotest.test_case "table1 renders" `Quick test_suite_table1_renders;
        ] );
    ]
