(** Structured tracing: a low-overhead span/event recorder.

    Spans and instant events accumulate in per-domain ring buffers —
    {!Mlpart_util.Pool} workers record without taking any lock — and
    export as Chrome trace-event JSON loadable in [chrome://tracing] or
    Perfetto.  Timestamps come from the monotonic clock ([CLOCK_MONOTONIC]
    via the bechamel stub), rebased to the {!enable} call.

    Disabled (the default), every entry point is a null sink: one atomic
    flag read, no clock call, no allocation.  The instrumented hot paths
    of the partitioning pipeline therefore cost one predictable branch per
    pass/level when tracing is off; see the null-sink allocation test.

    Recording is multi-domain safe.  {!events}, {!export} and
    {!export_to_file} must run after parallel work has quiesced (e.g.
    after {!Mlpart_util.Pool.run_job} returned), which every caller in
    the tree does naturally. *)

type arg = Int of int | Float of float | Str of string | Bool of bool
(** Span argument values, rendered into the event's ["args"] object. *)

type event = {
  name : string;
  cat : string;  (** category, e.g. ["fm"], ["coarsen"], ["pool"] *)
  ph : char;  (** trace-event phase: ['X'] complete span, ['i'] instant *)
  ts : int;  (** start, nanoseconds since {!enable} *)
  dur : int;  (** duration in nanoseconds; 0 for instants *)
  tid : int;  (** recording domain id *)
  args : (string * arg) list;
}

val enabled : unit -> bool
(** One atomic read; the gate every recording entry point checks first. *)

val enable : ?capacity:int -> unit -> unit
(** Start a fresh trace session: clears previously collected events,
    rebases the clock, and turns recording on.  [capacity] (default
    [65536]) bounds each domain's ring buffer; when it overflows the
    oldest events are overwritten and {!dropped} counts the loss. *)

val disable : unit -> unit
(** Stop recording.  Collected events remain readable. *)

val reset : unit -> unit
(** Discard collected events and rebase the clock without changing the
    enabled state. *)

val start : unit -> int
(** Monotonic timestamp in nanoseconds for a manual span, or [0] when
    disabled (the clock is not read).  Pair with {!complete}. *)

val complete : ?cat:string -> ?args:(string * arg) list -> string -> int -> unit
(** [complete name t0] records a span from [t0] (a {!start} result) to
    now.  No-op when disabled — but guard the call with {!enabled} at hot
    sites so the [args] list is never built. *)

val span : ?cat:string -> ?args:(unit -> (string * arg) list) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a span; the [args] thunk is evaluated
    once, after [f] returns (or raises — the span is recorded either
    way).  Disabled, this is exactly [f ()]. *)

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit
(** Record a zero-duration marker event. *)

val events : unit -> event list
(** Every retained event, merged across domains and sorted by
    [(ts, tid, name)]. *)

val dropped : unit -> int
(** Events lost to ring-buffer overflow since {!enable}/{!reset}. *)

val to_json : unit -> Json.t
(** Chrome trace-event JSON object: [{"traceEvents": [...],
    "displayTimeUnit": "ms", "otherData": {"dropped": N}}] with [ts]/[dur]
    in microseconds, as the format requires. *)

val export : unit -> string
val export_to_file : string -> unit
