type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest representation that round-trips and stays valid JSON: floats
   always carry a fraction or exponent so the parser reads them back as
   [Float], and non-finite values become [null] (JSON has no inf/nan). *)
let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    Buffer.add_string buf s;
    if String.for_all (fun c -> c <> '.' && c <> 'e') s then
      Buffer.add_string buf ".0"
  end

let to_string ?(indent = true) v =
  let buf = Buffer.create 1024 in
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> add_float buf f
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, item) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            escape buf k;
            Buffer.add_string buf (if indent then ": " else ":");
            go (depth + 1) item)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error (!pos, m))) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | Some x -> fail "expected %C, got %C" c x
    | None -> fail "expected %C, got end of input" c
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* exports only escape control characters, so a BMP
                 passthrough is enough here *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
              go ()
          | Some c -> fail "bad escape %C" c
          | None -> fail "unterminated escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          go ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          go ()
      | Some _ | None -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number %S" text
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "bad number %S" text
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %C" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

(* Typed field accessors for protocol-style decoding (the serve layer):
   [None] on a missing field or a type mismatch, so callers can layer
   defaults with [Option.value].  Ints widen to floats, never the
   reverse. *)
let str_member key v =
  match member key v with Some (Str s) -> Some s | Some _ | None -> None

let int_member key v =
  match member key v with Some (Int i) -> Some i | Some _ | None -> None

let float_member key v =
  match member key v with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | Some _ | None -> None

let bool_member key v =
  match member key v with Some (Bool b) -> Some b | Some _ | None -> None

let list_member key v =
  match member key v with Some (List l) -> Some l | Some _ | None -> None

let to_file path v =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string v);
      Out_channel.output_string oc "\n")
