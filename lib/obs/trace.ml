(* Per-domain ring buffers keep recording lock-free: each domain writes
   only its own ring (reached through domain-local storage), and the one
   mutex in the module guards the rare ring-registration and the
   export-side collection.  Collection happens after parallel work has
   joined, so the main domain reads fully published ring contents. *)

type arg = Int of int | Float of float | Str of string | Bool of bool

type event = {
  name : string;
  cat : string;
  ph : char;
  ts : int;
  dur : int;
  tid : int;
  args : (string * arg) list;
}

type ring = {
  tid : int;
  mutable buf : event array;
  mutable n : int; (* events ever written this session; slot = n mod cap *)
  mutable epoch : int; (* session the ring belongs to; -1 = unattached *)
}

let on = Atomic.make false
let capacity = ref 65536
let epoch = ref 0
let base = ref 0
let rings : ring list ref = ref []
let registry_mutex = Mutex.create ()

let dummy = { name = ""; cat = ""; ph = 'X'; ts = 0; dur = 0; tid = 0; args = [] }

let dls_key =
  Domain.DLS.new_key (fun () ->
      { tid = (Domain.self () :> int); buf = [||]; n = 0; epoch = -1 })

(* The recording domain's ring, (re)attached to the current session on
   first use after an enable/reset. *)
let ring () =
  let r = Domain.DLS.get dls_key in
  if r.epoch <> !epoch then begin
    r.buf <- Array.make !capacity dummy;
    r.n <- 0;
    r.epoch <- !epoch;
    Mutex.lock registry_mutex;
    rings := r :: !rings;
    Mutex.unlock registry_mutex
  end;
  r

let enabled () = Atomic.get on
let now_ns () = Int64.to_int (Monotonic_clock.now ())
let start () = if Atomic.get on then now_ns () else 0

let record ev =
  let r = ring () in
  let cap = Array.length r.buf in
  r.buf.(r.n mod cap) <- ev;
  r.n <- r.n + 1

let complete ?(cat = "") ?(args = []) name t0 =
  if Atomic.get on then begin
    let t1 = now_ns () in
    let tid = (Domain.self () :> int) in
    record { name; cat; ph = 'X'; ts = t0 - !base; dur = t1 - t0; tid; args }
  end

let span ?cat ?args name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = now_ns () in
    let finish () =
      let args = match args with None -> [] | Some thunk -> thunk () in
      complete ?cat ~args name t0
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let instant ?(cat = "") ?(args = []) name =
  if Atomic.get on then begin
    let tid = (Domain.self () :> int) in
    record { name; cat; ph = 'i'; ts = now_ns () - !base; dur = 0; tid; args }
  end

let clear_session () =
  Mutex.lock registry_mutex;
  rings := [];
  incr epoch;
  Mutex.unlock registry_mutex;
  base := now_ns ()

let enable ?capacity:(cap = 65536) () =
  capacity := Stdlib.max 16 cap;
  clear_session ();
  Atomic.set on true

let disable () = Atomic.set on false
let reset () = clear_session ()

let collect () =
  Mutex.lock registry_mutex;
  let rs = !rings in
  Mutex.unlock registry_mutex;
  rs

let events () =
  let out = ref [] in
  List.iter
    (fun r ->
      let cap = Array.length r.buf in
      let kept = Stdlib.min r.n cap in
      for i = r.n - kept to r.n - 1 do
        out := r.buf.(i mod cap) :: !out
      done)
    (collect ());
  List.sort
    (fun a b ->
      let c = Int.compare a.ts b.ts in
      if c <> 0 then c
      else
        let c = Int.compare a.tid b.tid in
        if c <> 0 then c else String.compare a.name b.name)
    !out

let dropped () =
  List.fold_left
    (fun acc r -> acc + Stdlib.max 0 (r.n - Array.length r.buf))
    0 (collect ())

let json_of_arg = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let us_of_ns ns = float_of_int ns /. 1000.0

let json_of_event e =
  let base =
    [
      ("name", Json.Str e.name);
      ("cat", Json.Str (if e.cat = "" then "default" else e.cat));
      ("ph", Json.Str (String.make 1 e.ph));
      ("ts", Json.Float (us_of_ns e.ts));
      ("pid", Json.Int 1);
      ("tid", Json.Int e.tid);
    ]
  in
  let base =
    if e.ph = 'X' then base @ [ ("dur", Json.Float (us_of_ns e.dur)) ]
    else base
  in
  let base =
    match e.args with
    | [] -> base
    | args ->
        base
        @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)) ]
  in
  Json.Obj base

let to_json () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map json_of_event (events ())));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", Json.Obj [ ("dropped", Json.Int (dropped ())) ]);
    ]

let export () = Json.to_string (to_json ())
let export_to_file path = Json.to_file path (to_json ())

(* Install the trace half of the util-layer probe seam: Pool records spans
   through these refs without depending on this library.  Module
   initialisation runs at program start whenever mlpart_obs is linked. *)
let () =
  Mlpart_util.Probe.trace_on := enabled;
  Mlpart_util.Probe.span_begin := start;
  Mlpart_util.Probe.span_end :=
    fun ~cat ~name ~t0 ~args ->
      if Atomic.get on then
        complete ~cat ~args:(List.map (fun (k, v) -> (k, Int v)) args) name t0
