module Stats = Mlpart_util.Stats
module Diag = Mlpart_util.Diag

(* One flag gates every registry: the pipeline's instrument handles all
   live in [default], and tests that build private registries still want
   the same on/off behaviour. *)
let on = Atomic.make false
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

type counter = int Atomic.t

type gauge = { mutable g : float }

type histogram = {
  bounds : int array; (* strictly increasing inclusive upper bounds *)
  counts : int Atomic.t array; (* length bounds + 1; last is +Inf *)
  sum : int Atomic.t;
  sumsq : int Atomic.t;
  total : int Atomic.t;
  mn : int Atomic.t;
  mx : int Atomic.t;
}

type instrument = C of counter | G of gauge | H of histogram

type t = { items : (string, instrument) Hashtbl.t; mutex : Mutex.t }

let create () = { items = Hashtbl.create 64; mutex = Mutex.create () }
let default = create ()

(* Find-or-create under the registry mutex; updates themselves never take
   it.  Handles are expected to be created once at module initialisation
   of the instrumented code, so contention here is immaterial. *)
let intern ?(registry = default) name build describe =
  Mutex.lock registry.mutex;
  let i =
    match Hashtbl.find_opt registry.items name with
    | Some i -> i
    | None ->
        let i = build () in
        Hashtbl.add registry.items name i;
        i
  in
  Mutex.unlock registry.mutex;
  match describe i with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S already registered as another kind" name)

let counter ?registry name =
  intern ?registry name
    (fun () -> C (Atomic.make 0))
    (function C c -> Some c | G _ | H _ -> None)

let incr c = if Atomic.get on then Atomic.incr c
let add c v = if Atomic.get on then ignore (Atomic.fetch_and_add c v)
let counter_value c = Atomic.get c

let gauge ?registry name =
  intern ?registry name
    (fun () -> G { g = 0.0 })
    (function G g -> Some g | C _ | H _ -> None)

let set_gauge g v = if Atomic.get on then g.g <- v
let gauge_value g = g.g

let default_buckets = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 |]

let make_histogram bounds =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing")
    bounds;
  {
    bounds = Array.copy bounds;
    counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
    sum = Atomic.make 0;
    sumsq = Atomic.make 0;
    total = Atomic.make 0;
    mn = Atomic.make max_int;
    mx = Atomic.make min_int;
  }

let histogram ?registry ?(buckets = default_buckets) name =
  intern ?registry name
    (fun () -> H (make_histogram buckets))
    (function H h -> Some h | C _ | G _ -> None)

let rec atomic_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then atomic_min a v

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let bucket_of h v =
  let k = Array.length h.bounds in
  let i = ref 0 in
  while !i < k && v > h.bounds.(!i) do
    Stdlib.incr i
  done;
  !i

let observe h v =
  if Atomic.get on then begin
    ignore (Atomic.fetch_and_add h.counts.(bucket_of h v) 1);
    ignore (Atomic.fetch_and_add h.sum v);
    ignore (Atomic.fetch_and_add h.sumsq (v * v));
    ignore (Atomic.fetch_and_add h.total 1);
    atomic_min h.mn v;
    atomic_max h.mx v
  end

let histogram_count h = Atomic.get h.total
let histogram_sum h = Atomic.get h.sum

let count_named ?registry name v = add (counter ?registry name) v
let observe_named ?registry name v = observe (histogram ?registry name) v

let record_diag ?registry d =
  let sev = match d.Diag.severity with Diag.Warning -> "warning" | Diag.Error -> "error" in
  let name = Printf.sprintf "diag.%s.%s" sev (Diag.code_name d.Diag.code) in
  ignore (Atomic.fetch_and_add (counter ?registry name) 1)

let reset ?(registry = default) () =
  Mutex.lock registry.mutex;
  Hashtbl.iter
    (fun _ i ->
      match i with
      | C c -> Atomic.set c 0
      | G g -> g.g <- 0.0
      | H h ->
          Array.iter (fun c -> Atomic.set c 0) h.counts;
          Atomic.set h.sum 0;
          Atomic.set h.sumsq 0;
          Atomic.set h.total 0;
          Atomic.set h.mn max_int;
          Atomic.set h.mx min_int)
    registry.items;
  Mutex.unlock registry.mutex

let histogram_json h =
  let n = Atomic.get h.total in
  let sum = Atomic.get h.sum in
  let buckets =
    List.init
      (Array.length h.counts)
      (fun i ->
        let le =
          if i < Array.length h.bounds then Json.Int h.bounds.(i)
          else Json.Str "+Inf"
        in
        Json.Obj [ ("le", le); ("count", Json.Int (Atomic.get h.counts.(i))) ])
  in
  Json.Obj
    [
      ("buckets", Json.List buckets);
      ("count", Json.Int n);
      ("sum", Json.Int sum);
      ("min", Json.Int (if n = 0 then 0 else Atomic.get h.mn));
      ("max", Json.Int (if n = 0 then 0 else Atomic.get h.mx));
      ( "mean",
        Json.Float (if n = 0 then 0.0 else float_of_int sum /. float_of_int n) );
      ( "std",
        (* single-sample and empty histograms export 0., never nan — the
           Stats guard is the one shared implementation of that rule *)
        Json.Float
          (Stats.std_of_moments ~n ~sum:(float_of_int sum)
             ~sumsq:(float_of_int (Atomic.get h.sumsq))) );
    ]

let to_json ?(registry = default) () =
  Mutex.lock registry.mutex;
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry.items [] in
  Mutex.unlock registry.mutex;
  let items = List.sort (fun (a, _) (b, _) -> String.compare a b) items in
  let pick f = List.filter_map f items in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (pick (function
            | k, C c -> Some (k, Json.Int (Atomic.get c))
            | _ -> None)) );
      ( "gauges",
        Json.Obj
          (pick (function k, G g -> Some (k, Json.Float g.g) | _ -> None)) );
      ( "histograms",
        Json.Obj
          (pick (function k, H h -> Some (k, histogram_json h) | _ -> None)) );
    ]

let export ?registry () = Json.to_string (to_json ?registry ())
let export_to_file ?registry path = Json.to_file path (to_json ?registry ())

(* Metrics half of the util-layer probe seam (see {!Trace} for the trace
   half): Pool counts chunks and queue depths through these refs. *)
let () =
  Mlpart_util.Probe.metrics_on := enabled;
  Mlpart_util.Probe.count := (fun name v -> count_named name v);
  Mlpart_util.Probe.observe := (fun name v -> observe_named name v)
