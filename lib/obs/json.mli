(** Minimal JSON core for the observability exports.

    The trace and metrics subsystems render through this one value type so
    their files are well-formed by construction, and tests parse the
    exports back to validate them against a schema — without pulling a
    JSON dependency into the library.  Only what the exports need is
    implemented: UTF-8 passthrough strings with standard escapes, exact
    integers, finite floats (non-finite values render as [null]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Render as JSON text.  [indent] (default true) pretty-prints with
    two-space indentation; keys keep the order of the [Obj] list, so a
    sorted input renders deterministically. *)

val of_string : string -> (t, string) result
(** Strict recursive-descent parser for the subset above.  Numbers with a
    fraction or exponent parse as [Float], the rest as [Int].  Rejects
    trailing garbage.  Errors carry a character offset. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing keys or non-objects. *)

(** Typed field accessors: [None] on missing fields {e and} on type
    mismatches, so decoders can layer defaults with [Option.value].
    {!float_member} additionally accepts an [Int] (widening); nothing else
    coerces.  Used by the serve protocol decoder. *)

val str_member : string -> t -> string option
val int_member : string -> t -> int option
val float_member : string -> t -> float option
val bool_member : string -> t -> bool option
val list_member : string -> t -> t list option

val to_file : string -> t -> unit
(** Write [to_string] plus a trailing newline. *)
