(** Metrics: a registry of named counters, gauges and fixed-bucket
    histograms with a stable JSON export.

    Instruments are created once (typically as module-level bindings at
    the instrumentation site) and updated through their handle; creation
    is idempotent — the same name returns the same instrument.  Updates
    are atomic, so recordings from {!Mlpart_util.Pool} worker domains
    aggregate to the same totals as a sequential run: counter and
    histogram contents are deterministic for any [--jobs] value as long
    as the recorded values themselves are (gauges are last-writer-wins).

    Like {!Trace}, recording is gated on one atomic flag ({!enable});
    disabled updates cost a flag read and a branch, nothing else.

    The export (see {!to_json}) sorts instruments by name:

{v
{ "counters":   {"fm.moves": 814, ...},
  "gauges":     {"pool.size": 4.0, ...},
  "histograms": {"fm.move_gain": {"buckets": [{"le": -1, "count": 2}, ...,
                                              {"le": "+Inf", "count": 0}],
                                  "count": 57, "sum": 123, "min": -3,
                                  "max": 9, "mean": 2.16, "std": 1.41}}}
v} *)

type t
(** A registry.  Most callers use {!default}. *)

val create : unit -> t
val default : t

val enable : unit -> unit
(** Turn recording on (all registries share the one flag). *)

val disable : unit -> unit
val enabled : unit -> bool

(** {1 Instruments} *)

type counter

val counter : ?registry:t -> string -> counter
(** Find or create.  Raises [Invalid_argument] if the name is already an
    instrument of another kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type gauge

val gauge : ?registry:t -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

type histogram

val histogram : ?registry:t -> ?buckets:int array -> string -> histogram
(** [buckets] are strictly increasing inclusive upper bounds; an implicit
    [+Inf] bucket catches the rest.  The default is powers of two from 1
    to 4096.  A second call with a different [buckets] returns the
    existing instrument unchanged. *)

val observe : histogram -> int -> unit
(** Count [v] into its bucket and fold it into sum/min/max.  Values are
    integers by design: integer moments aggregate associatively, which is
    what keeps multi-domain recording deterministic. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> int

(** {1 Dynamic (name-keyed) recording} *)

val count_named : ?registry:t -> string -> int -> unit
(** Find-or-create the counter and add; for call sites that cannot hold a
    handle (e.g. the {!Mlpart_util.Probe} seam). *)

val observe_named : ?registry:t -> string -> int -> unit
(** Find-or-create with default buckets and observe. *)

val record_diag : ?registry:t -> Mlpart_util.Diag.t -> unit
(** Count a diagnostic as [diag.<severity>.<code-name>] — lenient-parse
    repairs and runtime warnings become visible in the metrics export.
    Unlike instrument updates this is not gated on {!enabled}, so
    diagnostics emitted before the CLI parses [--metrics] still count. *)

(** {1 Export} *)

val reset : ?registry:t -> unit -> unit
(** Zero every instrument in place; handles stay valid. *)

val to_json : ?registry:t -> unit -> Json.t
val export : ?registry:t -> unit -> string
val export_to_file : ?registry:t -> string -> unit
