module H = Mlpart_hypergraph.Hypergraph
module Rng = Mlpart_util.Rng

type config = { engine : Fm.config; descents : int; kick_fraction : float }

let default = { engine = Fm.default; descents = 100; kick_fraction = 0.05 }
let default_clip = { default with engine = Fm.clip }

type result = { side : int array; cut : int; descents_run : int }

(* Kick: flip a random connected blob.  Growing the blob along nets (rather
   than flipping isolated random modules) makes the jump large in solution
   space but cheap in cut, which is what lets the next descent land in a
   different basin. *)
let kick rng h side fraction =
  let n = H.num_modules h in
  let target = Stdlib.max 2 (int_of_float (fraction *. float_of_int n)) in
  let kicked = Array.copy side in
  let in_blob = Array.make n false in
  let queue = Queue.create () in
  let seed = Rng.int rng n in
  Queue.add seed queue;
  in_blob.(seed) <- true;
  let count = ref 0 in
  while !count < target && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr count;
    kicked.(v) <- 1 - kicked.(v);
    H.iter_nets_of h v (fun e ->
        if H.net_size h e <= 16 then
          H.iter_pins_of h e (fun u ->
              if (not in_blob.(u)) && Rng.float rng 1.0 < 0.5 then begin
                in_blob.(u) <- true;
                Queue.add u queue
              end))
  done;
  kicked

let run ?(config = default) ?init rng h =
  let arena = Fm.create_arena ~h () in
  let descend init = Fm.run ~config:config.engine ?init ~arena rng h in
  let first = descend init in
  let best_side = ref first.Fm.side in
  let best_cut = ref first.Fm.cut in
  for _ = 2 to config.descents do
    let kicked = kick rng h !best_side config.kick_fraction in
    let r = descend (Some kicked) in
    if r.Fm.cut < !best_cut then begin
      best_cut := r.Fm.cut;
      best_side := r.Fm.side
    end
  done;
  { side = !best_side; cut = !best_cut; descents_run = config.descents }
