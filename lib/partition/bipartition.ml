module H = Mlpart_hypergraph.Hypergraph
module Rng = Mlpart_util.Rng

type t = {
  h : H.t;
  side : int array;
  pins_on : int array; (* (2 * e) + s -> pin count of net e on side s *)
  areas : int array; (* per side *)
  mutable cut : int; (* weighted, all nets *)
}

type bounds = { lo : int; hi : int }

let clamp_bounds total lo hi =
  { lo = Stdlib.max 0 lo; hi = Stdlib.min total hi }

let bounds ?(tolerance = 0.1) h =
  let total = H.total_area h in
  let half = total / 2 in
  let slack =
    Stdlib.max (H.max_area h)
      (int_of_float (tolerance *. float_of_int total /. 2.0))
  in
  clamp_bounds total (half - slack) (half + slack + (total mod 2))

let wide_bounds ?(tolerance = 0.1) h =
  let total = H.total_area h in
  let half = total / 2 in
  let slack =
    Stdlib.max (H.max_area h) (int_of_float (tolerance *. float_of_int total))
  in
  clamp_bounds total (half - slack) (half + slack + (total mod 2))

let compute_state h side =
  let m = H.num_nets h in
  let noff = H.net_offsets_store h in
  let pins = H.net_pins_store h in
  let wts = H.net_weights_store h in
  let pins_on = Array.make (2 * m) 0 in
  let cut = ref 0 in
  for e = 0 to m - 1 do
    for i = noff.(e) to noff.(e + 1) - 1 do
      let s = side.(pins.(i)) in
      pins_on.((2 * e) + s) <- pins_on.((2 * e) + s) + 1
    done;
    if pins_on.(2 * e) > 0 && pins_on.((2 * e) + 1) > 0 then
      cut := !cut + wts.(e)
  done;
  (pins_on, !cut)

let create h side =
  let n = H.num_modules h in
  if Array.length side <> n then
    invalid_arg "Bipartition.create: side array length mismatch";
  Array.iteri
    (fun v s ->
      if s <> 0 && s <> 1 then
        invalid_arg (Printf.sprintf "Bipartition.create: side of %d is %d" v s))
    side;
  let side = Array.copy side in
  let areas = [| 0; 0 |] in
  for v = 0 to n - 1 do
    areas.(side.(v)) <- areas.(side.(v)) + H.area h v
  done;
  let pins_on, cut = compute_state h side in
  { h; side; pins_on; areas; cut }

let random rng h =
  let n = H.num_modules h in
  let perm = Rng.permutation rng n in
  let total = H.total_area h in
  let side = Array.make n 1 in
  let acc = ref 0 in
  (try
     Array.iter
       (fun v ->
         if 2 * !acc >= total then raise Exit;
         side.(v) <- 0;
         acc := !acc + H.area h v)
       perm
   with Exit -> ());
  create h side

let copy t =
  {
    h = t.h;
    side = Array.copy t.side;
    pins_on = Array.copy t.pins_on;
    areas = Array.copy t.areas;
    cut = t.cut;
  }

let hypergraph t = t.h
let side t v = t.side.(v)
let side_array t = Array.copy t.side
let side_store t = t.side
let area_of_side t s = t.areas.(s)
let cut t = t.cut
let pins_on t e s = t.pins_on.((2 * e) + s)
let pins_on_store t = t.pins_on
let areas_store t = t.areas
let is_cut t e = t.pins_on.(2 * e) > 0 && t.pins_on.((2 * e) + 1) > 0

let is_balanced t b = t.areas.(0) >= b.lo && t.areas.(0) <= b.hi

let move_is_feasible t b v =
  let a = H.area t.h v in
  let area0 = if t.side.(v) = 0 then t.areas.(0) - a else t.areas.(0) + a in
  area0 >= b.lo && area0 <= b.hi

let gain ?(net_threshold = max_int) t v =
  let from = t.side.(v) in
  let dest = 1 - from in
  H.fold_nets_of t.h v ~init:0 ~f:(fun acc e ->
      if H.net_size t.h e > net_threshold then acc
      else
        let w = H.net_weight t.h e in
        let acc = if pins_on t e from = 1 then acc + w else acc in
        if pins_on t e dest = 0 then acc - w else acc)

(* Flip a module's side and the side areas only, leaving pin counts and the
   cut to the caller: the FM engine fuses the per-net count updates into its
   own gain-update sweeps and recomputes the cut once per run, so the
   engine's [t.cut] is stale between [stage_move] and {!recompute_cut}. *)
let stage_move t v =
  let from = t.side.(v) in
  let dest = 1 - from in
  let a = H.area t.h v in
  t.side.(v) <- dest;
  t.areas.(from) <- t.areas.(from) - a;
  t.areas.(dest) <- t.areas.(dest) + a

let move t v =
  let from = t.side.(v) in
  let dest = 1 - from in
  let a = H.area t.h v in
  t.side.(v) <- dest;
  t.areas.(from) <- t.areas.(from) - a;
  t.areas.(dest) <- t.areas.(dest) + a;
  (* Direct CSR walk: with [v] leaving [from], the from-count was [pf + 1]
     (never 0), so the net was cut before iff the dest side was occupied
     ([pd >= 2] after increment) and is cut after iff [pf > 0]. *)
  let moff = H.mod_offsets_store t.h and mnets = H.mod_nets_store t.h in
  let wts = H.net_weights_store t.h in
  let pins_on = t.pins_on in
  let cut = ref t.cut in
  for i = moff.(v) to moff.(v + 1) - 1 do
    let e = mnets.(i) in
    let fi = (2 * e) + from and di = (2 * e) + dest in
    let pf = pins_on.(fi) - 1 and pd = pins_on.(di) + 1 in
    pins_on.(fi) <- pf;
    pins_on.(di) <- pd;
    if pf = 0 then begin
      if pd >= 2 then cut := !cut - wts.(e)
    end
    else if pd = 1 then cut := !cut + wts.(e)
  done;
  t.cut <- !cut

let rebalance ?fixed rng t b =
  let n = H.num_modules t.h in
  let movable v = match fixed with Some f -> f.(v) < 0 | None -> true in
  let moves = ref 0 in
  let guard = ref (8 * (n + 1)) in
  while not (is_balanced t b) do
    decr guard;
    if !guard = 0 then failwith "Bipartition.rebalance: bounds unsatisfiable";
    let heavy = if t.areas.(0) > b.hi then 0 else 1 in
    (* Draw random modules until one on the heavy side turns up; expected
       constant attempts since the heavy side holds most of the area. *)
    let rec pick tries =
      if tries = 0 then raise Exit
      else
        let v = Rng.int rng n in
        if t.side.(v) = heavy && movable v then v else pick (tries - 1)
    in
    match pick (4 * n) with
    | v ->
        move t v;
        incr moves
    | exception Exit -> failwith "Bipartition.rebalance: no module on heavy side"
  done;
  !moves

let recompute_cut t =
  let _, cut = compute_state t.h t.side in
  cut
