module H = Mlpart_hypergraph.Hypergraph
module Pool = Mlpart_util.Pool
module Trace = Mlpart_obs.Trace
module Metrics = Mlpart_obs.Metrics

let m_rounds = Metrics.counter "rounds.rounds"
let m_moves = Metrics.counter "rounds.moves"

let h_round_moves =
  Metrics.histogram "rounds.moves_per_round"
    ~buckets:[| 1; 4; 16; 64; 256; 1024; 4096 |]

type result = { moved : int; rounds : int; gain : int }

let run ?pool ?fixed ?(net_threshold = max_int) ?(max_rounds = max_int)
    ~bounds h side =
  let n = H.num_modules h in
  let m = H.num_nets h in
  if Array.length side <> n then invalid_arg "Rounds.run: side length mismatch";
  let is_fixed =
    match fixed with
    | None -> fun _ -> false
    | Some f -> fun v -> f.(v) >= 0
  in
  (* Frozen-snapshot state, rebuilt incrementally as rounds commit. *)
  let pins_on = Array.make (2 * m) 0 in
  let recount_range ~slot:_ ~lo ~hi =
    for e = lo to hi - 1 do
      let c1 = ref 0 in
      H.iter_pins_of h e (fun v -> if side.(v) = 1 then incr c1);
      let sz = H.net_size h e in
      pins_on.(2 * e) <- sz - !c1;
      pins_on.((2 * e) + 1) <- !c1
    done
  in
  (match pool with
  | Some p when Pool.size p > 1 -> Pool.parallel_chunks p ~n:m ~body:recount_range
  | _ -> recount_range ~slot:0 ~lo:0 ~hi:m);
  let a0 = ref 0 in
  for v = 0 to n - 1 do
    if side.(v) = 0 then a0 := !a0 + H.area h v
  done;
  (* A move is admissible if the new side-0 area is in bounds, or strictly
     closer to the bounds interval than before (lets rounds help repair a
     projected solution whose slack shrank at this level). *)
  let violation a =
    if a < bounds.Bipartition.lo then bounds.Bipartition.lo - a
    else if a > bounds.Bipartition.hi then a - bounds.Bipartition.hi
    else 0
  in
  let gain = Array.make n 0 in
  (* FM gain of [v] from the frozen snapshot, module-centric so ranges of
     modules are scored in parallel without write contention. *)
  let gain_range ~slot:_ ~lo ~hi =
    for v = lo to hi - 1 do
      if is_fixed v then gain.(v) <- min_int
      else begin
        let s = side.(v) in
        let g = ref 0 in
        H.iter_nets_of h v (fun e ->
            if H.net_size h e <= net_threshold then begin
              let w = H.net_weight h e in
              let from_count = pins_on.((2 * e) + s) in
              let to_count = pins_on.((2 * e) + (1 - s)) in
              if from_count = 1 then g := !g + w;
              if to_count = 0 then g := !g - w
            end);
        gain.(v) <- !g
      end
    done
  in
  (* Net conflict marking: accepted moves within a round share no net, so
     every committed gain is exact against the snapshot and the cut drops
     by exactly the sum of accepted gains. *)
  let net_epoch = Array.make m 0 in
  let epoch = ref 0 in
  let cands = Array.make n 0 in
  let moved = ref 0 in
  let total_gain = ref 0 in
  let rounds = ref 0 in
  let continue = ref (n > 0 && m > 0 && max_rounds > 0) in
  while !continue do
    incr rounds;
    let t0 = Trace.start () in
    (match pool with
    | Some p when Pool.size p > 1 -> Pool.parallel_chunks p ~n ~body:gain_range
    | _ -> gain_range ~slot:0 ~lo:0 ~hi:n);
    (* Candidates in ascending module order, then sorted by (gain desc,
       index asc): a total order independent of chunk scheduling. *)
    let n_cand = ref 0 in
    for v = 0 to n - 1 do
      if gain.(v) > 0 then begin
        cands.(!n_cand) <- v;
        incr n_cand
      end
    done;
    let cand = Array.sub cands 0 !n_cand in
    Array.sort
      (fun a b -> if gain.(a) <> gain.(b) then compare gain.(b) gain.(a) else compare a b)
      cand;
    incr epoch;
    let ep = !epoch in
    let committed = ref 0 in
    Array.iter
      (fun v ->
        let clash = ref false in
        H.iter_nets_of h v (fun e -> if net_epoch.(e) = ep then clash := true);
        if not !clash then begin
          let av = H.area h v in
          let a0' = if side.(v) = 0 then !a0 - av else !a0 + av in
          if violation a0' = 0 || violation a0' < violation !a0 then begin
            let s = side.(v) in
            side.(v) <- 1 - s;
            a0 := a0';
            H.iter_nets_of h v (fun e ->
                net_epoch.(e) <- ep;
                pins_on.((2 * e) + s) <- pins_on.((2 * e) + s) - 1;
                pins_on.((2 * e) + (1 - s)) <- pins_on.((2 * e) + (1 - s)) + 1);
            total_gain := !total_gain + gain.(v);
            incr committed
          end
        end)
      cand;
    moved := !moved + !committed;
    Metrics.add m_rounds 1;
    Metrics.observe h_round_moves !committed;
    if Trace.enabled () then
      Trace.complete ~cat:"refine"
        ~args:
          [
            ("round", Trace.Int !rounds);
            ("candidates", Trace.Int !n_cand);
            ("committed", Trace.Int !committed);
          ]
        "refine/round" t0;
    continue := !committed > 0 && !rounds < max_rounds
  done;
  Metrics.add m_moves !moved;
  { moved = !moved; rounds = !rounds; gain = !total_gain }
