(** Sanchis-style multi-way FM (without lookahead), the paper's
    quadrisection refinement engine (§III.C).

    A pass maintains one gain bucket per ordered part pair (p, q); each free
    module has k-1 candidate moves.  The paper reports quadrisection results
    with the sum-of-cluster-degrees gain; the plain net-cut gain is also
    provided.  Modules can be pre-assigned (I/O pads) and are then never
    moved. *)

type objective =
  | Net_cut
  | Sum_degrees
  | Custom of (weight:int -> spans_before:int -> spans_after:int -> int)
      (** the paper's "generic gain computations" [24]: the function
          returns the gain a net contributes to a move that changes its
          spanned-part count as given (positive = improvement).  Must
          return 0 when the spans do not change, and stay within
          [±weight * k] so gains fit the bucket range. *)

type config = {
  objective : objective;
  policy : Gain_bucket.policy;
  net_threshold : int;
  tolerance : float;
  max_passes : int;
}

val default : config
(** Sum-of-degrees, LIFO, threshold 200, tolerance 0.1. *)

type result = {
  side : int array;
  cut : int;  (** weighted count of nets spanning >= 2 parts *)
  sum_degrees : int;
  passes : int;
  moves : int;
}

type arena
(** Reusable engine scratch (per-run arrays and the k*k direction buckets),
    mirroring {!Fm.arena}: grown on demand, reconfigured per run, threaded
    through multilevel k-way refinement so state is allocated once at the
    finest level's size.  Runs sharing an arena are bit-identical to fresh
    runs.  Not safe to share between domains. *)

val create_arena : unit -> arena

val run :
  ?config:config ->
  ?init:int array ->
  ?fixed:int array ->
  ?arena:arena ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  k:int ->
  result
(** [run rng h ~k] partitions into [k] parts.  [init] refines a given
    assignment (rebalanced first when needed); [fixed.(v) >= 0] pins module
    [v] to a part.  [arena] supplies reusable scratch; without it the run
    creates its own. *)

val cut_of : Mlpart_hypergraph.Hypergraph.t -> k:int -> int array -> int
(** Weighted multi-way cut of an assignment. *)
