(** Round-based parallel move engine: a coarse refinement pre-pass whose
    output is bit-identical for any pool size.

    Each synchronous round scores the FM gain of every free module against
    a frozen snapshot of the partition (module-centric, so disjoint ranges
    are scored in parallel with no write contention), then commits a
    deterministically ordered feasible subset: candidates with positive
    gain sorted by (gain desc, module index asc), skipping any move that
    shares a net with an already-committed move of the same round
    (net-conflict marking) or violates the balance contract.  Because
    accepted moves are net-disjoint, each committed gain is exact and the
    cut decreases by exactly the sum of accepted gains — the engine is
    monotone.  Rounds repeat until no positive-gain move commits.

    This intentionally trades hill-climbing power for parallel scoring: it
    makes only positive-gain moves, so it is a pre-pass that hands a
    strictly-no-worse solution to the exact sequential FM polish, not a
    replacement for it (the synchronous-round design follows deterministic
    parallel partitioners such as BiPart/Mt-KaHyPar-SDet). *)

type result = {
  moved : int;  (** total committed moves *)
  rounds : int;  (** rounds executed, including the final empty one *)
  gain : int;  (** total cut improvement *)
}

val run :
  ?pool:Mlpart_util.Pool.t ->
  ?fixed:int array ->
  ?net_threshold:int ->
  ?max_rounds:int ->
  bounds:Bipartition.bounds ->
  Mlpart_hypergraph.Hypergraph.t ->
  int array ->
  result
(** [run ~bounds h side] refines the 0/1 assignment [side] in place.
    [fixed.(v) >= 0] pins module [v] (it never moves).  Nets larger than
    [net_threshold] are ignored by gains, as in {!Fm}.  A move must land
    the side-0 area inside [bounds], or strictly reduce its distance to
    them (so rounds can help repair a projected solution whose balance
    slack shrank).  [max_rounds] caps the number of rounds.  [pool]
    parallelizes the scoring sweeps; the committed move sequence is a pure
    function of the input for every pool size. *)
