(** Mutable 2-way partition state shared by all bipartitioning engines.

    Tracks, incrementally under single-module moves: the side of every
    module, per-net pin counts on each side, side areas, and the weighted
    cut.  The cut always accounts for {e every} net — engines that ignore
    large nets during refinement still observe the true cut here, as the
    paper requires ("these nets are reinserted when measuring solution
    quality"). *)

type t

(** {1 Balance} *)

type bounds = { lo : int; hi : int }
(** Admissible range for the area of side 0 (side 1 is implied by the fixed
    total). *)

val bounds : ?tolerance:float -> Mlpart_hypergraph.Hypergraph.t -> bounds
(** The paper's balance rule with tolerance [r] (default 0.1): side areas
    must lie within [A(V)/2 ± slack] with
    [slack = max (A(v_max), r * A(V) / 2)], clamped to [[0, A(V)]].
    The [A(v_max)] term keeps coarse netlists with large clusters
    feasible (paper §III.B). *)

val wide_bounds : ?tolerance:float -> Mlpart_hypergraph.Hypergraph.t -> bounds
(** Variant with the literal §III.B slack [max (A(v_max), r * A(V))];
    used by the balance-slack ablation. *)

(** {1 Construction} *)

val create : Mlpart_hypergraph.Hypergraph.t -> int array -> t
(** [create h side] adopts (copies) the given 0/1 side assignment.
    Raises [Invalid_argument] on a malformed assignment. *)

val random : Mlpart_util.Rng.t -> Mlpart_hypergraph.Hypergraph.t -> t
(** Random near-bisection: a random permutation is split by area midpoint. *)

val copy : t -> t

(** {1 Queries} *)

val hypergraph : t -> Mlpart_hypergraph.Hypergraph.t
val side : t -> int -> int
val side_array : t -> int array
(** Fresh copy of the side assignment. *)

val area_of_side : t -> int -> int
val cut : t -> int
(** Current weighted cut (every net counted). *)

val pins_on : t -> int -> int -> int
(** [pins_on t e s] is the number of pins of net [e] on side [s]. *)

val is_cut : t -> int -> bool
(** Does net [e] currently have pins on both sides?  Engines use this to
    maintain the boundary frontier (the modules incident to cut nets). *)

(** {1 Hot-loop views}

    Direct read-only views of the internal arrays, for engine inner loops
    that touch every pin per pass and cannot afford a call per access.
    Callers must not write through them; they alias live state and are
    invalidated by nothing — contents change under {!move}. *)

val side_store : t -> int array
(** [.(v)] is the side of module [v]. *)

val pins_on_store : t -> int array
(** [.(2 * e + s)] is the pin count of net [e] on side [s]. *)

val areas_store : t -> int array
(** [.(s)] is the current area of side [s]; lets engines test balance
    feasibility without a call per candidate. *)

val is_balanced : t -> bounds -> bool

val move_is_feasible : t -> bounds -> int -> bool
(** Would moving module [v] keep side areas within [bounds]? *)

val gain : ?net_threshold:int -> t -> int -> int
(** FM gain of moving module [v] to the other side: the decrease in cut,
    counting only nets of size [<= net_threshold] (default [max_int]). *)

(** {1 Mutation} *)

val move : t -> int -> unit
(** Move module [v] to the other side, updating pin counts, areas and cut in
    [O(degree v * avg net size)] for cut-state transitions (amortised
    O(degree)). Self-inverse. *)

val stage_move : t -> int -> unit
(** Engine-internal variant of {!move}: flip [v]'s side and the side areas
    {e only}.  The caller owns the per-net pin-count updates (through
    {!pins_on_store}, fused into its own gain-update sweeps) and must treat
    {!cut} as stale until it recomputes it (see {!recompute_cut}).  Balance
    queries ({!is_balanced}, {!move_is_feasible}) stay exact throughout. *)

val rebalance : ?fixed:int array -> Mlpart_util.Rng.t -> t -> bounds -> int
(** Randomly move modules from the heavier side until [is_balanced]; returns
    the number of moves.  Used after projecting a coarse solution whose
    balance slack shrank (paper §III.B).  [fixed.(v) >= 0] exempts module
    [v].  Raises [Failure] if the bounds are unsatisfiable. *)

(** {1 Verification} *)

val recompute_cut : t -> int
(** Cut recomputed from scratch in one CSR sweep; equals [cut t] unless
    moves were staged with {!stage_move}.  Used by tests, assertions, and
    engines that fuse their own count maintenance. *)
