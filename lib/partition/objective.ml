module H = Mlpart_hypergraph.Hypergraph

type report = {
  parts : int;
  net_cut : int;
  sum_degrees : int;
  absorbed : int;
  part_areas : int array;
  largest_part : int;
  smallest_part : int;
}

let evaluate h side =
  let n = H.num_modules h in
  if Array.length side <> n then
    invalid_arg "Objective.evaluate: assignment length mismatch";
  Array.iteri
    (fun v p ->
      if p < 0 then
        invalid_arg (Printf.sprintf "Objective.evaluate: part of %d is %d" v p))
    side;
  let parts =
    Array.fold_left (fun acc p -> if p > acc then p else acc) 0 side + 1
  in
  let kp = Kpartition.create h ~k:(Stdlib.max 2 parts) side in
  let part_areas = Array.init parts (Kpartition.area_of_part kp) in
  let absorbed =
    let total = ref 0 in
    for e = 0 to H.num_nets h - 1 do
      if Kpartition.spans kp e = 1 then total := !total + H.net_weight h e
    done;
    !total
  in
  {
    parts;
    net_cut = Kpartition.cut kp;
    sum_degrees = Kpartition.sum_degrees kp;
    absorbed;
    part_areas;
    largest_part =
      Array.fold_left (fun acc a -> if a > acc then a else acc) 0 part_areas;
    smallest_part =
      Array.fold_left
        (fun acc a -> if a < acc then a else acc)
        max_int part_areas;
  }

let pp ppf r =
  Format.fprintf ppf "parts:        %d@." r.parts;
  Format.fprintf ppf "net cut:      %d@." r.net_cut;
  Format.fprintf ppf "sum degrees:  %d@." r.sum_degrees;
  Format.fprintf ppf "absorbed:     %d@." r.absorbed;
  Format.fprintf ppf "part areas:   %s@."
    (String.concat " " (Array.to_list (Array.map string_of_int r.part_areas)))

module Diag = Mlpart_util.Diag

let read_assignment path =
  match
    In_channel.with_open_text path (fun ic ->
        let rec go acc line =
          match In_channel.input_line ic with
          | None -> List.rev acc
          | Some raw ->
              let raw = String.trim raw in
              if raw = "" then go acc (line + 1)
              else begin
                match int_of_string_opt raw with
                | Some v -> go (v :: acc) (line + 1)
                | None ->
                    Diag.fail ~line ~source:path Diag.Bad_part
                      "expected integer part id, got %S" raw
              end
        in
        Array.of_list (go [] 1))
  with
  | side -> side
  | exception Sys_error msg ->
      raise (Diag.Mlpart_error [ Diag.of_sys_error ~source:path msg ])

let write_assignment path side =
  Out_channel.with_open_text path (fun oc ->
      Array.iter (fun p -> Printf.fprintf oc "%d\n" p) side)
