(** FM gain-bucket structure with pluggable tie-breaking policy.

    An array of buckets indexed by gain, each holding an intrusive doubly
    linked list of module ids.  All operations except [Random] selection are
    O(1) plus max-index maintenance.  The tie-breaking policy decides which
    module of the highest non-empty bucket is returned:

    - [Lifo]: most recently inserted (the organisation the paper adopts);
    - [Fifo]: least recently inserted;
    - [Random]: uniform over the bucket (costs a scan of that bucket).

    This is the data structure whose LIFO/FIFO/Random comparison the paper
    reproduces in Table II.

    Clearing is epoch-stamped: {!clear} bumps a generation counter and every
    accessor lazily treats stale buckets as empty, so the per-pass reset of
    an FM run is O(1) instead of O(capacity + gain-range).  Per-bucket
    length counters make [Random] selection a single list walk. *)

type policy = Lifo | Fifo | Random

val policy_of_string : string -> policy option
val policy_to_string : policy -> string

type t

val create :
  ?rng:Mlpart_util.Rng.t -> policy:policy -> min_gain:int -> max_gain:int ->
  capacity:int -> unit -> t
(** [create ~policy ~min_gain ~max_gain ~capacity ()] supports module ids
    [0 .. capacity-1] and gains in [[min_gain, max_gain]].  [rng] is required
    only for the [Random] policy (defaults to a fixed-seed generator). *)

val reinit :
  ?rng:Mlpart_util.Rng.t -> policy:policy -> min_gain:int -> max_gain:int ->
  capacity:int -> t -> unit
(** Reconfigure the structure in place for a new run: adopts the given
    policy, gain range and (for [Random]) generator, grows the backing
    arrays if the new capacity or range exceeds what was ever allocated,
    and clears.  Reusing one structure across the runs of a multilevel
    refinement sweep avoids re-allocating the bucket arena at every level;
    a reinitialised structure behaves exactly like a fresh {!create}. *)

val clear : t -> unit
(** Empty the structure (O(1): epoch bump; stale state is invalidated lazily
    on access). *)

val size : t -> int
(** Number of modules currently stored. *)

val is_empty : t -> bool

val contains : t -> int -> bool

val gain_of : t -> int -> int
(** Current gain key of a stored module.  Undefined for absent modules. *)

val insert : t -> int -> int -> unit
(** [insert t v g] adds module [v] with gain [g].  [v] must not be present;
    [g] must be within range (checked, raises [Invalid_argument]). *)

val remove : t -> int -> unit
(** Remove a stored module.  No-op if absent. *)

val adjust : t -> int -> int -> unit
(** [adjust t v delta] shifts a stored module's gain by [delta], reinserting
    it at the position the policy dictates for fresh insertions (as in the
    original FM implementation). *)

val select_max : t -> (int * int) option
(** Identity and gain of the module the policy picks from the highest
    non-empty bucket, without removing it. *)

val select_max_satisfying : t -> (int -> bool) -> (int * int) option
(** Like {!select_max} but returns the best stored module satisfying the
    predicate: buckets are scanned downwards and, within a bucket, in policy
    order.  Used for balance-feasible selection; cost is proportional to the
    number of rejected candidates. *)

val select_satisfying : t -> (int -> bool) -> int
(** Allocation-free {!select_max_satisfying}: the chosen module id, or -1
    when no stored module satisfies the predicate.  The winner's key is
    available via {!gain_of}. *)

val pop_max : t -> (int * int) option
(** {!select_max} followed by removal. *)

val max_key : t -> int option
(** Highest gain currently stored, if any. *)

val iter_key : t -> int -> (int -> unit) -> unit
(** [iter_key t g f] applies [f] to every stored module with gain [g], in
    policy selection order (front of the bucket first).  Used by lookahead
    tie-breaking to enumerate equal-key candidates. *)
