(** Engine-agnostic FM move loop: the best-prefix pass schedule shared by
    the bipartitioning engine ([Fm]) and the direct k-way n-level engine
    ([Nlevel]).

    A pass repeatedly asks the host engine for its best feasible candidate,
    commits it, and tracks the cumulative gain; the longest prefix with the
    highest cumulative gain is kept and everything after it undone.  The
    host engine owns all partition/gain/bucket state and exposes it through
    the four {!ops} callbacks; this module owns only the move stack and the
    prefix arithmetic, so its semantics (early exit, CDIP-style bounded
    backtracking, final rollback) are identical across engines. *)

type ops = {
  select : unit -> int;
      (** Best feasible candidate, or a negative value when none remains.
          Called once per move attempt. *)
  commit : int -> int;
      (** Lock the candidate, apply its move, and return the gain credited
          to the cumulative total. *)
  undo : int -> unit;
      (** Revert one committed move (partition state only; selection
          structures are rebuilt by the host, not restored). *)
  rebuild : first_bad:int -> kept:int -> unit;
      (** After a backtrack undid the losing streak: [first_bad] is the
          first module of the undone streak (hosts typically freeze it for
          the rest of the pass) and [kept] the number of moves retained at
          the front of the order stack.  The host re-locks the kept prefix
          and rebuilds its selection structures. *)
}

type pass = {
  gain : int;  (** cumulative gain of the kept prefix *)
  moves : int;  (** moves committed, including later-undone ones *)
  rolled_back : int;  (** moves undone by the final rollback *)
}

val run_pass :
  order:int array -> ?early_exit:int -> ?backtrack:int * int -> ops -> pass
(** One pass.  [order] is the host-provided move stack (sized to the module
    count; entry [i] is the [i]-th committed move, so hosts can re-lock the
    kept prefix in {!ops.rebuild}).  [early_exit] stops the pass after that
    many consecutive non-improving moves; [backtrack = (window, limit)]
    instead undoes the streak once it reaches [window] moves, up to [limit]
    times per pass, calling {!ops.rebuild} after each. *)

val drive : max_passes:int -> (pass:int -> pass) -> int * int
(** Run passes (1-numbered) until one yields no gain or [max_passes] is
    reached; returns [(passes, total_moves)]. *)
