module H = Mlpart_hypergraph.Hypergraph
module Rng = Mlpart_util.Rng

type objective =
  | Net_cut
  | Sum_degrees
  | Custom of (weight:int -> spans_before:int -> spans_after:int -> int)

type config = {
  objective : objective;
  policy : Gain_bucket.policy;
  net_threshold : int;
  tolerance : float;
  max_passes : int;
}

let default =
  {
    objective = Sum_degrees;
    policy = Gain_bucket.Lifo;
    net_threshold = 200;
    tolerance = 0.1;
    max_passes = max_int;
  }

type result = {
  side : int array;
  cut : int;
  sum_degrees : int;
  passes : int;
  moves : int;
}

let cut_of h ~k side = Kpartition.cut (Kpartition.create h ~k side)

(* Reusable engine scratch, mirroring [Fm.arena]: per-run arrays and the
   k*k direction buckets, grown on demand and reconfigured per run.  A
   multilevel k-way driver threads one arena through every level.  Not safe
   to share between domains. *)
type arena = {
  mutable gains : int array;
  mutable locked : bool array;
  mutable order : int array;
  mutable order_from : int array;
  mutable buckets : Gain_bucket.t array;
}

let create_arena () =
  { gains = [||]; locked = [||]; order = [||]; order_from = [||]; buckets = [||] }

let ensure_arena a n k =
  if Array.length a.gains < n * k then a.gains <- Array.make (n * k) 0;
  if Array.length a.locked < n then begin
    a.locked <- Array.make n false;
    a.order <- Array.make n 0;
    a.order_from <- Array.make n 0
  end;
  if Array.length a.buckets < k * k then begin
    let old = a.buckets in
    a.buckets <-
      Array.init (k * k) (fun i ->
          if i < Array.length old then old.(i)
          else
            Gain_bucket.create ~policy:Gain_bucket.Lifo ~min_gain:0 ~max_gain:0
              ~capacity:0 ())
  end

type state = {
  cfg : config;
  h : H.t;
  kp : Kpartition.t;
  kk : int;
  bounds : Kpartition.bounds;
  fixed : int array option;
  gains : int array; (* (v * k) + q *)
  locked : bool array;
  buckets : Gain_bucket.t array; (* (p * k) + q, p <> q *)
  order : int array; (* move stack: module ids *)
  order_from : int array; (* source parts of the stack *)
}

let is_fixed st v = match st.fixed with Some f -> f.(v) >= 0 | None -> false

(* Gain contributed by one net to moving a pin from its part to [q], given
   (possibly historical) pin counts supplied by [pins] and [spans]. *)
let net_gain st ~pins ~spans ~w ~u_side ~q =
  let spans' =
    spans - (if pins u_side = 1 then 1 else 0) + if pins q = 0 then 1 else 0
  in
  match st.cfg.objective with
  | Sum_degrees -> w * (spans - spans')
  | Net_cut ->
      w * ((if spans >= 2 then 1 else 0) - if spans' >= 2 then 1 else 0)
  | Custom f -> f ~weight:w ~spans_before:spans ~spans_after:spans'

let current_gain st v q =
  let p = Kpartition.side st.kp v in
  H.fold_nets_of st.h v ~init:0 ~f:(fun acc e ->
      if H.net_size st.h e > st.cfg.net_threshold then acc
      else
        acc
        + net_gain st
            ~pins:(fun part -> Kpartition.pins_on st.kp e part)
            ~spans:(Kpartition.spans st.kp e)
            ~w:(H.net_weight st.h e) ~u_side:p ~q)

let bucket st p q = st.buckets.((p * st.kk) + q)

let insert_module st v =
  let p = Kpartition.side st.kp v in
  for q = 0 to st.kk - 1 do
    if q <> p then begin
      let g = current_gain st v q in
      st.gains.((v * st.kk) + q) <- g;
      Gain_bucket.insert (bucket st p q) v g
    end
  done

let remove_module st v =
  let p = Kpartition.side st.kp v in
  for q = 0 to st.kk - 1 do
    if q <> p then Gain_bucket.remove (bucket st p q) v
  done

let init_pass st =
  let n = H.num_modules st.h in
  Array.fill st.locked 0 n false;
  Array.iter Gain_bucket.clear st.buckets;
  for v = 0 to n - 1 do
    if not (is_fixed st v) then insert_module st v
  done

(* Move [v] to part [q], updating neighbours' gains from per-net before and
   after snapshots of the two affected parts. *)
let apply_move st v q =
  let p = Kpartition.side st.kp v in
  st.locked.(v) <- true;
  remove_module st v;
  let thr = st.cfg.net_threshold in
  (* Snapshot the counts this move will change, per incident net. *)
  let saved =
    H.fold_nets_of st.h v ~init:[] ~f:(fun acc e ->
        if H.net_size st.h e > thr then acc
        else
          (e, Kpartition.pins_on st.kp e p, Kpartition.pins_on st.kp e q,
           Kpartition.spans st.kp e)
          :: acc)
  in
  Kpartition.move st.kp v q;
  List.iter
    (fun (e, old_p, old_q, old_spans) ->
      let w = H.net_weight st.h e in
      let old_pins part =
        if part = p then old_p
        else if part = q then old_q
        else Kpartition.pins_on st.kp e part
      in
      let new_pins part = Kpartition.pins_on st.kp e part in
      let new_spans = Kpartition.spans st.kp e in
      H.iter_pins_of st.h e (fun u ->
          if (not st.locked.(u)) && not (is_fixed st u) then begin
            let u_side = Kpartition.side st.kp u in
            for q' = 0 to st.kk - 1 do
              if q' <> u_side then begin
                let old_c =
                  net_gain st ~pins:old_pins ~spans:old_spans ~w ~u_side ~q:q'
                in
                let new_c =
                  net_gain st ~pins:new_pins ~spans:new_spans ~w ~u_side ~q:q'
                in
                if old_c <> new_c then begin
                  let idx = (u * st.kk) + q' in
                  st.gains.(idx) <- st.gains.(idx) + new_c - old_c;
                  Gain_bucket.adjust (bucket st u_side q') u (new_c - old_c)
                end
              end
            done
          end))
    saved

let select st =
  let best = ref None in
  for p = 0 to st.kk - 1 do
    for q = 0 to st.kk - 1 do
      if p <> q then
        match
          Gain_bucket.select_max_satisfying (bucket st p q) (fun v ->
              Kpartition.move_is_feasible st.kp st.bounds v q)
        with
        | Some (v, g) -> begin
            match !best with
            | Some (_, _, bg) when bg >= g -> ()
            | Some _ | None -> best := Some (v, q, g)
          end
        | None -> ()
    done
  done;
  !best

let run_pass st =
  init_pass st;
  let moved = ref 0 in
  let cum = ref 0 in
  let best = ref 0 in
  let best_count = ref 0 in
  let continue = ref true in
  while !continue do
    match select st with
    | None -> continue := false
    | Some (v, q, g) ->
        st.order.(!moved) <- v;
        st.order_from.(!moved) <- Kpartition.side st.kp v;
        apply_move st v q;
        incr moved;
        cum := !cum + g;
        if !cum > !best then begin
          best := !cum;
          best_count := !moved
        end
  done;
  for i = !moved - 1 downto !best_count do
    Kpartition.move st.kp st.order.(i) st.order_from.(i)
  done;
  (!best, !moved)

let run ?(config = default) ?init ?fixed ?arena rng h ~k =
  if k < 2 then invalid_arg "Multiway.run: k < 2";
  let bounds = Kpartition.bounds ~tolerance:config.tolerance h ~k in
  let kp =
    match init with
    | Some side -> Kpartition.create h ~k side
    | None -> Kpartition.random ?fixed rng h ~k
  in
  if not (Kpartition.is_balanced kp bounds) then
    ignore (Kpartition.rebalance ?fixed rng kp bounds);
  let n = H.num_modules h in
  let wdeg = Stdlib.max 1 (H.max_weighted_degree h) in
  (* Custom objectives may scale each net's contribution by up to k. *)
  let range =
    match config.objective with
    | Net_cut | Sum_degrees -> wdeg
    | Custom _ -> k * wdeg
  in
  let a = match arena with Some a -> a | None -> create_arena () in
  ensure_arena a n k;
  (* One split per direction bucket in ascending (p * k + q) order, exactly
     as the former [Array.init] evaluated them. *)
  for i = 0 to (k * k) - 1 do
    Gain_bucket.reinit ~rng:(Rng.split rng) ~policy:config.policy
      ~min_gain:(-range) ~max_gain:range ~capacity:n a.buckets.(i)
  done;
  let st =
    {
      cfg = config;
      h;
      kp;
      kk = k;
      bounds;
      fixed;
      gains = a.gains;
      locked = a.locked;
      buckets = a.buckets;
      order = a.order;
      order_from = a.order_from;
    }
  in
  let passes = ref 0 in
  let moves = ref 0 in
  let improving = ref true in
  while !improving && !passes < config.max_passes do
    let pass_gain, pass_moves = run_pass st in
    incr passes;
    moves := !moves + pass_moves;
    if pass_gain <= 0 then improving := false
  done;
  {
    side = Kpartition.side_array st.kp;
    cut = Kpartition.cut st.kp;
    sum_degrees = Kpartition.sum_degrees st.kp;
    passes = !passes;
    moves = !moves;
  }
