module H = Mlpart_hypergraph.Hypergraph
module Rng = Mlpart_util.Rng

type tie_break = Plain | Lookahead of int

type config = {
  policy : Gain_bucket.policy;
  clip : bool;
  tie_break : tie_break;
  net_threshold : int;
  tolerance : float;
  wide_balance : bool;
  max_passes : int;
  early_exit : int option;
  boundary : bool;
  backtrack : (int * int) option;
}

let default =
  {
    policy = Gain_bucket.Lifo;
    clip = false;
    tie_break = Plain;
    net_threshold = 200;
    tolerance = 0.1;
    wide_balance = false;
    max_passes = max_int;
    early_exit = None;
    boundary = false;
    backtrack = None;
  }

let clip = { default with clip = true }

type result = { side : int array; cut : int; passes : int; moves : int }

let cut_of h side = Bipartition.cut (Bipartition.create h side)

(* Per-run engine state.  [gain] holds true gains of free modules; under
   CLIP the bucket key of a module is [gain - gain0] (its offset from the
   pass-initial gain), otherwise the gain itself.  [free_on.(2e+s)] counts
   unlocked pins of net e on side s, used by lookahead gain vectors. *)
type state = {
  cfg : config;
  h : H.t;
  bp : Bipartition.t;
  bounds : Bipartition.bounds;
  fixed : int array option;
  rng : Rng.t;
  gain : int array;
  gain0 : int array;
  locked : bool array;
  frozen : bool array; (* CDIP: kept out for the rest of the pass *)
  free_on : int array;
  buckets : Gain_bucket.t array; (* one per side *)
  order : int array; (* move stack *)
  lookahead_vec : int array; (* scratch for vector comparison *)
}

let key_of st v = if st.cfg.clip then st.gain.(v) - st.gain0.(v) else st.gain.(v)

let bump st u delta =
  st.gain.(u) <- st.gain.(u) + delta;
  let bucket = st.buckets.(Bipartition.side st.bp u) in
  if Gain_bucket.contains bucket u then Gain_bucket.adjust bucket u delta
  else
    (* boundary mode: a module outside the frontier enters the structure
       the first time a neighbouring move touches its gain *)
    Gain_bucket.insert bucket u (key_of st u)

(* FM critical-net gain updates around moving [v]; [v] must already be
   locked and removed from its bucket, the partition not yet updated. *)
let apply_move st v =
  let thr = st.cfg.net_threshold in
  let from = Bipartition.side st.bp v in
  let dest = 1 - from in
  H.iter_nets_of st.h v (fun e ->
      if H.net_size st.h e <= thr then begin
        let w = H.net_weight st.h e in
        let t_cnt = Bipartition.pins_on st.bp e dest in
        if t_cnt = 0 then
          H.iter_pins_of st.h e (fun u -> if not st.locked.(u) then bump st u w)
        else if t_cnt = 1 then
          H.iter_pins_of st.h e (fun u ->
              if Bipartition.side st.bp u = dest && not st.locked.(u) then
                bump st u (-w))
      end);
  Bipartition.move st.bp v;
  H.iter_nets_of st.h v (fun e ->
      st.free_on.((2 * e) + from) <- st.free_on.((2 * e) + from) - 1;
      if H.net_size st.h e <= thr then begin
        let w = H.net_weight st.h e in
        let f_cnt = Bipartition.pins_on st.bp e from in
        if f_cnt = 0 then
          H.iter_pins_of st.h e (fun u -> if not st.locked.(u) then bump st u (-w))
        else if f_cnt = 1 then
          H.iter_pins_of st.h e (fun u ->
              if Bipartition.side st.bp u = from && not st.locked.(u) then
                bump st u w)
      end)

(* Undo a move made by [apply_move]: partition state only — gains and
   buckets are rebuilt wholesale afterwards (paper §V notes full
   reinitialisation per pass; CDIP backtracks rebuild too). *)
let unmove st v =
  let from = Bipartition.side st.bp v in
  Bipartition.move st.bp v;
  H.iter_nets_of st.h v (fun e ->
      st.free_on.((2 * e) + from) <- st.free_on.((2 * e) + from) + 1)

(* Krishnamurthy level-r gain vector of a free module, in one sweep over its
   nets.  Binding number of a side is infinite when a locked pin sits there
   (the net can never leave that side); otherwise the count of free pins. *)
let gain_vector st v r vec =
  Array.fill vec 0 r 0;
  let thr = st.cfg.net_threshold in
  let a = Bipartition.side st.bp v in
  let b = 1 - a in
  H.iter_nets_of st.h v (fun e ->
      if H.net_size st.h e <= thr then begin
        let w = H.net_weight st.h e in
        let free_a = st.free_on.((2 * e) + a)
        and free_b = st.free_on.((2 * e) + b) in
        let locked_a = Bipartition.pins_on st.bp e a - free_a
        and locked_b = Bipartition.pins_on st.bp e b - free_b in
        if locked_a = 0 && free_a - 1 < r then
          vec.(free_a - 1) <- vec.(free_a - 1) + w;
        if locked_b = 0 && free_b < r then vec.(free_b) <- vec.(free_b) - w
      end)

let compare_vectors a b r =
  let rec go i =
    if i >= r then 0
    else if a.(i) <> b.(i) then Int.compare a.(i) b.(i)
    else go (i + 1)
  in
  go 0

let feasible st v = Bipartition.move_is_feasible st.bp st.bounds v

(* Candidate selection.  Both sides' best feasible keys are compared; key
   ties go to the heavier side (helps balance).  Under lookahead, all
   feasible candidates sharing the winning key (bounded scan) are compared
   by gain vector. *)
let select st =
  let cand s = Gain_bucket.select_max_satisfying st.buckets.(s) (feasible st) in
  let choice =
    match (cand 0, cand 1) with
    | None, None -> None
    | Some (v, g), None | None, Some (v, g) -> Some (v, g)
    | Some (v0, g0), Some (v1, g1) ->
        if g0 > g1 then Some (v0, g0)
        else if g1 > g0 then Some (v1, g1)
        else if Bipartition.area_of_side st.bp 0 >= Bipartition.area_of_side st.bp 1
        then Some (v0, g0)
        else Some (v1, g1)
  in
  match (choice, st.cfg.tie_break) with
  | None, _ -> None
  | Some (v, _), Plain -> Some v
  | Some (v, key), Lookahead r ->
      let limit = ref 64 in
      let best = ref v in
      let best_vec = Array.make r 0 in
      let vec = st.lookahead_vec in
      gain_vector st v r best_vec;
      let consider u =
        if u <> !best && !limit > 0 && feasible st u then begin
          decr limit;
          gain_vector st u r vec;
          if compare_vectors vec best_vec r > 0 then begin
            best := u;
            Array.blit vec 0 best_vec 0 r
          end
        end
      in
      (* Candidates at the winning key can sit on either side: a side whose
         best feasible key is lower contributes none. *)
      for s = 0 to 1 do
        match Gain_bucket.max_key st.buckets.(s) with
        | Some mk when mk >= key -> Gain_bucket.iter_key st.buckets.(s) key consider
        | Some _ | None -> ()
      done;
      Some !best

(* (Re)build gains, free-pin counts and buckets for the current free set.
   Under CLIP, all modules enter at key [gain - gain0]; at pass start that
   is 0 for everyone and the insertion order realises the paper's
   "concatenate buckets from the largest index" preprocessing: for LIFO
   (head selection) ascending initial gain leaves the highest at the head,
   for FIFO descending does. *)
let fill_structures st ~fresh_pass =
  let n = H.num_modules st.h in
  for v = 0 to n - 1 do
    if not st.locked.(v) then
      st.gain.(v) <- Bipartition.gain ~net_threshold:st.cfg.net_threshold st.bp v
  done;
  if st.cfg.clip && fresh_pass then
    for v = 0 to n - 1 do
      st.gain0.(v) <- st.gain.(v)
    done;
  let m = H.num_nets st.h in
  for e = 0 to m - 1 do
    let count s =
      let free = ref 0 in
      H.iter_pins_of st.h e (fun u ->
          if (not st.locked.(u)) && Bipartition.side st.bp u = s then incr free);
      !free
    in
    st.free_on.(2 * e) <- count 0;
    st.free_on.((2 * e) + 1) <- count 1
  done;
  Gain_bucket.clear st.buckets.(0);
  Gain_bucket.clear st.buckets.(1);
  let ids = Array.init n (fun v -> v) in
  if st.cfg.clip then begin
    (* Sort by initial gain so that bucket-0 ends up ordered by descending
       initial gain under the selection policy. *)
    let cmp =
      match st.cfg.policy with
      | Gain_bucket.Fifo -> fun a b -> Int.compare st.gain.(b) st.gain.(a)
      | Gain_bucket.Lifo | Gain_bucket.Random ->
          fun a b -> Int.compare st.gain.(a) st.gain.(b)
    in
    Array.sort cmp ids
  end
  else Rng.shuffle_in_place st.rng ids;
  let on_boundary v =
    Mlpart_hypergraph.Hypergraph.fold_nets_of st.h v ~init:false
      ~f:(fun acc e ->
        acc
        || (Bipartition.pins_on st.bp e 0 > 0 && Bipartition.pins_on st.bp e 1 > 0))
  in
  Array.iter
    (fun v ->
      if (not st.locked.(v)) && ((not st.cfg.boundary) || on_boundary v) then
        Gain_bucket.insert st.buckets.(Bipartition.side st.bp v) v (key_of st v))
    ids

(* Fixed modules behave as permanently locked: never inserted, never
   moved, invisible to free-pin counts. *)
let apply_fixed_locks st =
  match st.fixed with
  | None -> ()
  | Some f -> Array.iteri (fun v p -> if p >= 0 then st.locked.(v) <- true) f

(* One FM pass; returns the pass gain (cut decrease kept). *)
let run_pass st =
  let n = H.num_modules st.h in
  Array.fill st.locked 0 n false;
  Array.fill st.frozen 0 n false;
  apply_fixed_locks st;
  fill_structures st ~fresh_pass:true;
  let moved = ref 0 in
  let cum = ref 0 in
  let best = ref 0 in
  let best_count = ref 0 in
  let backtracks = ref 0 in
  let continue = ref true in
  while !continue do
    match select st with
    | None -> continue := false
    | Some v ->
        Gain_bucket.remove st.buckets.(Bipartition.side st.bp v) v;
        st.locked.(v) <- true;
        let g = st.gain.(v) in
        apply_move st v;
        st.order.(!moved) <- v;
        incr moved;
        cum := !cum + g;
        if !cum > !best then begin
          best := !cum;
          best_count := !moved
        end
        else begin
          let non_improving = !moved - !best_count in
          (match st.cfg.early_exit with
          | Some k when non_improving >= k -> continue := false
          | Some _ | None -> ());
          match st.cfg.backtrack with
          | Some (window, limit) when non_improving >= window && !backtracks < limit
            ->
              incr backtracks;
              (* Undo the losing streak, freeze its first module, rebuild. *)
              let first_bad = st.order.(!best_count) in
              for i = !moved - 1 downto !best_count do
                unmove st st.order.(i)
              done;
              moved := !best_count;
              cum := !best;
              st.frozen.(first_bad) <- true;
              Array.fill st.locked 0 n false;
              apply_fixed_locks st;
              for i = 0 to !moved - 1 do
                st.locked.(st.order.(i)) <- true
              done;
              for v = 0 to n - 1 do
                if st.frozen.(v) then st.locked.(v) <- true
              done;
              fill_structures st ~fresh_pass:false
          | Some _ | None -> ()
        end
  done;
  (* Keep only the best prefix. *)
  for i = !moved - 1 downto !best_count do
    unmove st st.order.(i)
  done;
  (!best, !moved)

let run ?(config = default) ?init ?fixed rng h =
  let bounds =
    if config.wide_balance then Bipartition.wide_bounds ~tolerance:config.tolerance h
    else Bipartition.bounds ~tolerance:config.tolerance h
  in
  let bp =
    match init with
    | Some side -> Bipartition.create h side
    | None -> Bipartition.random rng h
  in
  (* Pinned modules override whatever the initial solution said. *)
  (match fixed with
  | Some f ->
      Array.iteri
        (fun v p ->
          if p >= 0 && Bipartition.side bp v <> p then Bipartition.move bp v)
        f
  | None -> ());
  if not (Bipartition.is_balanced bp bounds) then
    ignore (Bipartition.rebalance ?fixed rng bp bounds);
  let n = H.num_modules h in
  let m = H.num_nets h in
  let wdeg = Stdlib.max 1 (H.max_weighted_degree h) in
  let range = if config.clip then 2 * wdeg else wdeg in
  let mk_bucket () =
    Gain_bucket.create ~rng:(Rng.split rng) ~policy:config.policy
      ~min_gain:(-range) ~max_gain:range ~capacity:n ()
  in
  let st =
    {
      cfg = config;
      h;
      bp;
      bounds;
      fixed;
      rng;
      gain = Array.make n 0;
      gain0 = Array.make n 0;
      locked = Array.make n false;
      frozen = Array.make n false;
      free_on = Array.make (2 * m) 0;
      buckets = [| mk_bucket (); mk_bucket () |];
      order = Array.make n 0;
      lookahead_vec =
        (match config.tie_break with
        | Plain -> [| 0 |]
        | Lookahead r -> Array.make (Stdlib.max 1 r) 0);
    }
  in
  let passes = ref 0 in
  let moves = ref 0 in
  let improving = ref true in
  while !improving && !passes < config.max_passes do
    let pass_gain, pass_moves = run_pass st in
    incr passes;
    moves := !moves + pass_moves;
    if pass_gain <= 0 then improving := false
  done;
  {
    side = Bipartition.side_array st.bp;
    cut = Bipartition.cut st.bp;
    passes = !passes;
    moves = !moves;
  }
