module H = Mlpart_hypergraph.Hypergraph
module Rng = Mlpart_util.Rng
module Trace = Mlpart_obs.Trace
module Metrics = Mlpart_obs.Metrics

(* Per-pass engine telemetry.  Handles are created once here; every
   recording call below is gated on the metrics/trace flag, so a run with
   observability off pays one predictable branch per move (the gain
   histogram) and a handful per pass. *)
let m_runs = Metrics.counter "fm.runs"
let m_passes = Metrics.counter "fm.passes"
let m_moves = Metrics.counter "fm.moves"
let m_backtracks = Metrics.counter "fm.backtracks"

let h_move_gain =
  (* signed: the negative buckets are the tolerated downhill moves, the
     positive ones the recovered gains *)
  Metrics.histogram "fm.move_gain"
    ~buckets:[| -64; -16; -4; -2; -1; 0; 1; 2; 4; 16; 64 |]

let h_rollback =
  Metrics.histogram "fm.rollback_depth"
    ~buckets:[| 0; 1; 2; 4; 8; 16; 32; 64; 128; 256; 1024 |]

let h_passes_per_run =
  Metrics.histogram "fm.passes_per_run" ~buckets:[| 1; 2; 3; 4; 6; 8; 12; 16 |]

type tie_break = Plain | Lookahead of int

type config = {
  policy : Gain_bucket.policy;
  clip : bool;
  tie_break : tie_break;
  net_threshold : int;
  tolerance : float;
  wide_balance : bool;
  max_passes : int;
  early_exit : int option;
  boundary : bool;
  backtrack : (int * int) option;
}

let default =
  {
    policy = Gain_bucket.Lifo;
    clip = false;
    tie_break = Plain;
    net_threshold = 200;
    tolerance = 0.1;
    wide_balance = false;
    max_passes = max_int;
    early_exit = None;
    boundary = false;
    backtrack = None;
  }

let clip = { default with clip = true }

type result = { side : int array; cut : int; passes : int; moves : int }

let cut_of h side = Bipartition.cut (Bipartition.create h side)

(* Reusable engine scratch, independent of any particular run: every array a
   run needs, sized to the largest netlist seen so far, plus the two gain
   buckets (reconfigured per run via [Gain_bucket.reinit]).  A multilevel
   refinement sweep threads one arena through every level so per-level
   engine state is allocated once, at the finest level's size, instead of
   once per level.  Not safe to share between domains.  [ids] is kept at the
   exact module count (whole-array shuffle/sort), the rest grow-only.
   [bnd]/[bnd_epoch] are the epoch-stamped boundary-frontier marks. *)
type arena = {
  mutable gain : int array;
  mutable gain0 : int array;
  mutable locked : bool array;
  mutable frozen : bool array;
  mutable free_on : int array;
  mutable order : int array;
  mutable ids : int array;
  mutable bnd : int array;
  mutable bnd_epoch : int;
  buckets : Gain_bucket.t array; (* one per side *)
}

let create_arena ?h () =
  let n, m =
    match h with Some h -> (H.num_modules h, H.num_nets h) | None -> (0, 0)
  in
  let mk_bucket () =
    Gain_bucket.create ~policy:Gain_bucket.Lifo ~min_gain:0 ~max_gain:0
      ~capacity:n ()
  in
  {
    gain = Array.make n 0;
    gain0 = Array.make n 0;
    locked = Array.make n false;
    frozen = Array.make n false;
    free_on = Array.make (2 * m) 0;
    order = Array.make n 0;
    ids = Array.make n 0;
    bnd = Array.make n 0;
    bnd_epoch = 0;
    buckets = [| mk_bucket (); mk_bucket () |];
  }

let ensure_arena a n m =
  if Array.length a.gain < n then begin
    a.gain <- Array.make n 0;
    a.gain0 <- Array.make n 0;
    a.locked <- Array.make n false;
    a.frozen <- Array.make n false;
    a.order <- Array.make n 0;
    a.bnd <- Array.make n 0;
    a.bnd_epoch <- 0
  end;
  if Array.length a.ids <> n then a.ids <- Array.make n 0;
  if Array.length a.free_on < 2 * m then a.free_on <- Array.make (2 * m) 0

(* Per-run engine state.  [gain] holds true gains of free modules; under
   CLIP the bucket key of a module is [gain - gain0] (its offset from the
   pass-initial gain), otherwise the gain itself.  [free_on.(2e+s)] counts
   unlocked pins of net e on side s, used by lookahead gain vectors.  All
   array fields alias the arena; they may be longer than the run needs. *)
type state = {
  cfg : config;
  h : H.t;
  bp : Bipartition.t;
  bounds : Bipartition.bounds;
  fixed : int array option;
  rng : Rng.t;
  a : arena;
  gain : int array;
  gain0 : int array;
  locked : bool array;
  frozen : bool array; (* CDIP: kept out for the rest of the pass *)
  free_on : int array;
  buckets : Gain_bucket.t array; (* one per side *)
  order : int array; (* move stack *)
  lookahead_vec : int array; (* scratch for vector comparison *)
  (* Raw views for the move loop: the live side / pin-count stores of [bp]
     and the hypergraph CSR arrays, so gain updates are pure array
     arithmetic with no per-element calls.  Read-only except [free_on]. *)
  side : int array;
  pins_on : int array;
  noff : int array; (* net -> first pin slot, length m+1 *)
  pins : int array; (* module per pin slot *)
  moff : int array; (* module -> first net slot, length n+1 *)
  mnets : int array; (* net per module-incidence slot *)
  wts : int array; (* weight per net *)
  areas : int array; (* live side areas of [bp] *)
  feas : int -> bool; (* balance feasibility of moving a module *)
}

let key_of st v = if st.cfg.clip then st.gain.(v) - st.gain0.(v) else st.gain.(v)

let bump st u delta =
  st.gain.(u) <- st.gain.(u) + delta;
  let bucket = st.buckets.(st.side.(u)) in
  if Gain_bucket.contains bucket u then Gain_bucket.adjust bucket u delta
  else
    (* boundary mode: a module outside the frontier enters the structure
       the first time a neighbouring move touches its gain *)
    Gain_bucket.insert bucket u (key_of st u)

(* FM critical-net gain updates around moving [v]; [v] must already be
   locked and removed from its bucket, the partition not yet updated.
   Both sweeps walk the CSR directly: nets of [v] by incidence slot, pins
   of each critical net by pin slot.  The partition's per-net count update
   is fused into the first sweep (each net's counts are only read in its
   own iteration, so pre-move values are still what the gain terms see),
   and the side/area flip sits between the sweeps via
   [Bipartition.stage_move] — the bipartition's incremental cut is left
   stale during passes and recomputed once per run. *)
let apply_move st v =
  let thr = st.cfg.net_threshold in
  let from = st.side.(v) in
  let dest = 1 - from in
  let noff = st.noff
  and pins = st.pins
  and mnets = st.mnets
  and wts = st.wts
  and pins_on = st.pins_on
  and locked = st.locked
  and side = st.side in
  let lo = st.moff.(v) and hi = st.moff.(v + 1) - 1 in
  for i = lo to hi do
    let e = mnets.(i) in
    let off = noff.(e) in
    let last = noff.(e + 1) - 1 in
    let fi = (2 * e) + from and di = (2 * e) + dest in
    if last - off < thr then begin
      let t_cnt = pins_on.(di) in
      if t_cnt = 0 then begin
        let w = wts.(e) in
        for j = off to last do
          let u = pins.(j) in
          if not locked.(u) then bump st u w
        done
      end
      else if t_cnt = 1 then begin
        let w = wts.(e) in
        for j = off to last do
          let u = pins.(j) in
          if side.(u) = dest && not locked.(u) then bump st u (-w)
        done
      end
    end;
    pins_on.(fi) <- pins_on.(fi) - 1;
    pins_on.(di) <- pins_on.(di) + 1
  done;
  Bipartition.stage_move st.bp v;
  for i = lo to hi do
    let e = mnets.(i) in
    st.free_on.((2 * e) + from) <- st.free_on.((2 * e) + from) - 1;
    let off = noff.(e) in
    let last = noff.(e + 1) - 1 in
    if last - off < thr then begin
      let f_cnt = pins_on.((2 * e) + from) in
      if f_cnt = 0 then begin
        let w = wts.(e) in
        for j = off to last do
          let u = pins.(j) in
          if not locked.(u) then bump st u (-w)
        done
      end
      else if f_cnt = 1 then begin
        let w = wts.(e) in
        for j = off to last do
          let u = pins.(j) in
          if side.(u) = from && not locked.(u) then bump st u w
        done
      end
    end
  done

(* Undo a move made by [apply_move]: partition state only — gains and
   buckets are rebuilt wholesale afterwards (paper §V notes full
   reinitialisation per pass; CDIP backtracks rebuild too).  Same fused
   count maintenance as [apply_move]. *)
let unmove st v =
  let from = st.side.(v) in
  let dest = 1 - from in
  let pins_on = st.pins_on in
  Bipartition.stage_move st.bp v;
  for i = st.moff.(v) to st.moff.(v + 1) - 1 do
    let e = st.mnets.(i) in
    let fi = (2 * e) + from and di = (2 * e) + dest in
    pins_on.(fi) <- pins_on.(fi) - 1;
    pins_on.(di) <- pins_on.(di) + 1;
    st.free_on.((2 * e) + from) <- st.free_on.((2 * e) + from) + 1
  done

(* Krishnamurthy level-r gain vector of a free module, in one sweep over its
   nets.  Binding number of a side is infinite when a locked pin sits there
   (the net can never leave that side); otherwise the count of free pins. *)
let gain_vector st v r vec =
  Array.fill vec 0 r 0;
  let thr = st.cfg.net_threshold in
  let a = st.side.(v) in
  let b = 1 - a in
  let noff = st.noff and mnets = st.mnets and wts = st.wts in
  for i = st.moff.(v) to st.moff.(v + 1) - 1 do
    let e = mnets.(i) in
    if noff.(e + 1) - noff.(e) <= thr then begin
      let w = wts.(e) in
      let free_a = st.free_on.((2 * e) + a)
      and free_b = st.free_on.((2 * e) + b) in
      let locked_a = st.pins_on.((2 * e) + a) - free_a
      and locked_b = st.pins_on.((2 * e) + b) - free_b in
      if locked_a = 0 && free_a - 1 < r then
        vec.(free_a - 1) <- vec.(free_a - 1) + w;
      if locked_b = 0 && free_b < r then vec.(free_b) <- vec.(free_b) - w
    end
  done

let compare_vectors a b r =
  let rec go i =
    if i >= r then 0
    else if a.(i) <> b.(i) then Int.compare a.(i) b.(i)
    else go (i + 1)
  in
  go 0

(* Candidate selection; returns the module to move, or -1 when no feasible
   candidate remains.  Both sides' best feasible keys are compared; key ties
   go to the heavier side (helps balance).  Under lookahead, all feasible
   candidates sharing the winning key (bounded scan) are compared by gain
   vector.  [st.feas] is the one per-run feasibility closure; the whole
   path allocates nothing on the plain tie-break. *)
let select st =
  let b0 = st.buckets.(0) and b1 = st.buckets.(1) in
  let v0 = Gain_bucket.select_satisfying b0 st.feas in
  let v1 = Gain_bucket.select_satisfying b1 st.feas in
  let v, key =
    if v0 < 0 then (v1, if v1 < 0 then 0 else Gain_bucket.gain_of b1 v1)
    else if v1 < 0 then (v0, Gain_bucket.gain_of b0 v0)
    else begin
      let g0 = Gain_bucket.gain_of b0 v0 and g1 = Gain_bucket.gain_of b1 v1 in
      if g0 > g1 then (v0, g0)
      else if g1 > g0 then (v1, g1)
      else if st.areas.(0) >= st.areas.(1) then (v0, g0)
      else (v1, g1)
    end
  in
  match st.cfg.tie_break with
  | Plain -> v
  | Lookahead _ when v < 0 -> v
  | Lookahead r ->
      let limit = ref 64 in
      let best = ref v in
      let best_vec = Array.make r 0 in
      let vec = st.lookahead_vec in
      gain_vector st v r best_vec;
      let consider u =
        if u <> !best && !limit > 0 && st.feas u then begin
          decr limit;
          gain_vector st u r vec;
          if compare_vectors vec best_vec r > 0 then begin
            best := u;
            Array.blit vec 0 best_vec 0 r
          end
        end
      in
      (* Candidates at the winning key can sit on either side: a side whose
         best feasible key is lower contributes none. *)
      for s = 0 to 1 do
        match Gain_bucket.max_key st.buckets.(s) with
        | Some mk when mk >= key -> Gain_bucket.iter_key st.buckets.(s) key consider
        | Some _ | None -> ()
      done;
      !best

(* (Re)build gains, free-pin counts and buckets for the current free set, in
   one net-centric sweep over the pin structure: each net contributes its
   per-side free-pin counts and — when within the size threshold — the
   critical-net gain terms of every free pin (pins_on = 1 on the pin's own
   side, pins_on = 0 opposite).  Locked modules keep whatever gain value
   they last had: the CLIP preprocessing sort below keys on the whole gain
   array, so touching locked entries would reorder equal-key free modules
   under the unstable sort and change results.

   Under CLIP, all modules enter at key [gain - gain0]; at pass start that
   is 0 for everyone and the insertion order realises the paper's
   "concatenate buckets from the largest index" preprocessing: for LIFO
   (head selection) ascending initial gain leaves the highest at the head,
   for FIFO descending does. *)
let fill_structures st ~fresh_pass =
  let n = H.num_modules st.h in
  let m = H.num_nets st.h in
  let thr = st.cfg.net_threshold in
  let side = st.side
  and pins_on = st.pins_on
  and noff = st.noff
  and pins = st.pins
  and wts = st.wts
  and gain = st.gain
  and free_on = st.free_on
  and locked = st.locked in
  for v = 0 to n - 1 do
    if not locked.(v) then gain.(v) <- 0
  done;
  for e = 0 to m - 1 do
    let base = 2 * e in
    let off = noff.(e) in
    let last = noff.(e + 1) - 1 in
    let free0 = ref 0 and free1 = ref 0 in
    if last - off < thr then begin
      let w = wts.(e) in
      let c0 = pins_on.(base) and c1 = pins_on.(base + 1) in
      for i = off to last do
        let u = pins.(i) in
        if not locked.(u) then
          if side.(u) = 0 then begin
            incr free0;
            if c0 = 1 then gain.(u) <- gain.(u) + w;
            if c1 = 0 then gain.(u) <- gain.(u) - w
          end
          else begin
            incr free1;
            if c1 = 1 then gain.(u) <- gain.(u) + w;
            if c0 = 0 then gain.(u) <- gain.(u) - w
          end
      done
    end
    else
      (* oversized nets are invisible to gains but still carry free-pin
         counts for the lookahead binding numbers *)
      for i = off to last do
        let u = pins.(i) in
        if not locked.(u) then
          if side.(u) = 0 then incr free0 else incr free1
      done;
    free_on.(base) <- !free0;
    free_on.(base + 1) <- !free1
  done;
  if st.cfg.clip && fresh_pass then Array.blit gain 0 st.gain0 0 n;
  Gain_bucket.clear st.buckets.(0);
  Gain_bucket.clear st.buckets.(1);
  let ids = st.a.ids in
  for v = 0 to n - 1 do
    ids.(v) <- v
  done;
  if st.cfg.clip then begin
    (* Sort by initial gain so that bucket-0 ends up ordered by descending
       initial gain under the selection policy.  (Measured: a hand-inlined
       heapsort replica is no faster than [Array.sort]'s closure dispatch
       here — the sort is bound by its data-dependent loads.) *)
    let cmp =
      match st.cfg.policy with
      | Gain_bucket.Fifo -> fun a b -> Int.compare gain.(b) gain.(a)
      | Gain_bucket.Lifo | Gain_bucket.Random ->
          fun a b -> Int.compare gain.(a) gain.(b)
    in
    Array.sort cmp ids
  end
  else Rng.shuffle_in_place st.rng ids;
  (* Boundary frontier by cut-net marking: every pin of every cut net is on
     the frontier, found in one sweep over the cut nets' pins instead of a
     nets-of-module scan per module. *)
  let boundary = st.cfg.boundary in
  if boundary then begin
    let stamp = st.a.bnd_epoch + 1 in
    st.a.bnd_epoch <- stamp;
    let bnd = st.a.bnd in
    for e = 0 to m - 1 do
      if pins_on.(2 * e) > 0 && pins_on.((2 * e) + 1) > 0 then
        for i = noff.(e) to noff.(e + 1) - 1 do
          bnd.(pins.(i)) <- stamp
        done
    done
  end;
  let bnd = st.a.bnd and stamp = st.a.bnd_epoch in
  Array.iter
    (fun v ->
      if (not locked.(v)) && ((not boundary) || bnd.(v) = stamp) then
        Gain_bucket.insert st.buckets.(side.(v)) v (key_of st v))
    ids

(* Fixed modules behave as permanently locked: never inserted, never
   moved, invisible to free-pin counts. *)
let apply_fixed_locks st =
  match st.fixed with
  | None -> ()
  | Some f -> Array.iteri (fun v p -> if p >= 0 then st.locked.(v) <- true) f

(* One FM pass via the shared move loop; returns the pass result.  The
   closures hand [Refine_core] exactly the operations the loop needs:
   commit removes from the bucket, locks, applies and credits the stored
   gain; rebuild is the CDIP streak recovery (freeze the streak's first
   module, re-lock the kept prefix, re-derive gains and buckets). *)
let run_pass st =
  let n = H.num_modules st.h in
  Array.fill st.locked 0 n false;
  Array.fill st.frozen 0 n false;
  apply_fixed_locks st;
  fill_structures st ~fresh_pass:true;
  let ops =
    {
      Refine_core.select = (fun () -> select st);
      commit =
        (fun v ->
          Gain_bucket.remove st.buckets.(st.side.(v)) v;
          st.locked.(v) <- true;
          let g = st.gain.(v) in
          apply_move st v;
          Metrics.observe h_move_gain g;
          g);
      undo = (fun v -> unmove st v);
      rebuild =
        (fun ~first_bad ~kept ->
          Metrics.incr m_backtracks;
          st.frozen.(first_bad) <- true;
          Array.fill st.locked 0 n false;
          apply_fixed_locks st;
          for i = 0 to kept - 1 do
            st.locked.(st.order.(i)) <- true
          done;
          for v = 0 to n - 1 do
            if st.frozen.(v) then st.locked.(v) <- true
          done;
          fill_structures st ~fresh_pass:false);
    }
  in
  let p =
    Refine_core.run_pass ~order:st.order ?early_exit:st.cfg.early_exit
      ?backtrack:st.cfg.backtrack ops
  in
  Metrics.observe h_rollback p.Refine_core.rolled_back;
  p

let run ?(config = default) ?init ?fixed ?arena rng h =
  let bounds =
    if config.wide_balance then Bipartition.wide_bounds ~tolerance:config.tolerance h
    else Bipartition.bounds ~tolerance:config.tolerance h
  in
  let bp =
    match init with
    | Some side -> Bipartition.create h side
    | None -> Bipartition.random rng h
  in
  (* Pinned modules override whatever the initial solution said. *)
  (match fixed with
  | Some f ->
      Array.iteri
        (fun v p ->
          if p >= 0 && Bipartition.side bp v <> p then Bipartition.move bp v)
        f
  | None -> ());
  if not (Bipartition.is_balanced bp bounds) then
    ignore (Bipartition.rebalance ?fixed rng bp bounds);
  let n = H.num_modules h in
  let m = H.num_nets h in
  let wdeg = Stdlib.max 1 (H.max_weighted_degree h) in
  let range = if config.clip then 2 * wdeg else wdeg in
  let a = match arena with Some a -> a | None -> create_arena () in
  ensure_arena a n m;
  (* A fresh run starts from all-zero gains, exactly as the former per-run
     [Array.make n 0] did: modules locked for the whole run (fixed) keep
     gain 0 at every pass, which the CLIP sort observes. *)
  Array.fill a.gain 0 n 0;
  (* Two generator splits per run, bucket 1's first: the order the original
     [| mk_bucket (); mk_bucket () |] literal evaluated them (right to
     left), so seeded Random-policy streams are unchanged. *)
  let rng_b1 = Rng.split rng in
  let rng_b0 = Rng.split rng in
  Gain_bucket.reinit ~rng:rng_b0 ~policy:config.policy ~min_gain:(-range)
    ~max_gain:range ~capacity:n a.buckets.(0);
  Gain_bucket.reinit ~rng:rng_b1 ~policy:config.policy ~min_gain:(-range)
    ~max_gain:range ~capacity:n a.buckets.(1);
  let side_store = Bipartition.side_store bp in
  let areas_store = Bipartition.areas_store bp in
  let mareas = H.areas_store h in
  (* Same predicate as [Bipartition.move_is_feasible], on raw views: it runs
     once per candidate the selection scan touches. *)
  let feas v =
    let a = mareas.(v) in
    let area0 =
      if side_store.(v) = 0 then areas_store.(0) - a else areas_store.(0) + a
    in
    area0 >= bounds.Bipartition.lo && area0 <= bounds.Bipartition.hi
  in
  let st =
    {
      cfg = config;
      h;
      bp;
      bounds;
      fixed;
      rng;
      a;
      gain = a.gain;
      gain0 = a.gain0;
      locked = a.locked;
      frozen = a.frozen;
      free_on = a.free_on;
      buckets = a.buckets;
      order = a.order;
      lookahead_vec =
        (match config.tie_break with
        | Plain -> [| 0 |]
        | Lookahead r -> Array.make (Stdlib.max 1 r) 0);
      side = side_store;
      pins_on = Bipartition.pins_on_store bp;
      noff = H.net_offsets_store h;
      pins = H.net_pins_store h;
      moff = H.mod_offsets_store h;
      mnets = H.mod_nets_store h;
      wts = H.net_weights_store h;
      areas = areas_store;
      feas;
    }
  in
  let passes, moves =
    Refine_core.drive ~max_passes:config.max_passes (fun ~pass ->
        let t0 = Trace.start () in
        let p = run_pass st in
        if Trace.enabled () then
          Trace.complete ~cat:"fm"
            ~args:
              [
                ("pass", Trace.Int pass);
                ("gain", Trace.Int p.Refine_core.gain);
                ("moves", Trace.Int p.Refine_core.moves);
                ("modules", Trace.Int n);
              ]
            "fm/pass" t0;
        p)
  in
  Metrics.incr m_runs;
  Metrics.add m_passes passes;
  Metrics.add m_moves moves;
  Metrics.observe h_passes_per_run passes;
  {
    side = Bipartition.side_array st.bp;
    (* Passes maintain pin counts but stage side flips without touching the
       bipartition's incremental cut; one CSR sweep restores it exactly. *)
    cut = Bipartition.recompute_cut st.bp;
    passes;
    moves;
  }
