module Rng = Mlpart_util.Rng

type policy = Lifo | Fifo | Random

let policy_of_string = function
  | "lifo" -> Some Lifo
  | "fifo" -> Some Fifo
  | "random" | "rnd" -> Some Random
  | _ -> None

let policy_to_string = function Lifo -> "lifo" | Fifo -> "fifo" | Random -> "random"

(* Intrusive doubly-linked lists over a module-id-indexed arena, with
   epoch-stamped lazy clearing: a bucket's [head]/[tail]/[len] and a
   module's [key] are valid only when the matching stamp equals the current
   [epoch], so [clear] is a single increment instead of O(capacity +
   gain-range) array fills — every pass of an FM run resets the structure,
   which made the eager fills the dominant cost on small gain ranges.
   [len] is maintained per bucket so [Random] selection draws its target
   index without first walking the list to count it. *)
type t = {
  mutable policy : policy;
  mutable rng : Rng.t;
  mutable min_gain : int;
  mutable max_gain : int;
  mutable head : int array; (* bucket index - min_gain -> first module or -1 *)
  mutable tail : int array;
  mutable len : int array; (* modules stored in the bucket *)
  mutable bstamp : int array; (* bucket epoch stamp *)
  mutable next : int array;
  mutable prev : int array;
  mutable key : int array; (* gain of stored module *)
  mutable vstamp : int array; (* module epoch stamp; 0 is always stale *)
  mutable epoch : int; (* current generation, >= 1 *)
  mutable max_bucket : int; (* upper bound on highest non-empty bucket gain *)
  mutable size : int;
}

let create ?rng ~policy ~min_gain ~max_gain ~capacity () =
  if max_gain < min_gain then invalid_arg "Gain_bucket.create: empty gain range";
  let nbuckets = max_gain - min_gain + 1 in
  let rng = match rng with Some r -> r | None -> Rng.create 0x6a11 in
  {
    policy;
    rng;
    min_gain;
    max_gain;
    head = Array.make nbuckets (-1);
    tail = Array.make nbuckets (-1);
    len = Array.make nbuckets 0;
    bstamp = Array.make nbuckets 0;
    next = Array.make capacity (-1);
    prev = Array.make capacity (-1);
    key = Array.make capacity 0;
    vstamp = Array.make capacity 0;
    epoch = 1;
    max_bucket = min_gain - 1;
    size = 0;
  }

let reinit ?rng ~policy ~min_gain ~max_gain ~capacity t =
  if max_gain < min_gain then invalid_arg "Gain_bucket.reinit: empty gain range";
  let nbuckets = max_gain - min_gain + 1 in
  if Array.length t.head < nbuckets then begin
    (* fresh zero-filled arrays are stale for any epoch >= 1 *)
    t.head <- Array.make nbuckets (-1);
    t.tail <- Array.make nbuckets (-1);
    t.len <- Array.make nbuckets 0;
    t.bstamp <- Array.make nbuckets 0
  end;
  if Array.length t.next < capacity then begin
    t.next <- Array.make capacity (-1);
    t.prev <- Array.make capacity (-1);
    t.key <- Array.make capacity 0;
    t.vstamp <- Array.make capacity 0
  end;
  t.policy <- policy;
  (match rng with Some r -> t.rng <- r | None -> ());
  t.min_gain <- min_gain;
  t.max_gain <- max_gain;
  t.epoch <- t.epoch + 1;
  t.max_bucket <- min_gain - 1;
  t.size <- 0

let clear t =
  t.epoch <- t.epoch + 1;
  t.max_bucket <- t.min_gain - 1;
  t.size <- 0

let size t = t.size
let is_empty t = t.size = 0
let contains t v = t.vstamp.(v) = t.epoch

let gain_of t v = t.key.(v)

let slot t g = g - t.min_gain

(* Effective head of bucket [i]: empty unless written this epoch. *)
let bucket_head t i = if t.bstamp.(i) = t.epoch then t.head.(i) else -1

(* Bring bucket [i] into the current epoch before writing to it. *)
let touch_bucket t i =
  if t.bstamp.(i) <> t.epoch then begin
    t.bstamp.(i) <- t.epoch;
    t.head.(i) <- -1;
    t.tail.(i) <- -1;
    t.len.(i) <- 0
  end

let insert t v g =
  if g < t.min_gain || g > t.max_gain then
    invalid_arg
      (Printf.sprintf "Gain_bucket.insert: gain %d outside [%d, %d]" g t.min_gain
         t.max_gain);
  if contains t v then invalid_arg "Gain_bucket.insert: module already present";
  let i = slot t g in
  touch_bucket t i;
  (match t.policy with
  | Lifo | Random ->
      (* push front *)
      let old = t.head.(i) in
      t.next.(v) <- old;
      t.prev.(v) <- -1;
      if old >= 0 then t.prev.(old) <- v else t.tail.(i) <- v;
      t.head.(i) <- v
  | Fifo ->
      (* push back *)
      let old = t.tail.(i) in
      t.prev.(v) <- old;
      t.next.(v) <- -1;
      if old >= 0 then t.next.(old) <- v else t.head.(i) <- v;
      t.tail.(i) <- v);
  t.key.(v) <- g;
  t.vstamp.(v) <- t.epoch;
  t.len.(i) <- t.len.(i) + 1;
  if g > t.max_bucket then t.max_bucket <- g;
  t.size <- t.size + 1

let remove t v =
  if contains t v then begin
    let i = slot t t.key.(v) in
    let p = t.prev.(v) and n = t.next.(v) in
    if p >= 0 then t.next.(p) <- n else t.head.(i) <- n;
    if n >= 0 then t.prev.(n) <- p else t.tail.(i) <- p;
    t.vstamp.(v) <- 0;
    t.len.(i) <- t.len.(i) - 1;
    t.size <- t.size - 1
  end

(* [remove] + [insert] fused into direct link surgery: the module stays
   stamped present throughout, so the checks, stamp churn and [size]
   round-trip of the two-call sequence disappear from the FM gain-update
   hot path.  The resulting list shapes are exactly those of the two-call
   sequence (unlink, then policy-order push into the target bucket). *)
let adjust t v delta =
  if not (contains t v) then invalid_arg "Gain_bucket.adjust: module absent";
  let g = t.key.(v) + delta in
  if g < t.min_gain || g > t.max_gain then
    invalid_arg
      (Printf.sprintf "Gain_bucket.insert: gain %d outside [%d, %d]" g t.min_gain
         t.max_gain);
  let i = slot t t.key.(v) in
  let p = t.prev.(v) and n = t.next.(v) in
  if p >= 0 then t.next.(p) <- n else t.head.(i) <- n;
  if n >= 0 then t.prev.(n) <- p else t.tail.(i) <- p;
  t.len.(i) <- t.len.(i) - 1;
  let j = slot t g in
  touch_bucket t j;
  (match t.policy with
  | Lifo | Random ->
      let old = t.head.(j) in
      t.next.(v) <- old;
      t.prev.(v) <- -1;
      if old >= 0 then t.prev.(old) <- v else t.tail.(j) <- v;
      t.head.(j) <- v
  | Fifo ->
      let old = t.tail.(j) in
      t.prev.(v) <- old;
      t.next.(v) <- -1;
      if old >= 0 then t.next.(old) <- v else t.head.(j) <- v;
      t.tail.(j) <- v);
  t.key.(v) <- g;
  t.len.(j) <- t.len.(j) + 1;
  if g > t.max_bucket then t.max_bucket <- g

(* Lower [max_bucket] past empty buckets. *)
let settle t =
  while t.max_bucket >= t.min_gain && bucket_head t (slot t t.max_bucket) < 0 do
    t.max_bucket <- t.max_bucket - 1
  done

(* Uniform pick from a non-empty current-epoch bucket: one RNG draw against
   the maintained length, one partial walk to the drawn index. *)
let random_of_bucket t i =
  let target = Rng.int t.rng t.len.(i) in
  let v = ref t.head.(i) in
  for _ = 1 to target do
    v := t.next.(!v)
  done;
  !v

let select_max t =
  if t.size = 0 then None
  else begin
    settle t;
    let i = slot t t.max_bucket in
    let v =
      match t.policy with Lifo | Fifo -> t.head.(i) | Random -> random_of_bucket t i
    in
    Some (v, t.max_bucket)
  end

exception Found of int

(* Scan buckets downward; within a bucket, front first.  For Random, the
   policy's uniform pick is tried first, then a linear fallback from the
   head (bias acceptable for rejected candidates) — one generator draw per
   non-empty bucket visited, exactly as selection without a predicate.
   Iterative so the per-call cost is the rejected candidates alone, with no
   closure or result allocation; the winner's key is its stored gain. *)
let select_satisfying t pred =
  if t.size = 0 then -1
  else begin
    settle t;
    try
      let g = ref t.max_bucket in
      while !g >= t.min_gain do
        let i = slot t !g in
        let h = bucket_head t i in
        if h >= 0 then begin
          (match t.policy with
          | Lifo | Fifo -> ()
          | Random ->
              let start = random_of_bucket t i in
              if pred start then raise_notrace (Found start));
          let v = ref h in
          while !v >= 0 do
            if pred !v then raise_notrace (Found !v);
            v := t.next.(!v)
          done
        end;
        decr g
      done;
      -1
    with Found v -> v
  end

let select_max_satisfying t pred =
  let v = select_satisfying t pred in
  if v < 0 then None else Some (v, t.key.(v))

let pop_max t =
  match select_max t with
  | None -> None
  | Some (v, g) ->
      remove t v;
      Some (v, g)

let max_key t =
  if t.size = 0 then None
  else begin
    settle t;
    Some t.max_bucket
  end

let iter_key t g f =
  if g >= t.min_gain && g <= t.max_gain then begin
    let v = ref (bucket_head t (slot t g)) in
    while !v >= 0 do
      let cur = !v in
      v := t.next.(cur);
      f cur
    done
  end
