(** The Fiduccia–Mattheyses iterative-improvement bipartitioner, with the
    paper's refinements.

    One engine covers the whole family the paper studies:
    - bucket tie-breaking policy: LIFO (the paper's choice), FIFO, Random
      (Table II);
    - CLIP, the Dutt–Deng cluster-oriented variant: bucket indices become
      gain {e offsets} from pass-initial gains, so recently-touched
      neighbourhoods dominate selection (Table III);
    - Krishnamurthy lookahead tie-breaking among equal bucket keys with
      level-[r] gain vectors (the CL-LA3 competitor of Table VII);
    - CDIP-style backtracking: a losing streak is undone back to the best
      prefix and a different sequence is forced (the CD-LA3 competitor);
    - a net-size threshold: nets larger than [net_threshold] pins are
      invisible to gains but still counted in the reported cut;
    - optional early pass exit after a fixed number of non-improving moves
      (the Chaco/Metis-style speedup the paper lists as future work;
      exercised by the ablation bench).

    Passes repeat until a pass yields no improvement (or [max_passes]). *)

type tie_break =
  | Plain  (** policy order only *)
  | Lookahead of int
      (** compare level-[r] Krishnamurthy gain vectors among candidates with
          equal bucket keys (level 1 is the bucket key itself) *)

type config = {
  policy : Gain_bucket.policy;
  clip : bool;
  tie_break : tie_break;
  net_threshold : int;  (** nets with more pins are ignored by gains *)
  tolerance : float;  (** balance tolerance [r] of the paper *)
  wide_balance : bool;  (** use {!Bipartition.wide_bounds} (ablation) *)
  max_passes : int;
  early_exit : int option;
      (** [Some k]: abandon a pass after [k] consecutive non-improving
          moves *)
  boundary : bool;
      (** start each pass with only the modules incident to cut nets in the
          bucket structure, inserting others on demand as their gains change
          — the Chaco-style "boundary refinement" the paper's conclusion
          plans to adopt; cheaper passes, near-identical quality on refined
          solutions *)
  backtrack : (int * int) option;
      (** [Some (window, limit)]: CDIP-style — after [window] moves without
          improving on the pass best, undo back to the best prefix, freeze
          the first module of the undone streak and continue; at most
          [limit] undos per pass *)
}

val default : config
(** LIFO, no CLIP, [Plain], threshold 200, tolerance 0.1, unlimited passes,
    no early exit, no backtracking — plain FM as in the paper's baselines. *)

val clip : config
(** [default] with [clip = true] — the paper's CLIP engine. *)

type result = {
  side : int array;  (** final side assignment *)
  cut : int;  (** true weighted cut (all nets) *)
  passes : int;
  moves : int;  (** total moves performed, including rolled-back ones *)
}

type arena
(** Reusable engine scratch: every per-run array (gains, locks, free-pin
    counts, move stack, insertion-order scratch, boundary-frontier marks)
    plus the two gain buckets.  The arena grows on demand and never needs
    resetting, so one arena threaded through a multilevel refinement sweep
    — or any other loop of {!run} calls — allocates engine state once at
    the largest netlist's size instead of once per call.  Runs that share
    an arena are bit-identical to runs that each create their own.  Not
    safe to share between domains. *)

val create_arena : ?h:Mlpart_hypergraph.Hypergraph.t -> unit -> arena
(** Fresh arena; [h] pre-sizes it for that netlist (pass the finest level
    of a hierarchy to avoid all growth reallocations). *)

val run :
  ?config:config ->
  ?init:int array ->
  ?fixed:int array ->
  ?arena:arena ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  result
(** [run rng h] bipartitions [h].  Without [init], starts from a random
    near-bisection; with [init], refines the given assignment (rebalancing
    it first if it violates the balance bounds — the paper's treatment of
    projected solutions).  [fixed.(v) >= 0] pins module [v] to that side
    for the whole run (terminals and pads in placement-driven flows);
    fixed modules are never moved, including during rebalancing.

    [arena] supplies reusable scratch (see {!arena}); without it the run
    creates its own, so callers outside refinement loops are unaffected. *)

val cut_of : Mlpart_hypergraph.Hypergraph.t -> int array -> int
(** True weighted cut of an arbitrary side assignment (convenience). *)
