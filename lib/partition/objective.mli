(** Partition quality metrics over arbitrary k-way assignments.

    Convenience wrappers used by the CLI's [evaluate] command, the
    experiment harness and tests; all metrics are weighted by net weight.
    [side] may use any contiguous part ids [0 .. k-1] (k is inferred). *)

type report = {
  parts : int;
  net_cut : int;  (** nets spanning at least two parts *)
  sum_degrees : int;  (** Σ w(e) (spans(e) - 1), a.k.a. the (K-1) metric *)
  absorbed : int;  (** weighted count of uncut nets *)
  part_areas : int array;
  largest_part : int;
  smallest_part : int;
}

val evaluate : Mlpart_hypergraph.Hypergraph.t -> int array -> report
(** Raises [Invalid_argument] on malformed assignments (wrong length,
    negative ids). *)

val pp : Format.formatter -> report -> unit

val read_assignment : string -> int array
(** Read one part id per line (the format written by the CLI).  Raises
    {!Mlpart_util.Diag.Mlpart_error} with a line-numbered [bad-part]
    diagnostic on malformed input, or an [io-error] one when the file
    cannot be read. *)

val write_assignment : string -> int array -> unit
