module H = Mlpart_hypergraph.Hypergraph
module Rng = Mlpart_util.Rng

type config = {
  population : int;
  generations : int;
  mutation : float;
  engine : Fm.config;
}

let default =
  { population = 8; generations = 24; mutation = 0.02; engine = Fm.default }

type result = { side : int array; cut : int; evaluations : int }

(* A bipartition equals its complement; flip parent 2 when the parents
   agree on fewer than half the modules so crossover mixes aligned
   solutions. *)
let aligned_copy reference other =
  let n = Array.length reference in
  let agreement = ref 0 in
  for v = 0 to n - 1 do
    if reference.(v) = other.(v) then incr agreement
  done;
  if 2 * !agreement >= n then Array.copy other
  else Array.map (fun s -> 1 - s) other

let crossover rng a b =
  let b = aligned_copy a b in
  Array.mapi (fun v sa -> if Rng.bool rng then sa else b.(v)) a

let mutate rng mutation side =
  Array.iteri
    (fun v s -> if Rng.float rng 1.0 < mutation then side.(v) <- 1 - s)
    side

let run ?(config = default) ?init rng h =
  if config.population < 2 then invalid_arg "Genetic.run: population < 2";
  let evaluations = ref 0 in
  let arena = Fm.create_arena ~h () in
  let descend init =
    incr evaluations;
    let r = Fm.run ~config:config.engine ?init ~arena rng h in
    (r.Fm.side, r.Fm.cut)
  in
  let population =
    Array.init config.population (fun i ->
        if i = 0 && init <> None then descend init else descend None)
  in
  let worst_index () =
    let worst = ref 0 in
    Array.iteri
      (fun i (_, cut) -> if cut > snd population.(!worst) then worst := i)
      population;
    ignore (Array.length population);
    !worst
  in
  let tournament () =
    let a = Rng.int rng config.population in
    let b = Rng.int rng config.population in
    if snd population.(a) <= snd population.(b) then fst population.(a)
    else fst population.(b)
  in
  for _ = 1 to config.generations do
    let child = crossover rng (tournament ()) (tournament ()) in
    mutate rng config.mutation child;
    let refined = descend (Some child) in
    let w = worst_index () in
    if snd refined < snd population.(w) then population.(w) <- refined
  done;
  let best = ref 0 in
  Array.iteri
    (fun i (_, cut) -> if cut < snd population.(!best) then best := i)
    population;
  let side, cut = population.(!best) in
  { side; cut; evaluations = !evaluations }
