module H = Mlpart_hypergraph.Hypergraph

type graph = {
  areas : int array;
  net_pins : int array array;
  net_size : int array;
  net_weight : int array;
  mod_nets : int array array;
  mod_deg : int array;
}

let graph_of_hypergraph h =
  let n = H.num_modules h and m = H.num_nets h in
  let noff = H.net_offsets_store h in
  let pins = H.net_pins_store h in
  let moff = H.mod_offsets_store h in
  let mnets = H.mod_nets_store h in
  {
    areas = Array.copy (H.areas_store h);
    net_pins =
      Array.init m (fun e -> Array.sub pins noff.(e) (noff.(e + 1) - noff.(e)));
    net_size = Array.init m (fun e -> noff.(e + 1) - noff.(e));
    net_weight = Array.copy (H.net_weights_store h);
    mod_nets =
      Array.init n (fun v -> Array.sub mnets moff.(v) (moff.(v + 1) - moff.(v)));
    mod_deg = Array.init n (fun v -> moff.(v + 1) - moff.(v));
  }

type t = {
  g : graph;
  k : int;
  thr : int;
  side : int array;
  pins_on : int array; (* (k*e)+p: live pins of net e in part p *)
  spans : int array; (* parts with >= 1 pin, per net *)
  part_areas : int array;
  penalty : int array; (* per module *)
  benefit : int array; (* (k*v)+q *)
  mutable cut : int;
}

(* Add (sign = +1) or retract (sign = -1) net [e]'s gain contributions for
   all its live pins, against the current [pins_on] counts.  A pin [v] in
   part [p] takes a penalty term when the net lies entirely in [p]
   (pins_on = size) and benefit terms toward every part holding all other
   pins (own count 1, target count size-1).  Single-pin nets take both
   (gain 0 everywhere), which keeps the decomposition total. *)
let add_net_terms ?on_delta ?(silent = -1) t e sign =
  let s = t.g.net_size.(e) in
  if s <= t.thr then begin
    let w = sign * t.g.net_weight.(e) in
    let base = t.k * e in
    let pins = t.g.net_pins.(e) in
    for i = 0 to s - 1 do
      let v = pins.(i) in
      let p = t.side.(v) in
      let own = t.pins_on.(base + p) in
      if own = s then begin
        t.penalty.(v) <- t.penalty.(v) + w;
        match on_delta with
        | Some f when v <> silent ->
            for q = 0 to t.k - 1 do
              if q <> p then f v q (-w)
            done
        | Some _ | None -> ()
      end;
      if own = 1 then
        for q = 0 to t.k - 1 do
          if q <> p && t.pins_on.(base + q) = s - 1 then begin
            t.benefit.((t.k * v) + q) <- t.benefit.((t.k * v) + q) + w;
            match on_delta with
            | Some f when v <> silent -> f v q w
            | Some _ | None -> ()
          end
        done
    done
  end

let retract_net ?on_delta ?silent t e =
  add_net_terms ?on_delta ?silent t e (-1);
  if t.spans.(e) >= 2 then t.cut <- t.cut - t.g.net_weight.(e)

(* Recount [e]'s per-part pins from its live pin list, then re-derive the
   span count, cut term and gain contributions. *)
let rederive_net ?on_delta ?silent t e =
  let base = t.k * e in
  for q = 0 to t.k - 1 do
    t.pins_on.(base + q) <- 0
  done;
  let pins = t.g.net_pins.(e) in
  for i = 0 to t.g.net_size.(e) - 1 do
    let slot = base + t.side.(pins.(i)) in
    t.pins_on.(slot) <- t.pins_on.(slot) + 1
  done;
  let spans = ref 0 in
  for q = 0 to t.k - 1 do
    if t.pins_on.(base + q) > 0 then incr spans
  done;
  t.spans.(e) <- !spans;
  if !spans >= 2 then t.cut <- t.cut + t.g.net_weight.(e);
  add_net_terms ?on_delta ?silent t e 1

let net_will_change t e = retract_net t e
let net_changed t e = rederive_net t e

let create ?(net_threshold = 200) g ~k ~members side =
  let n = Array.length g.mod_deg and m = Array.length g.net_size in
  let t =
    {
      g;
      k;
      thr = net_threshold;
      side;
      pins_on = Array.make (k * m) 0;
      spans = Array.make m 0;
      part_areas = Array.make k 0;
      penalty = Array.make n 0;
      benefit = Array.make (k * n) 0;
      cut = 0;
    }
  in
  Array.iter
    (fun v -> t.part_areas.(side.(v)) <- t.part_areas.(side.(v)) + g.areas.(v))
    members;
  for e = 0 to m - 1 do
    rederive_net t e
  done;
  t

let k t = t.k
let side t v = t.side.(v)
let side_array t = t.side
let cut t = t.cut
let part_area t p = t.part_areas.(p)
let area t v = t.g.areas.(v)
let gain t v q = t.benefit.((t.k * v) + q) - t.penalty.(v)

let move ?on_delta t v q =
  let p = t.side.(v) in
  if p <> q then begin
    let nets = t.g.mod_nets.(v) and deg = t.g.mod_deg.(v) in
    for i = 0 to deg - 1 do
      retract_net ?on_delta ~silent:v t nets.(i)
    done;
    t.side.(v) <- q;
    let a = t.g.areas.(v) in
    t.part_areas.(p) <- t.part_areas.(p) - a;
    t.part_areas.(q) <- t.part_areas.(q) + a;
    for i = 0 to deg - 1 do
      rederive_net ?on_delta ~silent:v t nets.(i)
    done
  end

let activate t v ~part = t.side.(v) <- part

let recompute_gain t v q =
  let p = t.side.(v) in
  let total = ref 0 in
  for i = 0 to t.g.mod_deg.(v) - 1 do
    let e = t.g.mod_nets.(v).(i) in
    let s = t.g.net_size.(e) in
    if s <= t.thr then begin
      let w = t.g.net_weight.(e) in
      let base = t.k * e in
      if t.pins_on.(base + p) = s then total := !total - w;
      if t.pins_on.(base + p) = 1 && t.pins_on.(base + q) = s - 1 then
        total := !total + w
    end
  done;
  !total

let recompute_cut t =
  let total = ref 0 in
  for e = 0 to Array.length t.g.net_size - 1 do
    let base = t.k * e in
    let spans = ref 0 in
    for q = 0 to t.k - 1 do
      if t.pins_on.(base + q) > 0 then incr spans
    done;
    if !spans >= 2 then total := !total + t.g.net_weight.(e)
  done;
  !total
