(** Direct k-way gain cache over a mutable pin-list hypergraph view.

    The cache maintains, for every module [v] and target part [q], the exact
    net-cut gain of moving [v] to [q], decomposed KaHyPar-style into

    - a penalty [p(v)]: total weight of nets of [v] entirely inside [v]'s
      part (moving [v] anywhere newly cuts them), and
    - a benefit [b(v, q)]: total weight of nets of [v] whose only pin in
      [v]'s part is [v] and whose remaining pins all sit in [q] (moving
      [v] to [q] uncuts them),

    with [gain v q = b(v, q) - p(v)].  Nets larger than [net_threshold] are
    invisible to gains but still tracked for the incremental cut.

    The backing {!graph} is a growable pins/incidence view (arrays of
    arrays with live-prefix lengths) rather than the immutable CSR, because
    the n-level engine contracts and uncontracts one vertex at a time: pin
    lists shrink and grow between moves.  {!graph_of_hypergraph} copies a
    CSR netlist into that form.

    All updates are deltas.  A {!move} re-derives only the terms of the
    nets incident to the moved module; structural edits (a pin appearing or
    being renamed during uncontraction) are bracketed by
    {!net_will_change} / {!net_changed}, which retract and re-derive one
    net's contributions.  Nothing is ever recomputed whole-graph after
    {!create}; {!recompute_gain} exists so property tests can check the
    cached values against a from-scratch computation. *)

(** Mutable hypergraph view shared between the cache and its owner (the
    n-level hierarchy).  [net_pins.(e).(0 .. net_size.(e) - 1)] are the live
    pins of net [e] (distinct, alive modules); [mod_nets.(v).(0 ..
    mod_deg.(v) - 1)] the live incident nets of [v].  Owners may mutate
    live prefixes only through the bracketing protocol above. *)
type graph = {
  areas : int array;
  net_pins : int array array;
  net_size : int array;
  net_weight : int array;
  mod_nets : int array array;
  mod_deg : int array;
}

val graph_of_hypergraph : Mlpart_hypergraph.Hypergraph.t -> graph
(** Fresh mutable copy of a netlist's CSR structure. *)

type t

val create :
  ?net_threshold:int -> graph -> k:int -> members:int array -> int array -> t
(** [create g ~k ~members side] builds the cache for the current live
    structure of [g].  [members] lists the alive modules (for part areas);
    [side] is borrowed — the cache owns all writes to it from then on.
    Entries of modules not in [members] must not be queried until the
    module is brought in via {!activate}. *)

val k : t -> int
val side : t -> int -> int
val side_array : t -> int array
(** The borrowed assignment array (live; copy before publishing). *)

val cut : t -> int
(** Current weighted cut, maintained incrementally. *)

val part_area : t -> int -> int

val area : t -> int -> int
(** Current area of a module (reads the shared {!graph} array, which the
    owner updates as contractions merge and uncontractions split areas). *)

val gain : t -> int -> int -> int
(** [gain t v q] is the cached net-cut gain of moving [v] to part [q]
    ([q <> side t v]). *)

val move : ?on_delta:(int -> int -> int -> unit) -> t -> int -> int -> unit
(** [move t v q] moves [v] to part [q], updating the assignment, part
    areas, per-net span counts, the cut, and every cached gain entry
    touched by the move.  [on_delta w r d] is called for each other module
    [w] whose cached [gain w r] changed by [d] (once per contributing net
    term; deltas for the moved module itself are not reported). *)

(** {1 Structural edits (uncontraction)} *)

val activate : t -> int -> part:int -> unit
(** Bring a restored module into the partition at [part].  Its cache
    entries must be vacuously zero (true for a module contracted away
    before {!create}, the n-level case). *)

val net_will_change : t -> int -> unit
(** Retract net [e]'s contributions (gain terms and cut) ahead of a
    structural edit to its live pins. *)

val net_changed : t -> int -> unit
(** Re-derive net [e]'s span counts, cut term and gain contributions from
    its current live pins, after a structural edit announced by
    {!net_will_change}. *)

(** {1 Verification} *)

val recompute_gain : t -> int -> int -> int
(** From-scratch gain of moving [v] to [q], computed by sweeping [v]'s
    nets; the cached {!gain} must always equal it. *)

val recompute_cut : t -> int
(** From-scratch weighted cut over all nets. *)
