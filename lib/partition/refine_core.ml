type ops = {
  select : unit -> int;
  commit : int -> int;
  undo : int -> unit;
  rebuild : first_bad:int -> kept:int -> unit;
}

type pass = { gain : int; moves : int; rolled_back : int }

let run_pass ~order ?early_exit ?backtrack ops =
  let moved = ref 0 in
  let cum = ref 0 in
  let best = ref 0 in
  let best_count = ref 0 in
  let backtracks = ref 0 in
  let continue = ref true in
  while !continue do
    let v = ops.select () in
    if v < 0 then continue := false
    else begin
      let g = ops.commit v in
      order.(!moved) <- v;
      incr moved;
      cum := !cum + g;
      if !cum > !best then begin
        best := !cum;
        best_count := !moved
      end
      else begin
        let non_improving = !moved - !best_count in
        (match early_exit with
        | Some k when non_improving >= k -> continue := false
        | Some _ | None -> ());
        match backtrack with
        | Some (window, limit) when non_improving >= window && !backtracks < limit
          ->
            incr backtracks;
            (* Undo the losing streak, then let the host freeze its first
               module and rebuild selection structures. *)
            let first_bad = order.(!best_count) in
            for i = !moved - 1 downto !best_count do
              ops.undo order.(i)
            done;
            moved := !best_count;
            cum := !best;
            ops.rebuild ~first_bad ~kept:!moved
        | Some _ | None -> ()
      end
    end
  done;
  (* Keep only the best prefix; what gets undone is the rollback depth. *)
  let rolled_back = !moved - !best_count in
  for i = !moved - 1 downto !best_count do
    ops.undo order.(i)
  done;
  { gain = !best; moves = !moved; rolled_back }

let drive ~max_passes f =
  let passes = ref 0 in
  let moves = ref 0 in
  let improving = ref true in
  while !improving && !passes < max_passes do
    let p = f ~pass:(!passes + 1) in
    incr passes;
    moves := !moves + p.moves;
    if p.gain <= 0 then improving := false
  done;
  (!passes, !moves)
