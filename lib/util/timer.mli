(** CPU and wall timing primitives.

    Per-phase pipeline accounting lives in the observability layer
    ([Mlpart_obs.Trace] spans) — this module is only the raw clocks used
    by the experiment harness's CPU-seconds columns. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    processor seconds. *)

val now : unit -> float
(** Processor time in seconds since program start ([Sys.time]). *)

val now_wall : unit -> float
(** Wall-clock time in seconds ([Unix.gettimeofday]).  Prefer this around
    code that fans out over domains: processor time sums over all cores. *)

val time_wall : (unit -> 'a) -> 'a * float
(** Like {!time} with the wall clock. *)
