(** CPU and wall timing, plus per-phase accumulators for the multilevel
    pipeline (coarsen / initial partition / refine). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    processor seconds. *)

val now : unit -> float
(** Processor time in seconds since program start ([Sys.time]). *)

val now_wall : unit -> float
(** Wall-clock time in seconds ([Unix.gettimeofday]).  Prefer this around
    code that fans out over domains: processor time sums over all cores. *)

val time_wall : (unit -> 'a) -> 'a * float
(** Like {!time} with the wall clock. *)

(** {1 Phase accounting} *)

type phase = Coarsen | Initial | Refine

type phases = {
  mutable coarsen : float;  (** clustering + induce, all levels *)
  mutable initial : float;  (** coarsest-netlist partitioning *)
  mutable refine : float;  (** projection + FM refinement, all levels *)
  mutable refine_levels : int;  (** refinement level count accumulated *)
}

val phases_create : unit -> phases
val phases_reset : phases -> unit

val add : phases -> phase -> float -> unit
(** Accumulate [dt] wall seconds against a phase.  [Refine] also bumps
    [refine_levels], so it is called once per refined level. *)

val record : phases -> phase -> (unit -> 'a) -> 'a
(** [record p phase f] runs [f] and charges its wall time to [phase]. *)

val total : phases -> float

val pp_phases : Format.formatter -> phases -> unit
(** One-line breakdown, e.g. for [Logs] debug output. *)
