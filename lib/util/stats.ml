(* Welford's online algorithm keeps the variance numerically stable for the
   long golem3-sized runs without storing observations. *)

type t = {
  mutable n : int;
  mutable mn : float;
  mutable mx : float;
  mutable mean : float;
  mutable m2 : float;
}

let create () = { n = 0; mn = infinity; mx = neg_infinity; mean = 0.0; m2 = 0.0 }

let add t x =
  t.n <- t.n + 1;
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean))

let count t = t.n

let ensure_nonempty t name =
  if t.n = 0 then invalid_arg (Printf.sprintf "Stats.%s: empty accumulator" name)

let min t =
  ensure_nonempty t "min";
  t.mn

let max t =
  ensure_nonempty t "max";
  t.mx

let mean t =
  ensure_nonempty t "mean";
  t.mean

(* Guarded against the two ways this can go [nan]: fewer than two samples
   (m2 meaningless) and cancellation driving m2 fractionally negative. *)
let stddev t =
  if t.n < 2 then 0.0
  else
    let v = t.m2 /. float_of_int t.n in
    if v > 0.0 then sqrt v else 0.0

let std = stddev

let std_of_moments ~n ~sum ~sumsq =
  if n < 2 then 0.0
  else
    let nf = float_of_int n in
    let mean = sum /. nf in
    let v = (sumsq /. nf) -. (mean *. mean) in
    if v > 0.0 then sqrt v else 0.0

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let summary t =
  if t.n = 0 then "(empty)"
  else Printf.sprintf "%.1f/%.1f/%.1f" (min t) (mean t) (stddev t)
