(* A minimal fork-join domain pool.  Workers block on a condition variable
   between jobs; a job is a closure every participant (workers and the
   caller) runs until an atomic chunk counter is exhausted.  Determinism
   comes from writing results at input indices, never from scheduling. *)

type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable epoch : int; (* bumped per job; workers wait for a new epoch *)
  mutable job : (int -> unit) option; (* argument is the participant slot *)
  mutable pending : int; (* workers still running the current job *)
  mutable stopping : bool;
  mutable error : exn option;
  mutable domains : unit Domain.t list;
}

let size t = t.size

let record_error t exn =
  Mutex.lock t.mutex;
  if t.error = None then t.error <- Some exn;
  Mutex.unlock t.mutex

let rec worker_loop t ~slot last_epoch =
  Mutex.lock t.mutex;
  while (not t.stopping) && t.epoch = last_epoch do
    Condition.wait t.work_ready t.mutex
  done;
  if t.stopping then Mutex.unlock t.mutex
  else begin
    let epoch = t.epoch in
    let job = Option.get t.job in
    Mutex.unlock t.mutex;
    (try job slot with exn -> record_error t exn);
    Mutex.lock t.mutex;
    t.pending <- t.pending - 1;
    if t.pending = 0 then Condition.broadcast t.work_done;
    Mutex.unlock t.mutex;
    worker_loop t ~slot epoch
  end

let create ~jobs =
  let size = Stdlib.max 1 jobs in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      epoch = 0;
      job = None;
      pending = 0;
      stopping = false;
      error = None;
      domains = [];
    }
  in
  t.domains <-
    List.init (size - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t ~slot:(i + 1) 0));
  t

let shutdown t =
  Mutex.lock t.mutex;
  if t.job <> None then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.shutdown: pool is busy"
  end;
  t.stopping <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

(* Run [job] on every participant; the caller is one of them.  Blocks until
   all workers have finished, then re-raises the first recorded exception. *)
let run_job t job =
  if t.size = 1 then job 0
  else begin
    let t0 = Probe.begin_span () in
    if Probe.recording () then Probe.add "pool.jobs" 1;
    Mutex.lock t.mutex;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: pool is shut down"
    end;
    t.job <- Some job;
    t.pending <- t.size - 1;
    t.epoch <- t.epoch + 1;
    t.error <- None;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    (try job 0 with exn -> record_error t exn);
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.work_done t.mutex
    done;
    t.job <- None;
    let err = t.error in
    t.error <- None;
    (* wake anyone blocked in [await_idle] (drain paths, the at_exit join) *)
    Condition.broadcast t.work_done;
    Mutex.unlock t.mutex;
    if t0 <> 0 then
      Probe.end_span ~cat:"pool" ~name:"pool/job" ~t0
        ~args:[ ("participants", t.size) ];
    match err with Some exn -> raise exn | None -> ()
  end

(* Deterministic chunking: chunk boundaries are a pure function of the work
   size [n] — never of the pool size — so any algorithm that aggregates
   per-chunk results in chunk order produces output independent of [--jobs].
   The floor of 64 amortises the atomic fetch per chunk; the 64-way split
   keeps enough chunks in flight to balance uneven work at any realistic
   pool size. *)
let chunk_size ~n = if n <= 0 then 1 else Stdlib.max 64 ((n + 63) / 64)

let chunk_bounds ~n =
  if n <= 0 then [||]
  else begin
    let cs = chunk_size ~n in
    let nchunks = (n + cs - 1) / cs in
    Array.init nchunks (fun c -> (c * cs, Stdlib.min n ((c + 1) * cs)))
  end

let parallel_for ?chunk t ~start ~stop ~body =
  let len = stop - start in
  if len <= 0 then ()
  else if t.size = 1 then
    for i = start to stop - 1 do
      body i
    done
  else begin
    let chunk =
      match chunk with
      | Some c -> Stdlib.max 1 c
      | None -> chunk_size ~n:len
    in
    (* Queue occupancy and chunking choices are recorded per call; chunk
       execution gets a span and a duration sample.  All of it is probed
       through {!Probe}, so a build without the obs layer (or with
       tracing/metrics off) pays one function-reference call per chunk. *)
    if Probe.recording () then begin
      Probe.add "pool.parallel_for" 1;
      Probe.sample "pool.queue_depth" ((len + chunk - 1) / chunk);
      Probe.sample "pool.chunk_size" chunk
    end;
    let next = Atomic.make start in
    (* Shared cancellation flag: the first chunk whose body raises flips it,
       and every participant (including the raiser's siblings mid-job) stops
       taking chunks instead of grinding through the rest of the range.  The
       exception itself still propagates through [run_job]'s error slot. *)
    let cancelled = Atomic.make false in
    run_job t (fun _ ->
        let continue = ref true in
        while !continue && not (Atomic.get cancelled) do
          let lo = Atomic.fetch_and_add next chunk in
          if lo >= stop then continue := false
          else begin
            let hi = Stdlib.min stop (lo + chunk) in
            let t0 = Probe.begin_span () in
            if Probe.recording () then Probe.add "pool.chunks" 1;
            try
              for i = lo to hi - 1 do
                body i
              done;
              if t0 <> 0 then
                Probe.end_span ~cat:"pool" ~name:"pool/chunk" ~t0
                  ~args:[ ("lo", lo); ("hi", hi) ]
            with exn ->
              Atomic.set cancelled true;
              raise exn
          end
        done)
  end

let parallel_chunks t ~n ~body =
  if n > 0 then begin
    let cs = chunk_size ~n in
    let nchunks = (n + cs - 1) / cs in
    if t.size = 1 || nchunks = 1 then
      for c = 0 to nchunks - 1 do
        body ~slot:0 ~lo:(c * cs) ~hi:(Stdlib.min n ((c + 1) * cs))
      done
    else begin
      if Probe.recording () then begin
        Probe.add "pool.parallel_chunks" 1;
        Probe.sample "pool.queue_depth" nchunks;
        Probe.sample "pool.chunk_size" cs
      end;
      let next = Atomic.make 0 in
      let cancelled = Atomic.make false in
      run_job t (fun slot ->
          let continue = ref true in
          while !continue && not (Atomic.get cancelled) do
            let c = Atomic.fetch_and_add next 1 in
            if c >= nchunks then continue := false
            else begin
              let lo = c * cs and hi = Stdlib.min n ((c + 1) * cs) in
              let t0 = Probe.begin_span () in
              if Probe.recording () then Probe.add "pool.chunks" 1;
              try
                body ~slot ~lo ~hi;
                if t0 <> 0 then
                  Probe.end_span ~cat:"pool" ~name:"pool/chunk" ~t0
                    ~args:[ ("lo", lo); ("hi", hi) ]
              with exn ->
                Atomic.set cancelled true;
                raise exn
            end
          done)
    end
  end

(* Exclusive prefix sum: [dst.(0) = 0], [dst.(i+1) = dst.(i) + src.(i)];
   returns the total.  [dst] must have room for [n + 1] entries.  Chunk
   partials are combined in chunk index order, so the result is the exact
   sequential scan whatever the pool size. *)
let parallel_scan t ~n ~src ~dst =
  if n <= 0 then begin
    if Array.length dst > 0 then dst.(0) <- 0;
    0
  end
  else begin
    let cs = chunk_size ~n in
    let nchunks = (n + cs - 1) / cs in
    if t.size = 1 || nchunks = 1 then begin
      dst.(0) <- 0;
      for i = 0 to n - 1 do
        dst.(i + 1) <- dst.(i) + src.(i)
      done;
      dst.(n)
    end
    else begin
      let partial = Array.make nchunks 0 in
      parallel_chunks t ~n ~body:(fun ~slot:_ ~lo ~hi ->
          let s = ref 0 in
          for i = lo to hi - 1 do
            s := !s + src.(i)
          done;
          partial.((lo / cs)) <- !s);
      let base = Array.make nchunks 0 in
      for c = 1 to nchunks - 1 do
        base.(c) <- base.(c - 1) + partial.(c - 1)
      done;
      parallel_chunks t ~n ~body:(fun ~slot:_ ~lo ~hi ->
          let acc = ref base.(lo / cs) in
          if lo = 0 then dst.(0) <- 0;
          for i = lo to hi - 1 do
            acc := !acc + src.(i);
            dst.(i + 1) <- !acc
          done);
      dst.(n)
    end
  end

let map t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ~chunk:1 t ~start:0 ~stop:n ~body:(fun i -> out.(i) <- Some (f a.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_reduce t ~map:f ~reduce ~init a = Array.fold_left reduce init (map t f a)

let recommended_jobs () = Domain.recommended_domain_count ()

let shared = ref None

(* Wait until no job is in flight.  [patience] bounds the wait in seconds
   ([None] waits indefinitely); returns whether the pool is idle.  Polling
   (rather than a bare condition wait) is deliberate for the bounded case:
   OCaml's [Condition] has no timed wait, and the at_exit caller must not
   hang process teardown when the in-flight job can never finish — e.g. an
   [exit] raised from a signal handler that interrupted [run_job] on this
   very domain, leaving the job-clearing code unreachable below us. *)
let await_idle ?patience t =
  let deadline =
    Option.map (fun s -> Unix.gettimeofday () +. s) patience
  in
  let rec loop () =
    Mutex.lock t.mutex;
    let idle = t.job = None in
    Mutex.unlock t.mutex;
    if idle then true
    else
      match deadline with
      | Some d when Unix.gettimeofday () >= d -> false
      | Some _ | None ->
          Unix.sleepf 0.001;
          loop ()
  in
  loop ()

(* Join the shared pool's domains at process exit so a program that only
   ever used [get] terminates cleanly instead of leaking blocked domains.
   Exit may arrive while a job is mid-flight (SIGTERM during a request):
   give the job a bounded chance to complete so the workers can be joined
   rather than leaked.  A server's drain path should already have called
   [drain_shared], making this hook instant; the patience is the backstop
   for exits that skipped the drain. *)
let at_exit_registered = ref false

let register_shared_at_exit () =
  if not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit (fun () ->
        match !shared with
        | Some t when not t.stopping ->
            if await_idle ~patience:2.0 t then (try shutdown t with _ -> ())
        | Some _ | None -> ())
  end

let drain_shared () =
  match !shared with
  | None -> ()
  | Some t ->
      if not t.stopping then begin
        ignore (await_idle t : bool);
        shutdown t
      end;
      shared := None

let get ~jobs =
  let jobs = Stdlib.max 1 jobs in
  match !shared with
  | Some t when t.size = jobs && not t.stopping -> t
  | prev ->
      (match prev with Some t -> shutdown t | None -> ());
      register_shared_at_exit ();
      let t = create ~jobs in
      shared := Some t;
      t

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
