let trace_on : (unit -> bool) ref = ref (fun () -> false)
let metrics_on : (unit -> bool) ref = ref (fun () -> false)
let span_begin : (unit -> int) ref = ref (fun () -> 0)

let span_end :
    (cat:string -> name:string -> t0:int -> args:(string * int) list -> unit) ref =
  ref (fun ~cat:_ ~name:_ ~t0:_ ~args:_ -> ())

let count : (string -> int -> unit) ref = ref (fun _ _ -> ())
let observe : (string -> int -> unit) ref = ref (fun _ _ -> ())
let tracing () = !trace_on ()
let recording () = !metrics_on ()
let begin_span () = !span_begin ()
let end_span ~cat ~name ~t0 ~args = !span_end ~cat ~name ~t0 ~args
let add name v = !count name v
let sample name v = !observe name v
