(** Instrumentation seam between util internals and the observability
    layer.

    [Mlpart_util] sits below [Mlpart_obs], so {!Pool} cannot call the
    trace/metrics recorders directly.  Instead it records through these
    function references, which default to null sinks; [Mlpart_obs.Trace]
    and [Mlpart_obs.Metrics] install themselves here at module
    initialisation whenever they are linked into the program.  An
    executable that never links the obs layer pays one reference call per
    probe site and records nothing. *)

val trace_on : (unit -> bool) ref
val metrics_on : (unit -> bool) ref

val span_begin : (unit -> int) ref
(** Monotonic nanosecond timestamp, or [0] when tracing is disabled. *)

val span_end :
  (cat:string -> name:string -> t0:int -> args:(string * int) list -> unit) ref
(** Record a complete span from a {!span_begin} token.  Only call when
    [t0 <> 0] so the [args] list is never built on the disabled path. *)

val count : (string -> int -> unit) ref
(** Add to a named counter. *)

val observe : (string -> int -> unit) ref
(** Observe into a named histogram (default buckets). *)

(** Convenience wrappers used by instrumented util code. *)

val tracing : unit -> bool
val recording : unit -> bool

val begin_span : unit -> int
val end_span : cat:string -> name:string -> t0:int -> args:(string * int) list -> unit
val add : string -> int -> unit
val sample : string -> int -> unit
