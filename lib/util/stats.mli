(** Streaming min / max / mean / standard-deviation accumulators.

    Every table of the paper reports minimum, average and standard deviation
    over repeated runs; this module provides the single-pass accumulator used
    by the whole experiment harness. *)

type t
(** Mutable accumulator. *)

val create : unit -> t

val add : t -> float -> unit
(** Record one observation. *)

val count : t -> int

val min : t -> float
(** Minimum observation; raises [Invalid_argument] when empty. *)

val max : t -> float
(** Maximum observation; raises [Invalid_argument] when empty. *)

val mean : t -> float
(** Arithmetic mean; raises [Invalid_argument] when empty. *)

val stddev : t -> float
(** Population standard deviation (the paper reports spread of all runs).
    Never [nan]: single-sample and empty accumulators return [0.], and
    floating-point cancellation that drives the running second moment
    fractionally negative is clamped to [0.] before the square root. *)

val std : t -> float
(** Alias of {!stddev}. *)

val std_of_moments : n:int -> sum:float -> sumsq:float -> float
(** Population standard deviation from raw moments, with the same
    guarantees as {!stddev} ([0.] for [n < 2], clamped against
    cancellation).  The metrics histograms aggregate integer moments
    across domains and reuse this path at export time. *)

val of_list : float list -> t

val summary : t -> string
(** ["min/avg/std"] rendering used in log lines. *)
