(* SplitMix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014).  Chosen for statistical quality at trivial
   implementation cost and because the state is a single int64, making
   [split] and [copy] cheap. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let stream t i =
  if i < 0 then invalid_arg "Rng.stream: negative stream index";
  (* Random access into the family of generators that [split] would reach
     by repeated draws, without consuming anything from [t]: jump the
     SplitMix64 state ahead by [i + 1] gammas (the state walk is additive,
     so the jump is O(1)) and mix, exactly as one [bits64] draw would.
     Mixing decorrelates neighbouring indices. *)
  let z = Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (i + 1))) in
  { state = mix z }

let int t bound =
  assert (bound > 0);
  let mask = max_int in
  let v = Int64.to_int (bits64 t) land mask in
  v mod bound

let float t bound =
  (* 53 uniform mantissa bits. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  a
