(** Deterministic pseudo-random number generation.

    A small, fast SplitMix64 generator.  Every randomised algorithm in this
    repository threads an explicit [Rng.t] so that experiments are exactly
    reproducible from a seed, independent of the global [Random] state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] draws from [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream.  Used to give
    each run of a multi-run experiment its own generator. *)

val stream : t -> int -> t
(** [stream t i] is the [i]-th sub-generator of [t]'s current state: equal
    states and equal indices always yield equal streams, distinct indices
    yield independent ones, and [t] itself is not advanced.  The O(1)
    random-access counterpart of calling {!split} [i + 1] times — the
    property-testing harness uses it to re-derive the generator of case [i]
    directly from a replay token.  Raises [Invalid_argument] if [i < 0]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of [0 .. n-1]. *)
