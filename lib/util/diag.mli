(** Typed diagnostics — the single error currency of the library.

    Every ingestion and validation boundary (file parsers, hypergraph
    invariant checks, the CLI) reports problems as {!t} values instead of
    free-form [Failure] strings, so callers can match on the {!code},
    count severities, and render one structured line per issue.  The one
    exception used across library boundaries is {!Mlpart_error}; nothing
    in the library raises bare [Failure] for malformed input anymore.

    Diagnostic classes map onto the CLI's documented exit codes
    (see {!exit_code}): 2 usage, 3 parse error, 4 invariant violation,
    5 timeout, 6 server overload (retry later). *)

type severity = Warning | Error

type code =
  | Bad_header  (** malformed or missing header line *)
  | Bad_token  (** token where an integer/name was expected *)
  | Truncated  (** input ended before the declared content *)
  | Count_mismatch  (** declared pin/net/weight counts disagree with content *)
  | Pin_out_of_range  (** pin index outside the declared module range *)
  | Duplicate_pin  (** the same module listed twice in one net *)
  | Singleton_net  (** net with fewer than two distinct pins *)
  | Empty_net  (** net with no pins at all *)
  | Bad_module_name  (** netD module name not of the form [aN]/[pN] *)
  | Pad_offset  (** netD cell/pad index violating the header's pad offset *)
  | Bad_area  (** non-positive or non-integer module area *)
  | Bad_weight  (** non-positive net weight *)
  | Bad_part  (** malformed entry in a part-assignment file *)
  | Invariant  (** internal hypergraph invariant violated *)
  | Timeout  (** cooperative deadline expired *)
  | Usage  (** command-line misuse *)
  | Io_error  (** OS-level read/write failure *)
  | Queue_full
      (** serve-mode admission control shed this request (queue at
          capacity or per-client in-flight cap); the carrying message
          names a retry-after hint *)
  | Cache_evicted
      (** serve-mode hierarchy cache dropped an entry (LRU pressure or a
          checksum mismatch); always [Warning] severity — an event, not a
          failure *)

type t = {
  source : string;  (** file name, benchmark name, or subsystem *)
  line : int;  (** 1-based line number; 0 when not line-addressable *)
  code : code;
  severity : severity;
  message : string;
}

exception Mlpart_error of t list
(** The library-boundary exception.  Always carries at least one
    [Error]-severity diagnostic. *)

val code_name : code -> string
(** Stable kebab-case name, e.g. [Pin_out_of_range] -> ["pin-out-of-range"].
    Part of the CLI output contract; tests golden-match on it. *)

val make :
  ?line:int -> severity:severity -> source:string -> code ->
  ('a, unit, string, t) format4 -> 'a
(** [make ~severity ~source code fmt ...] builds a diagnostic with a
    printf-formatted message. *)

val error : ?line:int -> source:string -> code -> ('a, unit, string, t) format4 -> 'a
val warning : ?line:int -> source:string -> code -> ('a, unit, string, t) format4 -> 'a

val fail : ?line:int -> source:string -> code -> ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Mlpart_error} with a single [Error] diagnostic. *)

val of_sys_error : source:string -> string -> t
(** [Io_error] diagnostic from a [Sys_error] message.  [Sys_error] payloads
    usually lead with the offending path; when it equals [source] the prefix
    is stripped so the rendered line does not repeat it. *)

val to_string : t -> string
(** One structured line: ["error[pin-out-of-range] foo.hgr:12: pin 9 out of
    range 1..4"].  The line number is omitted when 0. *)

val pp : Format.formatter -> t -> unit

val errors : t list -> t list
(** The [Error]-severity subset, in order. *)

val exit_code : t list -> int
(** Documented CLI exit code for a diagnostic set: 2 if any [Usage], else
    6 if any [Queue_full], else 5 if any [Timeout], else 4 if any
    [Invariant], else 3 (parse/I-O).  Call with a non-empty list. *)
