(** Cooperative wall-clock deadlines.

    A deadline is checked, never enforced: long-running drivers poll
    {!check} at natural safe points (between multi-start runs, between
    V-cycles, between placement regions) and wind down with their best
    result so far when it returns [true].  Nothing is interrupted
    mid-algorithm, so determinism of completed work is unaffected — a
    timed-out run reports exactly the runs that finished.

    A deadline latches: once {!check} has returned [true], {!expired}
    stays [true], so drivers can consult it after the fact to flag the
    result. *)

type t

val make : seconds:float -> t
(** [make ~seconds] is a deadline [seconds] from now.  Non-positive
    [seconds] yields a deadline that is already expired. *)

val check : t -> bool
(** [true] once the wall clock has passed the deadline (latches). *)

val expired : t -> bool
(** Whether {!check} ever returned [true] (does not itself re-read the
    clock). *)

val remaining : t -> float
(** Seconds until expiry; negative once past. *)
