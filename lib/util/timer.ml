(* Sys.time reports processor time, matching the "CPU seconds" columns of
   the paper rather than wall-clock latency. *)

let now () = Sys.time ()

let time f =
  let start = now () in
  let result = f () in
  (result, now () -. start)

(* Wall-clock time for phase breakdowns: with worker domains running,
   process CPU time double-counts, so latency accounting uses the real
   clock. *)
let now_wall () = Unix.gettimeofday ()

let time_wall f =
  let start = now_wall () in
  let result = f () in
  (result, now_wall () -. start)

(* Per-phase accumulators for the multilevel pipeline. *)

type phase = Coarsen | Initial | Refine

type phases = {
  mutable coarsen : float;
  mutable initial : float;
  mutable refine : float;
  mutable refine_levels : int;
}

let phases_create () =
  { coarsen = 0.0; initial = 0.0; refine = 0.0; refine_levels = 0 }

let phases_reset p =
  p.coarsen <- 0.0;
  p.initial <- 0.0;
  p.refine <- 0.0;
  p.refine_levels <- 0

let add p phase dt =
  match phase with
  | Coarsen -> p.coarsen <- p.coarsen +. dt
  | Initial -> p.initial <- p.initial +. dt
  | Refine ->
      p.refine <- p.refine +. dt;
      p.refine_levels <- p.refine_levels + 1

let record p phase f =
  let start = now_wall () in
  let result = f () in
  add p phase (now_wall () -. start);
  result

let total p = p.coarsen +. p.initial +. p.refine

let pp_phases ppf p =
  Format.fprintf ppf
    "coarsen %.4fs, initial %.4fs, refine %.4fs over %d levels (total %.4fs)"
    p.coarsen p.initial p.refine p.refine_levels (total p)
