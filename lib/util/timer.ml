(* Sys.time reports processor time, matching the "CPU seconds" columns of
   the paper rather than wall-clock latency. *)

let now () = Sys.time ()

let time f =
  let start = now () in
  let result = f () in
  (result, now () -. start)

(* Wall-clock time for latency accounting: with worker domains running,
   process CPU time double-counts, so latency uses the real clock. *)
let now_wall () = Unix.gettimeofday ()

let time_wall f =
  let start = now_wall () in
  let result = f () in
  (result, now_wall () -. start)
