type severity = Warning | Error

type code =
  | Bad_header
  | Bad_token
  | Truncated
  | Count_mismatch
  | Pin_out_of_range
  | Duplicate_pin
  | Singleton_net
  | Empty_net
  | Bad_module_name
  | Pad_offset
  | Bad_area
  | Bad_weight
  | Bad_part
  | Invariant
  | Timeout
  | Usage
  | Io_error
  | Queue_full
  | Cache_evicted

type t = {
  source : string;
  line : int;
  code : code;
  severity : severity;
  message : string;
}

exception Mlpart_error of t list

let code_name = function
  | Bad_header -> "bad-header"
  | Bad_token -> "bad-token"
  | Truncated -> "truncated"
  | Count_mismatch -> "count-mismatch"
  | Pin_out_of_range -> "pin-out-of-range"
  | Duplicate_pin -> "duplicate-pin"
  | Singleton_net -> "singleton-net"
  | Empty_net -> "empty-net"
  | Bad_module_name -> "bad-module-name"
  | Pad_offset -> "pad-offset"
  | Bad_area -> "bad-area"
  | Bad_weight -> "bad-weight"
  | Bad_part -> "bad-part"
  | Invariant -> "invariant"
  | Timeout -> "timeout"
  | Usage -> "usage"
  | Io_error -> "io-error"
  | Queue_full -> "queue-full"
  | Cache_evicted -> "cache-evicted"

let make ?(line = 0) ~severity ~source code fmt =
  Printf.ksprintf (fun message -> { source; line; code; severity; message }) fmt

let error ?line ~source code fmt = make ?line ~severity:Error ~source code fmt
let warning ?line ~source code fmt = make ?line ~severity:Warning ~source code fmt

let fail ?line ~source code fmt =
  Printf.ksprintf
    (fun message ->
      raise
        (Mlpart_error
           [ { source; line = Option.value line ~default:0; code;
               severity = Error; message } ]))
    fmt

let of_sys_error ~source msg =
  let prefix = source ^ ": " in
  let message =
    if source <> "" && String.starts_with ~prefix msg then
      String.sub msg (String.length prefix) (String.length msg - String.length prefix)
    else msg
  in
  { source; line = 0; code = Io_error; severity = Error; message }

let to_string d =
  let sev = match d.severity with Warning -> "warning" | Error -> "error" in
  let where =
    match (d.source, d.line) with
    | "", 0 -> ""
    | "", l -> Printf.sprintf "line %d: " l
    | s, 0 -> s ^ ": "
    | s, l -> Printf.sprintf "%s:%d: " s l
  in
  Printf.sprintf "%s[%s] %s%s" sev (code_name d.code) where d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)

let errors ds = List.filter (fun d -> d.severity = Error) ds

let exit_code ds =
  let has c = List.exists (fun d -> d.code = c) ds in
  if has Usage then 2
  else if has Queue_full then 6
  else if has Timeout then 5
  else if has Invariant then 4
  else 3

(* [Mlpart_error] must render usefully when it escapes to the toplevel
   (e.g. in library clients without a boundary). *)
let () =
  Printexc.register_printer (function
    | Mlpart_error ds ->
        Some (String.concat "\n" (List.map to_string ds))
    | _ -> None)
