type t = { at : float; mutable hit : bool }

let now () = Unix.gettimeofday ()

let make ~seconds =
  let t = { at = now () +. seconds; hit = false } in
  if seconds <= 0.0 then t.hit <- true;
  t

let check t =
  if not t.hit then t.hit <- now () >= t.at;
  t.hit

let expired t = t.hit
let remaining t = t.at -. now ()
