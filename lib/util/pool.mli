(** Fixed-size domain pool for deterministic data parallelism.

    A pool owns [jobs - 1] worker domains (spawned once at {!create}) plus
    the calling domain, which participates in every operation.  Work is
    distributed by atomic chunk stealing, but results are always delivered
    in input order, so the outcome of {!map} and {!map_reduce} is
    independent of how chunks land on domains — callers that pre-split
    their RNG streams per item get bit-identical results for any pool
    size.

    Operations are {e not} reentrant: calling into the same pool from
    inside a [body] or mapped function deadlocks.  Parallelise at one
    level only (the outermost independent loop). *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [max 0 (jobs - 1)] worker domains.  [jobs <= 1]
    yields a sequential pool that runs everything on the caller. *)

val size : t -> int
(** Total parallelism including the calling domain (>= 1). *)

val shutdown : t -> unit
(** Join all worker domains.  The pool must be idle; further use raises. *)

val get : jobs:int -> t
(** Shared process-wide pool, (re)spawned only when the requested size
    changes — the "spawn once" entry point for harness code that is handed
    a jobs count repeatedly.  Not thread-safe; call from the orchestrating
    domain only.  The first call registers an [at_exit] hook that joins the
    shared pool's worker domains at process exit; if a job is still in
    flight at exit time (e.g. SIGTERM during a request) the hook waits a
    bounded ~2 s for it to finish before joining, so an exit that skipped
    {!drain_shared} degrades to a delayed join, not a leaked domain. *)

val drain_shared : unit -> unit
(** Drain-then-exit seam for long-running servers: wait (indefinitely) for
    any in-flight job on the shared {!get} pool to complete, join its
    worker domains, and clear the shared slot so a later {!get} respawns
    fresh.  No-op when no shared pool exists.  Call from a drain path that
    has stopped submitting work, before [exit] — then the [at_exit] join
    finds nothing left to do. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val chunk_bounds : n:int -> (int * int) array
(** [chunk_bounds ~n] is the deterministic chunk decomposition of [0, n):
    an array of [(lo, hi)] half-open ranges.  Boundaries are a pure
    function of [n] alone — never of the pool size — which is what makes
    per-chunk aggregation in chunk order independent of [--jobs].  Every
    chunked operation below uses exactly this decomposition (unless an
    explicit [?chunk] override is given to {!parallel_for}). *)

val parallel_for : ?chunk:int -> t -> start:int -> stop:int -> body:(int -> unit) -> unit
(** [parallel_for t ~start ~stop ~body] runs [body i] for [start <= i <
    stop] across the pool.  [chunk] overrides the contiguous block size
    handed to a domain at a time (default: the jobs-independent
    {!chunk_bounds} size for [stop - start]).  Exceptions in [body] are
    re-raised in the caller (first one wins); a raising body also flips a
    shared cancellation flag checked before every chunk, so the remaining
    chunks are abandoned early rather than run to completion.  An
    exception neither deadlocks the pool nor poisons it — the next
    operation on the same pool starts from a clean slate. *)

val parallel_chunks : t -> n:int -> body:(slot:int -> lo:int -> hi:int -> unit) -> unit
(** [parallel_chunks t ~n ~body] runs [body ~slot ~lo ~hi] once per chunk
    of {!chunk_bounds}[ ~n].  [slot] identifies the participating domain
    (caller = 0, workers = 1..size-1) and is only safe for indexing
    per-participant scratch whose contents never influence the output —
    which chunk lands on which slot is scheduling-dependent.  Cancellation
    and error semantics match {!parallel_for}. *)

val parallel_scan : t -> n:int -> src:int array -> dst:int array -> int
(** [parallel_scan t ~n ~src ~dst] writes the exclusive prefix sum of
    [src.(0 .. n-1)] into [dst] ([dst.(0) = 0], [dst.(i+1) = dst.(i) +
    src.(i)]) and returns the total [dst.(n)].  [dst] needs [n + 1]
    entries.  Chunk partials combine in chunk index order, so the result
    equals the sequential scan for any pool size. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with result order matching input order. *)

val map_reduce : t -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c -> 'a array -> 'c
(** Parallel map followed by a sequential in-order fold, so the reduction
    order (and hence any non-associative effects) is deterministic. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, including on exception. *)
