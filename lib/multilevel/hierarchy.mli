(** Shared coarsening-hierarchy construction for the multilevel drivers.

    Repeatedly applies {!Match} and {!Mlpart_hypergraph.Hypergraph.induce}
    until the netlist drops below a threshold, carrying pre-assigned
    (fixed) modules through the levels: fixed modules are never matched,
    and each coarse cluster inherits the pre-assignment of its (unique)
    fixed member. *)

type level = {
  netlist : Mlpart_hypergraph.Hypergraph.t;
  cluster_of : int array;
      (** maps this level's modules to the next-coarser level's modules *)
  fixed : int array option;  (** this level's pre-assignments, if any *)
}

type t = {
  levels : level list;  (** finest first; empty if no coarsening happened *)
  coarsest : Mlpart_hypergraph.Hypergraph.t;
  coarsest_fixed : int array option;
}

val build :
  threshold:int ->
  ratio:float ->
  match_net_size:int ->
  merge_duplicates:bool ->
  max_levels:int ->
  ?cluster_area_factor:float ->
  ?fixed:int array ->
  ?pair_ok:(int -> int -> bool) ->
  ?pool:Mlpart_util.Pool.t ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  t
(** [pair_ok] restricts matching beyond the fixed-module rule (used by
    V-cycles to keep clusters side-pure).  Coarsening stops early if a
    Match pass achieves no contraction.  [pool] parallelizes each level's
    match rating and induce; the hierarchy is bit-identical with and
    without it.

    Cluster areas are capped at [cluster_area_factor] (default 4.0) times
    the average module area of a threshold-sized netlist
    ([factor * A(V) / threshold]); without the cap, iterated matching lets
    one cluster snowball to most of the total area, leaving the coarsest
    netlist no balance freedom. *)

val project_fixed : int array -> int -> int array -> int array
(** [project_fixed cluster_of k fixed] lifts pre-assignments one level up:
    cluster [c] inherits the assignment of any fixed member. *)
