(** Direct k-way n-level partitioning engine.

    Where {!Hierarchy} coarsens in batched levels (one matching per level,
    one induced hypergraph each), this engine contracts a single vertex
    pair at a time, KaHyPar-style, recording a memento per contraction
    (the pair plus the pin-list deltas).  Uncoarsening replays the memento
    trail lazily in reverse — one vertex reappears per step — and runs
    highly localized refinement around each restored pair on top of a
    persistent {!Mlpart_partition.Gain_cache}, so gains are delta-updated
    across the whole uncoarsening instead of being rebuilt per level.  A
    final full k-way FM polish (shared {!Mlpart_partition.Refine_core}
    move loop) runs once the finest graph is restored.

    The engine is strictly sequential and deterministic: results depend
    only on the seed, never on a worker pool. *)

type config = {
  threshold : int;  (** stop contracting at [max threshold (2 k)] vertices *)
  max_net_size : int;  (** nets above this size are invisible to ratings *)
  cluster_area_factor : float;
      (** pair area cap = factor * total_area / threshold *)
  net_threshold : int;  (** gain-cache net-size threshold *)
  tolerance : float;  (** balance tolerance (paper's r), per part *)
  initial_starts : int;  (** multi-start count for the coarsest partition *)
  local_moves_cap : int;  (** move budget per uncontraction step *)
  final_passes : int;  (** max full FM passes at the finest level *)
}

val default : config

type result = {
  side : int array;
  cut : int;  (** weighted count of nets spanning >= 2 parts *)
  contractions : int;
  moves : int;  (** refinement moves kept (local + final passes) *)
}

val run :
  ?config:config ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  k:int ->
  result
(** [run rng h ~k] partitions [h] into [k >= 2] parts.  Deterministic in
    [rng]'s seed. *)

val cut_of : Mlpart_hypergraph.Hypergraph.t -> k:int -> int array -> int
(** Weighted multi-way cut of an assignment. *)

(** {1 Hierarchy internals (for property tests)}

    The contraction trail without any partitioning on top: build it, replay
    it, and compare the restored structure against the input. *)

type hierarchy

val coarsen_only :
  ?threshold:int ->
  ?max_net_size:int ->
  ?cluster_area_factor:float ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  hierarchy
(** Contract down to the threshold, recording the memento trail. *)

val uncontract_all : hierarchy -> unit
(** Replay the whole trail in reverse, restoring the input structure. *)

val num_alive : hierarchy -> int
val trail_length : hierarchy -> int
val is_alive : hierarchy -> int -> bool
val module_area : hierarchy -> int -> int

val live_net_pins : hierarchy -> int -> int array
(** Sorted live pins of net [e] (fresh array).  After {!uncontract_all}
    this must equal the input net's sorted pins for every net. *)
