(** The Match coarsening procedure (Figure 3 of the paper), run as
    synchronous proposal/commit rounds so it parallelizes with output
    bit-identical for any pool size.

    Each round, every active module [v] rates its feasible unmatched
    neighbours by the connectivity

    {v conn(v, w) = (1 / (A(v) A(w))) * Σ over shared nets of w(e) / (|e| - 1) v}

    (nets larger than [max_net_size] pins — 10 in the paper — are ignored)
    and proposes to the best one, ties broken towards the lowest rank in
    the seed permutation.  Rating reads only round-start state, so ranges
    of the active set are rated in parallel.  Proposals are then committed
    sequentially in (rating desc, rank asc) order — a total order
    independent of both visit order and chunk scheduling — skipping any
    proposal whose endpoint was already taken earlier in the same pass.
    Rounds repeat until the fraction of matched modules reaches the
    matching ratio [R] or no module has a feasible partner; everything
    still unmatched becomes a singleton cluster.  [R] is the knob that
    slows coarsening and deepens the hierarchy — the paper's key departure
    from Chaco/Metis maximal matching. *)

val run :
  ?max_net_size:int ->
  ?matchable:(int -> bool) ->
  ?pair_ok:(int -> int -> bool) ->
  ?max_cluster_area:int ->
  ?pool:Mlpart_util.Pool.t ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  ratio:float ->
  int array * int
(** [run rng h ~ratio] returns [(cluster_of, k)]: a map from module id to
    cluster id in [0 .. k-1], numbered in seed-permutation order.
    [matchable v = false] excludes [v] from pairing (it always ends up a
    singleton) — used to keep pre-assigned pads unclustered in the
    quadrisection flow.  [pair_ok v w = false] forbids the specific pair —
    V-cycles use it to coarsen only within the sides of the current
    solution so the solution projects exactly.  [pool] parallelizes the
    rating pass; the result is bit-identical with and without it.  [ratio]
    must be in [(0, 1]]. *)
