module H = Mlpart_hypergraph.Hypergraph
module Builder = Mlpart_hypergraph.Builder
module Rng = Mlpart_util.Rng
module Trace = Mlpart_obs.Trace
module Metrics = Mlpart_obs.Metrics

let m_bisections = Metrics.counter "rb.bisections"

type config = { ml : Ml.config; keep_cut_nets : bool }

let default = { ml = Ml.mlc; keep_cut_nets = true }

type result = { side : int array; cut : int; sum_degrees : int; bisections : int }

let is_power_of_two k = k > 0 && k land (k - 1) = 0

(* Sub-netlist of [members]; nets are restricted to their internal pins.
   [keep_cut_nets = false] drops nets that also touch outside modules. *)
let sub_netlist ~keep_cut_nets h members =
  let count = Array.length members in
  let local_of = Hashtbl.create (2 * count) in
  Array.iteri (fun i v -> Hashtbl.add local_of v i) members;
  let builder = Builder.create () in
  Array.iter
    (fun v -> ignore (Builder.add_module builder ~area:(H.area h v) ()))
    members;
  let seen_net = Hashtbl.create (4 * count) in
  Array.iter
    (fun v ->
      H.iter_nets_of h v (fun e ->
          if not (Hashtbl.mem seen_net e) then begin
            Hashtbl.add seen_net e ();
            let inside = ref [] in
            let crossing = ref false in
            H.iter_pins_of h e (fun u ->
                match Hashtbl.find_opt local_of u with
                | Some i -> inside := i :: !inside
                | None -> crossing := true);
            if (not !crossing) || keep_cut_nets then
              Builder.add_net builder ~weight:(H.net_weight h e) !inside
          end))
    members;
  Builder.build builder

let run ?(config = default) ?pool rng h ~k =
  if not (is_power_of_two k) then
    invalid_arg "Rb.run: k must be a power of two";
  let n = H.num_modules h in
  let part = Array.make n 0 in
  let bisections = ref 0 in
  (* One engine arena for the whole bisection tree: sub-netlists only
     shrink, so the root-level allocation serves every recursive call. *)
  let arena = Mlpart_partition.Fm.create_arena ~h () in
  let rec split members lo parts =
    if parts = 1 || Array.length members <= 1 then
      Array.iter (fun v -> part.(v) <- lo) members
    else begin
      incr bisections;
      Metrics.incr m_bisections;
      let t0 = Trace.start () in
      let sub = sub_netlist ~keep_cut_nets:config.keep_cut_nets h members in
      let side =
        if H.num_nets sub = 0 then
          (* no internal connectivity: alternate for balance *)
          Array.init (Array.length members) (fun i -> i land 1)
        else (Ml.run ~config:config.ml ?pool ~arena rng sub).Ml.side
      in
      if Trace.enabled () then
        Trace.complete ~cat:"rb"
          ~args:
            [
              ("members", Trace.Int (Array.length members));
              ("parts", Trace.Int parts);
            ]
          "rb/bisect" t0;
      let left = ref [] and right = ref [] in
      for i = Array.length members - 1 downto 0 do
        if side.(i) = 0 then left := members.(i) :: !left
        else right := members.(i) :: !right
      done;
      let mid = parts / 2 in
      split (Array.of_list !left) lo mid;
      split (Array.of_list !right) (lo + mid) (parts - mid)
    end
  in
  split (Array.init n Fun.id) 0 k;
  let kp = Mlpart_partition.Kpartition.create h ~k part in
  {
    side = part;
    cut = Mlpart_partition.Kpartition.cut kp;
    sum_degrees = Mlpart_partition.Kpartition.sum_degrees kp;
    bisections = !bisections;
  }
