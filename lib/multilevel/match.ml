module H = Mlpart_hypergraph.Hypergraph
module Rng = Mlpart_util.Rng
module Metrics = Mlpart_obs.Metrics

let m_pairs = Metrics.counter "match.pairs"
let m_singletons = Metrics.counter "match.singletons"

let run ?(max_net_size = 10) ?(matchable = fun _ -> true)
    ?(pair_ok = fun _ _ -> true) ?(max_cluster_area = max_int) rng h ~ratio =
  if not (ratio > 0.0 && ratio <= 1.0) then
    invalid_arg "Match.run: ratio outside (0, 1]";
  let n = H.num_modules h in
  let cluster_of = Array.make n (-1) in
  let conn = Array.make n 0.0 in
  let perm = Rng.permutation rng n in
  let k = ref 0 in
  let n_match = ref 0 in
  let target = ratio *. float_of_int n in
  (* Best unmatched neighbour of [v] by the conn function; scratch array
     [conn] is reset via the collected neighbour list. *)
  let best_neighbour v =
    let neighbours = ref [] in
    let inv_av = 1.0 /. float_of_int (H.area h v) in
    H.iter_nets_of h v (fun e ->
        let size = H.net_size h e in
        if size <= max_net_size then begin
          let contribution =
            float_of_int (H.net_weight h e) /. float_of_int (size - 1)
          in
          H.iter_pins_of h e (fun w ->
              if
                w <> v && cluster_of.(w) < 0 && matchable w && pair_ok v w
                && H.area h v + H.area h w <= max_cluster_area
              then begin
                if conn.(w) = 0.0 then neighbours := w :: !neighbours;
                conn.(w) <-
                  conn.(w)
                  +. (contribution *. inv_av /. float_of_int (H.area h w))
              end)
        end);
    let best = ref (-1) in
    let best_conn = ref 0.0 in
    List.iter
      (fun w ->
        if conn.(w) > !best_conn then begin
          best_conn := conn.(w);
          best := w
        end;
        conn.(w) <- 0.0)
      !neighbours;
    !best
  in
  (let j = ref 0 in
   while float_of_int !n_match < target && !j < n do
     let v = perm.(!j) in
     if cluster_of.(v) < 0 then begin
       let c = !k in
       incr k;
       cluster_of.(v) <- c;
       if matchable v then begin
         let w = best_neighbour v in
         if w >= 0 then begin
           cluster_of.(w) <- c;
           n_match := !n_match + 2
         end
       end
     end;
     incr j
   done);
  (* Remaining unmatched modules become singletons. *)
  for j = 0 to n - 1 do
    let v = perm.(j) in
    if cluster_of.(v) < 0 then begin
      cluster_of.(v) <- !k;
      incr k
    end
  done;
  Metrics.add m_pairs (!n_match / 2);
  Metrics.add m_singletons (!k - (!n_match / 2));
  (cluster_of, !k)
