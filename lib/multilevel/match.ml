module H = Mlpart_hypergraph.Hypergraph
module Rng = Mlpart_util.Rng
module Pool = Mlpart_util.Pool
module Metrics = Mlpart_obs.Metrics
module Trace = Mlpart_obs.Trace

let m_pairs = Metrics.counter "match.pairs"
let m_singletons = Metrics.counter "match.singletons"
let m_rounds = Metrics.counter "match.rounds"

let h_round_commits =
  Metrics.histogram "match.round_commits"
    ~buckets:[| 1; 4; 16; 64; 256; 1024; 4096 |]

(* Per-participant rating scratch: [conn] is a dense accumulator indexed by
   module id, [nbrs] collects the touched indices for O(degree) reset.
   Scratch contents never reach the output — which slot rates which module
   is scheduling-dependent, but ratings themselves are pure. *)
type scratch = { conn : float array; nbrs : int array }

let run ?(max_net_size = 10) ?(matchable = fun _ -> true)
    ?(pair_ok = fun _ _ -> true) ?(max_cluster_area = max_int) ?pool rng h
    ~ratio =
  if not (ratio > 0.0 && ratio <= 1.0) then
    invalid_arg "Match.run: ratio outside (0, 1]";
  let n = H.num_modules h in
  let perm = Rng.permutation rng n in
  (* Rank in the seed permutation is the deterministic tie-break priority:
     it is independent of visit order (unlike the old sequential greedy
     loop) yet still varies with the seed, preserving multi-start
     diversity. *)
  let rank = Array.make n 0 in
  Array.iteri (fun i v -> rank.(v) <- i) perm;
  let mate = Array.make n (-1) in
  let target = ratio *. float_of_int n in
  let n_match = ref 0 in
  let slots = match pool with Some p -> Pool.size p | None -> 1 in
  let scratch =
    Array.init slots (fun _ -> { conn = Array.make n 0.0; nbrs = Array.make n 0 })
  in
  (* Highest-rated feasible unmatched partner of [v], ties to lowest rank.
     Reads only round-start state ([mate] is frozen during rating). *)
  let best_neighbour s v =
    let n_nbrs = ref 0 in
    let inv_av = 1.0 /. float_of_int (H.area h v) in
    H.iter_nets_of h v (fun e ->
        let size = H.net_size h e in
        if size <= max_net_size then begin
          let contribution =
            float_of_int (H.net_weight h e) /. float_of_int (size - 1)
          in
          H.iter_pins_of h e (fun w ->
              if
                w <> v && mate.(w) < 0 && matchable w && pair_ok v w
                && H.area h v + H.area h w <= max_cluster_area
              then begin
                if s.conn.(w) = 0.0 then begin
                  s.nbrs.(!n_nbrs) <- w;
                  incr n_nbrs
                end;
                s.conn.(w) <-
                  s.conn.(w)
                  +. (contribution *. inv_av /. float_of_int (H.area h w))
              end)
        end);
    let best = ref (-1) in
    let best_conn = ref 0.0 in
    for i = 0 to !n_nbrs - 1 do
      let w = s.nbrs.(i) in
      let c = s.conn.(w) in
      if c > !best_conn || (c = !best_conn && !best >= 0 && rank.(w) < rank.(!best))
      then begin
        best_conn := c;
        best := w
      end;
      s.conn.(w) <- 0.0
    done;
    (!best, !best_conn)
  in
  (* Active set: matchable modules that still had a feasible partner last
     round.  A module whose rating comes back empty is dropped for good —
     the unmatched set only shrinks, so no partner can appear later. *)
  let active = ref (Array.of_seq (Seq.filter matchable (Seq.init n Fun.id))) in
  let prop = Array.make n (-1) in
  let rate = Array.make n 0.0 in
  let round = ref 0 in
  let continue = ref (float_of_int !n_match < target && Array.length !active > 0) in
  while !continue do
    incr round;
    let t0 = Trace.start () in
    let act = !active in
    let n_act = Array.length act in
    (* Rating pass: embarrassingly parallel over disjoint ranges of the
       active array against the frozen round-start [mate]. *)
    let rate_range ~slot ~lo ~hi =
      let s = scratch.(slot) in
      for i = lo to hi - 1 do
        let v = act.(i) in
        let w, c = best_neighbour s v in
        prop.(v) <- w;
        rate.(v) <- c
      done
    in
    (match pool with
    | Some p when n_act > 1 -> Pool.parallel_chunks p ~n:n_act ~body:rate_range
    | _ -> rate_range ~slot:0 ~lo:0 ~hi:n_act);
    (* Deterministic commit: proposers sorted by (rating desc, rank asc) —
       a total order independent of visit order and pool size — then the
       feasible prefix is committed sequentially.  The first candidate
       always commits (both endpoints are free at round start), so every
       round with a proposal makes progress. *)
    let cands = Array.of_seq (Seq.filter (fun v -> prop.(v) >= 0) (Array.to_seq act)) in
    Array.sort
      (fun a b ->
        if rate.(a) <> rate.(b) then compare rate.(b) rate.(a)
        else compare rank.(a) rank.(b))
      cands;
    let commits = ref 0 in
    Array.iter
      (fun v ->
        if float_of_int !n_match < target && mate.(v) < 0 then begin
          let w = prop.(v) in
          if mate.(w) < 0 then begin
            mate.(v) <- w;
            mate.(w) <- v;
            n_match := !n_match + 2;
            incr commits
          end
        end)
      cands;
    Metrics.add m_rounds 1;
    Metrics.observe h_round_commits !commits;
    if Trace.enabled () then
      Trace.complete ~cat:"coarsen"
        ~args:
          [
            ("round", Trace.Int !round);
            ("active", Trace.Int n_act);
            ("committed", Trace.Int !commits);
          ]
        "coarsen/round" t0;
    active :=
      Array.of_seq
        (Seq.filter (fun v -> mate.(v) < 0 && prop.(v) >= 0) (Array.to_seq act));
    continue :=
      !commits > 0
      && float_of_int !n_match < target
      && Array.length !active > 0
  done;
  (* Cluster ids in permutation order, matched pairs sharing an id. *)
  let cluster_of = Array.make n (-1) in
  let k = ref 0 in
  for j = 0 to n - 1 do
    let v = perm.(j) in
    if cluster_of.(v) < 0 then begin
      let c = !k in
      incr k;
      cluster_of.(v) <- c;
      let w = mate.(v) in
      if w >= 0 then cluster_of.(w) <- c
    end
  done;
  Metrics.add m_pairs (!n_match / 2);
  Metrics.add m_singletons (!k - (!n_match / 2));
  (cluster_of, !k)
