(** ML — the paper's multilevel bipartitioning algorithm (Figure 2).

    Coarsening: {!Match} clusterings induce successively coarser netlists
    while the module count exceeds the threshold [T].  The coarsest netlist
    is partitioned from a random start, and the solution is projected and
    refined level by level with an FM-family engine.  [MLf] is ML with the
    plain FM engine, [MLc] with CLIP (the paper's strongest variant). *)

type config = {
  threshold : int;  (** T: stop coarsening at this many modules (paper: 35) *)
  ratio : float;  (** R: matching ratio controlling coarsening speed *)
  match_net_size : int;  (** nets above this size ignored by Match (10) *)
  merge_duplicates : bool;
      (** merge identical coarse nets into weighted ones (extension;
          Definition 1 keeps duplicates) *)
  engine : Mlpart_partition.Fm.config;  (** refinement engine run at every level *)
  max_levels : int;  (** hierarchy depth safety bound *)
  coarsest_starts : int;
      (** independent partitioning attempts of the coarsest netlist, keeping
          the best — the paper's "spend more CPU at the top levels" future
          work; 1 reproduces the published algorithm *)
  rounds : int;
      (** max {!Mlpart_partition.Rounds} pre-pass rounds per refinement
          level (0 disables); the pre-pass runs with or without a pool, so
          results stay jobs-invariant *)
  rounds_min_modules : int;
      (** pre-pass only at levels with at least this many modules — small
          levels are cheaper to hand straight to the sequential engine *)
}

val mlf : config
(** R = 1.0, T = 35, FM engine — the paper's MLf at its default setting. *)

val mlc : config
(** R = 1.0, T = 35, CLIP engine — the paper's MLc. *)

val with_ratio : config -> float -> config
(** Same configuration at a different matching ratio R. *)

type result = {
  side : int array;
  cut : int;
  levels : int;  (** number of coarsening levels (m in the paper) *)
  coarsest_modules : int;
}

val run :
  ?config:config ->
  ?fixed:int array ->
  ?pool:Mlpart_util.Pool.t ->
  ?arena:Mlpart_partition.Fm.arena ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  result
(** [fixed.(v) >= 0] pins module [v] to that side at every level (it is
    never matched during coarsening and never moved during refinement) —
    the 2-way analogue of the quadrisection pad mechanism, used by
    recursive bisection with terminal propagation.

    [pool] parallelises the run internally: per-level match rating and
    CSR induce during coarsening, the {!Mlpart_partition.Rounds} pre-pass
    scoring during refinement, and the [coarsest_starts] multi-start.
    Every parallel stage commits its results in a deterministic order
    (and multi-starts draw from pre-split generators), so the cut and
    side assignment are bit-identical for any pool size — including no
    pool at all.

    When {!Mlpart_obs.Trace} is enabled the run emits [ml/coarsen],
    [ml/initial], [ml/refine] and per-level [ml/refine_level] spans — the
    per-phase breakdown that used to be a separate timer is derived from
    these.

    [arena] is reusable FM engine scratch shared by the initial partition
    and every refinement level; without it one is created per call, sized
    to [h] (see {!Mlpart_partition.Fm.arena}).  Results are identical
    either way. *)

val run_vcycles :
  ?config:config ->
  ?fixed:int array ->
  ?pool:Mlpart_util.Pool.t ->
  ?arena:Mlpart_partition.Fm.arena ->
  cycles:int ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  result
(** Iterated multilevel refinement (an extension beyond the paper, in the
    spirit of hMETIS V-cycles): after a first {!run}, each further cycle
    re-coarsens with matching restricted to same-side pairs — so the
    current solution projects exactly onto every level — and refines it
    back up.  The cut never increases across cycles.  [cycles = 1] is
    exactly {!run}. *)

val run_starts :
  ?config:config ->
  ?fixed:int array ->
  ?pool:Mlpart_util.Pool.t ->
  ?cycles:int ->
  ?deadline:Mlpart_util.Deadline.t ->
  starts:int ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  result
(** [run_starts ~starts rng h] runs [starts] independent multilevel runs
    ([cycles] V-cycles each, default 1) and keeps the lowest cut, breaking
    ties by the lowest start index.  Each start owns a generator pre-split
    from [rng], so the result is bit-identical whether the starts run
    sequentially or across a {!Mlpart_util.Pool}.

    [deadline] is polled cooperatively between starts (between pool waves
    when parallel): once expired, no further start begins, and the best of
    the completed prefix is returned — at least the first start always
    completes.  Query {!Mlpart_util.Deadline.expired} afterwards to learn
    whether the multi-start was cut short. *)

(** {1 Hierarchy reuse (the serve-mode cache seam)}

    {!run} is exactly {!hierarchy} followed by {!run_hierarchy} on the
    same generator — callers that hold a prebuilt hierarchy (the serve
    daemon's content-addressed cache) skip the coarsening phase entirely
    and still get bit-identical results to a cold run that built the
    hierarchy with the same coarsening generator. *)

val hierarchy :
  ?config:config ->
  ?fixed:int array ->
  ?pool:Mlpart_util.Pool.t ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  Hierarchy.t
(** The coarsening phase alone, inside its [ml/coarsen] trace span.
    Consumes coarsening draws from the generator. *)

val run_hierarchy :
  ?config:config ->
  ?pool:Mlpart_util.Pool.t ->
  ?arena:Mlpart_partition.Fm.arena ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  Hierarchy.t ->
  result
(** Initial partition + refinement over a prebuilt hierarchy of the given
    netlist ([ml/initial] and [ml/refine] spans; no [ml/coarsen]).  Fixed
    assignments travel inside the hierarchy; the hierarchy value is only
    read, so it can be shared across calls with different generators. *)

(** Access to the phases, for tests and custom flows. *)

val coarsen :
  ?config:config ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  (Mlpart_hypergraph.Hypergraph.t * int array) list
  * Mlpart_hypergraph.Hypergraph.t
(** The coarsening hierarchy as [(netlist, cluster_of)] pairs, finest first
    ([cluster_of] maps that netlist's modules to the next-coarser netlist's
    modules), together with the coarsest netlist.  The pair list is empty
    when the input is already below the threshold. *)

val project : int array -> int array -> int array
(** [project cluster_of coarse_side] lifts a coarse assignment to the finer
    level (Definition 2). *)

val refine_up :
  config ->
  ?pool:Mlpart_util.Pool.t ->
  ?arena:Mlpart_partition.Fm.arena ->
  Mlpart_util.Rng.t ->
  Hierarchy.t ->
  int array ->
  int array
(** The uncoarsening half of {!run} (steps 7-9 of Figure 2): project the
    coarsest-level assignment level by level, run the round-based
    pre-pass at levels of at least [rounds_min_modules] modules (see
    {!Mlpart_partition.Rounds}), and refine each projection with the
    configured engine, returning the finest-level assignment.  [pool]
    parallelizes the pre-pass scoring; output is bit-identical without
    it.  Exposed for refinement-only benchmarking and custom flows. *)
