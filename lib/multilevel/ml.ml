module H = Mlpart_hypergraph.Hypergraph
module Rng = Mlpart_util.Rng
module Pool = Mlpart_util.Pool
module Deadline = Mlpart_util.Deadline
module Trace = Mlpart_obs.Trace
module Metrics = Mlpart_obs.Metrics
module Fm = Mlpart_partition.Fm
module Rounds = Mlpart_partition.Rounds
module Bp = Mlpart_partition.Bipartition

let log_src = Logs.Src.create "mlpart.ml" ~doc:"multilevel driver traces"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_runs = Metrics.counter "ml.runs"
let m_starts = Metrics.counter "ml.starts"
let m_vcycles = Metrics.counter "ml.vcycles"

type config = {
  threshold : int;
  ratio : float;
  match_net_size : int;
  merge_duplicates : bool;
  engine : Fm.config;
  max_levels : int;
  coarsest_starts : int;
  rounds : int;
  rounds_min_modules : int;
}

let mlf =
  {
    threshold = 35;
    ratio = 1.0;
    match_net_size = 10;
    merge_duplicates = false;
    engine = Fm.default;
    max_levels = 64;
    coarsest_starts = 1;
    rounds = 2;
    rounds_min_modules = 128;
  }

let mlc = { mlf with engine = Fm.clip }
let with_ratio config ratio = { config with ratio }

type result = { side : int array; cut : int; levels : int; coarsest_modules : int }

let build_hierarchy config ?fixed ?pair_ok ?pool rng h =
  Hierarchy.build ~threshold:config.threshold ~ratio:config.ratio
    ~match_net_size:config.match_net_size
    ~merge_duplicates:config.merge_duplicates ~max_levels:config.max_levels
    ?fixed ?pair_ok ?pool rng h

let coarsen ?(config = mlf) rng h =
  let hierarchy = build_hierarchy config rng h in
  ( List.map
      (fun { Hierarchy.netlist; cluster_of; fixed = _ } -> (netlist, cluster_of))
      hierarchy.Hierarchy.levels,
    hierarchy.Hierarchy.coarsest )

let project cluster_of coarse_side =
  Array.map (fun c -> coarse_side.(c)) cluster_of

(* Pick the lowest cut; index order breaks ties, so the winner does not
   depend on how a pool scheduled the candidates. *)
let best_of results =
  let best = ref results.(0) in
  for i = 1 to Array.length results - 1 do
    if results.(i).Fm.cut < !best.Fm.cut then best := results.(i)
  done;
  !best

(* Partition the coarsest netlist (steps 6 of Figure 2), optionally from an
   initial solution, with multi-start as the §V extension.  Starts draw
   from generators pre-split from [rng] — one split per start regardless
   of [pool] — so the result is identical for any pool size, including the
   sequential [None].  Sequential starts share [arena]; pooled starts let
   each Fm.run create its own (arenas are domain-local), which is
   bit-identical anyway. *)
let partition_coarsest config ?init ?fixed ?pool ?arena rng coarsest =
  let starts = Stdlib.max 1 config.coarsest_starts in
  if starts = 1 then Fm.run ~config:config.engine ?init ?fixed ?arena rng coarsest
  else begin
    let rngs = Array.init starts (fun _ -> Rng.split rng) in
    let results =
      match pool with
      | Some pool when Pool.size pool > 1 ->
          Pool.map pool
            (fun rng -> Fm.run ~config:config.engine ?init ?fixed rng coarsest)
            rngs
      | Some _ | None ->
          Array.map
            (fun rng ->
              Fm.run ~config:config.engine ?init ?fixed ?arena rng coarsest)
            rngs
    in
    best_of results
  end

(* Uncoarsening: project and refine level by level (steps 7-9).  One arena
   serves every level: engine state is allocated once, at the finest
   level's size, instead of rebuilt per level.  Each level gets a
   [ml/refine_level] span — the single timing source the bench harness's
   per-phase breakdown is derived from. *)
let refine_up config ?pool ?arena rng hierarchy initial_side =
  List.fold_left
    (fun coarse_side { Hierarchy.netlist; cluster_of; fixed } ->
      let t0 = Trace.start () in
      let projected = project cluster_of coarse_side in
      (* Round-based pre-pass at the larger levels: parallel positive-gain
         sweeps shrink the cut before the exact sequential FM polish.  It
         runs whether or not a pool is present — the committed move
         sequence is a pure function of the input — so the result is
         bit-identical for every [--jobs]. *)
      if config.rounds > 0 && H.num_modules netlist >= config.rounds_min_modules
      then begin
        let bounds =
          (if config.engine.Fm.wide_balance then Bp.wide_bounds else Bp.bounds)
            ~tolerance:config.engine.Fm.tolerance netlist
        in
        ignore
          (Rounds.run ?pool ?fixed ~net_threshold:config.engine.Fm.net_threshold
             ~max_rounds:config.rounds ~bounds netlist projected)
      end;
      let refined =
        Fm.run ~config:config.engine ~init:projected ?fixed ?arena rng netlist
      in
      if Trace.enabled () then
        Trace.complete ~cat:"ml"
          ~args:
            [
              ("modules", Trace.Int (H.num_modules netlist));
              ("cut", Trace.Int refined.Fm.cut);
              ("passes", Trace.Int refined.Fm.passes);
              ("moves", Trace.Int refined.Fm.moves);
            ]
          "ml/refine_level" t0;
      Log.debug (fun m ->
          m "refined level |V|=%d: projected cut %d -> %d (%d passes)"
            (H.num_modules netlist)
            (Fm.cut_of netlist projected)
            refined.Fm.cut refined.Fm.passes);
      refined.Fm.side)
    initial_side
    (List.rev hierarchy.Hierarchy.levels)

(* The coarsening half of {!run}, exposed so the serve-mode hierarchy
   cache can build (and reuse) hierarchies independently of the
   refinement seed.  The [ml/coarsen] span lives here — a run that skips
   this function (cache hit) genuinely skips the phase, which is what the
   span-based cache tests assert. *)
let hierarchy ?(config = mlf) ?fixed ?pool rng h =
  let hierarchy =
    Trace.span ~cat:"ml" "ml/coarsen" (fun () ->
        build_hierarchy config ?fixed ?pool rng h)
  in
  Log.debug (fun m ->
      m "%s: %d levels, coarsest |V|=%d (T=%d, R=%.2f)" (H.name h)
        (List.length hierarchy.Hierarchy.levels)
        (H.num_modules hierarchy.Hierarchy.coarsest)
        config.threshold config.ratio);
  hierarchy

(* Initial partition + uncoarsening over a prebuilt hierarchy — the other
   half of {!run}, and the entry point a hierarchy cache hit jumps to.
   Reads only from the hierarchy (fixed assignments travel inside it), so
   one hierarchy value can serve many (seed, tolerance) queries. *)
let run_hierarchy ?(config = mlf) ?pool ?arena rng h hierarchy =
  let arena = match arena with Some a -> a | None -> Fm.create_arena ~h () in
  let initial =
    Trace.span ~cat:"ml" "ml/initial" (fun () ->
        partition_coarsest config ?fixed:hierarchy.Hierarchy.coarsest_fixed
          ?pool ~arena rng hierarchy.Hierarchy.coarsest)
  in
  let side =
    Trace.span ~cat:"ml" "ml/refine" (fun () ->
        refine_up config ?pool ~arena rng hierarchy initial.Fm.side)
  in
  Metrics.incr m_runs;
  {
    side;
    cut = Fm.cut_of h side;
    levels = List.length hierarchy.Hierarchy.levels;
    coarsest_modules = H.num_modules hierarchy.Hierarchy.coarsest;
  }

let run ?(config = mlf) ?fixed ?pool ?arena rng h =
  let arena = match arena with Some a -> a | None -> Fm.create_arena ~h () in
  let hier = hierarchy ~config ?fixed ?pool rng h in
  run_hierarchy ~config ?pool ~arena rng h hier

(* One solution-preserving V-cycle: coarsen with matching restricted to
   same-side pairs (every cluster is side-pure, so the solution projects
   without loss), refine the projected solution at each level on the way
   back up. *)
let vcycle config ?fixed ?pool ?arena rng h side =
  let pair_ok v w = side.(v) = side.(w) in
  let hierarchy =
    Trace.span ~cat:"ml" "ml/coarsen" (fun () ->
        build_hierarchy config ?fixed ~pair_ok ?pool rng h)
  in
  (* Restrict the side assignment down the hierarchy. *)
  let coarsest_side, _ =
    List.fold_left
      (fun (fine_side, _) { Hierarchy.cluster_of; _ } ->
        let k =
          Array.fold_left
            (fun acc c -> if c > acc then c else acc)
            (-1) cluster_of
          + 1
        in
        let coarse = Array.make k 0 in
        Array.iteri (fun v c -> coarse.(c) <- fine_side.(v)) cluster_of;
        (coarse, k))
      (side, H.num_modules h)
      hierarchy.Hierarchy.levels
  in
  let initial =
    Trace.span ~cat:"ml" "ml/initial" (fun () ->
        Fm.run ~config:config.engine ~init:coarsest_side
          ?fixed:hierarchy.Hierarchy.coarsest_fixed ?arena rng
          hierarchy.Hierarchy.coarsest)
  in
  refine_up config ?pool ?arena rng hierarchy initial.Fm.side

let run_vcycles ?(config = mlf) ?fixed ?pool ?arena ~cycles rng h =
  if cycles < 1 then invalid_arg "Ml.run_vcycles: cycles < 1";
  let arena = match arena with Some a -> a | None -> Fm.create_arena ~h () in
  let first = run ~config ?fixed ?pool ~arena rng h in
  let side = ref first.side in
  let cut = ref first.cut in
  for cycle = 2 to cycles do
    let t0 = Trace.start () in
    let refined = vcycle config ?fixed ?pool ~arena rng h !side in
    let refined_cut = Fm.cut_of h refined in
    if Trace.enabled () then
      Trace.complete ~cat:"ml"
        ~args:[ ("cycle", Trace.Int cycle); ("cut", Trace.Int refined_cut) ]
        "ml/vcycle" t0;
    Metrics.incr m_vcycles;
    if refined_cut <= !cut then begin
      side := refined;
      cut := refined_cut
    end
  done;
  { first with side = !side; cut = !cut }

(* One multistart attempt, wrapped in its span; [index] is the start's
   position in the pre-split generator sequence, so the span args are
   identical however a pool scheduled it. *)
let run_start config ?fixed ?arena ~cycles ~index rng h =
  let t0 = Trace.start () in
  let r = run_vcycles ~config ?fixed ?arena ~cycles rng h in
  if Trace.enabled () then
    Trace.complete ~cat:"ml"
      ~args:
        [
          ("start", Trace.Int index);
          ("cut", Trace.Int r.cut);
          ("levels", Trace.Int r.levels);
        ]
      "ml/start" t0;
  Metrics.incr m_starts;
  r

(* Independent multi-start: [starts] full ML (or V-cycle) runs from
   pre-split generator streams, keeping the lowest cut (ties to the lowest
   start index).  With a pool the starts run on separate domains; because
   every start owns its stream and the winner is picked by (cut, index),
   the outcome is bit-identical for any pool size. *)
let run_starts ?(config = mlf) ?fixed ?pool ?(cycles = 1) ?deadline ~starts rng h =
  if starts < 1 then invalid_arg "Ml.run_starts: starts < 1";
  let rngs = Array.init starts (fun _ -> Rng.split rng) in
  let indexed = Array.mapi (fun i rng -> (i, rng)) rngs in
  let one ?arena (i, rng) = run_start config ?fixed ?arena ~cycles ~index:i rng h in
  let results =
    match deadline with
    | None -> (
        match pool with
        | Some pool when Pool.size pool > 1 && starts > 1 ->
            (* each pooled start builds its own arena inside run_vcycles *)
            Trace.span ~cat:"ml"
              ~args:(fun () -> [ ("starts", Trace.Int starts) ])
              "ml/starts"
              (fun () -> Pool.map pool one indexed)
        | Some _ | None ->
            let arena = Fm.create_arena ~h () in
            Trace.span ~cat:"ml"
              ~args:(fun () -> [ ("starts", Trace.Int starts) ])
              "ml/starts"
              (fun () -> Array.map (one ~arena) indexed))
    | Some dl ->
        (* Cooperative timeout: starts run in waves (one per pool pass, or
           singly when sequential) with the deadline polled between waves.
           Completed starts are never discarded, so the reported best is a
           genuine prefix of the deterministic no-deadline schedule — a
           timed-out run returns exactly what runs 0..k-1 would. *)
        let wave =
          match pool with Some p when Pool.size p > 1 -> Pool.size p | _ -> 1
        in
        let arena = if wave = 1 then Some (Fm.create_arena ~h ()) else None in
        let acc = ref [] in
        let completed = ref 0 in
        let wave_index = ref 0 in
        while
          !completed < starts && (!completed = 0 || not (Deadline.check dl))
        do
          let n = Stdlib.min wave (starts - !completed) in
          let batch = Array.sub indexed !completed n in
          let t0 = Trace.start () in
          let res =
            match pool with
            | Some p when Pool.size p > 1 && n > 1 -> Pool.map p one batch
            | _ -> Array.map (fun iv -> one ?arena iv) batch
          in
          if Trace.enabled () then
            Trace.complete ~cat:"ml"
              ~args:[ ("wave", Trace.Int !wave_index); ("starts", Trace.Int n) ]
              "ml/wave" t0;
          incr wave_index;
          acc := res :: !acc;
          completed := !completed + n
        done;
        Array.concat (List.rev !acc)
  in
  let best = ref results.(0) in
  for i = 1 to Array.length results - 1 do
    if results.(i).cut < !best.cut then best := results.(i)
  done;
  !best
