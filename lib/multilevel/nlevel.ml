module H = Mlpart_hypergraph.Hypergraph
module Rng = Mlpart_util.Rng
module Trace = Mlpart_obs.Trace
module Metrics = Mlpart_obs.Metrics
module Cache = Mlpart_partition.Gain_cache
module Gain_bucket = Mlpart_partition.Gain_bucket
module Refine_core = Mlpart_partition.Refine_core
module Multiway = Mlpart_partition.Multiway
module Kpartition = Mlpart_partition.Kpartition

let m_runs = Metrics.counter "nlevel.runs"
let m_contractions = Metrics.counter "nlevel.contractions"
let m_uncontractions = Metrics.counter "nlevel.uncontractions"
let m_moves = Metrics.counter "nlevel.moves"

type config = {
  threshold : int;
  max_net_size : int;
  cluster_area_factor : float;
  net_threshold : int;
  tolerance : float;
  initial_starts : int;
  local_moves_cap : int;
  final_passes : int;
}

let default =
  {
    threshold = 40;
    max_net_size = 50;
    cluster_area_factor = 4.0;
    net_threshold = 200;
    tolerance = 0.1;
    initial_starts = 4;
    local_moves_cap = 32;
    final_passes = 4;
  }

type result = { side : int array; cut : int; contractions : int; moves : int }

let cut_of = Multiway.cut_of

(* One contraction's undo record: [v] was merged into [u].  [both] are the
   nets that held both endpoints (v's pin was dropped, shrinking the live
   prefix); the top [pushed] entries of u's incidence list are the nets
   that held only v (their pin was renamed v -> u and the net appended to
   u's list).  Replaying the trail in reverse restores the exact live
   structure at each step, so slot positions recorded here stay valid. *)
type memento = { u : int; v : int; both : int array; pushed : int }

type hierarchy = {
  g : Cache.graph;
  alive : bool array;
  mutable n_alive : int;
  mutable trail : memento list;
  mutable contractions : int;
}

let hierarchy_of h =
  let n = H.num_modules h in
  {
    g = Cache.graph_of_hypergraph h;
    alive = Array.make n true;
    n_alive = n;
    trail = [];
    contractions = 0;
  }

let push_net g u e =
  let d = g.Cache.mod_deg.(u) in
  let arr = g.Cache.mod_nets.(u) in
  if d = Array.length arr then begin
    let arr' = Array.make (Stdlib.max 4 (2 * d)) 0 in
    Array.blit arr 0 arr' 0 d;
    g.Cache.mod_nets.(u) <- arr'
  end;
  g.Cache.mod_nets.(u).(d) <- e;
  g.Cache.mod_deg.(u) <- d + 1

(* Contract [v] into [u]: one vertex disappears, every net of [v] either
   drops its v pin (u already present) or has it renamed to u. *)
let contract hy u v =
  let g = hy.g in
  let both = ref [] in
  let pushed = ref 0 in
  for i = 0 to g.Cache.mod_deg.(v) - 1 do
    let e = g.Cache.mod_nets.(v).(i) in
    let pins = g.Cache.net_pins.(e) in
    let s = g.Cache.net_size.(e) in
    let has_u = ref false in
    let v_slot = ref (-1) in
    for j = 0 to s - 1 do
      if pins.(j) = u then has_u := true;
      if pins.(j) = v then v_slot := j
    done;
    if !has_u then begin
      pins.(!v_slot) <- pins.(s - 1);
      g.Cache.net_size.(e) <- s - 1;
      both := e :: !both
    end
    else begin
      pins.(!v_slot) <- u;
      push_net g u e;
      incr pushed
    end
  done;
  g.Cache.areas.(u) <- g.Cache.areas.(u) + g.Cache.areas.(v);
  hy.alive.(v) <- false;
  hy.n_alive <- hy.n_alive - 1;
  hy.contractions <- hy.contractions + 1;
  hy.trail <- { u; v; both = Array.of_list !both; pushed = !pushed } :: hy.trail

(* Undo one contraction.  When a cache rides along, every structural edit
   is bracketed by net_will_change / net_changed so the cached gains, span
   counts and cut stay exact; [v] rejoins in [u]'s part, which leaves the
   cut and the part areas unchanged. *)
let uncontract ?cache hy m =
  let g = hy.g in
  (match cache with
  | Some c -> Cache.activate c m.v ~part:(Cache.side c m.u)
  | None -> ());
  for _ = 1 to m.pushed do
    let d = g.Cache.mod_deg.(m.u) - 1 in
    let e = g.Cache.mod_nets.(m.u).(d) in
    g.Cache.mod_deg.(m.u) <- d;
    (match cache with Some c -> Cache.net_will_change c e | None -> ());
    let pins = g.Cache.net_pins.(e) in
    let j = ref 0 in
    while pins.(!j) <> m.u do
      incr j
    done;
    pins.(!j) <- m.v;
    match cache with Some c -> Cache.net_changed c e | None -> ()
  done;
  Array.iter
    (fun e ->
      (match cache with Some c -> Cache.net_will_change c e | None -> ());
      let s = g.Cache.net_size.(e) in
      g.Cache.net_pins.(e).(s) <- m.v;
      g.Cache.net_size.(e) <- s + 1;
      match cache with Some c -> Cache.net_changed c e | None -> ())
    m.both;
  g.Cache.areas.(m.u) <- g.Cache.areas.(m.u) - g.Cache.areas.(m.v);
  hy.alive.(m.v) <- true;
  hy.n_alive <- hy.n_alive + 1

(* Heavy-edge-style partner rating: connectivity (weight / (size - 1))
   summed over shared small nets, scaled down by the pair's area product —
   the multilevel clustering rating, evaluated against the *current*
   contracted structure rather than a per-level snapshot. *)
type scratch = {
  score : float array;
  seen : int array;
  mutable stamp : int;
  cand : int array;
  mutable ncand : int;
}

let make_scratch n =
  {
    score = Array.make n 0.;
    seen = Array.make n 0;
    stamp = 0;
    cand = Array.make n 0;
    ncand = 0;
  }

let best_partner hy sc ~max_net_size ~area_cap u =
  let g = hy.g in
  sc.stamp <- sc.stamp + 1;
  sc.ncand <- 0;
  let au = g.Cache.areas.(u) in
  for i = 0 to g.Cache.mod_deg.(u) - 1 do
    let e = g.Cache.mod_nets.(u).(i) in
    let s = g.Cache.net_size.(e) in
    if s >= 2 && s <= max_net_size then begin
      let contrib =
        float_of_int g.Cache.net_weight.(e) /. float_of_int (s - 1)
      in
      let pins = g.Cache.net_pins.(e) in
      for j = 0 to s - 1 do
        let w = pins.(j) in
        if w <> u && au + g.Cache.areas.(w) <= area_cap then begin
          if sc.seen.(w) <> sc.stamp then begin
            sc.seen.(w) <- sc.stamp;
            sc.score.(w) <- 0.;
            sc.cand.(sc.ncand) <- w;
            sc.ncand <- sc.ncand + 1
          end;
          sc.score.(w) <- sc.score.(w) +. contrib
        end
      done
    end
  done;
  let best = ref (-1) in
  let best_key = ref 0. in
  for i = 0 to sc.ncand - 1 do
    let w = sc.cand.(i) in
    let key = sc.score.(w) /. float_of_int (au * g.Cache.areas.(w)) in
    if !best < 0 || key > !best_key || (key = !best_key && w < !best) then begin
      best := w;
      best_key := key
    end
  done;
  !best

(* Sweep vertices in a fresh seeded permutation, contracting each one's
   best-rated partner immediately (so later ratings in the same sweep see
   the updated structure); stop at the target size or when a whole sweep
   finds nothing contractible. *)
let coarsen hy rng ~stop_at ~max_net_size ~area_cap =
  let n = Array.length hy.alive in
  let sc = make_scratch n in
  let perm = Array.init n Fun.id in
  let progress = ref true in
  while hy.n_alive > stop_at && !progress do
    progress := false;
    Rng.shuffle_in_place rng perm;
    (try
       Array.iter
         (fun u ->
           if hy.n_alive <= stop_at then raise Exit;
           if hy.alive.(u) then
             let v = best_partner hy sc ~max_net_size ~area_cap u in
             if v >= 0 then begin
               contract hy u v;
               progress := true
             end)
         perm
     with Exit -> ())
  done

let coarsen_only ?(threshold = default.threshold)
    ?(max_net_size = default.max_net_size)
    ?(cluster_area_factor = default.cluster_area_factor) rng h =
  let hy = hierarchy_of h in
  let total = H.total_area h in
  let area_cap =
    Stdlib.max (H.max_area h)
      (int_of_float
         (cluster_area_factor *. float_of_int total
         /. float_of_int (Stdlib.max 1 threshold)))
  in
  coarsen hy rng ~stop_at:(Stdlib.max 1 threshold) ~max_net_size ~area_cap;
  hy

let uncontract_all hy =
  let rec go () =
    match hy.trail with
    | [] -> ()
    | m :: rest ->
        hy.trail <- rest;
        uncontract hy m;
        go ()
  in
  go ()

let num_alive hy = hy.n_alive
let trail_length hy = List.length hy.trail
let is_alive hy v = hy.alive.(v)
let module_area hy v = hy.g.Cache.areas.(v)

let live_net_pins hy e =
  let a = Array.sub hy.g.Cache.net_pins.(e) 0 hy.g.Cache.net_size.(e) in
  Array.sort Int.compare a;
  a

(* Coarsest-level snapshot: the live structure compacted into an immutable
   netlist (single-pin fully contracted nets are uncut by definition and
   left out).  Returns the snapshot plus the member list mapping compact
   ids back to live root ids, in ascending order. *)
let coarse_snapshot hy =
  let g = hy.g in
  let n = Array.length hy.alive in
  let map = Array.make n (-1) in
  let members = Array.make hy.n_alive 0 in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if hy.alive.(v) then begin
      map.(v) <- !next;
      members.(!next) <- v;
      incr next
    end
  done;
  let areas = Array.map (fun v -> g.Cache.areas.(v)) members in
  let nets = ref [] in
  for e = Array.length g.Cache.net_size - 1 downto 0 do
    let s = g.Cache.net_size.(e) in
    if s >= 2 then begin
      let pins = Array.init s (fun j -> map.(g.Cache.net_pins.(e).(j))) in
      nets := (pins, g.Cache.net_weight.(e)) :: !nets
    end
  done;
  (H.make ~areas ~nets:(Array.of_list !nets) (), members)

(* Multi-start initial k-way partition of the coarsest snapshot, projected
   onto the live roots.  Ties keep the earliest start. *)
let initial_partition cfg rng hy side ~k =
  let snap, members = coarse_snapshot hy in
  let mcfg =
    {
      Multiway.default with
      objective = Multiway.Net_cut;
      net_threshold = cfg.net_threshold;
      tolerance = cfg.tolerance;
    }
  in
  let best = ref None in
  for _ = 1 to Stdlib.max 1 cfg.initial_starts do
    let r = Multiway.run ~config:mcfg (Rng.split rng) snap ~k in
    match !best with
    | Some b when b.Multiway.cut <= r.Multiway.cut -> ()
    | Some _ | None -> best := Some r
  done;
  let r = Option.get !best in
  Array.iteri (fun i v -> side.(v) <- r.Multiway.side.(i)) members;
  members

(* The coarsest partition was balanced against the snapshot's own slack
   (larger clusters, larger slack); pull any overfull part back under the
   finest-level bound with the cheapest outbound moves before uncoarsening
   starts. *)
let rebalance_coarse cache members (bounds : Kpartition.bounds) =
  let k = Cache.k cache in
  let continue = ref true in
  let guard = ref (Array.length members * k) in
  while !continue && !guard > 0 do
    decr guard;
    continue := false;
    let over = ref (-1) in
    for p = k - 1 downto 0 do
      if Cache.part_area cache p > bounds.hi then over := p
    done;
    if !over >= 0 then begin
      let p = !over in
      let best_v = ref (-1) and best_q = ref (-1) in
      let best_g = ref min_int in
      Array.iter
        (fun v ->
          if Cache.side cache v = p then
            let a = Cache.area cache v in
            for q = 0 to k - 1 do
              if q <> p && Cache.part_area cache q + a <= bounds.hi then begin
                let g = Cache.gain cache v q in
                if g > !best_g then begin
                  best_g := g;
                  best_v := v;
                  best_q := q
                end
              end
            done)
        members;
      if !best_v >= 0 then begin
        Cache.move cache !best_v !best_q;
        continue := true
      end
    end
  done

(* Localized refinement around the just-restored pair: greedy strictly
   positive-gain moves seeded at {u, v}; every move activates the modules
   whose cached gains it touched.  The cut is monotone non-increasing, so
   the loop terminates; the cap bounds the worst case. *)
type active = {
  items : int array;
  mutable len : int;
  mark : int array;
  mutable astamp : int;
}

let make_active n =
  { items = Array.make n 0; len = 0; mark = Array.make n 0; astamp = 0 }

let activate_vertex act v =
  if act.mark.(v) <> act.astamp then begin
    act.mark.(v) <- act.astamp;
    act.items.(act.len) <- v;
    act.len <- act.len + 1
  end

let local_refine cfg cache act (bounds : Kpartition.bounds) u v =
  let k = Cache.k cache in
  act.astamp <- act.astamp + 1;
  act.len <- 0;
  activate_vertex act u;
  activate_vertex act v;
  let moves = ref 0 in
  let continue = ref true in
  while !continue && !moves < cfg.local_moves_cap do
    continue := false;
    let best_v = ref (-1) and best_q = ref (-1) in
    let best_g = ref 0 in
    for i = 0 to act.len - 1 do
      let w = act.items.(i) in
      let p = Cache.side cache w in
      let a = Cache.area cache w in
      if Cache.part_area cache p - a >= bounds.lo then
        for q = 0 to k - 1 do
          if q <> p && Cache.part_area cache q + a <= bounds.hi then begin
            let g = Cache.gain cache w q in
            if g > !best_g then begin
              best_g := g;
              best_v := w;
              best_q := q
            end
          end
        done
    done;
    if !best_v >= 0 then begin
      Cache.move
        ~on_delta:(fun w _ _ -> activate_vertex act w)
        cache !best_v !best_q;
      incr moves;
      continue := true
    end
  done;
  !moves

(* Full k-way FM polish at the finest level, on the shared move loop: one
   direction bucket per ordered part pair keyed by *cached* gains — no
   per-pass gain recomputation, the cache carried every delta here. *)
let final_refine cfg cache rng h (bounds : Kpartition.bounds) =
  let n = H.num_modules h in
  let k = Cache.k cache in
  let wdeg = Stdlib.max 1 (H.max_weighted_degree h) in
  let buckets =
    Array.init (k * k) (fun _ ->
        Gain_bucket.create ~rng:(Rng.split rng) ~policy:Gain_bucket.Lifo
          ~min_gain:(-wdeg) ~max_gain:wdeg ~capacity:n ())
  in
  let locked = Array.make n false in
  let from_of = Array.make n 0 in
  let order = Array.make n 0 in
  let chosen_q = ref (-1) in
  let fill () =
    Array.fill locked 0 n false;
    Array.iter Gain_bucket.clear buckets;
    for v = 0 to n - 1 do
      let p = Cache.side cache v in
      for q = 0 to k - 1 do
        if q <> p then Gain_bucket.insert buckets.((p * k) + q) v (Cache.gain cache v q)
      done
    done
  in
  let select () =
    let best_v = ref (-1) and best_g = ref min_int in
    chosen_q := -1;
    for p = 0 to k - 1 do
      for q = 0 to k - 1 do
        if q <> p then begin
          let b = buckets.((p * k) + q) in
          let feas v =
            let a = Cache.area cache v in
            Cache.part_area cache q + a <= bounds.hi
            && Cache.part_area cache p - a >= bounds.lo
          in
          let v = Gain_bucket.select_satisfying b feas in
          if v >= 0 then begin
            let g = Gain_bucket.gain_of b v in
            if g > !best_g then begin
              best_g := g;
              best_v := v;
              chosen_q := q
            end
          end
        end
      done
    done;
    !best_v
  in
  let ops =
    {
      Refine_core.select;
      commit =
        (fun v ->
          let p = Cache.side cache v in
          let q = !chosen_q in
          locked.(v) <- true;
          for r = 0 to k - 1 do
            if r <> p then Gain_bucket.remove buckets.((p * k) + r) v
          done;
          from_of.(v) <- p;
          let g = Cache.gain cache v q in
          Cache.move
            ~on_delta:(fun w r d ->
              if not locked.(w) then
                Gain_bucket.adjust buckets.((Cache.side cache w * k) + r) w d)
            cache v q;
          g);
      undo = (fun v -> Cache.move cache v from_of.(v));
      rebuild = (fun ~first_bad:_ ~kept:_ -> ());
    }
  in
  Refine_core.drive ~max_passes:cfg.final_passes (fun ~pass:_ ->
      fill ();
      Refine_core.run_pass ~order ops)

let run ?(config = default) rng h ~k =
  if k < 2 then invalid_arg "Nlevel.run: k must be >= 2";
  let n = H.num_modules h in
  let hy = hierarchy_of h in
  let stop_at = Stdlib.max config.threshold (2 * k) in
  let area_cap =
    Stdlib.max (H.max_area h)
      (int_of_float
         (config.cluster_area_factor
         *. float_of_int (H.total_area h)
         /. float_of_int stop_at))
  in
  let t0 = Trace.start () in
  coarsen hy rng ~stop_at ~max_net_size:config.max_net_size ~area_cap;
  if Trace.enabled () then
    Trace.complete ~cat:"nlevel"
      ~args:
        [
          ("contractions", Trace.Int hy.contractions);
          ("coarse_modules", Trace.Int hy.n_alive);
        ]
      "nlevel/contract" t0;
  Metrics.add m_contractions hy.contractions;
  let side = Array.make n 0 in
  let members = initial_partition config rng hy side ~k in
  let cache =
    Cache.create ~net_threshold:config.net_threshold hy.g ~k ~members side
  in
  let bounds = Kpartition.bounds ~tolerance:config.tolerance h ~k in
  rebalance_coarse cache members bounds;
  let act = make_active n in
  let local_moves = ref 0 in
  let uncontractions = ref 0 in
  let t1 = Trace.start () in
  let rec replay () =
    match hy.trail with
    | [] -> ()
    | m :: rest ->
        hy.trail <- rest;
        uncontract ~cache hy m;
        incr uncontractions;
        local_moves := !local_moves + local_refine config cache act bounds m.u m.v;
        replay ()
  in
  replay ();
  if Trace.enabled () then
    Trace.complete ~cat:"nlevel"
      ~args:
        [
          ("uncontractions", Trace.Int !uncontractions);
          ("local_moves", Trace.Int !local_moves);
        ]
      "nlevel/uncontract" t1;
  Metrics.add m_uncontractions !uncontractions;
  let t2 = Trace.start () in
  let passes, fm_moves = final_refine config cache rng h bounds in
  if Trace.enabled () then
    Trace.complete ~cat:"nlevel"
      ~args:[ ("passes", Trace.Int passes); ("moves", Trace.Int fm_moves) ]
      "nlevel/refine" t2;
  Metrics.incr m_runs;
  Metrics.add m_moves (!local_moves + fm_moves);
  {
    side = Array.copy side;
    cut = Cache.cut cache;
    contractions = hy.contractions;
    moves = !local_moves + fm_moves;
  }
