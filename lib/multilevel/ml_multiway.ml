module H = Mlpart_hypergraph.Hypergraph
module Rng = Mlpart_util.Rng
module Multiway = Mlpart_partition.Multiway

type config = {
  threshold : int;
  ratio : float;
  match_net_size : int;
  merge_duplicates : bool;
  engine : Multiway.config;
  max_levels : int;
}

let default =
  {
    threshold = 100;
    ratio = 1.0;
    match_net_size = 10;
    merge_duplicates = false;
    engine = Multiway.default;
    max_levels = 64;
  }

type result = { side : int array; cut : int; levels : int; coarsest_modules : int }

let run ?(config = default) ?fixed rng h ~k =
  let hierarchy =
    Hierarchy.build ~threshold:config.threshold ~ratio:config.ratio
      ~match_net_size:config.match_net_size
      ~merge_duplicates:config.merge_duplicates ~max_levels:config.max_levels
      ?fixed rng h
  in
  (* One engine arena shared by the initial partition and every
     refinement level, as in Ml.refine_up. *)
  let arena = Multiway.create_arena () in
  let initial =
    Multiway.run ~config:config.engine
      ?fixed:hierarchy.Hierarchy.coarsest_fixed ~arena rng
      hierarchy.Hierarchy.coarsest ~k
  in
  let side =
    List.fold_left
      (fun coarse_side { Hierarchy.netlist; cluster_of; fixed = level_fixed } ->
        let projected = Ml.project cluster_of coarse_side in
        let refined =
          Multiway.run ~config:config.engine ~init:projected ?fixed:level_fixed
            ~arena rng netlist ~k
        in
        refined.Multiway.side)
      initial.Multiway.side
      (List.rev hierarchy.Hierarchy.levels)
  in
  {
    side;
    cut = Multiway.cut_of h ~k side;
    levels = List.length hierarchy.Hierarchy.levels;
    coarsest_modules = H.num_modules hierarchy.Hierarchy.coarsest;
  }
