module H = Mlpart_hypergraph.Hypergraph
module Trace = Mlpart_obs.Trace
module Metrics = Mlpart_obs.Metrics

let m_levels = Metrics.counter "coarsen.levels"

let h_shrink =
  (* coarse modules as a percentage of fine modules, per level *)
  Metrics.histogram "coarsen.shrink_pct"
    ~buckets:[| 30; 40; 50; 55; 60; 65; 70; 80; 90; 100 |]

type level = {
  netlist : H.t;
  cluster_of : int array;
  fixed : int array option;
}

type t = {
  levels : level list;
  coarsest : H.t;
  coarsest_fixed : int array option;
}

let project_fixed cluster_of k fixed =
  let coarse = Array.make k (-1) in
  Array.iteri (fun v p -> if p >= 0 then coarse.(cluster_of.(v)) <- p) fixed;
  coarse

let build ~threshold ~ratio ~match_net_size ~merge_duplicates ~max_levels
    ?(cluster_area_factor = 4.0) ?fixed ?pair_ok ?pool rng h =
  let max_cluster_area =
    Stdlib.max 2
      (int_of_float
         (cluster_area_factor *. float_of_int (H.total_area h)
          /. float_of_int (Stdlib.max 1 threshold)))
  in
  (* One arena reused across every induce of the hierarchy: per-level
     coarsening allocates only the coarse CSR arrays themselves. *)
  let arena = H.create_arena () in
  let rec go h fixed acc depth =
    if H.num_modules h <= threshold || depth >= max_levels then
      { levels = List.rev acc; coarsest = h; coarsest_fixed = fixed }
    else begin
      let matchable =
        match fixed with
        | Some f -> fun v -> f.(v) < 0
        | None -> fun _ -> true
      in
      let n = H.num_modules h in
      let t0 = Trace.start () in
      let cluster_of, k =
        Trace.span ~cat:"coarsen" "coarsen/match" (fun () ->
            Match.run ~max_net_size:match_net_size ~matchable ?pair_ok
              ~max_cluster_area ?pool rng h ~ratio)
      in
      if k >= H.num_modules h then begin
        (* matching found no reduction: the hierarchy stops here *)
        Trace.instant ~cat:"coarsen"
          ~args:[ ("level", Trace.Int depth); ("modules", Trace.Int n) ]
          "coarsen/stall";
        { levels = List.rev acc; coarsest = h; coarsest_fixed = fixed }
      end
      else begin
        let coarser, _ =
          Trace.span ~cat:"coarsen" "coarsen/induce" (fun () ->
              H.induce ~name:(H.name h) ~merge_duplicates ~arena ?pool h
                cluster_of)
        in
        if Trace.enabled () then
          Trace.complete ~cat:"coarsen"
            ~args:
              [
                ("level", Trace.Int depth);
                ("modules", Trace.Int n);
                ("nets", Trace.Int (H.num_nets h));
                ("pins", Trace.Int (H.num_pins h));
                ("coarse_modules", Trace.Int k);
                (* fraction of modules absorbed into pairs — the achieved
                   matching ratio against the configured target R *)
                ( "matched_ratio",
                  Trace.Float (float_of_int (2 * (n - k)) /. float_of_int n) );
              ]
            "coarsen/level" t0;
        Metrics.incr m_levels;
        Metrics.observe h_shrink (100 * k / Stdlib.max 1 n);
        let coarser_fixed =
          Option.map (fun f -> project_fixed cluster_of k f) fixed
        in
        go coarser coarser_fixed
          ({ netlist = h; cluster_of; fixed } :: acc)
          (depth + 1)
      end
    end
  in
  go h fixed [] 0
