(** Recursive bisection: k-way partitioning by repeated 2-way ML calls —
    the classical alternative to the paper's direct (Sanchis-style) k-way
    refinement, provided for comparison (the [recursive] bench).

    Each recursion level extracts the sub-netlist of the current module
    set.  A net with pins outside the set is cut no matter what the
    recursion does with its internal pins: under the {e net-cut} objective
    such nets are dropped ([keep_cut_nets = false]); keeping them
    ([keep_cut_nets = true]) makes the bisections also avoid splitting
    already-cut nets further, which optimises the sum-of-degrees
    objective — the trade-off behind Table IX's two gain functions. *)

type config = {
  ml : Ml.config;  (** bipartitioning engine for every split *)
  keep_cut_nets : bool;  (** default true (sum-of-degrees flavour) *)
}

val default : config

type result = {
  side : int array;
  cut : int;  (** k-way net cut of the final assignment *)
  sum_degrees : int;
  bisections : int;
}

val run :
  ?config:config ->
  ?pool:Mlpart_util.Pool.t ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  k:int ->
  result
(** [k] must be a power of two (2, 4, 8, ...); raises [Invalid_argument]
    otherwise.  [pool] is threaded into every {!Ml.run} bisection for
    intra-run parallelism; the recursion itself stays sequential, and the
    result is bit-identical for any pool size. *)
