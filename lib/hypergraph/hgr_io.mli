(** hMETIS / PaToH-style [.hgr] hypergraph exchange format.

    Format (1-indexed, as emitted by hMETIS):
    {v
    % comment lines start with %
    <num_nets> <num_modules> [fmt]
    <net 1 pins...>          (weight-prefixed when fmt has the 1-bit)
    ...
    [module weights, one per line, when fmt has the 10-bit]
    v}
    [fmt] is omitted or one of [1] (net weights), [10] (module weights),
    [11] (both).

    Parsing never raises on malformed bytes: the {!parse}-family entry
    points return a [result] whose [Error] side is an ordered list of
    typed diagnostics ({!Mlpart_util.Diag.t}), one per problem found —
    strict mode scans the whole file and reports every issue, not just the
    first.  The legacy {!read_file}/{!of_string} wrappers parse strictly
    and raise {!Mlpart_util.Diag.Mlpart_error} instead. *)

type mode =
  | Strict
      (** any degenerate input — out-of-range or duplicate pins, nets with
          fewer than two distinct pins, bad weights, truncation — is an
          error.  A clean file parses to exactly the same hypergraph as
          before this API existed. *)
  | Lenient
      (** degenerate input is repaired in place (pins dropped or
          collapsed, weights and areas clamped, degenerate nets removed,
          missing sections defaulted) and reported as [Warning]
          diagnostics carrying the original net index and source line.
          Only an unusable header is fatal.  The resulting hypergraph
          additionally passes {!Hypergraph.validate} — the repair pass
          runs automatically. *)

type parsed = {
  hypergraph : Hypergraph.t;
  warnings : Mlpart_util.Diag.t list;  (** ordered as encountered; empty in strict mode *)
}

val parse :
  name:string -> mode:mode -> (unit -> string option) ->
  (parsed, Mlpart_util.Diag.t list) result
(** Parse from a line producer (the closure returns [None] at EOF). *)

val parse_string :
  ?name:string -> mode:mode -> string -> (parsed, Mlpart_util.Diag.t list) result

val parse_file : mode:mode -> string -> (parsed, Mlpart_util.Diag.t list) result
(** Parse from disk; the hypergraph is named after the file's basename.
    OS-level read failures surface as an [io-error] diagnostic, not an
    exception. *)

val read_channel : ?name:string -> in_channel -> Hypergraph.t
(** Strict parse from a channel.  Raises {!Mlpart_util.Diag.Mlpart_error}
    on malformed input. *)

val read_file : string -> Hypergraph.t
(** Strict parse from a file; raises {!Mlpart_util.Diag.Mlpart_error}. *)

val of_string : ?name:string -> string -> Hypergraph.t
(** Strict parse of a string; raises {!Mlpart_util.Diag.Mlpart_error}. *)

val write_channel : out_channel -> Hypergraph.t -> unit
(** Emit in [.hgr] format.  Net weights are written when any weight differs
    from 1, module weights when any area differs from 1. *)

val write_file : string -> Hypergraph.t -> unit

val to_string : Hypergraph.t -> string
(** [.hgr] rendering as a string (used by tests and small examples). *)
