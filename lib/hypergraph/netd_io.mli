(** ACM/SIGDA benchmark netlist format (".net"/".netD" + ".are"), the format
    the paper's 23 circuits ship in (ftp.cbl.ncsu.edu).

    The [.net] file:
    {v
    0
    <num pins>
    <num nets>
    <num modules>
    <pad offset>
    <module> s [dir]     -- pin starting a new net
    <module> l [dir]     -- pin belonging to the current net
    ...
    v}
    Module names are [aN] (cells, N in [0 .. pad_offset]) or [pN] (pads,
    N in [1 ..]).  The optional [.are] file lists "<module> <area>" pairs;
    missing modules default to area 1.

    Having this reader means the reproduction runs on the original
    benchmark files wherever a user has them, with the synthetic suite as
    the offline fallback.

    Like {!Hgr_io}, parsing is total: the {!parse_net_string}-family
    returns typed diagnostics instead of raising.  Duplicate pins within a
    net and single-pin nets are [Warning]s in {e both} modes (the pin-list
    format genuinely encodes them in real benchmarks); malformed module
    names, pad-offset violations, bad pin kinds and count mismatches are
    errors in strict mode and repaired-with-warning in lenient mode.
    Truncated or unreadable headers are fatal in both. *)

type mode = Hgr_io.mode = Strict | Lenient

type parsed = {
  hypergraph : Hypergraph.t;
  warnings : Mlpart_util.Diag.t list;
}

val parse_net_string :
  ?name:string -> ?are:string -> mode:mode -> string ->
  (parsed, Mlpart_util.Diag.t list) result
(** Parse a [.net] file's contents (plus optional [.are] contents). *)

val parse_files :
  ?are_path:string -> mode:mode -> string ->
  (parsed, Mlpart_util.Diag.t list) result
(** Read from disk; the hypergraph is named after the net file.  OS-level
    read failures surface as an [io-error] diagnostic. *)

val read_net_string : ?name:string -> ?are:string -> string -> Hypergraph.t
(** Strict parse; raises {!Mlpart_util.Diag.Mlpart_error} on malformed
    input.  Single-pin nets are dropped, duplicate pins collapsed (with
    warnings discarded). *)

val read_files : ?are_path:string -> string -> Hypergraph.t
(** Strict parse from disk; raises {!Mlpart_util.Diag.Mlpart_error}. *)

val pads : Hypergraph.t -> string -> int list
(** [pads h net_contents] re-parses the pin lines and returns the module
    ids that were pads ([pN] names) — the modules a placement flow should
    pre-place.  (Pad identity is not stored in {!Hypergraph.t}.) *)

val write_net_string : Hypergraph.t -> string
(** Render in [.net] format (all modules as [aN] cells, no directions). *)
