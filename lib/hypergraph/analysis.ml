module H = Hypergraph

(* Breadth-first sweep over the module-net-module adjacency. *)
let connected_components h =
  let n = H.num_modules h in
  let component_of = Array.make n (-1) in
  let net_seen = Array.make (H.num_nets h) false in
  let queue = Queue.create () in
  let count = ref 0 in
  for start = 0 to n - 1 do
    if component_of.(start) < 0 then begin
      let c = !count in
      incr count;
      component_of.(start) <- c;
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        H.iter_nets_of h v (fun e ->
            if not net_seen.(e) then begin
              net_seen.(e) <- true;
              H.iter_pins_of h e (fun u ->
                  if component_of.(u) < 0 then begin
                    component_of.(u) <- c;
                    Queue.add u queue
                  end)
            end)
      done
    end
  done;
  (component_of, !count)

let is_connected h = snd (connected_components h) <= 1

let histogram values =
  let table = Hashtbl.create 64 in
  List.iter
    (fun v ->
      Hashtbl.replace table v (1 + Option.value ~default:0 (Hashtbl.find_opt table v)))
    values;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let degree_histogram h =
  histogram (List.init (H.num_modules h) (fun v -> H.module_degree h v))

let net_size_histogram h =
  histogram (List.init (H.num_nets h) (fun e -> H.net_size h e))

let average_net_size h =
  if H.num_nets h = 0 then 0.0
  else float_of_int (H.num_pins h) /. float_of_int (H.num_nets h)

let pin_count_check h =
  let from_nets = ref 0 and from_modules = ref 0 in
  for e = 0 to H.num_nets h - 1 do
    from_nets := !from_nets + H.net_size h e
  done;
  for v = 0 to H.num_modules h - 1 do
    from_modules := !from_modules + H.module_degree h v
  done;
  !from_nets = !from_modules && !from_nets = H.num_pins h

let pp_histogram ppf label pairs =
  Format.fprintf ppf "%s:" label;
  List.iter (fun (k, v) -> Format.fprintf ppf " %d:%d" k v) pairs;
  Format.fprintf ppf "@."

let pp_report ppf h =
  Format.fprintf ppf "%a@." H.pp_summary h;
  let _, components = connected_components h in
  Format.fprintf ppf "components: %d@." components;
  Format.fprintf ppf "average net size: %.2f@." (average_net_size h);
  Format.fprintf ppf "max module degree: %d@." (H.max_module_degree h);
  pp_histogram ppf "net sizes" (net_size_histogram h);
  pp_histogram ppf "degrees" (degree_histogram h)
