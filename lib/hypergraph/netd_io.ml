module Diag = Mlpart_util.Diag

type mode = Hgr_io.mode = Strict | Lenient
type parsed = { hypergraph : Hypergraph.t; warnings : Diag.t list }

exception Fatal of Diag.t

(* Diagnostic context shared by one parse: [record] takes the severity
   from the mode (Strict -> Error, Lenient -> Warning), [warn] is always a
   warning — used for normalisations the .netD pin-list format genuinely
   permits (duplicate pins, single-pin nets), which must not fail strict
   parses of real benchmark files. *)
type ctx = {
  source : string;
  severity : Diag.severity;
  mutable diags : Diag.t list;
}

let record ctx ~line code fmt =
  Printf.ksprintf
    (fun message ->
      ctx.diags <-
        { Diag.source = ctx.source; line; code; severity = ctx.severity; message }
        :: ctx.diags)
    fmt

let warn ctx ~line code fmt =
  Printf.ksprintf
    (fun message ->
      ctx.diags <-
        { Diag.source = ctx.source; line; code; severity = Diag.Warning; message }
        :: ctx.diags)
    fmt

let fatal ctx ~line code fmt =
  Printf.ksprintf
    (fun message ->
      raise
        (Fatal
           { Diag.source = ctx.source; line; code; severity = Diag.Error; message }))
    fmt

(* Module ids: cells aN map to N, pads pN map to pad_offset + N.  The
   header's pad offset separates the two namespaces.  Returns [None] when
   the pin cannot be mapped (recorded in [ctx]). *)
let module_id ctx ~pad_offset ~num_modules ~line name =
  let bad code fmt = record ctx ~line code fmt in
  if String.length name < 2 then begin
    bad Diag.Bad_module_name "bad module name %S" name;
    None
  end
  else
    match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
    | None ->
        bad Diag.Bad_module_name "bad module name %S" name;
        None
    | Some number -> (
        let checked id =
          if id < 0 || id >= num_modules then begin
            bad Diag.Pin_out_of_range
              "module %S maps to id %d outside declared count %d" name id
              num_modules;
            None
          end
          else Some id
        in
        match name.[0] with
        | 'a' ->
            if number < 0 || number > pad_offset then begin
              bad Diag.Pad_offset "cell %S outside pad offset %d" name pad_offset;
              (* the id itself may still be usable; keep it when in range *)
              checked number
            end
            else checked number
        | 'p' ->
            if number < 1 then begin
              bad Diag.Pad_offset "bad pad index in %S" name;
              None
            end
            else checked (pad_offset + number)
        | _ ->
            bad Diag.Bad_module_name "module name %S must start with 'a' or 'p'"
              name;
            None)

type raw = {
  num_modules : int;
  pad_offset : int;
  raw_nets : int list list; (* pins per net, reversed order *)
}

let tokenize contents =
  String.split_on_char '\n' contents
  |> List.mapi (fun i raw ->
         ( i + 1,
           String.split_on_char ' ' (String.trim raw)
           |> List.filter (fun s -> s <> "") ))
  |> List.filter (fun (_, toks) -> toks <> [])

(* The shared pin-line scanner.  [check_counts] is off for the [pads]
   helper, which re-parses fragments. *)
let parse_net_raw ?(check_counts = true) ctx contents =
  match tokenize contents with
  | (l0, [ zero ]) :: (l1, [ pins ]) :: (l2, [ nets ]) :: (l3, [ modules ])
    :: (l4, [ pad_offset ]) :: pin_lines ->
      if zero <> "0" then record ctx ~line:l0 Diag.Bad_header "expected leading 0";
      let int_at l s =
        match int_of_string_opt s with
        | Some v -> v
        | None -> fatal ctx ~line:l Diag.Bad_header "expected integer, got %S" s
      in
      let num_pins = int_at l1 pins in
      let num_nets = int_at l2 nets in
      let num_modules = int_at l3 modules in
      let pad_offset = int_at l4 pad_offset in
      if num_modules <= 0 then
        fatal ctx ~line:l3 Diag.Bad_header "non-positive module count";
      let current = ref [] in
      let started = ref false in
      let nets = ref [] in
      let pin_count = ref 0 in
      let flush () = if !started then nets := !current :: !nets in
      List.iter
        (fun (line, toks) ->
          match toks with
          | name :: kind :: _rest -> (
              incr pin_count;
              let id = module_id ctx ~pad_offset ~num_modules ~line name in
              match kind with
              | "s" ->
                  flush ();
                  started := true;
                  current := (match id with Some id -> [ id ] | None -> [])
              | "l" ->
                  if not !started then begin
                    record ctx ~line Diag.Bad_token
                      "continuation before any 's' pin (treated as net start)";
                    started := true;
                    current := []
                  end;
                  (match id with
                  | Some id -> current := id :: !current
                  | None -> ())
              | other ->
                  record ctx ~line Diag.Bad_token
                    "expected pin kind 's' or 'l', got %S (line skipped)" other)
          | _ ->
              record ctx ~line Diag.Bad_token
                "expected '<module> <s|l> [dir]' (line skipped)")
        pin_lines;
      flush ();
      if check_counts && !pin_count <> num_pins then
        record ctx ~line:l1 Diag.Count_mismatch
          "header declares %d pins, found %d" num_pins !pin_count;
      if check_counts && List.length !nets <> num_nets then
        record ctx ~line:l2 Diag.Count_mismatch
          "header declares %d nets, found %d" num_nets (List.length !nets);
      { num_modules; pad_offset; raw_nets = !nets }
  | [] -> fatal ctx ~line:0 Diag.Truncated "empty input (need 5 header lines)"
  | l ->
      let last = List.fold_left (fun _ (line, _) -> line) 0 l in
      fatal ctx ~line:last Diag.Truncated
        "missing or malformed header (need 5 single-token header lines)"

let parse_are ctx ~pad_offset ~num_modules contents areas =
  List.iter
    (fun (line, toks) ->
      match toks with
      | [ name; area ] -> (
          match int_of_string_opt area with
          | Some a when a > 0 -> (
              match module_id ctx ~pad_offset ~num_modules ~line name with
              | Some id -> areas.(id) <- a
              | None -> () (* already recorded *))
          | Some a ->
              record ctx ~line Diag.Bad_area "area %d for %S (row ignored)" a name
          | None ->
              record ctx ~line Diag.Bad_area "bad area %S for %S (row ignored)"
                area name)
      | _ -> record ctx ~line Diag.Bad_token "expected '<module> <area>'")
    (tokenize contents)

let parse_net_string ?(name = "") ?are ~mode contents =
  let ctx =
    {
      source = (if name = "" then "<netD>" else name);
      severity = (match mode with Strict -> Diag.Error | Lenient -> Diag.Warning);
      diags = [];
    }
  in
  try
    let raw = parse_net_raw ctx contents in
    let areas = Array.make raw.num_modules 1 in
    (match are with
    | None -> ()
    | Some are_contents ->
        parse_are ctx ~pad_offset:raw.pad_offset ~num_modules:raw.num_modules
          are_contents areas);
    let nets = ref [] in
    let total = List.length raw.raw_nets in
    List.iteri
      (fun i pins ->
        (* raw_nets is reversed: recover the original net index for diags *)
        let e = total - 1 - i in
        let distinct = List.sort_uniq Int.compare pins in
        let d = List.length distinct in
        if d < List.length pins then
          warn ctx ~line:0 Diag.Duplicate_pin
            "net %d: %d duplicate pin(s) collapsed" e (List.length pins - d);
        if d >= 2 then nets := (Array.of_list distinct, 1) :: !nets
        else
          warn ctx ~line:0
            (if d = 0 then Diag.Empty_net else Diag.Singleton_net)
            "net %d has %d distinct pin(s); dropped" e d)
      raw.raw_nets;
    (* raw_nets reversed + prepending re-reverses: [!nets] is in file order *)
    let diags = List.rev ctx.diags in
    if List.exists (fun d -> d.Diag.severity = Diag.Error) diags then Error diags
    else begin
      let hypergraph =
        Hypergraph.make ~name ~areas ~nets:(Array.of_list !nets) ()
      in
      match mode with
      | Strict -> Ok { hypergraph; warnings = diags }
      | Lenient -> (
          match Hypergraph.validate hypergraph with
          | Ok () -> Ok { hypergraph; warnings = diags }
          | Error _ ->
              let hypergraph, report = Hypergraph.repair hypergraph in
              Ok { hypergraph; warnings = diags @ report.Hypergraph.repair_diags })
    end
  with Fatal d -> Error (List.rev (d :: ctx.diags))

let parse_files ?are_path ~mode net_path =
  let name = Filename.remove_extension (Filename.basename net_path) in
  match
    let contents = In_channel.with_open_text net_path In_channel.input_all in
    let are =
      Option.map (fun p -> In_channel.with_open_text p In_channel.input_all)
        are_path
    in
    parse_net_string ~name ?are ~mode contents
  with
  | result -> result
  | exception Sys_error msg ->
      Error [ Diag.of_sys_error ~source:net_path msg ]

let ok_or_raise = function
  | Ok { hypergraph; warnings = _ } -> hypergraph
  | Error diags -> raise (Diag.Mlpart_error diags)

let read_net_string ?(name = "") ?are contents =
  ok_or_raise (parse_net_string ~name ?are ~mode:Strict contents)

let read_files ?are_path net_path =
  ok_or_raise (parse_files ?are_path ~mode:Strict net_path)

let pads _h contents =
  let ctx = { source = "<netD>"; severity = Diag.Warning; diags = [] } in
  match parse_net_raw ~check_counts:false ctx contents with
  | raw ->
      List.concat_map
        (fun pins -> List.filter (fun id -> id > raw.pad_offset) pins)
        raw.raw_nets
      |> List.sort_uniq Int.compare
  | exception Fatal d -> raise (Diag.Mlpart_error [ d ])

let write_net_string h =
  let buf = Buffer.create (32 * Hypergraph.num_pins h) in
  Buffer.add_string buf "0\n";
  Buffer.add_string buf (string_of_int (Hypergraph.num_pins h));
  Buffer.add_char buf '\n';
  Buffer.add_string buf (string_of_int (Hypergraph.num_nets h));
  Buffer.add_char buf '\n';
  Buffer.add_string buf (string_of_int (Hypergraph.num_modules h));
  Buffer.add_char buf '\n';
  Buffer.add_string buf (string_of_int (Hypergraph.num_modules h));
  Buffer.add_char buf '\n';
  for e = 0 to Hypergraph.num_nets h - 1 do
    let first = ref true in
    Hypergraph.iter_pins_of h e (fun v ->
        Buffer.add_char buf 'a';
        Buffer.add_string buf (string_of_int v);
        Buffer.add_string buf (if !first then " s\n" else " l\n");
        first := false)
  done;
  Buffer.contents buf
