let fail line fmt =
  Printf.ksprintf
    (fun msg -> failwith (Printf.sprintf "netD line %d: %s" line msg))
    fmt

(* Module ids: cells aN map to N, pads pN map to pad_offset + N.  The
   header's pad offset separates the two namespaces. *)
let module_id ~pad_offset ~line name =
  if String.length name < 2 then fail line "bad module name %S" name;
  let number =
    match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
    | Some v -> v
    | None -> fail line "bad module name %S" name
  in
  match name.[0] with
  | 'a' ->
      if number < 0 || number > pad_offset then
        fail line "cell %S outside pad offset %d" name pad_offset;
      number
  | 'p' ->
      if number < 1 then fail line "bad pad index in %S" name;
      pad_offset + number
  | _ -> fail line "module name %S must start with 'a' or 'p'" name

type parsed = {
  num_modules : int;
  pad_offset : int;
  nets : int list list; (* pins per net, reversed order *)
}

let parse_net ?(strict_counts = true) contents =
  let lines = String.split_on_char '\n' contents in
  let tokens line_number raw =
    String.split_on_char ' ' (String.trim raw) |> List.filter (fun s -> s <> "")
    |> fun toks -> (line_number, toks)
  in
  let numbered =
    List.mapi (fun i raw -> tokens (i + 1) raw) lines
    |> List.filter (fun (_, toks) -> toks <> [])
  in
  match numbered with
  | (l0, [ zero ]) :: (l1, [ pins ]) :: (l2, [ nets ]) :: (l3, [ modules ])
    :: (l4, [ pad_offset ]) :: pin_lines ->
      if zero <> "0" then fail l0 "expected leading 0";
      let int_at l s =
        match int_of_string_opt s with
        | Some v -> v
        | None -> fail l "expected integer, got %S" s
      in
      let num_pins = int_at l1 pins in
      let num_nets = int_at l2 nets in
      let num_modules = int_at l3 modules in
      let pad_offset = int_at l4 pad_offset in
      if num_modules <= 0 then fail l3 "non-positive module count";
      let current = ref [] in
      let nets = ref [] in
      let pin_count = ref 0 in
      let flush () = if !current <> [] then nets := !current :: !nets in
      List.iter
        (fun (line, toks) ->
          match toks with
          | name :: kind :: _rest ->
              incr pin_count;
              let id = module_id ~pad_offset ~line name in
              if id >= num_modules then
                fail line "module %S exceeds declared count %d" name num_modules;
              (match kind with
              | "s" ->
                  flush ();
                  current := [ id ]
              | "l" ->
                  if !current = [] then fail line "continuation before any 's' pin";
                  current := id :: !current
              | other -> fail line "expected pin kind 's' or 'l', got %S" other)
          | _ -> fail line "expected '<module> <s|l> [dir]'")
        pin_lines;
      flush ();
      if strict_counts && !pin_count <> num_pins then
        failwith
          (Printf.sprintf "netD: header declares %d pins, found %d" num_pins
             !pin_count);
      if strict_counts && List.length !nets <> num_nets then
        failwith
          (Printf.sprintf "netD: header declares %d nets, found %d" num_nets
             (List.length !nets));
      { num_modules; pad_offset; nets = !nets }
  | _ -> failwith "netD: truncated header (need 5 header lines)"

let parse_are contents =
  let areas = Hashtbl.create 256 in
  List.iteri
    (fun i raw ->
      let toks =
        String.split_on_char ' ' (String.trim raw)
        |> List.filter (fun s -> s <> "")
      in
      match toks with
      | [] -> ()
      | [ name; area ] -> begin
          match int_of_string_opt area with
          | Some a when a > 0 -> Hashtbl.replace areas name a
          | Some _ | None -> fail (i + 1) "bad area %S for %S" area name
        end
      | _ -> fail (i + 1) "expected '<module> <area>'")
    (String.split_on_char '\n' contents);
  areas

let read_net_string ?(name = "") ?are contents =
  let parsed = parse_net contents in
  let areas = Array.make parsed.num_modules 1 in
  (match are with
  | None -> ()
  | Some are_contents ->
      let table = parse_are are_contents in
      Hashtbl.iter
        (fun mod_name area ->
          match module_id ~pad_offset:parsed.pad_offset ~line:0 mod_name with
          | id when id < parsed.num_modules -> areas.(id) <- area
          | _ -> ()
          | exception Failure _ -> ())
        table);
  let nets =
    List.rev_map
      (fun pins ->
        let distinct = List.sort_uniq Int.compare pins in
        (Array.of_list distinct, 1))
      parsed.nets
    |> List.filter (fun (pins, _) -> Array.length pins >= 2)
  in
  Hypergraph.make ~name ~areas ~nets:(Array.of_list nets) ()

let read_files ?are_path net_path =
  let contents = In_channel.with_open_text net_path In_channel.input_all in
  let are = Option.map (fun p -> In_channel.with_open_text p In_channel.input_all) are_path in
  read_net_string
    ~name:(Filename.remove_extension (Filename.basename net_path))
    ?are contents

let pads _h contents =
  let parsed = parse_net ~strict_counts:false contents in
  List.concat_map
    (fun pins -> List.filter (fun id -> id > parsed.pad_offset) pins)
    parsed.nets
  |> List.sort_uniq Int.compare

let write_net_string h =
  let buf = Buffer.create (32 * Hypergraph.num_pins h) in
  Buffer.add_string buf "0\n";
  Buffer.add_string buf (string_of_int (Hypergraph.num_pins h));
  Buffer.add_char buf '\n';
  Buffer.add_string buf (string_of_int (Hypergraph.num_nets h));
  Buffer.add_char buf '\n';
  Buffer.add_string buf (string_of_int (Hypergraph.num_modules h));
  Buffer.add_char buf '\n';
  Buffer.add_string buf (string_of_int (Hypergraph.num_modules h));
  Buffer.add_char buf '\n';
  for e = 0 to Hypergraph.num_nets h - 1 do
    let first = ref true in
    Hypergraph.iter_pins_of h e (fun v ->
        Buffer.add_char buf 'a';
        Buffer.add_string buf (string_of_int v);
        Buffer.add_string buf (if !first then " s\n" else " l\n");
        first := false)
  done;
  Buffer.contents buf
