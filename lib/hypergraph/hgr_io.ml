module Diag = Mlpart_util.Diag

type mode = Strict | Lenient
type parsed = { hypergraph : Hypergraph.t; warnings : Diag.t list }

(* Unrecoverable parse state (malformed header): no sensible recovery
   exists in either mode, so the single pass bails out through here. *)
exception Fatal of Diag.t

type tokens = {
  mutable line : int;
  mutable toks : string list;
  input : unit -> string option;
}

let make_tokens input = { line = 0; toks = []; input }

let rec next_line ts =
  match ts.input () with
  | None -> false
  | Some raw ->
      ts.line <- ts.line + 1;
      let raw = String.trim raw in
      if raw = "" || raw.[0] = '%' then next_line ts
      else begin
        ts.toks <-
          String.split_on_char ' ' raw |> List.filter (fun s -> s <> "");
        true
      end

(* One pass for both modes.  Every anomaly is recorded through [record]
   with mode-dependent severity (Strict -> Error, Lenient -> Warning) and
   then repaired locally so parsing can continue; at the end the presence
   of any Error decides Ok vs Error.  This way strict mode reports every
   problem in the file, not just the first. *)
let parse ~name ~mode input =
  let source = if name = "" then "<hgr>" else name in
  let diags = ref [] in
  let severity = match mode with Strict -> Diag.Error | Lenient -> Diag.Warning in
  let record ~line code fmt =
    Printf.ksprintf
      (fun message ->
        diags := { Diag.source; line; code; severity; message } :: !diags)
      fmt
  in
  let fatal ~line code fmt =
    Printf.ksprintf
      (fun message ->
        raise (Fatal { Diag.source; line; code; severity = Diag.Error; message }))
      fmt
  in
  let ts = make_tokens input in
  try
    let header_ints () =
      if not (next_line ts) then
        fatal ~line:ts.line Diag.Bad_header "empty input, expected header";
      List.map
        (fun s ->
          match int_of_string_opt s with
          | Some v -> v
          | None ->
              fatal ~line:ts.line Diag.Bad_header "expected integer, got %S" s)
        ts.toks
    in
    let num_nets, num_modules, fmt =
      match header_ints () with
      | [ e; n ] -> (e, n, 0)
      | [ e; n; fmt ] -> (e, n, fmt)
      | _ -> fatal ~line:ts.line Diag.Bad_header "expected '<nets> <modules> [fmt]'"
    in
    if num_nets < 0 || num_modules <= 0 then
      fatal ~line:ts.line Diag.Bad_header "non-positive sizes in header";
    if not (List.mem fmt [ 0; 1; 10; 11 ]) then
      fatal ~line:ts.line Diag.Bad_header "unsupported fmt %d" fmt;
    let has_net_weights = fmt = 1 || fmt = 11 in
    let has_mod_weights = fmt = 10 || fmt = 11 in
    let nets = ref [] in
    (try
       for e = 0 to num_nets - 1 do
         if not (next_line ts) then begin
           record ~line:ts.line Diag.Truncated
             "input ended at net %d of %d declared" e num_nets;
           raise Exit
         end;
         let ints =
           List.filter_map
             (fun s ->
               match int_of_string_opt s with
               | Some v -> Some v
               | None ->
                   record ~line:ts.line Diag.Bad_token
                     "net %d: expected integer, got %S (token dropped)" e s;
                   None)
             ts.toks
         in
         let weight, pins =
           if has_net_weights then
             match ints with
             | w :: rest -> (w, rest)
             | [] ->
                 record ~line:ts.line Diag.Empty_net "net %d has no content" e;
                 (1, [])
           else (1, ints)
         in
         let weight =
           if weight <= 0 then begin
             record ~line:ts.line Diag.Bad_weight
               "net %d has weight %d (clamped to 1)" e weight;
             1
           end
           else weight
         in
         let pins =
           List.filter_map
             (fun p ->
               if p < 1 || p > num_modules then begin
                 record ~line:ts.line Diag.Pin_out_of_range
                   "net %d: pin %d outside 1..%d (dropped)" e p num_modules;
                 None
               end
               else Some (p - 1))
             pins
         in
         let distinct = List.sort_uniq Int.compare pins in
         if List.length distinct < List.length pins then
           record ~line:ts.line Diag.Duplicate_pin
             "net %d: %d duplicate pin(s) collapsed" e
             (List.length pins - List.length distinct);
         (* A net that projects to fewer than two distinct pins is dropped;
            recording it (with the original net index) keeps the mapping
            between source file and in-memory net ids auditable. *)
         if List.length distinct >= 2 then
           nets := (Array.of_list distinct, weight) :: !nets
         else
           record ~line:ts.line Diag.Singleton_net
             "net %d has %d distinct pin(s); dropped" e (List.length distinct)
       done
     with Exit -> ());
    let areas = Array.make num_modules 1 in
    if has_mod_weights then begin
      try
        for v = 0 to num_modules - 1 do
          if not (next_line ts) then begin
            record ~line:ts.line Diag.Truncated
              "input ended at module weight %d of %d declared" v num_modules;
            raise Exit
          end;
          match ts.toks with
          | [ a ] -> (
              match int_of_string_opt a with
              | Some a when a > 0 -> areas.(v) <- a
              | Some a ->
                  record ~line:ts.line Diag.Bad_area
                    "module %d has area %d (clamped to 1)" v a
              | None ->
                  record ~line:ts.line Diag.Bad_token
                    "module %d: expected integer area, got %S" v a)
          | _ ->
              record ~line:ts.line Diag.Bad_token
                "expected one module weight, got %d tokens"
                (List.length ts.toks)
        done
      with Exit -> ()
    end;
    let diags = List.rev !diags in
    if List.exists (fun d -> d.Diag.severity = Diag.Error) diags then Error diags
    else begin
      let hypergraph =
        Hypergraph.make ~name ~areas ~nets:(Array.of_list (List.rev !nets)) ()
      in
      (* Lenient ingestion double-checks the engine invariants; the local
         repairs above should leave nothing for [Hypergraph.repair] to do,
         but a repair pass is cheap insurance against future parser drift. *)
      match mode with
      | Strict -> Ok { hypergraph; warnings = diags }
      | Lenient -> (
          match Hypergraph.validate hypergraph with
          | Ok () -> Ok { hypergraph; warnings = diags }
          | Error _ ->
              let hypergraph, report = Hypergraph.repair hypergraph in
              Ok { hypergraph; warnings = diags @ report.Hypergraph.repair_diags })
    end
  with Fatal d -> Error (List.rev (d :: !diags))

let parse_string ?(name = "") ~mode s =
  let remaining = ref (String.split_on_char '\n' s) in
  let input () =
    match !remaining with
    | [] -> None
    | x :: rest ->
        remaining := rest;
        Some x
  in
  parse ~name ~mode input

let parse_file ~mode path =
  let name = Filename.remove_extension (Filename.basename path) in
  match
    In_channel.with_open_text path (fun ic ->
        parse ~name ~mode (fun () -> In_channel.input_line ic))
  with
  | result -> result
  | exception Sys_error msg ->
      Error [ Diag.of_sys_error ~source:path msg ]

(* Legacy strict entry points: raise the typed boundary exception instead
   of returning a result. *)
let ok_or_raise = function
  | Ok { hypergraph; warnings = _ } -> hypergraph
  | Error diags -> raise (Diag.Mlpart_error diags)

let read_channel ?(name = "") ic =
  ok_or_raise (parse ~name ~mode:Strict (fun () -> In_channel.input_line ic))

let of_string ?(name = "") s = ok_or_raise (parse_string ~name ~mode:Strict s)
let read_file path = ok_or_raise (parse_file ~mode:Strict path)

let to_string h =
  let n = Hypergraph.num_modules h in
  let m = Hypergraph.num_nets h in
  let exists_upto limit pred =
    let rec check i = i < limit && (pred i || check (i + 1)) in
    check 0
  in
  let net_weighted = exists_upto m (fun e -> Hypergraph.net_weight h e <> 1) in
  let mod_weighted = exists_upto n (fun v -> Hypergraph.area h v <> 1) in
  let fmt =
    match (net_weighted, mod_weighted) with
    | false, false -> ""
    | true, false -> " 1"
    | false, true -> " 10"
    | true, true -> " 11"
  in
  let buf = Buffer.create (16 * (m + n)) in
  Buffer.add_string buf (Printf.sprintf "%d %d%s\n" m n fmt);
  for e = 0 to m - 1 do
    let first = ref true in
    if net_weighted then begin
      Buffer.add_string buf (string_of_int (Hypergraph.net_weight h e));
      first := false
    end;
    Hypergraph.iter_pins_of h e (fun v ->
        if not !first then Buffer.add_char buf ' ';
        first := false;
        Buffer.add_string buf (string_of_int (v + 1)));
    Buffer.add_char buf '\n'
  done;
  if mod_weighted then
    for v = 0 to n - 1 do
      Buffer.add_string buf (string_of_int (Hypergraph.area h v));
      Buffer.add_char buf '\n'
    done;
  Buffer.contents buf

let write_channel oc h = Out_channel.output_string oc (to_string h)
let write_file path h = Out_channel.with_open_text path (fun oc -> write_channel oc h)
