let fail line fmt =
  Printf.ksprintf
    (fun msg -> failwith (Printf.sprintf "hgr line %d: %s" line msg))
    fmt

type tokens = {
  mutable line : int;
  mutable toks : string list;
  input : unit -> string option;
}

let make_tokens input = { line = 0; toks = []; input }

let rec next_line ts =
  match ts.input () with
  | None -> false
  | Some raw ->
      ts.line <- ts.line + 1;
      let raw = String.trim raw in
      if raw = "" || raw.[0] = '%' then next_line ts
      else begin
        ts.toks <-
          String.split_on_char ' ' raw |> List.filter (fun s -> s <> "");
        true
      end

let line_ints ts =
  if not (next_line ts) then None
  else
    Some
      (List.map
         (fun s ->
           match int_of_string_opt s with
           | Some v -> v
           | None -> fail ts.line "expected integer, got %S" s)
         ts.toks)

(* Shared parser driven by a line-producing closure. *)
let parse ~name input =
  let ts = make_tokens input in
  let num_nets, num_modules, fmt =
    match line_ints ts with
    | Some [ e; n ] -> (e, n, 0)
    | Some [ e; n; fmt ] -> (e, n, fmt)
    | Some _ | None -> fail ts.line "expected header '<nets> <modules> [fmt]'"
  in
  if num_nets < 0 || num_modules <= 0 then
    fail ts.line "non-positive sizes in header";
  let has_net_weights = fmt = 1 || fmt = 11 in
  let has_mod_weights = fmt = 10 || fmt = 11 in
  if not (List.mem fmt [ 0; 1; 10; 11 ]) then fail ts.line "unsupported fmt %d" fmt;
  let nets = ref [] in
  for _ = 1 to num_nets do
    match line_ints ts with
    | None -> fail ts.line "unexpected end of file reading nets"
    | Some ints ->
        let weight, pins =
          if has_net_weights then
            match ints with
            | w :: rest -> (w, rest)
            | [] -> fail ts.line "empty net line"
          else (1, ints)
        in
        let pins =
          List.map
            (fun p ->
              if p < 1 || p > num_modules then
                fail ts.line "pin %d out of range" p;
              p - 1)
            pins
        in
        let pins = List.sort_uniq Int.compare pins in
        if List.length pins >= 2 then
          nets := (Array.of_list pins, weight) :: !nets
  done;
  let areas = Array.make num_modules 1 in
  if has_mod_weights then
    for v = 0 to num_modules - 1 do
      match line_ints ts with
      | Some [ a ] -> areas.(v) <- a
      | Some _ -> fail ts.line "expected one module weight"
      | None -> fail ts.line "unexpected end of file reading module weights"
    done;
  Hypergraph.make ~name ~areas ~nets:(Array.of_list (List.rev !nets)) ()

let read_channel ?(name = "") ic = parse ~name (fun () -> In_channel.input_line ic)

let of_string ?(name = "") s =
  let remaining = ref (String.split_on_char '\n' s) in
  let input () =
    match !remaining with
    | [] -> None
    | x :: rest ->
        remaining := rest;
        Some x
  in
  parse ~name input

let read_file path =
  In_channel.with_open_text path (fun ic ->
      read_channel
        ~name:(Filename.remove_extension (Filename.basename path))
        ic)

let to_string h =
  let n = Hypergraph.num_modules h in
  let m = Hypergraph.num_nets h in
  let exists_upto limit pred =
    let rec check i = i < limit && (pred i || check (i + 1)) in
    check 0
  in
  let net_weighted = exists_upto m (fun e -> Hypergraph.net_weight h e <> 1) in
  let mod_weighted = exists_upto n (fun v -> Hypergraph.area h v <> 1) in
  let fmt =
    match (net_weighted, mod_weighted) with
    | false, false -> ""
    | true, false -> " 1"
    | false, true -> " 10"
    | true, true -> " 11"
  in
  let buf = Buffer.create (16 * (m + n)) in
  Buffer.add_string buf (Printf.sprintf "%d %d%s\n" m n fmt);
  for e = 0 to m - 1 do
    let first = ref true in
    if net_weighted then begin
      Buffer.add_string buf (string_of_int (Hypergraph.net_weight h e));
      first := false
    end;
    Hypergraph.iter_pins_of h e (fun v ->
        if not !first then Buffer.add_char buf ' ';
        first := false;
        Buffer.add_string buf (string_of_int (v + 1)));
    Buffer.add_char buf '\n'
  done;
  if mod_weighted then
    for v = 0 to n - 1 do
      Buffer.add_string buf (string_of_int (Hypergraph.area h v));
      Buffer.add_char buf '\n'
    done;
  Buffer.contents buf

let write_channel oc h = Out_channel.output_string oc (to_string h)
let write_file path h = Out_channel.with_open_text path (fun oc -> write_channel oc h)
