type t = {
  name : string;
  mutable areas : int list; (* reversed *)
  mutable num_modules : int;
  mutable nets : (int array * int) list; (* reversed *)
  mutable num_nets : int;
}

let create ?(name = "") () =
  { name; areas = []; num_modules = 0; nets = []; num_nets = 0 }

let add_module t ?(area = 1) () =
  if area <= 0 then invalid_arg "Builder.add_module: non-positive area";
  let id = t.num_modules in
  t.areas <- area :: t.areas;
  t.num_modules <- id + 1;
  id

let add_modules t ?(area = 1) n =
  for _ = 1 to n do
    ignore (add_module t ~area ())
  done

let add_net t ?(weight = 1) pins =
  let distinct = List.sort_uniq Int.compare pins in
  if List.length distinct >= 2 then begin
    t.nets <- (Array.of_list distinct, weight) :: t.nets;
    t.num_nets <- t.num_nets + 1
  end

let num_modules t = t.num_modules
let num_nets t = t.num_nets

let build t =
  let areas = Array.of_list (List.rev t.areas) in
  let nets = Array.of_list (List.rev t.nets) in
  Hypergraph.make ~name:t.name ~areas ~nets ()
