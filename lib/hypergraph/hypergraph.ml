type t = {
  name : string;
  areas : int array;
  (* CSR net -> pins *)
  net_offsets : int array; (* length num_nets + 1 *)
  net_pins : int array;
  net_weights : int array;
  (* CSR module -> nets *)
  mod_offsets : int array; (* length num_modules + 1 *)
  mod_nets : int array;
  total_area : int;
  max_area : int;
}

let num_modules t = Array.length t.areas
let num_nets t = Array.length t.net_weights
let num_pins t = Array.length t.net_pins
let area t v = t.areas.(v)
let total_area t = t.total_area
let max_area t = t.max_area
let name t = t.name

let module_degree t v = t.mod_offsets.(v + 1) - t.mod_offsets.(v)

let iter_nets_of t v f =
  for i = t.mod_offsets.(v) to t.mod_offsets.(v + 1) - 1 do
    f t.mod_nets.(i)
  done

let nets_of t v =
  Array.sub t.mod_nets t.mod_offsets.(v) (module_degree t v)

let fold_nets_of t v ~init ~f =
  let acc = ref init in
  iter_nets_of t v (fun e -> acc := f !acc e);
  !acc

let net_size t e = t.net_offsets.(e + 1) - t.net_offsets.(e)
let net_weight t e = t.net_weights.(e)

let iter_pins_of t e f =
  for i = t.net_offsets.(e) to t.net_offsets.(e + 1) - 1 do
    f t.net_pins.(i)
  done

let pins_of t e = Array.sub t.net_pins t.net_offsets.(e) (net_size t e)

let net_offset t e = t.net_offsets.(e)
let pin_at t slot = t.net_pins.(slot)

(* Read-only views of the internal CSR arrays, for engine hot loops that
   cannot afford per-element function calls.  Callers must not write. *)
let net_offsets_store t = t.net_offsets
let net_pins_store t = t.net_pins
let net_weights_store t = t.net_weights
let mod_offsets_store t = t.mod_offsets
let mod_nets_store t = t.mod_nets
let areas_store t = t.areas

let fold_pins_of t e ~init ~f =
  let acc = ref init in
  iter_pins_of t e (fun v -> acc := f !acc v);
  !acc

let max_module_degree t =
  let best = ref 0 in
  for v = 0 to num_modules t - 1 do
    if module_degree t v > !best then best := module_degree t v
  done;
  !best

let max_weighted_degree t =
  let best = ref 0 in
  for v = 0 to num_modules t - 1 do
    let w = fold_nets_of t v ~init:0 ~f:(fun acc e -> acc + net_weight t e) in
    if w > !best then best := w
  done;
  !best

let total_net_weight t = Array.fold_left ( + ) 0 t.net_weights

let pp_summary ppf t =
  Format.fprintf ppf "%s: %d modules, %d nets, %d pins"
    (if t.name = "" then "<hypergraph>" else t.name)
    (num_modules t) (num_nets t) (num_pins t)

(* Monomorphic ascending sort of a.(lo .. lo+len-1): insertion sort for the
   short runs typical of coarse-net pin sets, quicksort above.  Avoids the
   callback through polymorphic [compare] that [Array.sort compare] pays on
   every comparison. *)
let rec sort_ints a lo len =
  if len <= 16 then
    for i = lo + 1 to lo + len - 1 do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > x do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done
  else begin
    let hi = lo + len - 1 in
    let mid = lo + (len / 2) in
    let p =
      (* median of three *)
      let x = a.(lo) and y = a.(mid) and z = a.(hi) in
      if x < y then (if y < z then y else if x < z then z else x)
      else if x < z then x
      else if y < z then z
      else y
    in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while a.(!i) < p do
        incr i
      done;
      while a.(!j) > p do
        decr j
      done;
      if !i <= !j then begin
        let tmp = a.(!i) in
        a.(!i) <- a.(!j);
        a.(!j) <- tmp;
        incr i;
        decr j
      end
    done;
    sort_ints a lo (!j - lo + 1);
    sort_ints a !i (hi - !i + 1)
  end

(* Shared construction tail: given valid net->pins CSR arrays, build the
   module->nets CSR by counting sort and finish the record.  This is the
   [make_csr] fast path: no validation, no (pins, weight) tuple array. *)
let make_csr ?(name = "") ~areas ~net_offsets ~net_pins ~net_weights () =
  let n = Array.length areas in
  let m = Array.length net_weights in
  let total_pins = Array.length net_pins in
  let degree = Array.make n 0 in
  Array.iter (fun v -> degree.(v) <- degree.(v) + 1) net_pins;
  let mod_offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    mod_offsets.(v + 1) <- mod_offsets.(v) + degree.(v)
  done;
  (* rewind [degree] into per-module write cursors *)
  Array.blit mod_offsets 0 degree 0 n;
  let cursor = degree in
  let mod_nets = Array.make total_pins 0 in
  for e = 0 to m - 1 do
    for i = net_offsets.(e) to net_offsets.(e + 1) - 1 do
      let v = net_pins.(i) in
      mod_nets.(cursor.(v)) <- e;
      cursor.(v) <- cursor.(v) + 1
    done
  done;
  let total_area = Array.fold_left ( + ) 0 areas in
  let max_area = ref 0 in
  Array.iter (fun a -> if a > !max_area then max_area := a) areas;
  {
    name;
    areas;
    net_offsets;
    net_pins;
    net_weights;
    mod_offsets;
    mod_nets;
    total_area;
    max_area = !max_area;
  }

(* Construction.  [nets] is validated: each net needs >= 2 distinct in-range
   pins; then both CSR directions are materialised. *)
let make ?(name = "") ~areas ~nets () =
  let n = Array.length areas in
  Array.iteri
    (fun v a ->
      if a <= 0 then
        invalid_arg (Printf.sprintf "Hypergraph.make: area of module %d is %d" v a))
    areas;
  let seen = Array.make n (-1) in
  Array.iteri
    (fun e (pins, w) ->
      if w <= 0 then
        invalid_arg (Printf.sprintf "Hypergraph.make: net %d has weight %d" e w);
      if Array.length pins < 2 then
        invalid_arg (Printf.sprintf "Hypergraph.make: net %d has < 2 pins" e);
      Array.iter
        (fun v ->
          if v < 0 || v >= n then
            invalid_arg
              (Printf.sprintf "Hypergraph.make: net %d pin %d out of range" e v);
          if seen.(v) = e then
            invalid_arg
              (Printf.sprintf "Hypergraph.make: net %d repeats pin %d" e v);
          seen.(v) <- e)
        pins)
    nets;
  (* The sentinel array [seen] uses net ids as marks, so reset is implicit;
     but net id 0 collides with the initial -1? No: marks store e >= 0 and
     initial value is -1, and within net e we only compare against e. *)
  let m = Array.length nets in
  let net_offsets = Array.make (m + 1) 0 in
  for e = 0 to m - 1 do
    let pins, _ = nets.(e) in
    net_offsets.(e + 1) <- net_offsets.(e) + Array.length pins
  done;
  let total_pins = net_offsets.(m) in
  let net_pins = Array.make total_pins 0 in
  let net_weights = Array.make m 0 in
  for e = 0 to m - 1 do
    let pins, w = nets.(e) in
    net_weights.(e) <- w;
    Array.blit pins 0 net_pins net_offsets.(e) (Array.length pins)
  done;
  make_csr ~name ~areas ~net_offsets ~net_pins ~net_weights ()

(* Unvalidated construction for ingestion and repair: the CSR is built
   as-is, so duplicate pins, sub-2-pin nets and non-positive areas/weights
   survive into the value.  Pins must still be in [0, n) — the counting
   sort indexes by pin id.  Anything built this way should flow through
   [validate]/[repair] before reaching an engine. *)
let make_unchecked ?(name = "") ~areas ~nets () =
  let n = Array.length areas in
  Array.iter
    (fun (pins, _) ->
      Array.iter
        (fun v ->
          if v < 0 || v >= n then
            invalid_arg
              (Printf.sprintf "Hypergraph.make_unchecked: pin %d out of range" v))
        pins)
    nets;
  let m = Array.length nets in
  let net_offsets = Array.make (m + 1) 0 in
  for e = 0 to m - 1 do
    let pins, _ = nets.(e) in
    net_offsets.(e + 1) <- net_offsets.(e) + Array.length pins
  done;
  let net_pins = Array.make net_offsets.(m) 0 in
  let net_weights = Array.make m 0 in
  for e = 0 to m - 1 do
    let pins, w = nets.(e) in
    net_weights.(e) <- w;
    Array.blit pins 0 net_pins net_offsets.(e) (Array.length pins)
  done;
  make_csr ~name ~areas ~net_offsets ~net_pins ~net_weights ()

(* ---- Validation and repair ---- *)

module Diag = Mlpart_util.Diag

let validate t =
  let source = if t.name = "" then "<hypergraph>" else t.name in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let n = num_modules t in
  Array.iteri
    (fun v a ->
      if a <= 0 then
        add (Diag.error ~source Diag.Bad_area "module %d has area %d" v a))
    t.areas;
  let seen = Array.make n (-1) in
  for e = 0 to num_nets t - 1 do
    if t.net_weights.(e) <= 0 then
      add (Diag.error ~source Diag.Bad_weight "net %d has weight %d" e
             t.net_weights.(e));
    let distinct = ref 0 in
    iter_pins_of t e (fun v ->
        if seen.(v) = e then
          add (Diag.error ~source Diag.Duplicate_pin "net %d repeats pin %d" e v)
        else begin
          seen.(v) <- e;
          incr distinct
        end);
    if !distinct = 0 then add (Diag.error ~source Diag.Empty_net "net %d is empty" e)
    else if !distinct < 2 then
      add (Diag.error ~source Diag.Singleton_net
             "net %d has a single distinct pin" e)
  done;
  match List.rev !diags with [] -> Ok () | ds -> Error ds

type repair_report = {
  dropped_nets : int;
  deduped_pins : int;
  clamped_areas : int;
  clamped_weights : int;
  repair_diags : Diag.t list;
}

let repair t =
  let source = if t.name = "" then "<hypergraph>" else t.name in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let dropped = ref 0 and deduped = ref 0 and areas_c = ref 0 and weights_c = ref 0 in
  let areas =
    Array.mapi
      (fun v a ->
        if a <= 0 then begin
          incr areas_c;
          add (Diag.warning ~source Diag.Bad_area
                 "clamped area of module %d from %d to 1" v a);
          1
        end
        else a)
      t.areas
  in
  let nets = ref [] in
  for e = 0 to num_nets t - 1 do
    let pins = pins_of t e in
    let distinct = List.sort_uniq Int.compare (Array.to_list pins) in
    let d = List.length distinct in
    if d < Array.length pins then begin
      deduped := !deduped + (Array.length pins - d);
      add (Diag.warning ~source Diag.Duplicate_pin
             "net %d: collapsed %d duplicate pin(s)" e (Array.length pins - d))
    end;
    if d < 2 then begin
      incr dropped;
      add (Diag.warning ~source
             (if d = 0 then Diag.Empty_net else Diag.Singleton_net)
             "dropped net %d (%d distinct pin(s))" e d)
    end
    else begin
      let w = t.net_weights.(e) in
      let w =
        if w <= 0 then begin
          incr weights_c;
          add (Diag.warning ~source Diag.Bad_weight
                 "clamped weight of net %d from %d to 1" e w);
          1
        end
        else w
      in
      nets := (Array.of_list distinct, w) :: !nets
    end
  done;
  let repaired =
    make ~name:t.name ~areas ~nets:(Array.of_list (List.rev !nets)) ()
  in
  ( repaired,
    {
      dropped_nets = !dropped;
      deduped_pins = !deduped;
      clamped_areas = !areas_c;
      clamped_weights = !weights_c;
      repair_diags = List.rev !diags;
    } )

(* ---- Induced coarse hypergraphs (Definition 1) ---- *)

(* Reusable scratch for [induce]: the coarsening loop calls it once per
   level, and without the arena each call would allocate mark/scratch/dedup
   arrays proportional to the cluster count.  Stamps are generational:
   [stamp] only grows, so [mark] never needs clearing between nets, levels
   or even hypergraphs. *)
type arena = {
  mutable mark : int array; (* per-cluster stamp *)
  mutable stamp : int;
  mutable scratch : int array; (* distinct clusters of the current net *)
  mutable table : int array; (* open-addressing dedup slots: kept index + 1 *)
  mutable hashes : int array; (* pin-set hash per kept coarse net *)
}

let create_arena () =
  { mark = [||]; stamp = 0; scratch = [||]; table = [||]; hashes = [||] }

let ensure_ints a len = if Array.length a >= len then a else Array.make len 0

let validate_clustering fname t cluster_of =
  let n = num_modules t in
  if Array.length cluster_of <> n then
    invalid_arg (fname ^ ": clustering length mismatch");
  let max_c = ref (-1) in
  Array.iter (fun c -> if c > !max_c then max_c := c) cluster_of;
  let k = !max_c + 1 in
  if k <= 0 then invalid_arg (fname ^ ": empty clustering");
  Array.iteri
    (fun v c ->
      if c < 0 then
        invalid_arg (Printf.sprintf "%s: module %d cluster %d" fname v c))
    cluster_of;
  let coarse_areas = Array.make k 0 in
  for v = 0 to n - 1 do
    let c = cluster_of.(v) in
    coarse_areas.(c) <- coarse_areas.(c) + t.areas.(v)
  done;
  Array.iteri
    (fun c a ->
      if a = 0 then
        invalid_arg (Printf.sprintf "%s: cluster %d is empty" fname c))
    coarse_areas;
  (k, coarse_areas)

(* Induce the coarse hypergraph of a clustering.  Cluster ids must be
   contiguous 0..k-1.  Two passes over the fine pins: the first counts
   surviving nets and their pins (so the coarse CSR arrays are allocated at
   exact size), the second writes sorted pin runs directly into them.
   Duplicate merging dedups by hash of the sorted run in first-occurrence
   order.  No per-net allocation, no intermediate (pins, weight) tuples,
   no re-validation. *)
(* Parallel variant of the two-pass CSR induce: per-range counting with
   per-slot mark arrays, prefix-sum placement, parallel fill.  Coarse nets
   land at positions computed from the scans — a pure function of the fine
   net order — so the output arrays are byte-identical to the sequential
   path for any pool size.  Duplicate merging is inherently first-occurrence
   sequential, so only the non-merging path parallelizes. *)
let induce_parallel ~name pool t cluster_of ~k ~coarse_areas =
  let module Pool = Mlpart_util.Pool in
  let fine_offsets = t.net_offsets in
  let fine_pins = t.net_pins in
  let m = num_nets t in
  let slots = Pool.size pool in
  let marks = Array.init slots (fun _ -> Array.make k 0) in
  let stamps = Array.make slots 0 in
  let scratches = Array.init slots (fun _ -> Array.make k 0) in
  (* pass 1: distinct-cluster count per net (0 marks a dropped net) *)
  let cnt = Array.make m 0 in
  let keep = Array.make m 0 in
  Pool.parallel_chunks pool ~n:m ~body:(fun ~slot ~lo ~hi ->
      let mark = marks.(slot) in
      for e = lo to hi - 1 do
        stamps.(slot) <- stamps.(slot) + 1;
        let s = stamps.(slot) in
        let c = ref 0 in
        for i = fine_offsets.(e) to fine_offsets.(e + 1) - 1 do
          let cl = cluster_of.(fine_pins.(i)) in
          if mark.(cl) <> s then begin
            mark.(cl) <- s;
            incr c
          end
        done;
        if !c >= 2 then begin
          cnt.(e) <- !c;
          keep.(e) <- 1
        end
      done);
  (* prefix sums place every surviving net and its pin run *)
  let kept_at = Array.make (m + 1) 0 in
  let pin_at = Array.make (m + 1) 0 in
  let kept = Pool.parallel_scan pool ~n:m ~src:keep ~dst:kept_at in
  let total = Pool.parallel_scan pool ~n:m ~src:cnt ~dst:pin_at in
  let coarse_offsets = Array.make (kept + 1) 0 in
  let coarse_pins = Array.make total 0 in
  let coarse_weights = Array.make kept 0 in
  (* pass 2: re-derive each surviving net's sorted cluster run into its
     scanned slot *)
  Pool.parallel_chunks pool ~n:m ~body:(fun ~slot ~lo ~hi ->
      let mark = marks.(slot) in
      let scratch = scratches.(slot) in
      for e = lo to hi - 1 do
        if keep.(e) = 1 then begin
          stamps.(slot) <- stamps.(slot) + 1;
          let s = stamps.(slot) in
          let c = ref 0 in
          for i = fine_offsets.(e) to fine_offsets.(e + 1) - 1 do
            let cl = cluster_of.(fine_pins.(i)) in
            if mark.(cl) <> s then begin
              mark.(cl) <- s;
              scratch.(!c) <- cl;
              incr c
            end
          done;
          let c = !c in
          sort_ints scratch 0 c;
          let j = kept_at.(e) in
          let off = pin_at.(e) in
          Array.blit scratch 0 coarse_pins off c;
          coarse_weights.(j) <- t.net_weights.(e);
          coarse_offsets.(j + 1) <- off + c
        end
      done);
  ( make_csr ~name ~areas:coarse_areas ~net_offsets:coarse_offsets
      ~net_pins:coarse_pins ~net_weights:coarse_weights (),
    k )

let rec induce ?(name = "") ?(merge_duplicates = false) ?arena ?pool t
    cluster_of =
  let k, coarse_areas = validate_clustering "Hypergraph.induce" t cluster_of in
  match pool with
  | Some p
    when Mlpart_util.Pool.size p > 1 && not merge_duplicates && num_nets t > 0
    ->
      induce_parallel ~name p t cluster_of ~k ~coarse_areas
  | _ -> induce_sequential ~name ~merge_duplicates ?arena t cluster_of ~k
           ~coarse_areas

and induce_sequential ~name ~merge_duplicates ?arena t cluster_of ~k
    ~coarse_areas =
  let ar = match arena with Some a -> a | None -> create_arena () in
  ar.mark <- ensure_ints ar.mark k;
  ar.scratch <- ensure_ints ar.scratch k;
  let mark = ar.mark in
  let scratch = ar.scratch in
  let fine_offsets = t.net_offsets in
  let fine_pins = t.net_pins in
  let m = num_nets t in
  (* pass 1: how many coarse nets survive, with how many pins in total *)
  let kept = ref 0 in
  let total = ref 0 in
  for e = 0 to m - 1 do
    ar.stamp <- ar.stamp + 1;
    let s = ar.stamp in
    let cnt = ref 0 in
    for i = fine_offsets.(e) to fine_offsets.(e + 1) - 1 do
      let c = cluster_of.(fine_pins.(i)) in
      if mark.(c) <> s then begin
        mark.(c) <- s;
        incr cnt
      end
    done;
    if !cnt >= 2 then begin
      incr kept;
      total := !total + !cnt
    end
  done;
  let kept = !kept in
  let coarse_offsets = Array.make (kept + 1) 0 in
  let coarse_pins = Array.make !total 0 in
  let coarse_weights = Array.make kept 0 in
  let mask =
    if not merge_duplicates then 0
    else begin
      let cap = ref 16 in
      while !cap < 2 * kept do
        cap := !cap * 2
      done;
      let cap = if Array.length ar.table > !cap then Array.length ar.table else !cap in
      ar.table <- ensure_ints ar.table cap;
      Array.fill ar.table 0 cap 0;
      ar.hashes <- ensure_ints ar.hashes kept;
      cap - 1
    end
  in
  let table = ar.table in
  let hashes = ar.hashes in
  (* pass 2: fill the coarse CSR in net order *)
  let j = ref 0 in
  let cursor = ref 0 in
  for e = 0 to m - 1 do
    ar.stamp <- ar.stamp + 1;
    let s = ar.stamp in
    let cnt = ref 0 in
    for i = fine_offsets.(e) to fine_offsets.(e + 1) - 1 do
      let c = cluster_of.(fine_pins.(i)) in
      if mark.(c) <> s then begin
        mark.(c) <- s;
        scratch.(!cnt) <- c;
        incr cnt
      end
    done;
    let cnt = !cnt in
    if cnt >= 2 then begin
      sort_ints scratch 0 cnt;
      let w = t.net_weights.(e) in
      let dup =
        if not merge_duplicates then -1
        else begin
          let h = ref cnt in
          for i = 0 to cnt - 1 do
            h := ((!h * 0x9E3779B1) + scratch.(i)) land max_int
          done;
          let h = !h in
          let idx = ref (h land mask) in
          let found = ref (-1) in
          let continue = ref true in
          while !continue do
            let entry = table.(!idx) in
            if entry = 0 then begin
              (* claim the empty slot for this net if it ends up kept *)
              table.(!idx) <- !j + 1;
              hashes.(!j) <- h;
              continue := false
            end
            else begin
              let cand = entry - 1 in
              let off = coarse_offsets.(cand) in
              if
                hashes.(cand) = h
                && coarse_offsets.(cand + 1) - off = cnt
                && begin
                     let equal = ref true in
                     let i = ref 0 in
                     while !equal && !i < cnt do
                       if coarse_pins.(off + !i) <> scratch.(!i) then
                         equal := false
                       else incr i
                     done;
                     !equal
                   end
              then begin
                found := cand;
                continue := false
              end
              else idx := (!idx + 1) land mask
            end
          done;
          !found
        end
      in
      if dup >= 0 then coarse_weights.(dup) <- coarse_weights.(dup) + w
      else begin
        Array.blit scratch 0 coarse_pins !cursor cnt;
        coarse_weights.(!j) <- w;
        incr j;
        cursor := !cursor + cnt;
        coarse_offsets.(!j) <- !cursor
      end
    end
  done;
  let net_offsets, net_pins, net_weights =
    if !j = kept then (coarse_offsets, coarse_pins, coarse_weights)
    else
      ( Array.sub coarse_offsets 0 (!j + 1),
        Array.sub coarse_pins 0 !cursor,
        Array.sub coarse_weights 0 !j )
  in
  (make_csr ~name ~areas:coarse_areas ~net_offsets ~net_pins ~net_weights (), k)

(* Straightforward list-based induce, retained as the oracle for property
   tests of the CSR fast path above.  Semantics are identical: coarse nets
   in fine-net order with sorted pins; duplicate merging keeps the first
   occurrence and sums weights into it. *)
let induce_reference ?(name = "") ?(merge_duplicates = false) t cluster_of =
  let k, coarse_areas =
    validate_clustering "Hypergraph.induce_reference" t cluster_of
  in
  let mark = Array.make k (-1) in
  let scratch = Array.make k 0 in
  let rev_nets = ref [] in
  for e = 0 to num_nets t - 1 do
    let count = ref 0 in
    iter_pins_of t e (fun v ->
        let c = cluster_of.(v) in
        if mark.(c) <> e then begin
          mark.(c) <- e;
          scratch.(!count) <- c;
          incr count
        end);
    if !count >= 2 then begin
      let pins = Array.sub scratch 0 !count in
      Array.sort Stdlib.compare pins;
      rev_nets := (pins, net_weight t e) :: !rev_nets
    end
  done;
  let nets = List.rev !rev_nets in
  let nets =
    if not merge_duplicates then Array.of_list nets
    else begin
      let table : (int array, int ref) Hashtbl.t = Hashtbl.create 64 in
      let rev_merged = ref [] in
      List.iter
        (fun (pins, w) ->
          match Hashtbl.find_opt table pins with
          | Some wr -> wr := !wr + w
          | None ->
              let wr = ref w in
              Hashtbl.add table pins wr;
              rev_merged := (pins, wr) :: !rev_merged)
        nets;
      Array.of_list (List.rev_map (fun (pins, wr) -> (pins, !wr)) !rev_merged)
    end
  in
  (make ~name ~areas:coarse_areas ~nets (), k)
