(** Netlist hypergraphs.

    A netlist hypergraph [H(V, E)] has modules (cells) [0 .. num_modules-1]
    and nets; a net is a set of at least two distinct modules (its pins).
    Modules carry positive areas, nets carry positive integer weights
    (weights arise when coarsening merges duplicate nets; flat input netlists
    have unit weights).

    The representation is a compact CSR (compressed sparse row) in both
    directions — pins of each net and nets of each module — so that the
    inner loops of FM-style partitioners touch contiguous memory.  Values
    are immutable after construction; use {!Builder} to create them. *)

type t

(** {1 Sizes} *)

val num_modules : t -> int
val num_nets : t -> int

val num_pins : t -> int
(** Total pin count: sum over nets of net size. *)

(** {1 Modules} *)

val area : t -> int -> int
(** [area h v] is the area of module [v].  Unit areas for flat netlists. *)

val total_area : t -> int
(** Sum of all module areas. *)

val max_area : t -> int
(** Largest single module area (the "A(v max)" of the paper's balance rule). *)

val module_degree : t -> int -> int
(** Number of nets incident to a module. *)

val nets_of : t -> int -> int array
(** [nets_of h v] is the array of net ids incident to module [v].  The
    returned array is a fresh copy; prefer {!iter_nets_of} in hot loops. *)

val iter_nets_of : t -> int -> (int -> unit) -> unit
(** Iterate net ids incident to a module without allocating. *)

val fold_nets_of : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

(** {1 Nets} *)

val net_size : t -> int -> int
(** Number of pins of a net (>= 2). *)

val net_weight : t -> int -> int
(** Weight of a net (>= 1). *)

val pins_of : t -> int -> int array
(** Fresh copy of a net's pins; prefer {!iter_pins_of} in hot loops. *)

val iter_pins_of : t -> int -> (int -> unit) -> unit

val fold_pins_of : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val net_offset : t -> int -> int
(** Global pin-slot index of a net's first pin: the pins of net [e] occupy
    slots [net_offset h e .. net_offset h e + net_size h e - 1].  Engines
    use slots to key per-pin side tables (e.g. cached gain contributions). *)

val pin_at : t -> int -> int
(** Module id stored at a global pin slot. *)

(** {1 Raw CSR views}

    Direct references to the internal CSR arrays, for refinement-engine
    inner loops where even the accessor-call overhead of {!net_offset} /
    {!pin_at} is measurable.  The arrays are the live representation —
    treat them as strictly read-only. *)

val net_offsets_store : t -> int array
(** Length [num_nets + 1]; net [e]'s pins live at slots
    [net_offsets.(e) .. net_offsets.(e+1) - 1] of {!net_pins_store}. *)

val net_pins_store : t -> int array
(** Module id per global pin slot. *)

val net_weights_store : t -> int array
(** Weight per net. *)

val mod_offsets_store : t -> int array
(** Length [num_modules + 1]; module [v]'s incident nets live at slots
    [mod_offsets.(v) .. mod_offsets.(v+1) - 1] of {!mod_nets_store}. *)

val mod_nets_store : t -> int array
(** Net id per module-incidence slot. *)

val areas_store : t -> int array
(** Area per module. *)

(** {1 Whole-graph queries} *)

val max_module_degree : t -> int
(** Largest number of incident nets over all modules. *)

val max_weighted_degree : t -> int
(** Largest sum of incident net weights over all modules: an upper bound on
    any FM gain, used to size gain-bucket arrays. *)

val total_net_weight : t -> int

val name : t -> string
(** Optional human-readable identifier (benchmark name); [""] if unset. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: name, module/net/pin counts. *)

(** {1 Construction} *)

val make :
  ?name:string ->
  areas:int array ->
  nets:(int array * int) array ->
  unit ->
  t
(** [make ~areas ~nets ()] builds a hypergraph with [Array.length areas]
    modules.  Each element of [nets] is [(pins, weight)].  Raises
    [Invalid_argument] if any net has fewer than two distinct pins, a pin is
    out of range or repeated within a net, an area is non-positive, or a
    weight is non-positive. *)

val make_unchecked :
  ?name:string ->
  areas:int array ->
  nets:(int array * int) array ->
  unit ->
  t
(** Like {!make} but with no degeneracy validation: duplicate pins,
    empty/singleton nets and non-positive areas or weights survive into
    the value.  Pins must still be in range (the CSR build indexes by pin
    id; out-of-range pins raise [Invalid_argument]).  Used by lenient
    ingestion and by tests of {!validate}/{!repair}; anything built this
    way must be repaired before reaching a partitioning engine. *)

val validate : t -> (unit, Mlpart_util.Diag.t list) result
(** Check the engine-facing invariants ({!make} enforces them,
    {!make_unchecked} does not): positive areas and weights, every net
    with at least two distinct pins.  Returns all violations as
    [Error]-severity diagnostics whose [source] is the hypergraph name. *)

type repair_report = {
  dropped_nets : int;  (** empty or singleton (after pin dedup) nets removed *)
  deduped_pins : int;  (** duplicate pin slots collapsed *)
  clamped_areas : int;  (** non-positive areas raised to 1 *)
  clamped_weights : int;  (** non-positive net weights raised to 1 *)
  repair_diags : Mlpart_util.Diag.t list;
      (** one [Warning] per individual fix, in net/module order *)
}

val repair : t -> t * repair_report
(** [repair t] rebuilds [t] with every {!validate} violation fixed: pins
    deduplicated, empty and singleton nets dropped, non-positive areas and
    weights clamped to 1.  The result always satisfies {!validate}; on an
    already-valid input it is structurally identical and the report is all
    zeros.  Net order (among survivors) and module ids are preserved. *)

type arena
(** Reusable scratch for {!induce}: mark/stamp arrays and the duplicate-net
    hash table.  One arena threaded through a coarsening loop makes every
    level's induce allocation-free apart from the coarse CSR arrays
    themselves.  An arena may be reused freely across hypergraphs of any
    size (it grows on demand and never needs resetting), but is not safe to
    share between domains. *)

val create_arena : unit -> arena

val induce :
  ?name:string ->
  ?merge_duplicates:bool ->
  ?arena:arena ->
  ?pool:Mlpart_util.Pool.t ->
  t ->
  int array ->
  t * int
(** [induce h cluster_of] builds the coarser hypergraph induced by the
    clustering that maps module [v] to cluster [cluster_of.(v)] (Definition 1
    of the paper): cluster areas are summed, each net projects to the set of
    clusters it spans and is dropped if that set is a singleton.  Cluster ids
    must form a contiguous range [0 .. k-1].

    When [merge_duplicates] is [true] (default [false], the paper's literal
    Definition 1 keeps duplicates), coarse nets spanning identical cluster
    sets are merged in first-occurrence order and their weights summed.

    The coarse net order is the fine net order (restricted to surviving
    nets) and each coarse net's pins are sorted ascending.  The coarse CSR
    is emitted directly — counting pass, then a fill pass — without an
    intermediate (pins, weight) list; pass [arena] to reuse scratch across
    calls (see {!create_arena}).

    [pool] parallelizes both passes (per-range counting, prefix-sum
    placement, parallel fill) on the non-merging path; the output is
    byte-identical to the sequential path for any pool size.  With
    [merge_duplicates] the pool is ignored (first-occurrence merging is
    order-sequential).

    Returns the coarse hypergraph and [k], the number of clusters. *)

val induce_reference :
  ?name:string -> ?merge_duplicates:bool -> t -> int array -> t * int
(** Simple list-based implementation of exactly the same function, kept as
    the oracle for property tests of the CSR fast path.  Slower; do not use
    in production paths. *)
