(** The property suite: exact-oracle checks per engine plus metamorphic
    laws over the whole pipeline.

    Oracle properties ([oracle/<engine>]) assert, per generated instance:
    the reported cut equals a from-scratch [Objective] recount, the output
    satisfies the engine's balance contract, and the cut is no better than
    the enumerated optimum over the engine's feasible set — a reported cut
    {e below} the optimum is exactly what a bucket-discipline or rollback
    bug looks like.

    Law properties ([laws/...]) assert behavioural symmetries that need no
    oracle: relabeling invariance, net-weight scaling, duplicate-net merge
    equivalence (Definition 1), coarsen-then-project cut conservation,
    fixed pins respected through multilevel runs, V-cycle monotonicity,
    and [validate]/[repair] idempotence. *)

val oracle_properties : Property.packed list
(** One per flat engine (fm, clip, prop, kl, lsmc, genetic), plus the
    multilevel driver, an FM run with fixed pins, and the 4-way
    quadrisection engine. *)

val law_properties : Property.packed list

val all : Property.packed list
(** [oracle_properties @ law_properties]; names are unique. *)

val find : string -> Property.packed option
