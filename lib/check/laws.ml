module H = Mlpart_hypergraph.Hypergraph
module Rng = Mlpart_util.Rng
module Bp = Mlpart_partition.Bipartition
module Kp = Mlpart_partition.Kpartition
module Fm = Mlpart_partition.Fm
module Objective = Mlpart_partition.Objective
module Multiway = Mlpart_partition.Multiway
module Match = Mlpart_multilevel.Match
module Ml = Mlpart_multilevel.Ml
module Rb = Mlpart_multilevel.Rb
module Nlevel = Mlpart_multilevel.Nlevel
module Gain_cache = Mlpart_partition.Gain_cache
module Pool = Mlpart_util.Pool

open Property

let failf fmt = Printf.ksprintf (fun m -> Fail m) fmt

(* Every property consumes an instance spec plus a scalar seed driving all
   derived randomness (engine RNG, random sides, permutations), so the
   whole case replays from the (spec, seed) pair alone. *)
let seeded gen = Gen.pair gen (Gen.int_range 0 999_983)
let show_seeded (spec, seed) = Printf.sprintf "%s seed=%d" (Hgen.show spec) seed

let unconstrained h = { Bp.lo = 0; hi = H.total_area h }

let random_side rng n = Array.init n (fun _ -> Rng.int rng 2)

(* ---- oracle properties ---- *)

(* Reported cut must equal an [Objective] recount; a balanced engine must
   land inside the paper's bounds and then beat no feasible assignment;
   an unbounded engine (KL) is held to the unconstrained optimum. *)
let oracle_law (engine : Engines.t) (spec, seed) =
  let h = Hgen.build spec in
  let r = engine.Engines.run (Rng.create seed) h in
  let report = Objective.evaluate h r.Engines.side in
  if r.Engines.cut <> report.Objective.net_cut then
    failf "reported cut %d but recount is %d" r.Engines.cut
      report.Objective.net_cut
  else begin
    let bounds = if engine.Engines.balanced then Bp.bounds h else unconstrained h in
    let area0 =
      Array.fold_left ( + ) 0
        (Array.mapi
           (fun v s -> if s = 0 then H.area h v else 0)
           r.Engines.side)
    in
    if engine.Engines.balanced && (area0 < bounds.Bp.lo || area0 > bounds.Bp.hi)
    then
      failf "side-0 area %d outside balance bounds [%d, %d]" area0 bounds.Bp.lo
        bounds.Bp.hi
    else
      match Oracle.bipartition ~bounds h with
      | None -> failf "engine returned a solution on an infeasible instance"
      | Some opt ->
          if r.Engines.cut < opt.Oracle.cut then
            failf "cut %d beats the enumerated optimum %d (impossible)"
              r.Engines.cut opt.Oracle.cut
          else Pass
  end

let oracle_property engine =
  Packed
    {
      name = "oracle/" ^ engine.Engines.name;
      gen = seeded Hgen.instance;
      show = show_seeded;
      law = oracle_law engine;
    }

(* FM with pinned modules: the pins must survive to the output, and the
   optimum is taken over assignments honouring them. *)
let fm_fixed =
  Packed
    {
      name = "oracle/fm-fixed";
      gen = seeded Hgen.instance;
      show = show_seeded;
      law =
        (fun (spec, seed) ->
          let h = Hgen.build spec in
          let n = H.num_modules h in
          let rng = Rng.create seed in
          let fixed = Array.make n (-1) in
          let perm = Rng.permutation rng n in
          let count = Rng.int rng ((n / 3) + 1) in
          for i = 0 to count - 1 do
            fixed.(perm.(i)) <- i land 1
          done;
          let bounds = Bp.bounds h in
          match Oracle.bipartition ~fixed ~bounds h with
          | None -> Skip
          | Some opt -> (
              let r = Engines.fm.Engines.run ~fixed rng h in
              let bad = ref None in
              Array.iteri
                (fun v f ->
                  if f >= 0 && r.Engines.side.(v) <> f && !bad = None then
                    bad := Some v)
                fixed;
              match !bad with
              | Some v ->
                  failf "module %d was pinned to %d but ended on side %d" v
                    fixed.(v) r.Engines.side.(v)
              | None ->
                  let report = Objective.evaluate h r.Engines.side in
                  if r.Engines.cut <> report.Objective.net_cut then
                    failf "reported cut %d but recount is %d" r.Engines.cut
                      report.Objective.net_cut
                  else if r.Engines.cut < opt.Oracle.cut then
                    failf "cut %d beats the fixed-respecting optimum %d"
                      r.Engines.cut opt.Oracle.cut
                  else Pass));
    }

(* Quadrisection against the exhaustive 4-way oracle (hence the tight
   module cap: 4^n assignments). *)
let multiway_oracle =
  Packed
    {
      name = "oracle/multiway";
      gen = seeded (Hgen.small_instance ~max_modules:7);
      show = show_seeded;
      law =
        (fun (spec, seed) ->
          let h = Hgen.build spec in
          let n = H.num_modules h in
          if n < 4 then Skip
          else begin
            let r = Multiway.run (Rng.create seed) h ~k:4 in
            let report = Objective.evaluate h r.Multiway.side in
            if r.Multiway.cut <> report.Objective.net_cut then
              failf "reported 4-way cut %d but recount is %d" r.Multiway.cut
                report.Objective.net_cut
            else
              match Oracle.kway ~k:4 h with
              | None -> failf "unconstrained 4-way oracle found nothing"
              | Some opt ->
                  if r.Multiway.cut < opt.Oracle.cut then
                    failf "4-way cut %d beats the optimum %d" r.Multiway.cut
                      opt.Oracle.cut
                  else Pass
          end);
    }

(* The n-level engine against the exhaustive k-way oracle, with k drawn
   from whatever the 2^18 enumeration budget allows at the instance's
   module count (k = 2 always fits at <= 16 modules). *)
let nlevel_oracle =
  Packed
    {
      name = "oracle/nlevel";
      gen = seeded Hgen.instance;
      show = show_seeded;
      law =
        (fun (spec, seed) ->
          let h = Hgen.build spec in
          let n = H.num_modules h in
          let rng = Rng.create seed in
          let ks =
            List.filter
              (fun k -> k = 2 || (k = 3 && n <= 11) || (k = 4 && n <= 9))
              [ 2; 3; 4 ]
          in
          let k = List.nth ks (Rng.int rng (List.length ks)) in
          let r = Nlevel.run rng h ~k in
          let report = Objective.evaluate h r.Nlevel.side in
          if r.Nlevel.cut <> report.Objective.net_cut then
            failf "reported %d-way cut %d but recount is %d" k r.Nlevel.cut
              report.Objective.net_cut
          else
            match Oracle.kway ~k h with
            | None -> failf "unconstrained %d-way oracle found nothing" k
            | Some opt ->
                if r.Nlevel.cut < opt.Oracle.cut then
                  failf "%d-way cut %d beats the optimum %d" k r.Nlevel.cut
                    opt.Oracle.cut
                else Pass);
    }

let oracle_properties =
  List.map oracle_property Engines.all
  @ [ oracle_property Engines.ml; fm_fixed; multiway_oracle; nlevel_oracle ]

(* ---- metamorphic laws ---- *)

(* Relabeling modules and reordering nets must not change any metric. *)
let relabel =
  Packed
    {
      name = "laws/relabel";
      gen = seeded Hgen.instance;
      show = show_seeded;
      law =
        (fun (spec, seed) ->
          let h = Hgen.build spec in
          let n = H.num_modules h in
          let rng = Rng.create seed in
          let pi = Rng.permutation rng n in
          let areas' = Array.make n 0 in
          Array.iteri (fun v a -> areas'.(pi.(v)) <- a) spec.Hgen.areas;
          let nets' =
            Array.map
              (fun (pins, w) ->
                let pins = Array.map (fun p -> pi.(p)) pins in
                Array.sort Int.compare pins;
                (pins, w))
              spec.Hgen.nets
          in
          Rng.shuffle_in_place rng nets';
          let h' = H.make ~areas:areas' ~nets:nets' () in
          let side = random_side rng n in
          let side' = Array.make n 0 in
          Array.iteri (fun v s -> side'.(pi.(v)) <- s) side;
          let a = Objective.evaluate h side in
          let b = Objective.evaluate h' side' in
          if a.Objective.net_cut <> b.Objective.net_cut then
            failf "relabeled cut %d <> %d" b.Objective.net_cut a.Objective.net_cut
          else if a.Objective.sum_degrees <> b.Objective.sum_degrees then
            failf "relabeled soed %d <> %d" b.Objective.sum_degrees
              a.Objective.sum_degrees
          else if a.Objective.absorbed <> b.Objective.absorbed then
            failf "relabeled absorption %d <> %d" b.Objective.absorbed
              a.Objective.absorbed
          else if a.Objective.part_areas <> b.Objective.part_areas then
            failf "relabeled part areas differ"
          else Pass);
    }

(* Scaling every net weight by c scales every weighted metric — and the
   balanced optimum — by exactly c (areas are untouched, so the feasible
   set is identical). *)
let weight_scale =
  Packed
    {
      name = "laws/weight-scale";
      gen = Gen.pair (seeded Hgen.instance) (Gen.int_range 2 5);
      show =
        (fun (s, c) -> Printf.sprintf "%s scale=%d" (show_seeded s) c);
      law =
        (fun ((spec, seed), c) ->
          let h = Hgen.build spec in
          let n = H.num_modules h in
          let scaled =
            { spec with Hgen.nets = Array.map (fun (p, w) -> (p, w * c)) spec.Hgen.nets }
          in
          let h' = Hgen.build scaled in
          let rng = Rng.create seed in
          let side = random_side rng n in
          let a = Objective.evaluate h side in
          let b = Objective.evaluate h' side in
          if b.Objective.net_cut <> c * a.Objective.net_cut then
            failf "scaled cut %d <> %d * %d" b.Objective.net_cut c
              a.Objective.net_cut
          else if b.Objective.sum_degrees <> c * a.Objective.sum_degrees then
            failf "scaled soed %d <> %d * %d" b.Objective.sum_degrees c
              a.Objective.sum_degrees
          else if b.Objective.absorbed <> c * a.Objective.absorbed then
            failf "scaled absorption %d <> %d * %d" b.Objective.absorbed c
              a.Objective.absorbed
          else
            let bounds = Bp.bounds h in
            match (Oracle.bipartition ~bounds h, Oracle.bipartition ~bounds h') with
            | Some o, Some o' when o'.Oracle.cut <> c * o.Oracle.cut ->
                failf "scaled optimum %d <> %d * %d" o'.Oracle.cut c o.Oracle.cut
            | Some _, Some _ -> Pass
            | None, None -> Skip
            | _ -> failf "feasibility changed under weight scaling");
    }

(* Definition 1: merging duplicate nets into one net of summed weight is
   invisible to every weighted metric.  The identity clustering makes
   [induce ~merge_duplicates:true] perform exactly that merge. *)
let merge_duplicates =
  Packed
    {
      name = "laws/merge-duplicates";
      gen = seeded Hgen.instance;
      show = show_seeded;
      law =
        (fun (spec, seed) ->
          let h = Hgen.build spec in
          let n = H.num_modules h in
          let identity = Array.init n Fun.id in
          let h', k = H.induce ~merge_duplicates:true h identity in
          if k <> n then failf "identity clustering produced %d clusters" k
          else begin
            let side = random_side (Rng.create seed) n in
            let a = Objective.evaluate h side in
            let b = Objective.evaluate h' side in
            if a.Objective.net_cut <> b.Objective.net_cut then
              failf "merged cut %d <> %d" b.Objective.net_cut a.Objective.net_cut
            else if a.Objective.sum_degrees <> b.Objective.sum_degrees then
              failf "merged soed %d <> %d" b.Objective.sum_degrees
                a.Objective.sum_degrees
            else if a.Objective.absorbed <> b.Objective.absorbed then
              failf "merged absorption %d <> %d" b.Objective.absorbed
                a.Objective.absorbed
            else Pass
          end);
    }

(* A coarse assignment and its projection cut exactly the same nets
   (Definitions 1 and 2), with or without duplicate merging. *)
let coarsen_project =
  Packed
    {
      name = "laws/coarsen-project";
      gen = seeded Hgen.instance;
      show = show_seeded;
      law =
        (fun (spec, seed) ->
          let h = Hgen.build spec in
          let rng = Rng.create seed in
          let cluster_of, _ = Match.run rng h ~ratio:1.0 in
          let merge = Rng.bool rng in
          let coarse, k = H.induce ~merge_duplicates:merge h cluster_of in
          let coarse_side = random_side rng k in
          let fine_side = Ml.project cluster_of coarse_side in
          let coarse_cut = Fm.cut_of coarse coarse_side in
          let fine_cut = Fm.cut_of h fine_side in
          if coarse_cut <> fine_cut then
            failf "coarse cut %d <> projected fine cut %d (merge=%b)"
              coarse_cut fine_cut merge
          else Pass);
    }

(* Pinned modules must survive a full multilevel run — coarsening,
   the coarsest-level partition, projection and every refinement pass
   (threshold 4 forces real levels even on tiny instances). *)
let fixed_levels =
  Packed
    {
      name = "laws/fixed-levels";
      gen = seeded Hgen.instance;
      show = show_seeded;
      law =
        (fun (spec, seed) ->
          let h = Hgen.build spec in
          let n = H.num_modules h in
          let rng = Rng.create seed in
          let fixed = Array.make n (-1) in
          let perm = Rng.permutation rng n in
          let count = Rng.int rng ((n / 3) + 1) in
          for i = 0 to count - 1 do
            fixed.(perm.(i)) <- i land 1
          done;
          match Oracle.bipartition ~fixed ~bounds:(Bp.bounds h) h with
          | None -> Skip
          | Some opt ->
              let r = Engines.ml.Engines.run ~fixed rng h in
              let bad = ref None in
              Array.iteri
                (fun v f ->
                  if f >= 0 && r.Engines.side.(v) <> f && !bad = None then
                    bad := Some v)
                fixed;
              (match !bad with
              | Some v ->
                  failf "module %d was pinned to %d but ended on side %d" v
                    fixed.(v) r.Engines.side.(v)
              | None ->
                  if r.Engines.cut <> Fm.cut_of h r.Engines.side then
                    failf "reported cut %d but recount is %d" r.Engines.cut
                      (Fm.cut_of h r.Engines.side)
                  else if r.Engines.cut < opt.Oracle.cut then
                    failf "cut %d beats the pinned optimum %d" r.Engines.cut
                      opt.Oracle.cut
                  else Pass));
    }

(* V-cycles refine the solution of a plain run and may never lose. *)
let vcycle_monotone =
  Packed
    {
      name = "laws/vcycle-monotone";
      gen = seeded Hgen.instance;
      show = show_seeded;
      law =
        (fun (spec, seed) ->
          let h = Hgen.build spec in
          let config = { Ml.mlc with Ml.threshold = 4 } in
          let single = Ml.run ~config (Rng.create seed) h in
          let cycled = Ml.run_vcycles ~config ~cycles:2 (Rng.create seed) h in
          if cycled.Ml.cut > single.Ml.cut then
            failf "2 V-cycles worsened the cut: %d > %d" cycled.Ml.cut
              single.Ml.cut
          else if cycled.Ml.cut <> Fm.cut_of h cycled.Ml.side then
            failf "reported cut %d but recount is %d" cycled.Ml.cut
              (Fm.cut_of h cycled.Ml.side)
          else Pass);
    }

(* Intra-run parallelism is jobs-invariant: a full multilevel run (and a
   recursive bisection) on a pool of 4 domains returns the bit-identical
   partition and cut of the sequential run.  Threshold 4 forces a real
   hierarchy on the adversarial Hgen instances, and [rounds_min_modules = 0]
   forces the round-based refinement pre-pass at every level, so all three
   parallel stages (match rating, induce, rounds) are exercised. *)
let jobs_invariance =
  Packed
    {
      name = "laws/jobs-invariance";
      gen = seeded Hgen.instance;
      show = show_seeded;
      law =
        (fun (spec, seed) ->
          let h = Hgen.build spec in
          let config =
            { Ml.mlc with Ml.threshold = 4; Ml.rounds_min_modules = 0 }
          in
          let seq = Ml.run ~config (Rng.create seed) h in
          let rb_config = { Rb.default with Rb.ml = config } in
          let rb_seq = Rb.run ~config:rb_config (Rng.create seed) h ~k:2 in
          let check_jobs jobs =
            Pool.with_pool ~jobs (fun pool ->
                let par = Ml.run ~config ~pool (Rng.create seed) h in
                if par.Ml.cut <> seq.Ml.cut then
                  failf "jobs=%d cut %d <> sequential cut %d" jobs par.Ml.cut
                    seq.Ml.cut
                else if par.Ml.side <> seq.Ml.side then
                  failf "jobs=%d partition differs from sequential" jobs
                else begin
                  let rb_par =
                    Rb.run ~config:rb_config ~pool (Rng.create seed) h ~k:2
                  in
                  if rb_par.Rb.cut <> rb_seq.Rb.cut then
                    failf "jobs=%d rb cut %d <> sequential %d" jobs
                      rb_par.Rb.cut rb_seq.Rb.cut
                  else if rb_par.Rb.side <> rb_seq.Rb.side then
                    failf "jobs=%d rb partition differs from sequential" jobs
                  else Pass
                end)
          in
          match check_jobs 4 with Pass -> check_jobs 2 | other -> other);
    }

(* repair is total and idempotent: one pass fixes everything [validate]
   checks; a second pass is the identity. *)
let repair_idempotent =
  Packed
    {
      name = "laws/repair-idempotent";
      gen = Hgen.degenerate;
      show = Hgen.show;
      law =
        (fun spec ->
          let h = Hgen.build_unchecked spec in
          let h1, rep1 = H.repair h in
          match H.validate h1 with
          | Error diags ->
              failf "repair left %d violation(s)" (List.length diags)
          | Ok () ->
              let h2, rep2 = H.repair h1 in
              let zero r =
                r.H.dropped_nets = 0 && r.H.deduped_pins = 0
                && r.H.clamped_areas = 0 && r.H.clamped_weights = 0
              in
              let same_structure a b =
                H.num_modules a = H.num_modules b
                && H.num_nets a = H.num_nets b
                && H.num_pins a = H.num_pins b
                && Array.init (H.num_modules a) (H.area a)
                   = Array.init (H.num_modules b) (H.area b)
                && Array.init (H.num_nets a) (fun e ->
                       (H.net_weight a e, H.pins_of a e))
                   = Array.init (H.num_nets b) (fun e ->
                         (H.net_weight b e, H.pins_of b e))
              in
              if not (zero rep2) then failf "second repair still made changes"
              else if not (same_structure h1 h2) then
                failf "second repair changed the structure"
              else if H.validate h = Ok () && not (zero rep1) then
                failf "repair changed an already-valid hypergraph"
              else Pass);
    }

(* n-level contraction is losslessly invertible: contracting as deep as
   the rating allows and replaying the whole memento trail must restore a
   hypergraph structurally identical to the input — same module count,
   same areas, and the same pin set (as a sorted array) for every net in
   order.  Structural identity implies Laws-equivalence: every metric of
   every assignment is a function of exactly this data. *)
let memento_roundtrip =
  Packed
    {
      name = "laws/memento-roundtrip";
      gen = seeded Hgen.instance;
      show = show_seeded;
      law =
        (fun (spec, seed) ->
          let h = Hgen.build spec in
          let n = H.num_modules h in
          let hy = Nlevel.coarsen_only ~threshold:2 (Rng.create seed) h in
          let coarse = Nlevel.num_alive hy in
          if coarse + Nlevel.trail_length hy <> n then
            failf "trail length %d does not account for %d contracted modules"
              (Nlevel.trail_length hy) (n - coarse)
          else begin
            Nlevel.uncontract_all hy;
            if Nlevel.num_alive hy <> n then
              failf "uncontract_all left %d of %d modules alive"
                (Nlevel.num_alive hy) n
            else begin
              let bad = ref None in
              for v = n - 1 downto 0 do
                if not (Nlevel.is_alive hy v) then
                  bad := Some (Printf.sprintf "module %d still contracted" v)
                else if Nlevel.module_area hy v <> H.area h v then
                  bad :=
                    Some
                      (Printf.sprintf "module %d area %d, input had %d" v
                         (Nlevel.module_area hy v) (H.area h v))
              done;
              for e = H.num_nets h - 1 downto 0 do
                let pins = Nlevel.live_net_pins hy e in
                let orig = H.pins_of h e in
                Array.sort Int.compare orig;
                if pins <> orig then
                  bad := Some (Printf.sprintf "net %d pins differ" e)
              done;
              match !bad with Some msg -> Fail msg | None -> Pass
            end
          end);
    }

(* The k-way gain cache stays exact under arbitrary move sequences: after
   every move, every cached (module, target) gain equals a from-scratch
   recomputation, and the incremental cut matches both the cache's own
   recount and the reference [Objective] evaluation. *)
let gain_cache_consistent =
  Packed
    {
      name = "laws/gain-cache";
      gen = seeded Hgen.instance;
      show = show_seeded;
      law =
        (fun (spec, seed) ->
          let h = Hgen.build spec in
          let n = H.num_modules h in
          let rng = Rng.create seed in
          let k = 2 + Rng.int rng 3 in
          let g = Gain_cache.graph_of_hypergraph h in
          let side = Array.init n (fun _ -> Rng.int rng k) in
          let members = Array.init n Fun.id in
          let t = Gain_cache.create g ~k ~members side in
          let check_all () =
            let report = Objective.evaluate h (Gain_cache.side_array t) in
            if Gain_cache.cut t <> report.Objective.net_cut then
              failf "cached cut %d but reference recount is %d"
                (Gain_cache.cut t) report.Objective.net_cut
            else if Gain_cache.cut t <> Gain_cache.recompute_cut t then
              failf "cached cut %d but span recount is %d" (Gain_cache.cut t)
                (Gain_cache.recompute_cut t)
            else begin
              let bad = ref None in
              for v = 0 to n - 1 do
                for q = 0 to k - 1 do
                  if q <> Gain_cache.side t v && !bad = None then begin
                    let cached = Gain_cache.gain t v q in
                    let fresh = Gain_cache.recompute_gain t v q in
                    if cached <> fresh then
                      bad :=
                        Some
                          (Printf.sprintf
                             "gain(%d -> %d) cached %d, recomputed %d" v q
                             cached fresh)
                  end
                done
              done;
              match !bad with Some msg -> Fail msg | None -> Pass
            end
          in
          let steps = 2 + (3 * n) in
          let rec go i =
            if i >= steps then Pass
            else begin
              Gain_cache.move t (Rng.int rng n) (Rng.int rng k);
              match check_all () with Pass -> go (i + 1) | other -> other
            end
          in
          match check_all () with Pass -> go 0 | other -> other);
    }

let law_properties =
  [
    relabel;
    weight_scale;
    merge_duplicates;
    coarsen_project;
    fixed_levels;
    vcycle_monotone;
    jobs_invariance;
    repair_idempotent;
    memento_roundtrip;
    gain_cache_consistent;
  ]

let all = oracle_properties @ law_properties

let find name =
  List.find_opt (fun p -> Property.packed_name p = name) all
