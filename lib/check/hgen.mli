(** Hypergraph instance generators for the verification subsystem.

    The Rent-rule suite in [Mlpart_gen] generates {e realistic} netlists;
    this module generates {e adversarial} ones — the families where engine
    bugs historically hide: stars (one module on every net), cliques of
    2-pin nets (ties everywhere), disconnected components (rebalance must
    bridge), the degenerate 2-module instance, duplicate nets (weight
    merging), and heavily weighted variants.  All instances are small
    enough for the exact oracle ({!Oracle}) to enumerate.

    Instances travel as {!spec} values — a plain description rather than a
    built hypergraph — so that counterexamples print readably and shrink
    structurally (drop a net, drop a module, flatten weights/areas). *)

type spec = {
  label : string;  (** family tag, e.g. ["star"]; survives shrinking *)
  areas : int array;  (** per-module area, length = module count *)
  nets : (int array * int) array;  (** (sorted distinct pins, weight) *)
}

val num_modules : spec -> int
val build : spec -> Mlpart_hypergraph.Hypergraph.t
(** Via [Hypergraph.make]; raises on invalid specs (generators only emit
    valid ones — see {!degenerate} for the invalid family). *)

val build_unchecked : spec -> Mlpart_hypergraph.Hypergraph.t
(** Via [Hypergraph.make_unchecked]; for {!degenerate} specs. *)

val show : spec -> string
(** Single-line rendering used in counterexample reports. *)

val normalize : spec -> spec
(** Restore the valid-instance invariant: sort and dedup every net's pins
    and drop nets left with fewer than two distinct pins.  Every {!shrink}
    candidate is normalized, so shrinking can never emit a zero-pin or
    single-pin net to consumers that assume validity. *)

val shrink : spec -> spec Seq.t
(** Structural shrink candidates, most aggressive first: all areas to 1,
    all weights to 1, drop each net, drop the last module.  Every
    candidate is again a valid spec (>= 2 modules, nets >= 2 pins). *)

val instance : spec Gen.t
(** The full adversarial mix, sized: at size [s] instances have up to
    [2 + s] modules (capped at 16, the oracle's enumeration limit). *)

val small_instance : max_modules:int -> spec Gen.t
(** Same mix with a tighter module cap (the quadrisection oracle
    enumerates [k^n] assignments, so it needs [n <= 7] or so). *)

val degenerate : spec Gen.t
(** Invalid-by-construction specs: duplicate pins within a net, empty and
    singleton nets, non-positive areas and weights.  Pins stay in range
    (required even by [make_unchecked]).  Feed through
    {!build_unchecked} to test [validate]/[repair]. *)
