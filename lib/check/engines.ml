module Rng = Mlpart_util.Rng
module Fm = Mlpart_partition.Fm
module Prop = Mlpart_partition.Prop
module Kl = Mlpart_partition.Kl
module Lsmc = Mlpart_partition.Lsmc
module Genetic = Mlpart_partition.Genetic
module Ml = Mlpart_multilevel.Ml

type result = { side : int array; cut : int }

type t = {
  name : string;
  balanced : bool;
  supports_fixed : bool;
  run :
    ?fixed:int array ->
    Rng.t ->
    Mlpart_hypergraph.Hypergraph.t ->
    result;
}

let no_fixed name = function
  | None -> ()
  | Some _ -> invalid_arg (name ^ ": fixed not supported")

let fm_like name config =
  {
    name;
    balanced = true;
    supports_fixed = true;
    run =
      (fun ?fixed rng h ->
        let r = Fm.run ~config ?fixed rng h in
        { side = r.Fm.side; cut = r.Fm.cut });
  }

let fm = fm_like "fm" Fm.default
let clip = fm_like "clip" Fm.clip

let prop =
  {
    name = "prop";
    balanced = true;
    supports_fixed = false;
    run =
      (fun ?fixed rng h ->
        no_fixed "prop" fixed;
        let r = Prop.run rng h in
        { side = r.Prop.side; cut = r.Prop.cut });
  }

let kl =
  {
    name = "kl";
    balanced = false;
    supports_fixed = false;
    run =
      (fun ?fixed rng h ->
        no_fixed "kl" fixed;
        let r = Kl.run rng h in
        { side = r.Kl.side; cut = r.Kl.cut });
  }

let lsmc =
  {
    name = "lsmc";
    balanced = true;
    supports_fixed = false;
    run =
      (fun ?fixed rng h ->
        no_fixed "lsmc" fixed;
        let config = { Lsmc.default with Lsmc.descents = 20 } in
        let r = Lsmc.run ~config rng h in
        { side = r.Lsmc.side; cut = r.Lsmc.cut });
  }

let genetic =
  {
    name = "genetic";
    balanced = true;
    supports_fixed = false;
    run =
      (fun ?fixed rng h ->
        no_fixed "genetic" fixed;
        let config = { Genetic.default with Genetic.population = 4; generations = 10 } in
        let r = Genetic.run ~config rng h in
        { side = r.Genetic.side; cut = r.Genetic.cut });
  }

let ml =
  {
    name = "ml";
    balanced = true;
    supports_fixed = true;
    run =
      (fun ?fixed rng h ->
        let config = { Ml.mlc with Ml.threshold = 4 } in
        let r = Ml.run ~config ?fixed rng h in
        { side = r.Ml.side; cut = r.Ml.cut });
  }

let all = [ fm; clip; prop; kl; lsmc; genetic ]

let find name =
  List.find_opt (fun e -> e.name = name) (ml :: all)
