type config = { seed : int; cases : int; max_size : int }

let cases_budget () =
  match Sys.getenv_opt "MLPART_SELFCHECK_CASES" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> Property.default_cases)
  | None -> Property.default_cases

let default =
  { seed = 1; cases = cases_budget (); max_size = Property.default_max_size }

type prop_report = {
  name : string;
  cases : int;
  skipped : int;
  failure : Property.failure option;
}

type report = {
  props : prop_report list;
  total_cases : int;
  total_skipped : int;
  failures : Property.failure list;
}

let run ?(progress = fun _ -> ()) (config : config) =
  let props =
    List.map
      (fun packed ->
        let stats =
          Property.check_packed ~cases:config.cases ~max_size:config.max_size
            ~seed:config.seed packed
        in
        let r =
          {
            name = Property.packed_name packed;
            cases = stats.Property.cases;
            skipped = stats.Property.skipped;
            failure = stats.Property.failure;
          }
        in
        progress r;
        r)
      Laws.all
  in
  {
    props;
    total_cases = List.fold_left (fun acc r -> acc + r.cases) 0 props;
    total_skipped = List.fold_left (fun acc r -> acc + r.skipped) 0 props;
    failures = List.filter_map (fun r -> r.failure) props;
  }

let replay config ~token =
  match Property.parse_token token with
  | None ->
      Error
        (Printf.sprintf "malformed replay token %S (expected NAME:SEED:CASE)"
           token)
  | Some (name, seed, case) -> (
      match Laws.find name with
      | None -> Error (Printf.sprintf "unknown property %S" name)
      | Some packed ->
          Ok
            (Property.replay_packed ~seed ~case ~max_size:config.max_size
               packed))

let property_names () = List.map Property.packed_name Laws.all
