(** Uniform registry of the bipartitioning engines under verification.

    Each entry wraps one engine behind a common signature so the oracle
    and law properties iterate over all of them; [balanced] records
    whether the engine {e guarantees} its output satisfies
    [Bipartition.bounds ~tolerance:0.1] (KL does not: pair swaps preserve
    module counts, not weighted areas, and it imposes no bounds). *)

type result = { side : int array; cut : int }

type t = {
  name : string;  (** stable id used in property names ([oracle/<name>]) *)
  balanced : bool;
  supports_fixed : bool;
  run :
    ?fixed:int array ->
    Mlpart_util.Rng.t ->
    Mlpart_hypergraph.Hypergraph.t ->
    result;
      (** [fixed] may only be passed when [supports_fixed]. *)
}

val all : t list
(** The six flat engines: [fm], [clip], [prop], [kl], [lsmc], [genetic].
    LSMC and Genetic run at reduced budgets (instances here are <= 16
    modules; full budgets only add wall-clock). *)

val fm : t
(** Plain FM; the one flat engine with a [fixed] contract. *)

val ml : t
(** The multilevel driver (MLc at threshold 4, so even tiny instances
    coarsen through real levels); verified alongside the flat engines. *)

val find : string -> t option
