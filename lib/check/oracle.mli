(** Exact small-instance oracles: optimal cuts by exhaustive enumeration.

    Every engine in [Mlpart_partition] is a heuristic, so its cut can sit
    above the optimum — but never below it, and never disagree with a
    from-scratch recount.  On instances small enough to enumerate, the
    optimum is computable exactly, which turns those two invariants into
    machine-checkable properties (the KaHyPar-style "exact oracle"
    discipline). *)

type best = { cut : int; side : int array }
(** An optimal assignment (the lexicographically-first minimiser, so oracle
    results are deterministic) and its weighted cut. *)

val max_modules : int
(** Enumeration cap for {!bipartition}: 16 (65536 assignments). *)

val bipartition :
  ?fixed:int array ->
  bounds:Mlpart_partition.Bipartition.bounds ->
  Mlpart_hypergraph.Hypergraph.t ->
  best option
(** Minimum weighted cut over all 0/1 assignments whose side-0 area lies
    within [bounds] and that agree with [fixed] (entries [>= 0] pin a
    module).  [None] when no assignment is feasible.  Raises
    [Invalid_argument] above {!max_modules} modules. *)

val kway :
  ?bounds:Mlpart_partition.Kpartition.bounds ->
  k:int ->
  Mlpart_hypergraph.Hypergraph.t ->
  best option
(** Minimum weighted k-way cut (nets spanning >= 2 parts) over all
    assignments, optionally restricted to those with every part area
    within [bounds].  Enumerates [k^n] assignments; raises
    [Invalid_argument] when that exceeds [2^18]. *)
