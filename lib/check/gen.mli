(** Sized random generators with integrated shrinking.

    The property-testing core is deliberately dependency-free (it must be
    able to interrogate every other library, so it can depend on nothing
    but [Mlpart_util]): a generator produces a {e rose tree} whose root is
    the generated value and whose children are progressively smaller
    variants, computed lazily.  When a property fails, the runner walks the
    tree greedily — first failing child, repeat — so shrinking needs no
    per-type shrink functions at the call site and always re-uses the same
    generation logic that produced the counterexample.

    Generation is driven by an explicit {!Mlpart_util.Rng.t} and a [size]
    parameter in [0 .. max_size]; combinators derive sub-generators
    deterministically, which is what makes one-line seed replay possible
    (see {!Property}). *)

type 'a tree = { value : 'a; shrinks : 'a tree Seq.t }
(** A generated value plus its lazily-computed shrink candidates, ordered
    most-aggressive first. *)

type 'a t
(** A sized generator of ['a] rose trees. *)

val generate : 'a t -> size:int -> Mlpart_util.Rng.t -> 'a tree
(** Run the generator.  Equal generator, size and RNG state yield equal
    trees (laziness aside). *)

val root : 'a t -> size:int -> Mlpart_util.Rng.t -> 'a
(** The generated value alone, discarding shrinks. *)

(** {1 Primitives} *)

val return : 'a -> 'a t
(** Constant generator; never shrinks. *)

val make : (size:int -> Mlpart_util.Rng.t -> 'a) -> 'a t
(** Lift a raw sampling function into a generator with no shrinks of its
    own; compose with {!reshrink} to attach a structural shrinker. *)

val int_range : int -> int -> int t
(** [int_range lo hi] is uniform in [\[lo, hi\]], shrinking towards [lo]
    by binary halving.  Raises [Invalid_argument] if [lo > hi]. *)

val bool : bool t
(** Fair coin; [true] shrinks to [false]. *)

val sized : (int -> 'a t) -> 'a t
(** Make the current size available. *)

(** {1 Composition} *)

val map : ('a -> 'b) -> 'a t -> 'b t
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val bind : 'a t -> ('a -> 'b t) -> 'b t
(** Monadic composition.  When the outer value shrinks, the inner generator
    is re-run with the same RNG state, so shrinks stay within the
    distribution of the composite generator. *)

val oneof : 'a t list -> 'a t
(** Uniform choice among alternatives.  Raises [Invalid_argument] on []. *)

val frequency : (int * 'a t) list -> 'a t
(** Weighted choice; weights must be positive. *)

val list_n : int t -> 'a t -> 'a list t
(** [list_n len elt]: length drawn from [len], elements from [elt].
    Shrinks by re-running at a smaller length, by dropping single
    elements, and by shrinking individual elements. *)

val array_n : int t -> 'a t -> 'a array t

(** {1 Shrinking control} *)

val no_shrink : 'a t -> 'a t
(** Discard all shrink candidates (for values whose shrinking is
    meaningless, e.g. seeds). *)

val reshrink : ('a -> 'a Seq.t) -> 'a t -> 'a t
(** [reshrink step g] replaces [g]'s shrink tree by the one obtained by
    unfolding [step] from the generated value: candidates of [step v]
    become children, recursively.  Used where structural shrinking beats
    the generic one (e.g. hypergraph specs: drop a net, drop a module). *)

val unfold : ('a -> 'a Seq.t) -> 'a -> 'a tree
(** The tree obtained by repeatedly applying a shrink-step function. *)

val towards : dest:int -> int -> int Seq.t
(** Classic integer shrink candidates: [dest] first, then binary halving
    back towards the start value.  Empty when already at [dest]. *)
