module Rng = Mlpart_util.Rng

type 'a tree = { value : 'a; shrinks : 'a tree Seq.t }
type 'a t = { gen : size:int -> Rng.t -> 'a tree }

let generate g ~size rng = g.gen ~size rng
let root g ~size rng = (g.gen ~size rng).value

(* ---- trees ---- *)

let leaf value = { value; shrinks = Seq.empty }

let rec map_tree f t =
  { value = f t.value; shrinks = Seq.map (map_tree f) t.shrinks }

(* Shrink the first component fully before touching the second: when both
   matter the left one is by convention the "more structural" of the two. *)
let rec zip_tree f ta tb =
  {
    value = f ta.value tb.value;
    shrinks =
      Seq.append
        (Seq.map (fun ta' -> zip_tree f ta' tb) ta.shrinks)
        (Seq.map (fun tb' -> zip_tree f ta tb') tb.shrinks);
  }

let rec unfold step x =
  { value = x; shrinks = Seq.map (unfold step) (step x) }

(* ---- integer shrinking ---- *)

let rec halves n : int Seq.t =
  if n = 0 then Seq.empty else fun () -> Seq.Cons (n, halves (n / 2))

let towards ~dest x : int Seq.t =
  if dest = x then Seq.empty
  else
    (* first candidate is [dest] itself (h = x - dest), then ever-smaller
       steps back towards [x] *)
    Seq.map (fun h -> x - h) (halves (x - dest))

(* ---- primitives ---- *)

let return x = { gen = (fun ~size:_ _ -> leaf x) }
let make f = { gen = (fun ~size rng -> leaf (f ~size rng)) }

let int_range lo hi =
  if lo > hi then invalid_arg "Gen.int_range: lo > hi";
  {
    gen =
      (fun ~size:_ rng ->
        let v = lo + Rng.int rng (hi - lo + 1) in
        unfold (towards ~dest:lo) v);
  }

let bool =
  {
    gen =
      (fun ~size:_ rng ->
        let v = Rng.bool rng in
        if v then { value = true; shrinks = Seq.return (leaf false) }
        else leaf false);
  }

let sized f = { gen = (fun ~size rng -> (f size).gen ~size rng) }

(* ---- composition ---- *)

let map f g = { gen = (fun ~size rng -> map_tree f (g.gen ~size rng)) }

let map2 f ga gb =
  {
    gen =
      (fun ~size rng ->
        let ta = ga.gen ~size rng in
        let tb = gb.gen ~size rng in
        zip_tree f ta tb);
  }

let pair ga gb = map2 (fun a b -> (a, b)) ga gb

let triple ga gb gc =
  map2 (fun a (b, c) -> (a, b, c)) ga (pair gb gc)

let bind g f =
  {
    gen =
      (fun ~size rng ->
        let inner_rng = Rng.split rng in
        let outer = g.gen ~size rng in
        (* Re-run the inner generator from a copy of the same state each
           time the outer value shrinks, so the composite stays inside the
           generator's distribution and replay stays deterministic. *)
        let rec attach o =
          let inner = (f o.value).gen ~size (Rng.copy inner_rng) in
          {
            value = inner.value;
            shrinks =
              Seq.append (Seq.map attach o.shrinks) inner.shrinks;
          }
        in
        attach outer);
  }

let oneof gens =
  match gens with
  | [] -> invalid_arg "Gen.oneof: empty list"
  | _ ->
      let arr = Array.of_list gens in
      {
        gen =
          (fun ~size rng ->
            let i = Rng.int rng (Array.length arr) in
            arr.(i).gen ~size rng);
      }

let frequency weighted =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Gen.frequency: non-positive total weight";
  List.iter
    (fun (w, _) -> if w <= 0 then invalid_arg "Gen.frequency: weight <= 0")
    weighted;
  {
    gen =
      (fun ~size rng ->
        let roll = Rng.int rng total in
        let rec pick acc = function
          | [] -> assert false
          | (w, g) :: rest ->
              if roll < acc + w then g.gen ~size rng else pick (acc + w) rest
        in
        pick 0 weighted);
  }

(* ---- lists ---- *)

(* Shrinks of a list of trees: drop one element (each position), then
   shrink one element in place.  Positions are tried left to right; the
   sequences are built lazily so unexplored candidates cost nothing. *)
let rec list_tree (ts : 'a tree list) : 'a list tree =
  let value = List.map (fun t -> t.value) ts in
  let drops =
    Seq.mapi
      (fun i _ -> list_tree (List.filteri (fun j _ -> j <> i) ts))
      (List.to_seq ts)
  in
  let element_shrinks =
    Seq.concat_map
      (fun i ->
        let t = List.nth ts i in
        Seq.map
          (fun t' ->
            list_tree (List.mapi (fun j tj -> if j = i then t' else tj) ts))
          t.shrinks)
      (Seq.init (List.length ts) Fun.id)
  in
  { value; shrinks = Seq.append drops element_shrinks }

let list_n len elt =
  bind len (fun n ->
      {
        gen =
          (fun ~size rng ->
            list_tree (List.init (Stdlib.max 0 n) (fun _ -> elt.gen ~size rng)));
      })

let array_n len elt = map Array.of_list (list_n len elt)

(* ---- shrinking control ---- *)

let no_shrink g = { gen = (fun ~size rng -> leaf (root g ~size rng)) }

let reshrink step g =
  { gen = (fun ~size rng -> unfold step (root g ~size rng)) }
