module H = Mlpart_hypergraph.Hypergraph
module Rng = Mlpart_util.Rng

type spec = {
  label : string;
  areas : int array;
  nets : (int array * int) array;
}

let num_modules spec = Array.length spec.areas

let build spec =
  H.make ~name:spec.label ~areas:spec.areas ~nets:spec.nets ()

let build_unchecked spec =
  H.make_unchecked ~name:spec.label ~areas:spec.areas ~nets:spec.nets ()

let show spec =
  let b = Buffer.create 128 in
  Buffer.add_string b spec.label;
  Buffer.add_string b "{areas=[";
  Array.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char b ';';
      Buffer.add_string b (string_of_int a))
    spec.areas;
  Buffer.add_string b "] nets=[";
  Array.iteri
    (fun i (pins, w) ->
      if i > 0 then Buffer.add_char b ' ';
      Buffer.add_char b '{';
      Array.iteri
        (fun j p ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int p))
        pins;
      Buffer.add_char b '}';
      if w <> 1 then Buffer.add_string b ("w" ^ string_of_int w))
    spec.nets;
  Buffer.add_string b "]}";
  Buffer.contents b

(* ---- structural shrinking ---- *)

(* Valid-instance invariant: every net keeps at least two distinct pins.
   Every shrink candidate passes through here so no transformation —
   present or future — can leak a sub-2-pin (or zero-pin) net to a
   consumer that assumes validity (the oracles index a net's first pin
   unconditionally). *)
let normalize spec =
  let nets =
    Array.to_list spec.nets
    |> List.filter_map (fun (pins, w) ->
           let pins = Array.copy pins in
           Array.sort Int.compare pins;
           let distinct =
             Array.to_list pins
             |> List.sort_uniq Int.compare
             |> Array.of_list
           in
           if Array.length distinct >= 2 then Some (distinct, w) else None)
    |> Array.of_list
  in
  { spec with nets }

(* Remove the highest-numbered module: its pins disappear from every net,
   nets left with fewer than two pins are dropped.  Keeping removal to the
   last module avoids reindexing. *)
let drop_last_module spec =
  let n = num_modules spec in
  let areas = Array.sub spec.areas 0 (n - 1) in
  let nets =
    Array.to_list spec.nets
    |> List.filter_map (fun (pins, w) ->
           let pins = Array.of_list (List.filter (fun p -> p < n - 1) (Array.to_list pins)) in
           if Array.length pins >= 2 then Some (pins, w) else None)
    |> Array.of_list
  in
  { spec with areas; nets }

let shrink spec : spec Seq.t =
  let candidates = ref [] in
  let push c = candidates := normalize c :: !candidates in
  (* reverse order of desired priority: pushed last = tried first *)
  if num_modules spec > 2 then push (drop_last_module spec);
  Array.iteri
    (fun i _ ->
      push
        { spec with nets = Array.of_list (List.filteri (fun j _ -> j <> i) (Array.to_list spec.nets)) })
    spec.nets;
  if Array.exists (fun (_, w) -> w <> 1) spec.nets then
    push { spec with nets = Array.map (fun (pins, _) -> (pins, 1)) spec.nets };
  if Array.exists (fun a -> a <> 1) spec.areas then
    push { spec with areas = Array.map (fun _ -> 1) spec.areas };
  List.to_seq !candidates

(* ---- raw family samplers ---- *)

let random_distinct_pins rng n degree =
  let perm = Rng.permutation rng n in
  let pins = Array.sub perm 0 degree in
  Array.sort Int.compare pins;
  pins

let random_areas rng n =
  if Rng.bool rng then Array.make n 1
  else Array.init n (fun _ -> 1 + Rng.int rng 3)

let random_weight rng = if Rng.bool rng then 1 else 1 + Rng.int rng 3

let arbitrary ~n rng =
  let m = Rng.int rng (2 * n + 1) in
  let nets =
    Array.init m (fun _ ->
        let degree = 2 + Rng.int rng (Stdlib.min 4 (n - 1)) in
        (random_distinct_pins rng n degree, random_weight rng))
  in
  { label = "arb"; areas = random_areas rng n; nets }

(* One hub module on every net; the hub's gain couples every bucket
   update.  Optionally one extra net spanning everything. *)
let star ~n rng =
  let leaves = Array.init (n - 1) (fun i -> ([| 0; i + 1 |], random_weight rng)) in
  let nets =
    if n > 2 && Rng.bool rng then
      Array.append leaves [| (Array.init n Fun.id, random_weight rng) |]
    else leaves
  in
  { label = "star"; areas = random_areas rng n; nets }

(* All-pairs 2-pin nets: every move changes many gains, ties abound. *)
let clique_nets ~n rng =
  let n = Stdlib.min n 8 in
  let acc = ref [] in
  for v = 0 to n - 1 do
    for w = v + 1 to n - 1 do
      acc := ([| v; w |], random_weight rng) :: !acc
    done
  done;
  { label = "clique"; areas = random_areas rng n; nets = Array.of_list (List.rev !acc) }

(* Two components with no connecting net: the optimal cut is 0 whenever
   balance allows splitting along the component boundary. *)
let disconnected ~n rng =
  let n = Stdlib.max 4 n in
  let split = 2 + Rng.int rng (n - 3) in
  let component lo hi =
    let size = hi - lo in
    let m = 1 + Rng.int rng (Stdlib.max 1 size) in
    Array.init m (fun _ ->
        let degree = 2 + Rng.int rng (Stdlib.min 3 (size - 1)) in
        let pins = random_distinct_pins rng size degree in
        (Array.map (fun p -> p + lo) pins, random_weight rng))
  in
  let left = if split >= 2 then component 0 split else [||] in
  let right = if n - split >= 2 then component split n else [||] in
  { label = "disco"; areas = random_areas rng n; nets = Array.append left right }

(* Adversarial duplicate nets: identical pin sets with independent
   weights, the family Definition 1's merge rule must treat as one
   weighted net. *)
let duplicate_nets ~n rng =
  let base = 1 + Rng.int rng 3 in
  let nets = ref [] in
  for _ = 1 to base do
    let degree = 2 + Rng.int rng (Stdlib.min 3 (n - 1)) in
    let pins = random_distinct_pins rng n degree in
    let copies = 1 + Rng.int rng 3 in
    for _ = 1 to copies do
      nets := (Array.copy pins, random_weight rng) :: !nets
    done
  done;
  { label = "dup"; areas = random_areas rng n; nets = Array.of_list (List.rev !nets) }

let unit_instance =
  { label = "unit"; areas = [| 1; 1 |]; nets = [| ([| 0; 1 |], 1) |] }

let ring ~n rng =
  let n = Stdlib.max 3 n in
  let nets =
    Array.init n (fun i ->
        let a = i and b = (i + 1) mod n in
        ([| Stdlib.min a b; Stdlib.max a b |], random_weight rng))
  in
  { label = "ring"; areas = random_areas rng n; nets }

(* ---- sized generators ---- *)

let sample ~max_modules ~size rng =
  let n = Stdlib.max 2 (Stdlib.min max_modules (2 + size)) in
  match Rng.int rng 12 with
  | 0 -> unit_instance
  | 1 | 2 -> star ~n rng
  | 3 -> clique_nets ~n rng
  | 4 | 5 -> disconnected ~n rng
  | 6 | 7 -> duplicate_nets ~n rng
  | 8 -> ring ~n rng
  | _ -> arbitrary ~n rng

let small_instance ~max_modules =
  Gen.reshrink shrink
    (Gen.make (fun ~size rng -> sample ~max_modules ~size rng))

let instance = small_instance ~max_modules:16

(* ---- degenerate family ---- *)

let degenerate_sample ~size rng =
  let n = Stdlib.max 2 (Stdlib.min 10 (2 + size)) in
  let areas =
    Array.init n (fun _ ->
        match Rng.int rng 4 with 0 -> 0 | 1 -> -2 | _ -> 1 + Rng.int rng 3)
  in
  let m = Rng.int rng (n + 2) in
  let nets =
    Array.init m (fun _ ->
        let degree = Rng.int rng 5 in
        (* duplicates allowed on purpose: draw with replacement *)
        let pins = Array.init degree (fun _ -> Rng.int rng n) in
        Array.sort Int.compare pins;
        let w = match Rng.int rng 4 with 0 -> 0 | 1 -> -1 | _ -> 1 + Rng.int rng 3 in
        (pins, w))
  in
  { label = "degen"; areas; nets }

(* Shrinking may keep the spec degenerate (that's the point); only net
   dropping and module dropping apply. *)
let degenerate_shrink spec : spec Seq.t =
  let candidates = ref [] in
  Array.iteri
    (fun i _ ->
      candidates :=
        { spec with nets = Array.of_list (List.filteri (fun j _ -> j <> i) (Array.to_list spec.nets)) }
        :: !candidates)
    spec.nets;
  List.to_seq !candidates

let degenerate =
  Gen.reshrink degenerate_shrink
    (Gen.make (fun ~size rng -> degenerate_sample ~size rng))
