module H = Mlpart_hypergraph.Hypergraph
module Bp = Mlpart_partition.Bipartition
module Kp = Mlpart_partition.Kpartition

type best = { cut : int; side : int array }

let max_modules = 16

let bipartition ?fixed ~bounds h =
  let n = H.num_modules h in
  if n > max_modules then
    invalid_arg
      (Printf.sprintf "Oracle.bipartition: %d modules exceeds the %d cap" n
         max_modules);
  let areas = H.areas_store h in
  let offs = H.net_offsets_store h in
  let pins = H.net_pins_store h in
  let weights = H.net_weights_store h in
  let num_nets = H.num_nets h in
  let fixed_mask = ref 0 and fixed_value = ref 0 in
  (match fixed with
  | None -> ()
  | Some f ->
      if Array.length f <> n then
        invalid_arg "Oracle.bipartition: fixed length mismatch";
      Array.iteri
        (fun v s ->
          if s >= 0 then begin
            if s > 1 then invalid_arg "Oracle.bipartition: fixed side > 1";
            fixed_mask := !fixed_mask lor (1 lsl v);
            if s = 1 then fixed_value := !fixed_value lor (1 lsl v)
          end)
        f);
  let fixed_mask = !fixed_mask and fixed_value = !fixed_value in
  let best_cut = ref max_int and best_mask = ref (-1) in
  for mask = 0 to (1 lsl n) - 1 do
    if mask land fixed_mask = fixed_value then begin
      let area0 = ref 0 in
      for v = 0 to n - 1 do
        if (mask lsr v) land 1 = 0 then area0 := !area0 + areas.(v)
      done;
      if !area0 >= bounds.Bp.lo && !area0 <= bounds.Bp.hi then begin
        let cut = ref 0 in
        for e = 0 to num_nets - 1 do
          let lo = offs.(e) and hi = offs.(e + 1) in
          (* nets with fewer than two pins (possible on unchecked,
             degenerate instances) can never be cut; guarding also avoids
             indexing past the pin store on a trailing zero-pin net *)
          if hi - lo >= 2 then begin
            let first = (mask lsr pins.(lo)) land 1 in
            let split = ref false in
            for s = lo + 1 to hi - 1 do
              if (mask lsr pins.(s)) land 1 <> first then split := true
            done;
            if !split then cut := !cut + weights.(e)
          end
        done;
        (* strict <: ties go to the lowest mask, so the oracle is a pure
           function of the instance *)
        if !cut < !best_cut then begin
          best_cut := !cut;
          best_mask := mask
        end
      end
    end
  done;
  if !best_mask < 0 then None
  else
    Some
      {
        cut = !best_cut;
        side = Array.init n (fun v -> (!best_mask lsr v) land 1);
      }

let kway ?bounds ~k h =
  if k < 2 then invalid_arg "Oracle.kway: k < 2";
  let n = H.num_modules h in
  let assignments =
    let rec pow acc i = if i = 0 then acc else pow (acc * k) (i - 1) in
    pow 1 n
  in
  if assignments > 1 lsl 18 then
    invalid_arg
      (Printf.sprintf "Oracle.kway: %d^%d assignments exceed the 2^18 cap" k n);
  let areas = H.areas_store h in
  let offs = H.net_offsets_store h in
  let pins = H.net_pins_store h in
  let weights = H.net_weights_store h in
  let num_nets = H.num_nets h in
  let side = Array.make n 0 in
  let part_area = Array.make k 0 in
  let seen = Array.make k (-1) in
  let best_cut = ref max_int and best_side = ref None in
  let feasible () =
    match bounds with
    | None -> true
    | Some b ->
        Array.fill part_area 0 k 0;
        for v = 0 to n - 1 do
          part_area.(side.(v)) <- part_area.(side.(v)) + areas.(v)
        done;
        Array.for_all (fun a -> a >= b.Kp.lo && a <= b.Kp.hi) part_area
  in
  let evaluate stamp =
    if feasible () then begin
      let cut = ref 0 in
      for e = 0 to num_nets - 1 do
        let lo = offs.(e) and hi = offs.(e + 1) in
        let spans = ref 0 in
        for s = lo to hi - 1 do
          let p = side.(pins.(s)) in
          if seen.(p) <> stamp + e then begin
            seen.(p) <- stamp + e;
            incr spans
          end
        done;
        if !spans >= 2 then cut := !cut + weights.(e)
      done;
      if !cut < !best_cut then begin
        best_cut := !cut;
        best_side := Some (Array.copy side)
      end
    end
  in
  (* depth-first enumeration with module 0 as the most significant digit:
     the first minimiser found is the lexicographically-least one *)
  let stamp = ref 0 in
  let rec enumerate v =
    if v = n then begin
      evaluate !stamp;
      stamp := !stamp + num_nets
    end
    else
      for p = 0 to k - 1 do
        side.(v) <- p;
        enumerate (v + 1)
      done
  in
  Array.fill seen 0 k (-1);
  enumerate 0;
  match !best_side with
  | None -> None
  | Some side -> Some { cut = !best_cut; side }
