(** The selfcheck driver: run the whole property suite under one budget.

    Used in two modes through the same code path: CI smoke (small case
    budget, seconds) and deep overnight sweeps (crank
    [MLPART_SELFCHECK_CASES] up).  Every failure carries a replay token;
    [mlpart selfcheck --replay TOKEN] re-runs exactly that case. *)

type config = {
  seed : int;
  cases : int;  (** per property *)
  max_size : int;  (** instance sizes cycle through [0 .. max_size] *)
}

val default : config
(** seed 1, [cases_budget ()] cases, max size 14. *)

val cases_budget : unit -> int
(** The [MLPART_SELFCHECK_CASES] environment variable when it parses as a
    positive integer, else 50 — mirroring the fuzz harness's budget knob. *)

type prop_report = {
  name : string;
  cases : int;  (** cases that ran to completion *)
  skipped : int;
  failure : Property.failure option;
}

type report = {
  props : prop_report list;
  total_cases : int;
  total_skipped : int;
  failures : Property.failure list;
}

val run : ?progress:(prop_report -> unit) -> config -> report
(** Check every property in {!Laws.all}; [progress] fires after each one
    (the CLI prints a line per property as it completes). *)

val replay : config -> token:string -> (Property.failure option, string) result
(** Re-run one case from a replay token.  [Ok None]: the case passes or
    skips now (the bug is fixed, or the token is from another build).
    [Ok (Some f)]: still failing, shrunk counterexample attached.
    [Error msg]: malformed token or unknown property. *)

val property_names : unit -> string list
