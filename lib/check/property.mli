(** Property runner: counterexample search, greedy shrinking, one-line
    seed-stamped replay.

    Every case [i] of a run draws its generator from
    [Rng.stream (Rng.create seed) i] at size [i mod (max_size + 1)] — both
    are pure functions of [(seed, i)], so the triple rendered in a replay
    token ([name:seed:case]) deterministically reproduces the exact
    counterexample, including the shrinking walk (shrink trees are
    deterministic given the generated tree). *)

type outcome =
  | Pass
  | Fail of string  (** the law is violated; the string says how *)
  | Skip  (** precondition not met; the case is not counted as tested *)

type 'a t = {
  name : string;
      (** stable identifier; also the first field of replay tokens.  Use
          ['/'] for namespacing ([oracle/fm]) — [':'] is reserved. *)
  gen : 'a Gen.t;
  show : 'a -> string;  (** counterexample printer (single line) *)
  law : 'a -> outcome;
      (** exceptions escaping [law] are converted to [Fail]. *)
}

type failure = {
  property : string;
  seed : int;
  case : int;  (** 0-based case index within the run *)
  size : int;
  shrink_steps : int;  (** accepted shrinks on the walk to the minimum *)
  counterexample : string;  (** [show] of the shrunk value *)
  message : string;  (** [Fail] payload at the shrunk value *)
}

type stats = {
  cases : int;  (** cases that ran the law to completion (Pass) *)
  skipped : int;
  failure : failure option;  (** the first failure, shrunk; stops the run *)
}

val default_cases : int
(** 50 cases per property. *)

val default_max_size : int
(** 14: sizes cycle through [0 .. 14]. *)

val check : ?cases:int -> ?max_size:int -> seed:int -> 'a t -> stats
(** Run up to [cases] (default 50) generated cases at sizes cycling
    through [0 .. max_size] (default 14), stopping at the first failure
    (returned shrunk). *)

val replay : seed:int -> case:int -> ?max_size:int -> 'a t -> failure option
(** Re-run exactly one case.  Returns [None] when the property now
    passes (or skips), [Some failure] — shrunk, identical to the original
    run's — when it still fails. *)

val replay_token : failure -> string
(** ["<property>:<seed>:<case>"] — the one-line handle accepted by
    [mlpart selfcheck --replay]. *)

val parse_token : string -> (string * int * int) option
(** Inverse of {!replay_token}: [Some (property, seed, case)]. *)

val pp_failure : Format.formatter -> failure -> unit
(** One line: property, location, message, counterexample, replay token. *)

(** {1 Heterogeneous property collections} *)

type packed = Packed : 'a t -> packed
(** Existential wrapper so property suites mix generator types. *)

val packed_name : packed -> string
val check_packed : ?cases:int -> ?max_size:int -> seed:int -> packed -> stats
val replay_packed :
  seed:int -> case:int -> ?max_size:int -> packed -> failure option
