module Rng = Mlpart_util.Rng

type outcome = Pass | Fail of string | Skip

type 'a t = {
  name : string;
  gen : 'a Gen.t;
  show : 'a -> string;
  law : 'a -> outcome;
}

type failure = {
  property : string;
  seed : int;
  case : int;
  size : int;
  shrink_steps : int;
  counterexample : string;
  message : string;
}

type stats = { cases : int; skipped : int; failure : failure option }

let default_cases = 50
let default_max_size = 14

(* Evaluating a law must be total: an escaping exception is itself the
   counterexample ("engine raised"), not a harness crash. *)
let eval law x =
  match law x with
  | outcome -> outcome
  | exception e -> Fail (Printf.sprintf "raised %s" (Printexc.to_string e))

let size_for ~max_size case = case mod (max_size + 1)

(* Greedy shrink walk: descend into the first failing child, repeat.
   [Skip] and [Pass] children are rejected alike — a shrink that no longer
   meets the precondition is useless as a counterexample.  The budget
   bounds law evaluations so that adversarial trees terminate. *)
let shrink law tree first_message =
  let budget = ref 600 in
  let rec walk (t : _ Gen.tree) message steps =
    let rec first_failing (candidates : _ Gen.tree Seq.t) =
      if !budget <= 0 then None
      else
        match candidates () with
        | Seq.Nil -> None
        | Seq.Cons (c, rest) -> (
            decr budget;
            match eval law c.value with
            | Fail m -> Some (c, m)
            | Pass | Skip -> first_failing rest)
    in
    match first_failing t.shrinks with
    | Some (c, m) -> walk c m (steps + 1)
    | None -> (t.value, message, steps)
  in
  walk tree first_message 0

let run_case ~seed ~max_size prop case =
  let size = size_for ~max_size case in
  let rng = Rng.stream (Rng.create seed) case in
  let tree = Gen.generate prop.gen ~size rng in
  match eval prop.law tree.value with
  | Pass -> `Pass
  | Skip -> `Skip
  | Fail message ->
      let value, message, shrink_steps = shrink prop.law tree message in
      `Fail
        {
          property = prop.name;
          seed;
          case;
          size;
          shrink_steps;
          counterexample = prop.show value;
          message;
        }

let check ?(cases = default_cases) ?(max_size = default_max_size) ~seed prop =
  let ran = ref 0 and skipped = ref 0 in
  let failure = ref None in
  let case = ref 0 in
  while !failure = None && !case < cases do
    (match run_case ~seed ~max_size prop !case with
    | `Pass -> incr ran
    | `Skip -> incr skipped
    | `Fail f -> failure := Some f);
    incr case
  done;
  { cases = !ran; skipped = !skipped; failure = !failure }

let replay ~seed ~case ?(max_size = default_max_size) prop =
  match run_case ~seed ~max_size prop case with
  | `Pass | `Skip -> None
  | `Fail f -> Some f

let replay_token f = Printf.sprintf "%s:%d:%d" f.property f.seed f.case

let parse_token s =
  (* the property name may itself contain anything but ':' *)
  match String.rindex_opt s ':' with
  | None -> None
  | Some j -> (
      match String.rindex_opt (String.sub s 0 j) ':' with
      | None -> None
      | Some i -> (
          let name = String.sub s 0 i in
          let seed = String.sub s (i + 1) (j - i - 1) in
          let case = String.sub s (j + 1) (String.length s - j - 1) in
          match (int_of_string_opt seed, int_of_string_opt case) with
          | Some seed, Some case when name <> "" && case >= 0 ->
              Some (name, seed, case)
          | _ -> None))

type packed = Packed : 'a t -> packed

let packed_name (Packed p) = p.name

let check_packed ?cases ?max_size ~seed (Packed p) =
  check ?cases ?max_size ~seed p

let replay_packed ~seed ~case ?max_size (Packed p) =
  replay ~seed ~case ?max_size p

let pp_failure ppf f =
  Format.fprintf ppf
    "FAIL %s (seed %d, case %d, size %d, %d shrink(s)): %s on %s — replay: \
     mlpart selfcheck --replay '%s'"
    f.property f.seed f.case f.size f.shrink_steps f.message f.counterexample
    (replay_token f)
