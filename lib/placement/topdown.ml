module H = Mlpart_hypergraph.Hypergraph
module Builder = Mlpart_hypergraph.Builder
module Rng = Mlpart_util.Rng
module Ml_multiway = Mlpart_multilevel.Ml_multiway
module Trace = Mlpart_obs.Trace
module Metrics = Mlpart_obs.Metrics

let m_regions = Metrics.counter "place.regions"
let m_leaves = Metrics.counter "place.leaves"

type terminal_model = Ignore_external | Propagate_to_quadrant

type config = {
  leaf_size : int;
  terminal_model : terminal_model;
  num_pads : int option;
  ml : Ml_multiway.config;
}

let default =
  {
    leaf_size = 12;
    terminal_model = Propagate_to_quadrant;
    num_pads = None;
    ml = Ml_multiway.default;
  }

type result = {
  x : float array;
  y : float array;
  hpwl : float;
  regions : int;
  pads : int array;
  timed_out : bool;
}

let grid_legalize h ~x ~y =
  let n = H.num_modules h in
  let lx = Array.make n 0.0 and ly = Array.make n 0.0 in
  if n > 0 then begin
    let cols = int_of_float (ceil (sqrt (float_of_int n))) in
    let order = Array.init n Fun.id in
    Array.sort (fun a b -> compare (x.(a), y.(a), a) (x.(b), y.(b), b)) order;
    let per_col = (n + cols - 1) / cols in
    for c = 0 to cols - 1 do
      let base = c * per_col in
      let len = Stdlib.min per_col (n - base) in
      if len > 0 then begin
        let column = Array.sub order base len in
        Array.sort (fun a b -> compare (y.(a), x.(a), a) (y.(b), x.(b), b)) column;
        Array.iteri
          (fun row v ->
            lx.(v) <- (float_of_int c +. 0.5) /. float_of_int cols;
            ly.(v) <- (float_of_int row +. 0.5) /. float_of_int len)
          column
      end
    done
  end;
  (lx, ly)

type region = { x0 : float; y0 : float; x1 : float; y1 : float }

let centre r = ((r.x0 +. r.x1) /. 2.0, (r.y0 +. r.y1) /. 2.0)

(* Quadrant ids match Gordian: 0 = left-bottom, 1 = left-top,
   2 = right-bottom, 3 = right-top. *)
let quadrant_region r q =
  let mx = (r.x0 +. r.x1) /. 2.0 and my = (r.y0 +. r.y1) /. 2.0 in
  match q with
  | 0 -> { x0 = r.x0; y0 = r.y0; x1 = mx; y1 = my }
  | 1 -> { x0 = r.x0; y0 = my; x1 = mx; y1 = r.y1 }
  | 2 -> { x0 = mx; y0 = r.y0; x1 = r.x1; y1 = my }
  | 3 -> { x0 = mx; y0 = my; x1 = r.x1; y1 = r.y1 }
  | _ -> invalid_arg "quadrant_region"

let nearest_quadrant r (px, py) =
  let mx = (r.x0 +. r.x1) /. 2.0 and my = (r.y0 +. r.y1) /. 2.0 in
  (if px < mx then 0 else 2) + if py < my then 0 else 1

(* Final positions of a leaf region: a small grid in module order. *)
let place_leaf x y region members =
  let count = Array.length members in
  if count > 0 then begin
    let cols = int_of_float (ceil (sqrt (float_of_int count))) in
    let rows = (count + cols - 1) / cols in
    Array.iteri
      (fun i v ->
        let col = i mod cols and row = i / cols in
        x.(v) <-
          region.x0
          +. ((region.x1 -. region.x0) *. (float_of_int col +. 0.5)
              /. float_of_int cols);
        y.(v) <-
          region.y0
          +. ((region.y1 -. region.y0) *. (float_of_int row +. 0.5)
              /. float_of_int rows))
      members
  end

(* Extract the sub-netlist induced by [members] of [h].  Under
   [Propagate_to_quadrant], boundary-crossing nets gain a pin on one of at
   most four shared terminal modules — one per quadrant, pre-assigned there
   — chosen nearest the centroid of the net's external pins (current
   positions [x], [y]).  Sharing one terminal per quadrant keeps the fixed
   area negligible, so part balance stays feasible. *)
let sub_netlist config h region ~x ~y ~placed members =
  let count = Array.length members in
  let local_of = Hashtbl.create (2 * count) in
  Array.iteri (fun i v -> Hashtbl.add local_of v i) members;
  let builder = Builder.create () in
  Array.iter
    (fun v -> ignore (Builder.add_module builder ~area:(H.area h v) ()))
    members;
  let terminal = Array.make 4 (-1) in
  let terminal_for q =
    if terminal.(q) < 0 then terminal.(q) <- Builder.add_module builder ();
    terminal.(q)
  in
  let seen_net = Array.make (H.num_nets h) false in
  Array.iter
    (fun v ->
      H.iter_nets_of h v (fun e ->
          if not seen_net.(e) then begin
            seen_net.(e) <- true;
            let inside = ref [] in
            let out_x = ref 0.0 and out_y = ref 0.0 and out_n = ref 0 in
            H.iter_pins_of h e (fun u ->
                match Hashtbl.find_opt local_of u with
                | Some i -> inside := i :: !inside
                | None ->
                    (* only pins already placed (pads or other regions)
                       steer the cut *)
                    if placed.(u) then begin
                      out_x := !out_x +. x.(u);
                      out_y := !out_y +. y.(u);
                      incr out_n
                    end);
            match (!inside, config.terminal_model, !out_n) with
            | [], _, _ -> ()
            | inside, Propagate_to_quadrant, n when n > 0 ->
                let cx = !out_x /. float_of_int n
                and cy = !out_y /. float_of_int n in
                let q = nearest_quadrant region (cx, cy) in
                Builder.add_net builder (terminal_for q :: inside)
            | (_ :: _ :: _ as inside), Ignore_external, _
            | (_ :: _ :: _ as inside), Propagate_to_quadrant, _ ->
                Builder.add_net builder inside
            | [ _ ], (Ignore_external | Propagate_to_quadrant), _ -> ()
          end))
    members;
  let sub = Builder.build builder in
  let fixed_array = Array.make (H.num_modules sub) (-1) in
  Array.iteri (fun q t -> if t >= 0 then fixed_array.(t) <- q) terminal;
  (sub, fixed_array, count)

let run ?(config = default) ?deadline rng h =
  let n = H.num_modules h in
  let timed_out = ref false in
  let past_deadline () =
    match deadline with
    | None -> false
    | Some dl ->
        if Mlpart_util.Deadline.check dl then begin
          timed_out := true;
          true
        end
        else false
  in
  let x = Array.make n 0.0 and y = Array.make n 0.0 in
  let placed = Array.make n false in
  (* Pre-place pads on the boundary as in the GORDIAN baseline. *)
  let pad_count =
    match config.num_pads with
    | Some c -> Stdlib.max 1 (Stdlib.min c n)
    | None -> Stdlib.min n (Stdlib.max 16 (n / 100))
  in
  let gpads =
    (* reuse Gordian's pad selection and boundary layout *)
    let r = Gordian.run ~config:{ Gordian.default with num_pads = Some pad_count } h in
    Array.map (fun p -> (p, r.Gordian.x.(p), r.Gordian.y.(p))) r.Gordian.pads
  in
  Array.iter
    (fun (p, px, py) ->
      x.(p) <- px;
      y.(p) <- py;
      placed.(p) <- true)
    gpads;
  let movable =
    Array.of_list
      (List.filter (fun v -> not placed.(v)) (List.init n Fun.id))
  in
  let regions = ref 0 in
  let die = { x0 = 0.0; y0 = 0.0; x1 = 1.0; y1 = 1.0 } in
  let rec refine depth region members =
    if Array.length members <= config.leaf_size then begin
      Metrics.incr m_leaves;
      place_leaf x y region members
    end
    else if past_deadline () then
      (* graceful degradation: no further quadrisection — spread the whole
         region like a leaf so every module still gets a legal coordinate *)
      place_leaf x y region members
    else begin
      incr regions;
      Metrics.incr m_regions;
      let t0 = Trace.start () in
      (* provisional positions: everyone at the region centre, so sibling
         regions see a sensible location for not-yet-refined modules *)
      let cx, cy = centre region in
      Array.iter
        (fun v ->
          x.(v) <- cx;
          y.(v) <- cy)
        members;
      let sub, fixed, count = sub_netlist config h region ~x ~y ~placed members in
      let side =
        if H.num_nets sub = 0 then
          (* no internal connectivity: balanced round-robin *)
          Array.init (H.num_modules sub) (fun i -> i mod 4)
        else begin
          let r = Ml_multiway.run ~config:config.ml ~fixed rng sub ~k:4 in
          r.Ml_multiway.side
        end
      in
      let buckets = Array.make 4 [] in
      for i = count - 1 downto 0 do
        let q = side.(i) in
        buckets.(q) <- members.(i) :: buckets.(q)
      done;
      (* mark as placed at quadrant centres before recursing so that later
         sibling refinements propagate terminals against them *)
      for q = 0 to 3 do
        let sub_region = quadrant_region region q in
        let qx, qy = centre sub_region in
        List.iter
          (fun v ->
            x.(v) <- qx;
            y.(v) <- qy;
            placed.(v) <- true)
          buckets.(q)
      done;
      (* span closes before recursing, so region timings are per-region
         quadrisection cost, not inclusive of the whole subtree *)
      if Trace.enabled () then
        Trace.complete ~cat:"place"
          ~args:
            [
              ("depth", Trace.Int depth);
              ("members", Trace.Int (Array.length members));
            ]
          "place/region" t0;
      for q = 0 to 3 do
        refine (depth + 1) (quadrant_region region q) (Array.of_list buckets.(q))
      done
    end
  in
  refine 0 die movable;
  {
    x;
    y;
    hpwl = Quadratic.hpwl h ~x ~y;
    regions = !regions;
    pads = Array.map (fun (p, _, _) -> p) gpads;
    timed_out = !timed_out;
  }
