(** Top-down standard-cell placement by recursive multilevel quadrisection —
    the application the paper's quadrisection work powers (§III.C and [24],
    "Partitioning-Based Standard-Cell Global Placement").

    The die (unit square) is recursively split into quadrants.  At each
    region, a sub-netlist is extracted and partitioned 4-ways with the
    multilevel engine; nets that leave the region are handled by a
    configurable {e terminal propagation} model — external pins become
    fixed dummy terminals pre-assigned to the quadrant nearest their
    current location, steering the partitioner the way the eventual routes
    will pull.  I/O pads are pre-placed on the die boundary and act as
    external terminals throughout.

    The result is a coordinate for every module and the half-perimeter
    wirelength of the global placement. *)

type terminal_model =
  | Ignore_external
      (** cut nets crossing the region boundary are simply truncated *)
  | Propagate_to_quadrant
      (** external pins of a net become a fixed terminal in the quadrant
          nearest their centroid (the standard Dunlop–Kernighan scheme) *)

type config = {
  leaf_size : int;  (** stop recursing below this many modules (default 12) *)
  terminal_model : terminal_model;
  num_pads : int option;  (** as in {!Gordian.config} *)
  ml : Mlpart_multilevel.Ml_multiway.config;  (** quadrisection engine *)
}

val default : config
(** Terminal propagation on, MLf quadrisection as in Table IX. *)

type result = {
  x : float array;
  y : float array;
  hpwl : float;
  regions : int;  (** quadrisection calls performed *)
  pads : int array;
  timed_out : bool;
      (** the cooperative [deadline] expired: some regions were spread
          without quadrisection (every module still has a coordinate) *)
}

val run :
  ?config:config ->
  ?deadline:Mlpart_util.Deadline.t ->
  Mlpart_util.Rng.t ->
  Mlpart_hypergraph.Hypergraph.t ->
  result
(** [deadline] is polled cooperatively before each region's quadrisection;
    once expired, remaining regions degrade to leaf spreading, so the call
    always returns a complete placement.  Work finished before expiry is
    identical to the untimed run. *)

val grid_legalize :
  Mlpart_hypergraph.Hypergraph.t ->
  x:float array ->
  y:float array ->
  float array * float array
(** Snap an (overlapping) analytic placement to a uniform √n x √n grid
    preserving the relative ordering: modules are sorted into equal-size
    columns by [x], then spaced by [y] within each column.  Makes
    HPWL comparisons against {!run} (whose leaves are already spread)
    meaningful — analytic placements otherwise understate wirelength by
    stacking cells at the die centre. *)
