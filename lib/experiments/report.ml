module Rng = Mlpart_util.Rng
module Stats = Mlpart_util.Stats
module Pool = Mlpart_util.Pool
module H = Mlpart_hypergraph.Hypergraph

type measurement = {
  min_cut : int;
  avg_cut : float;
  std_cut : float;
  cpu : float;
  runs : int;
}

(* Per-run generators are pre-split from the master seed so results do not
   depend on how the runs are scheduled across domains; the shared pool is
   spawned once and reused across every measurement with the same job
   count. *)
let measure_generic ?(jobs = 1) ~runs ~seed h run verify =
  let master = Rng.create seed in
  let rngs = Array.init runs (fun _ -> Rng.split master) in
  let one rng =
    let side, cut = run rng h in
    assert (verify h side = cut);
    cut
  in
  let start = Mlpart_util.Timer.now () in
  let cuts =
    if jobs <= 1 || runs <= 1 then Array.map one rngs
    else Pool.map (Pool.get ~jobs:(Stdlib.min jobs runs)) one rngs
  in
  let cpu = Mlpart_util.Timer.now () -. start in
  let stats = Stats.create () in
  Array.iter (fun cut -> Stats.add stats (float_of_int cut)) cuts;
  {
    min_cut = int_of_float (Stats.min stats);
    avg_cut = Stats.mean stats;
    std_cut = Stats.stddev stats;
    cpu;
    runs;
  }

let measure ?jobs ~runs ~seed h (algo : Algos.bipartitioner) =
  measure_generic ?jobs ~runs ~seed h algo.Algos.run Mlpart_partition.Fm.cut_of

let measure_quad ?jobs ~runs ~seed h (algo : Algos.quadrisector) =
  measure_generic ?jobs ~runs ~seed h algo.Algos.qrun
    (Mlpart_partition.Multiway.cut_of ~k:4)

let cell = function None -> "-" | Some v -> string_of_int v
let fcell = function None -> "-" | Some v -> Printf.sprintf "%.1f" v
