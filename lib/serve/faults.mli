(** Deterministic fault injection for the serve daemon.

    Every decision is a pure function of [(seed, request index, attempt)],
    derived through {!Mlpart_util.Rng.stream} exactly like the PR-3 fuzz
    harness — the same seed replays the same fault schedule whatever the
    worker scheduling, which is what lets the soak test assert an exact
    metrics ledger.

    Fault kinds model the four hostile behaviours a daemon must survive:
    requests that fail to parse, workers that crash (transiently or
    permanently), jobs that are artificially slow, and clients that
    disconnect before the reply lands. *)

type kind =
  | Garble_parse
      (** corrupt the raw request line before decoding (attempt 0 only) *)
  | Crash of bool  (** worker raises; [true] = transient, i.e. retryable *)
  | Slow of int  (** sleep this many ms inside the worker *)
  | Disconnect  (** compute the answer, then sever the connection *)

type config = {
  seed : int;
  parse_p : float;
  crash_p : float;
  transient_p : float;  (** fraction of crashes classified transient *)
  slow_p : float;
  slow_ms : int;
  disconnect_p : float;
}

val none : config
(** All probabilities zero — injection fully disabled. *)

val uniform : seed:int -> rate:float -> config
(** Total fault probability [rate] split evenly over the four kinds,
    transient fraction 1/2, slowness 2 ms — the soak-test profile. *)

val enabled : config -> bool

val max_attempts : int
(** Stream-index stride between consecutive requests; retries are capped
    well below it, so [(request, attempt)] pairs never collide. *)

val decide : config -> request:int -> attempt:int -> kind option
(** The fault (if any) injected into attempt [attempt] of request
    [request].  Parse faults only fire at attempt 0; a retry re-rolls, so
    transient crashes can succeed on a later attempt. *)

exception Injected of { transient : bool }
(** Raised inside a worker to simulate a crash; the engine's crash
    isolation converts it into a diagnostic (and optionally a retry) —
    it must never escape the worker boundary. *)
