module Json = Mlpart_obs.Json
module P = Protocol

type addr = Unix_path of string | Tcp of string * int

let addr_of_string s =
  match String.index_opt s ':' with
  | Some 3 when String.sub s 0 4 = "tcp:" -> (
      let rest = String.sub s 4 (String.length s - 4) in
      match String.rindex_opt rest ':' with
      | None -> Error (Printf.sprintf "tcp address %S wants HOST:PORT" s)
      | Some i -> (
          let host = String.sub rest 0 i in
          let port = String.sub rest (i + 1) (String.length rest - i - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
          | Some _ | None -> Error (Printf.sprintf "bad port in %S" s)))
  | _ -> Ok (Unix_path s)

let addr_to_string = function
  | Unix_path p -> p
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | a -> a
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> failwith ("cannot resolve " ^ host)
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found -> failwith ("cannot resolve " ^ host))

let sockaddr_of = function
  | Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (Unix.PF_INET, Unix.ADDR_INET (resolve_host host, port))

let listen_socket addr =
  let domain, sa = sockaddr_of addr in
  (match addr with
  | Unix_path path when Sys.file_exists path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ());
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Unix_path _ -> ());
  Unix.bind fd sa;
  Unix.listen fd 64;
  fd

(* One connection: read a line, run it through the engine, write the
   response — strictly in order.  A [drop] response (injected disconnect)
   severs the connection instead of answering. *)
let handle_connection engine fd ~count_request =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line when String.trim line = "" -> loop ()
    | line ->
        let resp =
          match Engine.submit_line engine line with
          | Engine.Reply r -> r
          | Engine.Queued ticket -> Engine.wait ticket
        in
        count_request ();
        if resp.P.drop then (
          try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        else begin
          match
            output_string oc (P.response_to_line resp);
            output_char oc '\n';
            flush oc
          with
          | () -> loop ()
          | exception Sys_error _ -> ()
        end
  in
  loop ();
  (try flush oc with Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let run ?max_requests ?stats_path engine addr =
  let listener = listen_socket addr in
  let stopping = Atomic.make false in
  (* self-pipe: signal handlers and the request budget wake the select
     loop without racing close() against a blocked accept() *)
  let stop_r, stop_w = Unix.pipe () in
  let request_stop () =
    if not (Atomic.exchange stopping true) then
      try ignore (Unix.write stop_w (Bytes.of_string "x") 0 1 : int)
      with Unix.Unix_error _ -> ()
  in
  let served = Atomic.make 0 in
  let count_request () =
    match max_requests with
    | Some n -> if Atomic.fetch_and_add served 1 + 1 >= n then request_stop ()
    | None -> ()
  in
  let previous_handlers =
    List.map
      (fun s ->
        (s, Sys.signal s (Sys.Signal_handle (fun _ -> request_stop ()))))
      [ Sys.sigterm; Sys.sigint ]
  in
  let previous_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let conns_m = Mutex.create () in
  let conns : (int, Unix.file_descr) Hashtbl.t = Hashtbl.create 16 in
  let threads = ref [] in
  let next_conn = ref 0 in
  let accept_loop () =
    while not (Atomic.get stopping) do
      match Unix.select [ listener; stop_r ] [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
          if (not (List.mem stop_r ready)) && List.mem listener ready then begin
            match Unix.accept listener with
            | exception Unix.Unix_error _ -> ()
            | fd, _ ->
                let id = !next_conn in
                incr next_conn;
                Mutex.lock conns_m;
                Hashtbl.replace conns id fd;
                Mutex.unlock conns_m;
                let th =
                  Thread.create
                    (fun () ->
                      handle_connection engine fd ~count_request;
                      Mutex.lock conns_m;
                      Hashtbl.remove conns id;
                      Mutex.unlock conns_m)
                    ()
                in
                threads := th :: !threads
          end
    done
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (s, h) -> Sys.set_signal s h) previous_handlers;
      Sys.set_signal Sys.sigpipe previous_pipe;
      (try Unix.close stop_r with Unix.Unix_error _ -> ());
      (try Unix.close stop_w with Unix.Unix_error _ -> ());
      match addr with
      | Unix_path path -> (
          try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
      | Tcp _ -> ())
    (fun () ->
      accept_loop ();
      (try Unix.close listener with Unix.Unix_error _ -> ());
      (* graceful degradation under SIGTERM: finish everything admitted,
         reject the rest, then leave *)
      Engine.drain engine;
      Mutex.lock conns_m;
      let open_fds = Hashtbl.fold (fun _ fd acc -> fd :: acc) conns [] in
      Mutex.unlock conns_m;
      List.iter
        (fun fd ->
          try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        open_fds;
      List.iter Thread.join !threads;
      match stats_path with
      | Some path ->
          let out = open_out path in
          output_string out (Json.to_string (Engine.stats_json engine));
          output_char out '\n';
          close_out out
      | None -> ())

(* ---- client side ---- *)

let with_connection addr f =
  let domain, sa = sockaddr_of addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd sa with
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  | () ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> f ic oc)

let roundtrip ic oc line =
  match
    output_string oc line;
    output_char oc '\n';
    flush oc
  with
  | exception Sys_error msg -> Error ("connection lost: " ^ msg)
  | () -> (
      match input_line ic with
      | exception End_of_file -> Error "connection severed before the reply"
      | exception Sys_error msg -> Error ("connection lost: " ^ msg)
      | reply -> P.response_of_line reply)
