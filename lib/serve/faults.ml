module Rng = Mlpart_util.Rng

type kind = Garble_parse | Crash of bool | Slow of int | Disconnect

type config = {
  seed : int;
  parse_p : float;
  crash_p : float;
  transient_p : float;
  slow_p : float;
  slow_ms : int;
  disconnect_p : float;
}

let none =
  {
    seed = 0;
    parse_p = 0.;
    crash_p = 0.;
    transient_p = 0.;
    slow_p = 0.;
    slow_ms = 0;
    disconnect_p = 0.;
  }

let uniform ~seed ~rate =
  let p = rate /. 4. in
  {
    seed;
    parse_p = p;
    crash_p = p;
    transient_p = 0.5;
    slow_p = p;
    slow_ms = 2;
    disconnect_p = p;
  }

let enabled c =
  c.parse_p > 0. || c.crash_p > 0. || c.slow_p > 0. || c.disconnect_p > 0.

(* Retries are capped well below this, so (request, attempt) pairs map to
   distinct stream indices. *)
let max_attempts = 16

exception Injected of { transient : bool }

let decide c ~request ~attempt =
  if not (enabled c) then None
  else begin
    let rng = Rng.stream (Rng.create c.seed) ((request * max_attempts) + attempt) in
    let u = Rng.float rng 1.0 in
    (* one draw walks the cumulative thresholds in a fixed kind order; the
       transient flag costs a second draw only when a crash fires *)
    if u < c.parse_p then if attempt = 0 then Some Garble_parse else None
    else if u < c.parse_p +. c.crash_p then
      Some (Crash (Rng.float rng 1.0 < c.transient_p))
    else if u < c.parse_p +. c.crash_p +. c.slow_p then Some (Slow c.slow_ms)
    else if u < c.parse_p +. c.crash_p +. c.slow_p +. c.disconnect_p then
      Some Disconnect
    else None
  end
