(** Socket front-end for the serve engine: newline-delimited JSON over a
    Unix-domain or TCP socket, one thread per connection, responses in
    request order per connection.

    Lifecycle: {!run} accepts until a stop is requested — SIGTERM, SIGINT
    or the [max_requests] budget — then closes the listener, rejects new
    work, drains every queued and in-flight job through {!Engine.drain},
    severs lingering connections, optionally writes a final [/stats]
    snapshot, and returns.  A normal drain returns cleanly, which is what
    lets the CLI exit 0 on SIGTERM. *)

type addr =
  | Unix_path of string  (** Unix-domain socket at this path *)
  | Tcp of string * int  (** host, port *)

val addr_of_string : string -> (addr, string) result
(** ["tcp:HOST:PORT"] or a filesystem path (Unix-domain socket). *)

val addr_to_string : addr -> string

val run :
  ?max_requests:int -> ?stats_path:string -> Engine.t -> addr -> unit
(** Serve until stopped.  [max_requests] triggers the drain after that
    many request lines (the CI smoke harness); [stats_path] receives the
    final {!Engine.stats_json} export.  Installs SIGTERM/SIGINT handlers
    and ignores SIGPIPE for the duration of the call. *)

(** {1 Client side} *)

val with_connection : addr -> (in_channel -> out_channel -> 'a) -> 'a
(** Connect, run, always close. *)

val roundtrip :
  in_channel -> out_channel -> string -> (Protocol.response, string) result
(** Send one request line, read and decode one response line.  [Error]
    covers a severed connection (the disconnect fault) and undecodable
    responses. *)
