(** Bounded LRU cache of coarsening hierarchies, keyed by netlist content.

    The million-user access pattern the daemon serves is many queries
    against few designs (different seeds, tolerances, start counts); the
    coarsening hierarchy depends on none of those, so repeated queries
    skip straight to initial partitioning + refinement.  Keys must encode
    everything the hierarchy {e does} depend on — the netlist
    {!fingerprint} plus the coarsening parameters and coarsening seed (see
    {!Engine}) — which is what makes a hit bit-identical to a cold run.

    Every entry carries a structural checksum taken at insert time and
    re-verified on lookup: a corrupted entry (bit rot, a buggy mutation
    through the shared value) is detected, dropped and recomputed — never
    served.  All operations are mutex-guarded; worker domains share one
    cache.  Hits, misses, evictions and corruption detections count into
    {!Mlpart_obs.Metrics} as [serve.cache.*]. *)

type t

val create : capacity:int -> t
(** [capacity] is the maximum number of resident hierarchies (>= 1). *)

val fingerprint : Mlpart_hypergraph.Hypergraph.t -> int64
(** FNV-1a content hash over the CSR representation (areas, net offsets,
    pins, weights) — the netlist part of a cache key.  Names are excluded:
    identical structure hashes identically whatever it is called. *)

val checksum : Mlpart_multilevel.Hierarchy.t -> int64
(** Structural checksum of a hierarchy (cluster maps, fixed assignments,
    every level's CSR).  Exposed for the corruption tests. *)

type lookup =
  | Hit of Mlpart_multilevel.Hierarchy.t
  | Miss
  | Corrupt  (** checksum mismatch; the entry was evicted, rebuild it *)

val find : t -> string -> lookup
(** Verified lookup; a [Hit] refreshes the entry's recency. *)

val add : t -> string -> Mlpart_multilevel.Hierarchy.t -> unit
(** Insert (or replace) an entry, evicting the least-recently-used one
    when at capacity.  Each eviction emits a [cache-evicted] warning
    diagnostic into the metrics registry. *)

val length : t -> int
val capacity : t -> int
