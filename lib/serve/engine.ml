module Hgr_io = Mlpart_hypergraph.Hgr_io
module Netd_io = Mlpart_hypergraph.Netd_io
module Suite = Mlpart_gen.Suite
module Fm = Mlpart_partition.Fm
module Ml = Mlpart_multilevel.Ml
module Diag = Mlpart_util.Diag
module Rng = Mlpart_util.Rng
module Pool = Mlpart_util.Pool
module Deadline = Mlpart_util.Deadline
module Json = Mlpart_obs.Json
module Metrics = Mlpart_obs.Metrics
module Trace = Mlpart_obs.Trace
module P = Protocol

type config = {
  workers : int;
  jobs : int;
  queue_capacity : int;
  client_inflight : int;
  cache_capacity : int;
  coarsen_seed : int;
  max_retries : int;
  retry_base_ms : int;
  retry_cap_ms : int;
  default_timeout_ms : int option;
  faults : Faults.config;
  ml : Ml.config;
}

let default =
  {
    workers = 1;
    jobs = 1;
    queue_capacity = 64;
    client_inflight = 16;
    cache_capacity = 32;
    coarsen_seed = 1;
    max_retries = 2;
    retry_base_ms = 1;
    retry_cap_ms = 50;
    default_timeout_ms = None;
    faults = Faults.none;
    ml = Ml.mlc;
  }

(* The request ledger: received = completed + rejected + failed, exactly.
   Every submit_line increments received; every path below reaches exactly
   one terminal counter. *)
let m_received = Metrics.counter "serve.requests.received"
let m_completed = Metrics.counter "serve.requests.completed"
let m_degraded = Metrics.counter "serve.requests.degraded"
let m_rejected = Metrics.counter "serve.requests.rejected"
let m_failed = Metrics.counter "serve.requests.failed"
let m_rej_queue = Metrics.counter "serve.rejected.queue_full"
let m_rej_client = Metrics.counter "serve.rejected.client_cap"
let m_rej_drain = Metrics.counter "serve.rejected.draining"
let m_retries = Metrics.counter "serve.retries"
let m_fault_parse = Metrics.counter "serve.faults.parse"
let m_fault_crash = Metrics.counter "serve.faults.crash"
let m_fault_slow = Metrics.counter "serve.faults.slow"
let m_fault_disconnect = Metrics.counter "serve.faults.disconnect"
let g_depth = Metrics.gauge "serve.queue.depth"
let h_wait = Metrics.histogram "serve.queue.wait_ms"
let h_elapsed = Metrics.histogram "serve.job.elapsed_ms"

type ticket = {
  tm : Mutex.t;
  tc : Condition.t;
  mutable reply : P.response option;
}

type outcome = Queued of ticket | Reply of P.response

type job = {
  index : int;  (** fault-injection stream index, assigned at admission *)
  request : P.request;
  enqueued_at : float;
  ticket : ticket;
}

type t = {
  config : config;
  cache : Cache.t;
  m : Mutex.t;
  nonempty : Condition.t;  (** queue gained work or stop was raised *)
  idle : Condition.t;  (** queue empty and nothing in flight *)
  queue : job Queue.t;
  clients : (string, int) Hashtbl.t;  (** queued + running jobs per client *)
  mutable in_flight : int;
  mutable next_index : int;
  mutable accepting : bool;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let config t = t.config

let wait tk =
  Mutex.lock tk.tm;
  while tk.reply = None do
    Condition.wait tk.tc tk.tm
  done;
  let r = Option.get tk.reply in
  Mutex.unlock tk.tm;
  r

let resolve tk r =
  Mutex.lock tk.tm;
  tk.reply <- Some r;
  Condition.broadcast tk.tc;
  Mutex.unlock tk.tm

let now_ms () = Unix.gettimeofday () *. 1000.

let client_count t client =
  Option.value (Hashtbl.find_opt t.clients client) ~default:0

let incr_client t client = Hashtbl.replace t.clients client (client_count t client + 1)

let decr_client t client =
  match client_count t client - 1 with
  | 0 -> Hashtbl.remove t.clients client
  | n -> Hashtbl.replace t.clients client n

(* ---- the partitioning job itself ---- *)

(* The shared intra-job pool is only safe from one orchestrating domain,
   so intra-job parallelism is honoured only in single-worker engines. *)
let intra_pool t =
  if t.config.workers = 1 && t.config.jobs > 1 then
    Some (Pool.get ~jobs:t.config.jobs)
  else None

let load_netlist (req : P.request) =
  let source =
    if req.P.id = "" then "request" else "request " ^ req.P.id
  in
  match req.P.src with
  | P.Inline text -> (
      match Hgr_io.parse_string ~name:"inline" ~mode:Hgr_io.Strict text with
      | Ok parsed -> parsed.Hgr_io.hypergraph
      | Error ds -> raise (Diag.Mlpart_error ds))
  | P.Bench name -> (
      match Suite.find name with
      (* fixed instantiation seed: the daemon's bench netlists are stable
         content, which is what makes them cacheable across requests *)
      | spec -> Suite.instantiate ~seed:1 spec
      | exception Not_found ->
          Diag.fail ~source Diag.Bad_token "unknown benchmark %S" name)
  | P.Path path -> (
      let parse path =
        if Filename.check_suffix path ".net" || Filename.check_suffix path ".netD"
        then
          Result.map
            (fun p -> p.Netd_io.hypergraph)
            (Netd_io.parse_files ~mode:Hgr_io.Strict path)
        else
          Result.map
            (fun p -> p.Hgr_io.hypergraph)
            (Hgr_io.parse_file ~mode:Hgr_io.Strict path)
      in
      match parse path with
      | Ok h -> h
      | Error ds -> raise (Diag.Mlpart_error ds)
      | exception Sys_error msg -> Diag.fail ~source Diag.Io_error "%s" msg)

let cache_key t ~fp =
  let ml = t.config.ml in
  Printf.sprintf "%Lx:cs%d:t%d:r%h:n%d:d%b:l%d" fp t.config.coarsen_seed
    ml.Ml.threshold ml.Ml.ratio ml.Ml.match_net_size ml.Ml.merge_duplicates
    ml.Ml.max_levels

let compute t (req : P.request) ~attempt =
  let h = load_netlist req in
  let ml =
    { t.config.ml with
      engine = { t.config.ml.engine with Fm.tolerance = req.P.tolerance } }
  in
  let pool = intra_pool t in
  let fp = Cache.fingerprint h in
  (* Coarsening draws come from a content-keyed stream — never from the
     request seed — so every request for the same netlist wants the same
     hierarchy and a cache hit is bit-identical to the cold rebuild. *)
  let coarsen_rng () =
    Rng.stream (Rng.create t.config.coarsen_seed) (Int64.to_int fp land max_int)
  in
  let hier, cache_flag =
    match Cache.find t.cache (cache_key t ~fp) with
    | Cache.Hit hier -> (hier, `Hit)
    | Cache.Miss | Cache.Corrupt ->
        let hier = Ml.hierarchy ~config:ml ?pool (coarsen_rng ()) h in
        Cache.add t.cache (cache_key t ~fp) hier;
        (hier, `Miss)
  in
  let deadline =
    match req.P.timeout_ms with
    | Some ms -> Some (Deadline.make ~seconds:(float_of_int ms /. 1000.))
    | None ->
        Option.map
          (fun ms -> Deadline.make ~seconds:(float_of_int ms /. 1000.))
          t.config.default_timeout_ms
  in
  (* Pre-split one generator per start so the schedule matches run_starts:
     deadline expiry trims whole starts off the end, never reorders. *)
  let rng = Rng.create req.P.seed in
  let rngs = Array.init req.P.starts (fun _ -> Rng.split rng) in
  let arena = Fm.create_arena ~h () in
  let best = ref None in
  let completed = ref 0 in
  (try
     for i = 0 to req.P.starts - 1 do
       if
         !completed > 0
         && (match deadline with Some d -> Deadline.check d | None -> false)
       then raise Stdlib.Exit;
       let r = Ml.run_hierarchy ~config:ml ?pool ~arena rngs.(i) h hier in
       incr completed;
       match !best with
       | Some b when b.Ml.cut <= r.Ml.cut -> ()
       | _ -> best := Some r
     done
   with Stdlib.Exit -> ());
  let r = Option.get !best in
  let timed_out = !completed < req.P.starts in
  let diags =
    if timed_out then
      [
        Diag.warning
          ~source:(if req.P.id = "" then "request" else "request " ^ req.P.id)
          Diag.Timeout
          "deadline exceeded after %d of %d start(s); best-so-far returned"
          !completed req.P.starts;
      ]
    else []
  in
  P.make_response ~cut:r.Ml.cut
    ?side:(if req.P.return_side then Some r.Ml.side else None)
    ~cache:cache_flag ~attempts:(attempt + 1) ~diags ~id:req.P.id
    (if timed_out then P.Degraded else P.Done)

(* Decorrelated-jitter backoff, deterministic per (request, attempt): the
   sleep for attempt n replays the same jittered growth sequence. *)
let backoff_ms t ~index ~attempt =
  let base = Stdlib.max 1 t.config.retry_base_ms in
  let cap = Stdlib.max base t.config.retry_cap_ms in
  let rng =
    Rng.stream
      (Rng.create (t.config.faults.Faults.seed lxor 0x5bd1e995))
      ((index * Faults.max_attempts) + attempt)
  in
  let rec grow n prev =
    if n <= 0 then prev
    else grow (n - 1) (Stdlib.min cap (base + Rng.int rng (Stdlib.max 1 (3 * prev))))
  in
  grow attempt base

let fail_response (req : P.request) ~attempt ds =
  P.make_response ~attempts:(attempt + 1) ~diags:ds ~id:req.P.id P.Failed

(* Crash isolation: whatever happens inside an attempt — injected faults,
   library diagnostics, unexpected exceptions — is converted to a typed
   response here.  Nothing escapes into the worker loop, so one hostile
   job can never poison the pool. *)
let execute t job =
  let req = job.request in
  let started = now_ms () in
  Metrics.observe h_wait (int_of_float (started -. job.enqueued_at));
  let source =
    if req.P.id = "" then "request" else "request " ^ req.P.id
  in
  let rec attempt_loop attempt =
    let fault = Faults.decide t.config.faults ~request:job.index ~attempt in
    match
      (match fault with
      | Some (Faults.Crash transient) ->
          Metrics.incr m_fault_crash;
          raise (Faults.Injected { transient })
      | Some (Faults.Slow ms) ->
          Metrics.incr m_fault_slow;
          Unix.sleepf (float_of_int ms /. 1000.);
          compute t req ~attempt
      | Some Faults.Disconnect | Some Faults.Garble_parse | None ->
          compute t req ~attempt)
    with
    | resp ->
        if fault = Some Faults.Disconnect then begin
          Metrics.incr m_fault_disconnect;
          { resp with P.drop = true }
        end
        else resp
    | exception Faults.Injected { transient } ->
        if transient && attempt < t.config.max_retries then begin
          Metrics.incr m_retries;
          Unix.sleepf (float_of_int (backoff_ms t ~index:job.index ~attempt) /. 1000.);
          attempt_loop (attempt + 1)
        end
        else
          fail_response req ~attempt
            [
              Diag.error ~source Diag.Invariant
                "injected worker crash (%s) on attempt %d"
                (if transient then "transient" else "permanent")
                (attempt + 1);
            ]
    | exception Diag.Mlpart_error ds -> fail_response req ~attempt ds
    | exception exn ->
        fail_response req ~attempt
          [
            Diag.error ~source Diag.Invariant "worker exception: %s"
              (Printexc.to_string exn);
          ]
  in
  let t0 = Trace.start () in
  let resp = attempt_loop 0 in
  let elapsed = int_of_float (now_ms () -. started) in
  Metrics.observe h_elapsed elapsed;
  if Trace.enabled () then
    Trace.complete ~cat:"serve"
      ~args:
        [
          ("index", Trace.Int job.index);
          ("status", Trace.Str (P.status_name resp.P.status));
          ("attempts", Trace.Int resp.P.attempts);
          ( "cache",
            Trace.Str
              (match resp.P.cache with
              | `Hit -> "hit"
              | `Miss -> "miss"
              | `None -> "none") );
        ]
      "serve/request" t0;
  { resp with P.elapsed_ms = elapsed }

let finish t job resp =
  (match resp.P.status with
  | P.Done -> Metrics.incr m_completed
  | P.Degraded ->
      Metrics.incr m_completed;
      Metrics.incr m_degraded
  | P.Failed -> Metrics.incr m_failed
  | P.Rejected -> Metrics.incr m_rejected);
  Mutex.lock t.m;
  t.in_flight <- t.in_flight - 1;
  decr_client t job.request.P.client;
  if Queue.is_empty t.queue && t.in_flight = 0 then Condition.broadcast t.idle;
  Mutex.unlock t.m;
  resolve job.ticket resp

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.nonempty t.m
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.m
  else begin
    let job = Queue.pop t.queue in
    t.in_flight <- t.in_flight + 1;
    Metrics.set_gauge g_depth (float_of_int (Queue.length t.queue));
    Mutex.unlock t.m;
    let resp = execute t job in
    finish t job resp;
    worker_loop t
  end

let create ?(config = default) () =
  Metrics.enable ();
  let t =
    {
      config;
      cache = Cache.create ~capacity:config.cache_capacity;
      m = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      clients = Hashtbl.create 16;
      in_flight = 0;
      next_index = 0;
      accepting = true;
      stop = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (Stdlib.max 1 config.workers) (fun _ ->
        Domain.spawn (fun () -> worker_loop t));
  t

let stats_json t =
  Mutex.lock t.m;
  let depth = Queue.length t.queue in
  let in_flight = t.in_flight in
  let accepting = t.accepting in
  Mutex.unlock t.m;
  Json.Obj
    [
      ("accepting", Json.Bool accepting);
      ("queue_depth", Json.Int depth);
      ("in_flight", Json.Int in_flight);
      ("cache_entries", Json.Int (Cache.length t.cache));
      ("cache_capacity", Json.Int (Cache.capacity t.cache));
      ("metrics", Metrics.to_json ());
    ]

let reject ~(req : P.request) ~counter ~retry_after_ms msg =
  Metrics.incr m_rejected;
  Metrics.incr counter;
  let source =
    if req.P.id = "" then "request" else "request " ^ req.P.id
  in
  Reply
    (P.make_response ~retry_after_ms
       ~diags:[ Diag.error ~source Diag.Queue_full "%s" msg ]
       ~id:req.P.id P.Rejected)

let submit_line t line =
  Metrics.incr m_received;
  Mutex.lock t.m;
  let index = t.next_index in
  t.next_index <- index + 1;
  Mutex.unlock t.m;
  let line =
    match Faults.decide t.config.faults ~request:index ~attempt:0 with
    | Some Faults.Garble_parse ->
        Metrics.incr m_fault_parse;
        String.sub line 0 (String.length line / 2)
    | _ -> line
  in
  match P.query_of_line line with
  | Error ds ->
      Metrics.incr m_failed;
      Reply (P.make_response ~diags:ds ~id:"" P.Failed)
  | Ok (P.Ping id) ->
      Metrics.incr m_completed;
      Reply (P.make_response ~id P.Done)
  | Ok (P.Stats id) ->
      Metrics.incr m_completed;
      Reply (P.make_response ~id ~stats:(stats_json t) P.Done)
  | Ok (P.Partition req) ->
      Mutex.lock t.m;
      if not t.accepting then begin
        Mutex.unlock t.m;
        reject ~req ~counter:m_rej_drain ~retry_after_ms:100
          "server is draining; resubmit to the next instance"
      end
      else begin
        let depth = Queue.length t.queue in
        if depth >= t.config.queue_capacity then begin
          let busy = depth + t.in_flight in
          Mutex.unlock t.m;
          reject ~req ~counter:m_rej_queue
            ~retry_after_ms:(Stdlib.max 10 (10 * busy))
            (Printf.sprintf "queue full (%d pending)" depth)
        end
        else if client_count t req.P.client >= t.config.client_inflight then begin
          Mutex.unlock t.m;
          reject ~req ~counter:m_rej_client ~retry_after_ms:20
            (Printf.sprintf "client %S already has %d job(s) in flight"
               req.P.client t.config.client_inflight)
        end
        else begin
          incr_client t req.P.client;
          let ticket =
            { tm = Mutex.create (); tc = Condition.create (); reply = None }
          in
          Queue.push
            { index; request = req; enqueued_at = now_ms (); ticket }
            t.queue;
          Metrics.set_gauge g_depth (float_of_int (Queue.length t.queue));
          Condition.signal t.nonempty;
          Mutex.unlock t.m;
          Queued ticket
        end
      end

let drain t =
  Mutex.lock t.m;
  t.accepting <- false;
  while not (Queue.is_empty t.queue && t.in_flight = 0) do
    Condition.wait t.idle t.m
  done;
  t.stop <- true;
  Condition.broadcast t.nonempty;
  let domains = t.domains in
  t.domains <- [];
  Mutex.unlock t.m;
  List.iter Domain.join domains;
  (* drain-then-exit ordering: the shared intra-job pool joins here, while
     provably idle, not in a racing at_exit hook *)
  Pool.drain_shared ()
