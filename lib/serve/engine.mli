(** The serve-mode execution engine: a bounded work queue in front of
    worker domains, with admission control, per-job deadline budgets,
    crash isolation with retry, deterministic fault injection and the
    content-addressed hierarchy cache.

    The engine is transport-agnostic — it consumes raw request lines and
    produces {!Protocol.response} values — so the soak and admission tests
    drive it in-process while {!Server} puts it behind a socket.

    {b Request ledger.}  Every line handed to {!submit_line} increments
    [serve.requests.received] and reaches exactly one terminal counter:
    [serve.requests.completed] (ok and degraded answers, pings, stats),
    [serve.requests.rejected] (admission shed it), or
    [serve.requests.failed] (parse failure or a worker failure after
    retries).  The fault-injection soak asserts this balance exactly.

    {b Determinism.}  A response's partition is a pure function of the
    request (netlist, seed, starts, tolerance) and the engine's coarsening
    configuration: hierarchies are coarsened with a generator derived from
    the netlist fingerprint and [coarsen_seed] — never from the request
    seed — so a cache hit is bit-identical to the cold run that would have
    rebuilt it.  Deadline expiry only trims whole starts off the end of
    the schedule (at least one always completes). *)

type config = {
  workers : int;  (** worker domains executing jobs (>= 1) *)
  jobs : int;
      (** intra-job {!Mlpart_util.Pool} parallelism; honoured only with a
          single worker (the pool is not reentrant across workers) *)
  queue_capacity : int;  (** pending jobs beyond this are shed *)
  client_inflight : int;  (** max queued+running jobs per client id *)
  cache_capacity : int;  (** resident hierarchies (LRU beyond this) *)
  coarsen_seed : int;  (** seed of the content-keyed coarsening streams *)
  max_retries : int;  (** retries for transient worker crashes *)
  retry_base_ms : int;  (** decorrelated-jitter backoff base *)
  retry_cap_ms : int;  (** backoff cap *)
  default_timeout_ms : int option;  (** deadline for requests without one *)
  faults : Faults.config;  (** injection profile; {!Faults.none} in prod *)
  ml : Mlpart_multilevel.Ml.config;
      (** base multilevel configuration; per-request tolerance overrides
          its engine tolerance *)
}

val default : config
(** 1 worker, queue 64, 16 in-flight per client, cache 32, 2 retries,
    no default deadline, no faults, MLc. *)

type t

val create : ?config:config -> unit -> t
(** Spawn the worker domains and enable metrics recording. *)

val config : t -> config

type ticket
(** A pending answer; resolve with {!wait}. *)

type outcome =
  | Queued of ticket  (** admitted; the answer arrives asynchronously *)
  | Reply of Protocol.response
      (** answered inline: control queries, parse failures, rejections *)

val submit_line : t -> string -> outcome
(** Decode and admit one request line.  Never raises; hostile bytes cost
    a [failed] reply.  When fault injection is active, the line may be
    deterministically garbled first (parse-fault class). *)

val wait : ticket -> Protocol.response
(** Block until the job completes.  Thread-safe. *)

val drain : t -> unit
(** Drain-then-exit: stop admitting ([rejected] with a [queue-full]
    retry-after diagnostic), wait until the queue and all in-flight jobs
    finish, join the worker domains, then join the shared intra-job pool
    via {!Mlpart_util.Pool.drain_shared} — in that order, so a SIGTERM
    during an in-flight job can never leak a domain.  Idempotent. *)

val stats_json : t -> Mlpart_obs.Json.t
(** Live [/stats] payload: queue depth, in-flight count, accepting flag,
    cache occupancy, and the full metrics registry export. *)
