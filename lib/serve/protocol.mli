(** Serve-mode wire protocol: newline-delimited JSON over
    {!Mlpart_obs.Json}.

    One request per line, one response per line, in order.  Malformed
    lines decode to typed {!Mlpart_util.Diag.t} diagnostics (never an
    exception), so hostile bytes cost the sender a [failed] response and
    nothing else.

    Request object (partition, the default op):
    {v
    {"op":"partition", "id":"r1", "client":"alice",
     "bench":"balu",              // or "hgr":"<inline text>" or "path":"f.hgr"
     "seed":7, "starts":4, "tolerance":0.1, "k":2,
     "timeout_ms":200, "side":false}
    v}
    [{"op":"ping"}] and [{"op":"stats"}] are control queries answered
    without entering the work queue.

    Response object:
    {v
    {"id":"r1", "status":"ok",    // ok | degraded | rejected | failed
     "cut":41, "cache":"hit", "attempts":1, "elapsed_ms":3,
     "retry_after_ms":20,         // rejected only
     "side":[0,1,...],            // when requested
     "diags":[{"severity":"warning","code":"timeout","source":"...",
               "line":0,"message":"..."}],
     "stats":{...}}               // stats op only
    v} *)

type netlist_src =
  | Inline of string  (** [.hgr] text carried in the request *)
  | Bench of string  (** Table I stand-in, instantiated at a fixed seed *)
  | Path of string  (** server-side file path *)

type request = {
  id : string;
  client : string;  (** admission-control identity; default ["anon"] *)
  src : netlist_src;
  seed : int;  (** refinement seed; the coarsening stream is content-keyed *)
  starts : int;  (** independent multilevel starts, best kept *)
  tolerance : float;  (** balance tolerance r *)
  timeout_ms : int option;  (** per-job deadline budget *)
  return_side : bool;  (** include the side assignment in the response *)
}

type query =
  | Partition of request
  | Ping of string  (** carries the request id *)
  | Stats of string  (** carries the request id *)

type status = Done | Degraded | Rejected | Failed

type response = {
  rid : string;
  status : status;
  cut : int option;
  side : int array option;
  cache : [ `Hit | `Miss | `None ];
  retry_after_ms : int option;
  attempts : int;  (** 1 + worker retries *)
  elapsed_ms : int;
  diags : Mlpart_util.Diag.t list;
  stats : Mlpart_obs.Json.t option;  (** stats-query payload *)
  drop : bool;
      (** in-process fault-injection marker: compute, then sever the
          connection instead of delivering.  Never serialized. *)
}

val query_of_line : string -> (query, Mlpart_util.Diag.t list) result
(** Decode one request line.  Every defect is reported ([bad-header] for
    non-JSON, [bad-token] for type/domain errors), not just the first. *)

val request_to_line : request -> string
(** Compact one-line encoding (the client side). *)

val make_response :
  ?cut:int ->
  ?side:int array ->
  ?cache:[ `Hit | `Miss | `None ] ->
  ?retry_after_ms:int ->
  ?attempts:int ->
  ?elapsed_ms:int ->
  ?diags:Mlpart_util.Diag.t list ->
  ?stats:Mlpart_obs.Json.t ->
  ?drop:bool ->
  id:string ->
  status ->
  response

val response_to_line : response -> string

val response_of_line : string -> (response, string) result
(** Client-side decode; diagnostics round-trip through {!code_of_name}. *)

val status_name : status -> string
val code_of_name : string -> Mlpart_util.Diag.code option

val exit_code_of_response : response -> int
(** Map a response onto the CLI exit-code taxonomy: [ok] 0, [degraded] 5,
    [rejected] 6, [failed] by {!Mlpart_util.Diag.exit_code} of its
    diagnostics (3 when it carries none). *)
