module H = Mlpart_hypergraph.Hypergraph
module Hier = Mlpart_multilevel.Hierarchy
module Metrics = Mlpart_obs.Metrics
module Diag = Mlpart_util.Diag

let m_hits = Metrics.counter "serve.cache.hits"
let m_misses = Metrics.counter "serve.cache.misses"
let m_evictions = Metrics.counter "serve.cache.evictions"
let m_corrupt = Metrics.counter "serve.cache.corrupt"

(* FNV-1a 64-bit, folded over ints. *)
let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L

let mix h x = Int64.mul (Int64.logxor h (Int64.of_int x)) fnv_prime

let mix_array h a = Array.fold_left mix (mix h (Array.length a)) a

let fingerprint h =
  let acc = mix (mix fnv_basis (H.num_modules h)) (H.num_nets h) in
  let acc = mix_array acc (H.areas_store h) in
  let acc = mix_array acc (H.net_offsets_store h) in
  let acc = mix_array acc (H.net_pins_store h) in
  mix_array acc (H.net_weights_store h)

let checksum (hier : Hier.t) =
  let mix_fixed acc = function
    | None -> mix acc (-1)
    | Some fixed -> mix_array acc fixed
  in
  let acc =
    List.fold_left
      (fun acc { Hier.netlist; cluster_of; fixed } ->
        mix_fixed (mix_array (mix acc (Int64.to_int (fingerprint netlist))) cluster_of) fixed)
      (mix fnv_basis (List.length hier.Hier.levels))
      hier.Hier.levels
  in
  mix_fixed
    (mix acc (Int64.to_int (fingerprint hier.Hier.coarsest)))
    hier.Hier.coarsest_fixed

type entry = { hier : Hier.t; sum : int64; mutable stamp : int }

type t = {
  cap : int;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
  m : Mutex.t;
}

let create ~capacity =
  {
    cap = Stdlib.max 1 capacity;
    tbl = Hashtbl.create 16;
    tick = 0;
    m = Mutex.create ();
  }

let length t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.m;
  n

let capacity t = t.cap

type lookup = Hit of Hier.t | Miss | Corrupt

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None ->
          Metrics.incr m_misses;
          Miss
      | Some e ->
          if checksum e.hier = e.sum then begin
            t.tick <- t.tick + 1;
            e.stamp <- t.tick;
            Metrics.incr m_hits;
            Hit e.hier
          end
          else begin
            (* never serve a corrupted entry: drop it and make the caller
               rebuild — a miss plus a corruption count *)
            Hashtbl.remove t.tbl key;
            Metrics.incr m_corrupt;
            Metrics.record_diag
              (Diag.warning ~source:"serve.cache" Diag.Cache_evicted
                 "checksum mismatch on %s; entry dropped and recomputed" key);
            Corrupt
          end)

let add t key hier =
  locked t (fun () ->
      if not (Hashtbl.mem t.tbl key) && Hashtbl.length t.tbl >= t.cap then begin
        (* evict the least recently used entry; capacities are small, so a
           linear scan beats maintaining an intrusive list *)
        let victim = ref None in
        Hashtbl.iter
          (fun k e ->
            match !victim with
            | Some (_, s) when s <= e.stamp -> ()
            | _ -> victim := Some (k, e.stamp))
          t.tbl;
        match !victim with
        | Some (k, _) ->
            Hashtbl.remove t.tbl k;
            Metrics.incr m_evictions;
            Metrics.record_diag
              (Diag.warning ~source:"serve.cache" Diag.Cache_evicted
                 "capacity %d reached; evicted %s" t.cap k)
        | None -> ()
      end;
      t.tick <- t.tick + 1;
      Hashtbl.replace t.tbl key { hier; sum = checksum hier; stamp = t.tick })
