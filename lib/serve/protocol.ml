module Json = Mlpart_obs.Json
module Diag = Mlpart_util.Diag

type netlist_src = Inline of string | Bench of string | Path of string

type request = {
  id : string;
  client : string;
  src : netlist_src;
  seed : int;
  starts : int;
  tolerance : float;
  timeout_ms : int option;
  return_side : bool;
}

type query = Partition of request | Ping of string | Stats of string

type status = Done | Degraded | Rejected | Failed

type response = {
  rid : string;
  status : status;
  cut : int option;
  side : int array option;
  cache : [ `Hit | `Miss | `None ];
  retry_after_ms : int option;
  attempts : int;
  elapsed_ms : int;
  diags : Diag.t list;
  stats : Json.t option;
  drop : bool;
}

let status_name = function
  | Done -> "ok"
  | Degraded -> "degraded"
  | Rejected -> "rejected"
  | Failed -> "failed"

let status_of_name = function
  | "ok" -> Some Done
  | "degraded" -> Some Degraded
  | "rejected" -> Some Rejected
  | "failed" -> Some Failed
  | _ -> None

(* Closed over the whole Diag enum so client-side decoding keeps working
   when codes are added: build the reverse map from [code_name] itself. *)
let all_codes =
  [
    Diag.Bad_header; Diag.Bad_token; Diag.Truncated; Diag.Count_mismatch;
    Diag.Pin_out_of_range; Diag.Duplicate_pin; Diag.Singleton_net;
    Diag.Empty_net; Diag.Bad_module_name; Diag.Pad_offset; Diag.Bad_area;
    Diag.Bad_weight; Diag.Bad_part; Diag.Invariant; Diag.Timeout;
    Diag.Usage; Diag.Io_error; Diag.Queue_full; Diag.Cache_evicted;
  ]

let code_of_name n = List.find_opt (fun c -> Diag.code_name c = n) all_codes

(* ---- request decoding ---- *)

let query_of_line line =
  match Json.of_string line with
  | Error msg -> Error [ Diag.error ~source:"request" Diag.Bad_header "%s" msg ]
  | Ok j -> (
      let id = Option.value (Json.str_member "id" j) ~default:"" in
      let source = if id = "" then "request" else "request " ^ id in
      match Option.value (Json.str_member "op" j) ~default:"partition" with
      | "ping" -> Ok (Ping id)
      | "stats" -> Ok (Stats id)
      | "partition" ->
          let problems = ref [] in
          let bad fmt =
            Printf.ksprintf
              (fun m ->
                problems := Diag.error ~source Diag.Bad_token "%s" m :: !problems)
              fmt
          in
          let src =
            match
              ( Json.str_member "hgr" j,
                Json.str_member "bench" j,
                Json.str_member "path" j )
            with
            | Some s, None, None -> Inline s
            | None, Some b, None -> Bench b
            | None, None, Some p -> Path p
            | None, None, None ->
                bad "one of \"hgr\", \"bench\", \"path\" is required";
                Inline ""
            | _ ->
                bad "at most one of \"hgr\", \"bench\", \"path\" allowed";
                Inline ""
          in
          let seed = Option.value (Json.int_member "seed" j) ~default:1 in
          let starts = Option.value (Json.int_member "starts" j) ~default:1 in
          if starts < 1 then bad "\"starts\" must be >= 1 (got %d)" starts;
          let k = Option.value (Json.int_member "k" j) ~default:2 in
          if k <> 2 then bad "only k=2 is supported (got %d)" k;
          let tolerance =
            Option.value (Json.float_member "tolerance" j) ~default:0.1
          in
          if not (tolerance > 0.) then
            bad "\"tolerance\" must be positive (got %g)" tolerance;
          let timeout_ms = Json.int_member "timeout_ms" j in
          (match timeout_ms with
          | Some t when t <= 0 -> bad "\"timeout_ms\" must be positive (got %d)" t
          | Some _ | None -> ());
          let return_side =
            Option.value (Json.bool_member "side" j) ~default:false
          in
          let client =
            Option.value (Json.str_member "client" j) ~default:"anon"
          in
          if !problems <> [] then Error (List.rev !problems)
          else
            Ok
              (Partition
                 {
                   id; client; src; seed; starts; tolerance; timeout_ms;
                   return_side;
                 })
      | op -> Error [ Diag.error ~source Diag.Bad_token "unknown op %S" op ])

(* ---- encoding ---- *)

let request_to_line r =
  let src_field =
    match r.src with
    | Inline s -> ("hgr", Json.Str s)
    | Bench b -> ("bench", Json.Str b)
    | Path p -> ("path", Json.Str p)
  in
  let fields =
    [
      ("op", Json.Str "partition");
      ("id", Json.Str r.id);
      ("client", Json.Str r.client);
      src_field;
      ("seed", Json.Int r.seed);
      ("starts", Json.Int r.starts);
      ("tolerance", Json.Float r.tolerance);
    ]
    @ (match r.timeout_ms with
      | Some t -> [ ("timeout_ms", Json.Int t) ]
      | None -> [])
    @ if r.return_side then [ ("side", Json.Bool true) ] else []
  in
  Json.to_string ~indent:false (Json.Obj fields)

let diag_to_json (d : Diag.t) =
  Json.Obj
    [
      ("severity",
       Json.Str (match d.Diag.severity with Warning -> "warning" | Error -> "error"));
      ("code", Json.Str (Diag.code_name d.Diag.code));
      ("source", Json.Str d.Diag.source);
      ("line", Json.Int d.Diag.line);
      ("message", Json.Str d.Diag.message);
    ]

let diag_of_json j =
  let str k = Option.value (Json.str_member k j) ~default:"" in
  let severity =
    if str "severity" = "warning" then Diag.Warning else Diag.Error
  in
  let code = Option.value (code_of_name (str "code")) ~default:Diag.Io_error in
  Diag.make
    ~line:(Option.value (Json.int_member "line" j) ~default:0)
    ~severity ~source:(str "source") code "%s" (str "message")

let make_response ?cut ?side ?(cache = `None) ?retry_after_ms ?(attempts = 1)
    ?(elapsed_ms = 0) ?(diags = []) ?stats ?(drop = false) ~id status =
  {
    rid = id; status; cut; side; cache; retry_after_ms; attempts; elapsed_ms;
    diags; stats; drop;
  }

let response_to_line r =
  let opt name f = function Some v -> [ (name, f v) ] | None -> [] in
  let fields =
    [ ("id", Json.Str r.rid); ("status", Json.Str (status_name r.status)) ]
    @ opt "cut" (fun c -> Json.Int c) r.cut
    @ (match r.cache with
      | `None -> []
      | `Hit -> [ ("cache", Json.Str "hit") ]
      | `Miss -> [ ("cache", Json.Str "miss") ])
    @ opt "retry_after_ms" (fun t -> Json.Int t) r.retry_after_ms
    @ [ ("attempts", Json.Int r.attempts); ("elapsed_ms", Json.Int r.elapsed_ms) ]
    @ opt "side"
        (fun side -> Json.List (Array.to_list (Array.map (fun s -> Json.Int s) side)))
        r.side
    @ (if r.diags = [] then []
       else [ ("diags", Json.List (List.map diag_to_json r.diags)) ])
    @ opt "stats" Fun.id r.stats
  in
  Json.to_string ~indent:false (Json.Obj fields)

let response_of_line line =
  match Json.of_string line with
  | Error msg -> Error msg
  | Ok j -> (
      match Option.bind (Json.str_member "status" j) status_of_name with
      | None -> Error "response without a valid \"status\""
      | Some status ->
          let side =
            Option.map
              (fun l ->
                Array.of_list
                  (List.map (function Json.Int i -> i | _ -> -1) l))
              (Json.list_member "side" j)
          in
          let diags =
            match Json.list_member "diags" j with
            | None -> []
            | Some l -> List.map diag_of_json l
          in
          Ok
            {
              rid = Option.value (Json.str_member "id" j) ~default:"";
              status;
              cut = Json.int_member "cut" j;
              side;
              cache =
                (match Json.str_member "cache" j with
                | Some "hit" -> `Hit
                | Some "miss" -> `Miss
                | Some _ | None -> `None);
              retry_after_ms = Json.int_member "retry_after_ms" j;
              attempts = Option.value (Json.int_member "attempts" j) ~default:1;
              elapsed_ms =
                Option.value (Json.int_member "elapsed_ms" j) ~default:0;
              diags;
              stats = Json.member "stats" j;
              drop = false;
            })

let exit_code_of_response r =
  match r.status with
  | Done -> 0
  | Degraded -> 5
  | Rejected -> 6
  | Failed -> ( match r.diags with [] -> 3 | ds -> Diag.exit_code ds)
