(* mlpart — command-line multilevel circuit partitioner.

   Subcommands:
     bipartition  2-way partition a .hgr file or generated benchmark
     quadrisect   4-way partition (multilevel or GORDIAN-style analytic)
     place        top-down global placement by recursive quadrisection
     generate     emit a synthetic benchmark in .hgr format
     evaluate     score a saved part assignment against a netlist
     info         print hypergraph statistics
     selfcheck    run the property-based verification suite
     serve        fault-tolerant partitioning daemon (NDJSON over a socket)
     client       submit one request to a running daemon

   Every subcommand runs inside an error boundary: library failures
   surface as one structured diagnostic line per issue on stderr and a
   documented exit code — 2 usage, 3 parse/I-O error, 4 invariant
   violation, 5 timeout, 6 admission rejection — never an OCaml
   backtrace. *)

module H = Mlpart_hypergraph.Hypergraph
module Hgr_io = Mlpart_hypergraph.Hgr_io
module Netd_io = Mlpart_hypergraph.Netd_io
module Rng = Mlpart_util.Rng
module Pool = Mlpart_util.Pool
module Diag = Mlpart_util.Diag
module Deadline = Mlpart_util.Deadline
module Fm = Mlpart_partition.Fm
module Ml = Mlpart_multilevel.Ml
module Trace = Mlpart_obs.Trace
module Metrics = Mlpart_obs.Metrics
module Json = Mlpart_obs.Json
module Protocol = Mlpart_serve.Protocol
module Engine = Mlpart_serve.Engine
module Server = Mlpart_serve.Server
module Faults = Mlpart_serve.Faults
open Cmdliner

let print_diag d =
  (* every printed diagnostic also counts as diag.<severity>.<code> in the
     --metrics export *)
  Metrics.record_diag d;
  Printf.eprintf "%s\n" (Diag.to_string d)

(* The error boundary wrapped around every subcommand body.  [Cmd.eval]
   only sees exit 0; failures leave through [exit] after printing
   structured diagnostics. *)
let boundary f =
  try f () with
  | Diag.Mlpart_error diags ->
      List.iter print_diag diags;
      exit (Diag.exit_code diags)
  | Sys_error msg ->
      print_diag (Diag.error ~source:"" Diag.Io_error "%s" msg);
      exit 3
  | Invalid_argument msg ->
      print_diag (Diag.error ~source:"" Diag.Invariant "%s" msg);
      exit 4

let usage_fail fmt =
  Printf.ksprintf
    (fun message ->
      print_diag (Diag.error ~source:"" Diag.Usage "%s" message);
      exit 2)
    fmt

(* Timeout exit path: the caller has already printed/saved a valid
   best-so-far result; flag it and exit 5. *)
let finish_timed_out deadline what =
  match deadline with
  | Some dl when Deadline.expired dl ->
      print_diag (Diag.warning ~source:"" Diag.Timeout "%s" what);
      exit 5
  | Some _ | None -> ()

(* Input is either a .hgr path or "bench:<circuit>" for a generated Table I
   stand-in.  Lenient parses print their warnings to stderr as they are
   found; strict parses fail through the boundary. *)
let load_hypergraph ?(lenient = false) input seed =
  let mode = if lenient then Hgr_io.Lenient else Hgr_io.Strict in
  let of_result = function
    | Ok { Hgr_io.hypergraph; warnings } ->
        List.iter print_diag warnings;
        hypergraph
    | Error diags -> raise (Diag.Mlpart_error diags)
  in
  match String.index_opt input ':' with
  | Some i when String.sub input 0 i = "bench" ->
      let name = String.sub input (i + 1) (String.length input - i - 1) in
      (match Mlpart_gen.Suite.find name with
      | spec -> Mlpart_gen.Suite.instantiate ~seed spec
      | exception Not_found ->
          usage_fail "unknown benchmark %S; known: %s" name
            (String.concat ", "
               (List.map
                  (fun s -> s.Mlpart_gen.Suite.circuit)
                  Mlpart_gen.Suite.all)))
  | Some _ | None ->
      if Filename.check_suffix input ".net" || Filename.check_suffix input ".netD"
      then begin
        (* pick up a sibling .are file when present *)
        let are = Filename.remove_extension input ^ ".are" in
        let are_path = if Sys.file_exists are then Some are else None in
        match Netd_io.parse_files ?are_path ~mode input with
        | Ok { Netd_io.hypergraph; warnings } ->
            List.iter print_diag warnings;
            hypergraph
        | Error diags -> raise (Diag.Mlpart_error diags)
      end
      else of_result (Hgr_io.parse_file ~mode input)

let input_arg =
  let doc = "Input netlist: a .hgr file, an ACM/SIGDA .net/.netD file (a \
             sibling .are is picked up automatically), or bench:NAME for a \
             generated stand-in of a Table I circuit (e.g. bench:primary1)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"INPUT" ~doc)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let runs_arg =
  Arg.(value & opt int 1 & info [ "runs" ] ~docv:"N" ~doc:"Independent runs; the best result is reported.")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Domains used for parallelism.  With --runs > 1, \
                 independent runs fan out across domains; with a single \
                 run, the ML pipeline itself parallelizes (match rating, \
                 coarse CSR construction, round-based refinement sweeps) \
                 using synchronous rounds with deterministic commit \
                 ordering.  Either way the reported cut and assignment are \
                 bit-identical for any job count.")

let lenient_arg =
  Arg.(value & flag
       & info [ "lenient" ]
           ~doc:"Recover from degenerate input (duplicate or out-of-range \
                 pins, single-pin nets, short weight sections, truncation) \
                 instead of failing: each repair is reported as a \
                 warning[...] line on stderr and the repaired netlist is \
                 used.")

let timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "timeout" ] ~docv:"SEC"
           ~doc:"Cooperative wall-clock budget.  Checked between \
                 independent runs (and inside placement, between regions); \
                 on expiry the best result found so far is still printed \
                 and saved, flagged with a warning[timeout] line, and the \
                 exit code is 5.")

let deadline_of = Option.map (fun seconds -> Deadline.make ~seconds)

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a span timeline of the run and write it to $(docv) \
                 as Chrome trace-event JSON on exit (open in \
                 chrome://tracing or Perfetto).")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Collect pipeline counters and histograms and write them to \
                 $(docv) as JSON on exit.")

(* Exports run from [at_exit], so the files are written on every exit
   path — success, error boundaries, and the --timeout exit-5 shortcut. *)
let obs_setup trace metrics =
  (match trace with
  | None -> ()
  | Some path ->
      Trace.enable ();
      at_exit (fun () -> Trace.export_to_file path));
  match metrics with
  | None -> ()
  | Some path ->
      Metrics.enable ();
      at_exit (fun () -> Metrics.export_to_file path)

(* Run [one] over [runs] pre-split generator streams — across a domain pool
   when [jobs > 1] — and keep the best result by [cut_of], ties to the
   lowest run index.  A deadline is polled between sequential runs or
   between pool waves; the completed prefix is a deterministic prefix of
   the untimed schedule, and at least one run always completes. *)
let best_over_runs ?deadline ~runs ~jobs rng one cut_of =
  let runs = Stdlib.max 1 runs in
  let rngs = Array.init runs (fun _ -> Rng.split rng) in
  let results =
    match deadline with
    | None ->
        if jobs <= 1 || runs = 1 then Array.map one rngs
        else
          Pool.with_pool ~jobs:(Stdlib.min jobs runs) (fun pool ->
              Pool.map pool one rngs)
    | Some dl ->
        let wave = if runs = 1 then 1 else Stdlib.max 1 (Stdlib.min jobs runs) in
        let with_pool f =
          if wave = 1 then f None
          else Pool.with_pool ~jobs:wave (fun pool -> f (Some pool))
        in
        with_pool (fun pool ->
            let acc = ref [] in
            let completed = ref 0 in
            while
              !completed < runs && (!completed = 0 || not (Deadline.check dl))
            do
              let n = Stdlib.min wave (runs - !completed) in
              let batch = Array.sub rngs !completed n in
              let res =
                match pool with
                | Some pool when n > 1 -> Pool.map pool one batch
                | _ -> Array.map one batch
              in
              acc := res :: !acc;
              completed := !completed + n
            done;
            Array.concat (List.rev !acc))
  in
  let best = ref results.(0) in
  for i = 1 to Array.length results - 1 do
    if cut_of results.(i) < cut_of !best then best := results.(i)
  done;
  (!best, Array.length results)

let ratio_arg =
  Arg.(value & opt float 0.5
       & info [ "r"; "ratio" ] ~docv:"R" ~doc:"Matching ratio in (0,1]; smaller = slower coarsening, more levels.")

let threshold_arg =
  Arg.(value & opt int 35
       & info [ "t"; "threshold" ] ~docv:"T" ~doc:"Coarsening stops below this module count.")

let tolerance_arg =
  Arg.(value & opt float 0.1
       & info [ "tolerance" ] ~docv:"R" ~doc:"Balance tolerance r (paper uses 0.1).")

let engine_arg =
  let parse = function
    | "fm" -> Ok `Fm
    | "clip" -> Ok `Clip
    | "flat-fm" -> Ok `Flat_fm
    | "flat-clip" -> Ok `Flat_clip
    | "eig" -> Ok `Eig
    | "eig-fm" -> Ok `Eig_fm
    | s -> Error (`Msg (Printf.sprintf "unknown engine %S" s))
  in
  let print ppf e =
    Format.pp_print_string ppf
      (match e with
      | `Fm -> "fm"
      | `Clip -> "clip"
      | `Flat_fm -> "flat-fm"
      | `Flat_clip -> "flat-clip"
      | `Eig -> "eig"
      | `Eig_fm -> "eig-fm")
  in
  Arg.(value & opt (conv (parse, print)) `Clip
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Refinement engine: clip (default), fm, flat-fm/flat-clip to \
                 skip the multilevel hierarchy, or eig/eig-fm for spectral \
                 bisection.")

let out_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the part of each module (one integer per line).")

let write_assignment out side =
  match out with
  | None -> ()
  | Some path ->
      Out_channel.with_open_text path (fun oc ->
          Array.iter (fun s -> Printf.fprintf oc "%d\n" s) side)

let bipartition_cmd =
  let run input seed runs jobs ratio threshold tolerance engine out lenient
      timeout trace metrics =
    obs_setup trace metrics;
    boundary @@ fun () ->
    let h = load_hypergraph ~lenient input seed in
    let rng = Rng.create seed in
    let deadline = deadline_of timeout in
    let fm_config base = { base with Fm.tolerance } in
    (* A single run can't fan out across runs, so hand the domains to the
       run itself; the ML pipeline's synchronous rounds keep the result
       identical to --jobs 1. *)
    let intra_pool =
      if runs <= 1 && jobs > 1 then Some (Pool.get ~jobs) else None
    in
    let one rng =
      match engine with
      | `Flat_fm ->
          let r = Fm.run ~config:(fm_config Fm.default) rng h in
          (r.Fm.side, r.Fm.cut)
      | `Flat_clip ->
          let r = Fm.run ~config:(fm_config Fm.clip) rng h in
          (r.Fm.side, r.Fm.cut)
      | `Eig ->
          let r = Mlpart_placement.Spectral.run h in
          (r.Mlpart_placement.Spectral.side, r.Mlpart_placement.Spectral.cut)
      | `Eig_fm ->
          let r =
            Mlpart_placement.Spectral.run
              ~config:Mlpart_placement.Spectral.eig_fm h
          in
          (r.Mlpart_placement.Spectral.side, r.Mlpart_placement.Spectral.cut)
      | `Fm | `Clip ->
          let base = if engine = `Fm then Ml.mlf else Ml.mlc in
          let config =
            { base with Ml.ratio; threshold;
              engine = fm_config base.Ml.engine }
          in
          let r = Ml.run ~config ?pool:intra_pool rng h in
          (r.Ml.side, r.Ml.cut)
    in
    let (side, cut), completed = best_over_runs ?deadline ~runs ~jobs rng one snd in
    let areas = [| 0; 0 |] in
    Array.iteri (fun v s -> areas.(s) <- areas.(s) + H.area h v) side;
    Printf.printf "%s: cut %d  |X|=%d |Y|=%d (areas %d/%d)\n"
      (H.name h) cut
      (Array.fold_left (fun acc s -> acc + (1 - s)) 0 side)
      (Array.fold_left ( + ) 0 side)
      areas.(0) areas.(1);
    write_assignment out side;
    finish_timed_out deadline
      (Printf.sprintf "timed out after %d of %d run(s); best-so-far reported"
         completed (Stdlib.max 1 runs))
  in
  let term =
    Term.(const run $ input_arg $ seed_arg $ runs_arg $ jobs_arg $ ratio_arg
          $ threshold_arg $ tolerance_arg $ engine_arg $ out_arg $ lenient_arg
          $ timeout_arg $ trace_arg $ metrics_arg)
  in
  Cmd.v (Cmd.info "bipartition" ~doc:"Min-cut 2-way partitioning (ML algorithm).") term

let quadrisect_cmd =
  let run input seed runs jobs ratio tolerance gordian out lenient timeout
      trace metrics =
    obs_setup trace metrics;
    boundary @@ fun () ->
    let h = load_hypergraph ~lenient input seed in
    let rng = Rng.create seed in
    let deadline = deadline_of timeout in
    if gordian then begin
      let r = Mlpart_placement.Gordian.run h in
      Printf.printf "%s: GORDIAN 4-way cut %d, hpwl %.3f\n" (H.name h)
        r.Mlpart_placement.Gordian.cut r.Mlpart_placement.Gordian.hpwl;
      write_assignment out r.Mlpart_placement.Gordian.side
    end
    else begin
      let module MLW = Mlpart_multilevel.Ml_multiway in
      let config =
        { MLW.default with
          MLW.ratio;
          engine = { Mlpart_partition.Multiway.default with tolerance } }
      in
      let one rng =
        let r = MLW.run ~config rng h ~k:4 in
        (r.MLW.side, r.MLW.cut)
      in
      let (side, cut), completed =
        best_over_runs ?deadline ~runs ~jobs rng one snd
      in
      Printf.printf "%s: ML 4-way cut %d\n" (H.name h) cut;
      write_assignment out side;
      finish_timed_out deadline
        (Printf.sprintf "timed out after %d of %d run(s); best-so-far reported"
           completed (Stdlib.max 1 runs))
    end
  in
  let gordian_arg =
    Arg.(value & flag
         & info [ "gordian" ]
             ~doc:"Use the GORDIAN-style analytic placement baseline instead \
                   of multilevel partitioning.")
  in
  let term =
    Term.(const run $ input_arg $ seed_arg $ runs_arg $ jobs_arg $ ratio_arg
          $ tolerance_arg $ gordian_arg $ out_arg $ lenient_arg $ timeout_arg
          $ trace_arg $ metrics_arg)
  in
  Cmd.v (Cmd.info "quadrisect" ~doc:"4-way partitioning.") term

let kpartition_cmd =
  let run input seed runs jobs k engine tolerance out lenient timeout trace
      metrics =
    obs_setup trace metrics;
    boundary @@ fun () ->
    if k < 2 then usage_fail "-k must be >= 2 (got %d)" k;
    let h = load_hypergraph ~lenient input seed in
    let rng = Rng.create seed in
    let deadline = deadline_of timeout in
    let name, one =
      match engine with
      | `Nlevel ->
          let module N = Mlpart_multilevel.Nlevel in
          let config = { N.default with N.tolerance } in
          ( "nlevel",
            fun rng ->
              let r = N.run ~config rng h ~k in
              (r.N.side, r.N.cut) )
      | `Rb ->
          if k land (k - 1) <> 0 then
            usage_fail "--engine rb needs a power-of-two k (got %d)" k;
          let module Rb = Mlpart_multilevel.Rb in
          ( "rb",
            fun rng ->
              let r = Rb.run rng h ~k in
              (r.Rb.side, r.Rb.cut) )
      | `Multiway ->
          let module MLW = Mlpart_multilevel.Ml_multiway in
          let config =
            { MLW.default with
              MLW.engine = { Mlpart_partition.Multiway.default with tolerance }
            }
          in
          ( "multiway",
            fun rng ->
              let r = MLW.run ~config rng h ~k in
              (r.MLW.side, r.MLW.cut) )
    in
    let (side, cut), completed = best_over_runs ?deadline ~runs ~jobs rng one snd in
    let part_areas = Array.make k 0 in
    Array.iteri (fun v p -> part_areas.(p) <- part_areas.(p) + H.area h v) side;
    Printf.printf "%s: %s %d-way cut %d (areas %s)\n" (H.name h) name k cut
      (String.concat "/"
         (Array.to_list (Array.map string_of_int part_areas)));
    write_assignment out side;
    finish_timed_out deadline
      (Printf.sprintf "timed out after %d of %d run(s); best-so-far reported"
         completed (Stdlib.max 1 runs))
  in
  let k_arg =
    Arg.(value & opt int 4
         & info [ "k" ] ~docv:"K" ~doc:"Number of parts (>= 2).")
  in
  let kengine_arg =
    let parse = function
      | "nlevel" -> Ok `Nlevel
      | "rb" -> Ok `Rb
      | "multiway" -> Ok `Multiway
      | s -> Error (`Msg (Printf.sprintf "unknown engine %S" s))
    in
    let print ppf e =
      Format.pp_print_string ppf
        (match e with
        | `Nlevel -> "nlevel"
        | `Rb -> "rb"
        | `Multiway -> "multiway")
    in
    Arg.(value & opt (conv (parse, print)) `Nlevel
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"Direct k-way engine: nlevel (default; one-pair-at-a-time \
                   contraction with a persistent gain cache), rb (recursive \
                   bisection, power-of-two k only), or multiway (level-batched \
                   multilevel with Sanchis-style k-way FM).")
  in
  let term =
    Term.(const run $ input_arg $ seed_arg $ runs_arg $ jobs_arg $ k_arg
          $ kengine_arg $ tolerance_arg $ out_arg $ lenient_arg $ timeout_arg
          $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "kpartition"
       ~doc:"Direct k-way partitioning (n-level engine with gain cache, \
             recursive bisection, or level-batched multilevel).")
    term

let place_cmd =
  let run input seed leaf terminal out svg lenient timeout trace metrics =
    obs_setup trace metrics;
    boundary @@ fun () ->
    let h = load_hypergraph ~lenient input seed in
    let module T = Mlpart_placement.Topdown in
    let deadline = deadline_of timeout in
    let terminal_model =
      if terminal then T.Propagate_to_quadrant else T.Ignore_external
    in
    let config = { T.default with T.leaf_size = leaf; terminal_model } in
    let r = T.run ~config ?deadline (Rng.create seed) h in
    Printf.printf "%s: top-down placement hpwl %.3f (%d quadrisection calls)\n"
      (H.name h) r.T.hpwl r.T.regions;
    (match out with
    | None -> ()
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Array.iteri
              (fun v x -> Printf.fprintf oc "%d %.6f %.6f\n" v x r.T.y.(v))
              r.T.x));
    (match svg with
    | None -> ()
    | Some path ->
        let quad = Mlpart_placement.Gordian.quadrants_of_placement h ~x:r.T.x ~y:r.T.y in
        Mlpart_placement.Svg.write ~side:quad path h ~x:r.T.x ~y:r.T.y;
        Printf.printf "wrote %s\n" path);
    finish_timed_out deadline
      (Printf.sprintf
         "timed out after %d quadrisection call(s); remaining regions \
          leaf-spread"
         r.T.regions)
  in
  let leaf_arg =
    Arg.(value & opt int 12
         & info [ "leaf" ] ~docv:"N" ~doc:"Stop recursing below N modules.")
  in
  let terminal_arg =
    Arg.(value & opt bool true
         & info [ "terminal-propagation" ] ~docv:"BOOL"
             ~doc:"Propagate external pins as fixed quadrant terminals.")
  in
  let svg_arg =
    Arg.(value & opt (some string) None
         & info [ "svg" ] ~docv:"FILE" ~doc:"Render the placement as SVG.")
  in
  let term =
    Term.(const run $ input_arg $ seed_arg $ leaf_arg $ terminal_arg $ out_arg
          $ svg_arg $ lenient_arg $ timeout_arg $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "place"
       ~doc:"Top-down global placement by recursive ML quadrisection.")
    term

let generate_cmd =
  let run circuit seed out trace metrics =
    obs_setup trace metrics;
    boundary @@ fun () ->
    let spec =
      match Mlpart_gen.Suite.find circuit with
      | spec -> spec
      | exception Not_found -> usage_fail "unknown benchmark %S" circuit
    in
    let h = Mlpart_gen.Suite.instantiate ~seed spec in
    match out with
    | Some path -> Hgr_io.write_file path h
    | None -> print_string (Hgr_io.to_string h)
  in
  let circuit_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"CIRCUIT" ~doc:"Table I circuit name (e.g. balu).")
  in
  let term =
    Term.(const run $ circuit_arg $ seed_arg $ out_arg $ trace_arg
          $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Emit a synthetic Table I stand-in circuit in .hgr format.")
    term

let evaluate_cmd =
  let run input seed parts_path lenient trace metrics =
    obs_setup trace metrics;
    boundary @@ fun () ->
    let h = load_hypergraph ~lenient input seed in
    let side = Mlpart_partition.Objective.read_assignment parts_path in
    (* malformed assignments are parse errors of the part file, with the
       offending line where one exists *)
    if Array.length side <> H.num_modules h then
      raise
        (Diag.Mlpart_error
           [ Diag.error ~source:parts_path Diag.Bad_part
               "assignment has %d entries, netlist has %d modules"
               (Array.length side) (H.num_modules h) ]);
    Array.iteri
      (fun v p ->
        if p < 0 then
          raise
            (Diag.Mlpart_error
               [ Diag.error ~line:(v + 1) ~source:parts_path Diag.Bad_part
                   "part id %d of module %d is negative" p v ]))
      side;
    let report = Mlpart_partition.Objective.evaluate h side in
    Format.printf "%a@?" Mlpart_partition.Objective.pp report
  in
  let parts_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"PARTS" ~doc:"Assignment file: one part id per line.")
  in
  let term =
    Term.(const run $ input_arg $ seed_arg $ parts_arg $ lenient_arg
          $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Score a saved part assignment (cut, SOED, areas).")
    term

let info_cmd =
  let run input seed lenient check trace metrics =
    obs_setup trace metrics;
    boundary @@ fun () ->
    let h = load_hypergraph ~lenient input seed in
    Format.printf "%a@?" Mlpart_hypergraph.Analysis.pp_report h;
    Printf.printf "total area      %d\n" (H.total_area h);
    Printf.printf "max module area %d\n" (H.max_area h);
    if check then begin
      let _, report = H.repair h in
      Printf.printf "repair: %d net(s) dropped, %d pin(s) deduped, %d \
                     area(s) clamped, %d weight(s) clamped\n"
        report.H.dropped_nets report.H.deduped_pins report.H.clamped_areas
        report.H.clamped_weights;
      match H.validate h with
      | Ok () -> Printf.printf "validate: ok\n"
      | Error diags ->
          List.iter print_diag diags;
          raise
            (Diag.Mlpart_error
               [ Diag.error ~source:(H.name h) Diag.Invariant
                   "%d invariant violation(s)" (List.length diags) ])
    end
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Validate hypergraph invariants and print what a repair \
                   pass would change; exit 4 if any invariant is violated.")
  in
  let term =
    Term.(const run $ input_arg $ seed_arg $ lenient_arg $ check_arg
          $ trace_arg $ metrics_arg)
  in
  Cmd.v (Cmd.info "info" ~doc:"Print hypergraph statistics.") term

let selfcheck_cmd =
  let module Sc = Mlpart_check.Selfcheck in
  let module Prop = Mlpart_check.Property in
  let run seed cases max_size replay failures_path list_props trace metrics =
    obs_setup trace metrics;
    boundary @@ fun () ->
    if list_props then
      List.iter print_endline (Sc.property_names ())
    else begin
      let cases = match cases with Some n -> n | None -> Sc.cases_budget () in
      if cases <= 0 then usage_fail "--cases must be positive";
      if max_size < 0 then usage_fail "--max-size must be non-negative";
      let config = { Sc.seed; cases; max_size } in
      let fail_invariant failures =
        (* counterexamples are invariant violations: exit 4 through the
           boundary, one diagnostic per failing property *)
        raise
          (Diag.Mlpart_error
             (List.map
                (fun f ->
                  Diag.error ~source:f.Prop.property Diag.Invariant
                    "%s on %s — replay with --replay '%s'" f.Prop.message
                    f.Prop.counterexample (Prop.replay_token f))
                failures))
      in
      match replay with
      | Some token -> (
          match Sc.replay config ~token with
          | Error msg -> usage_fail "%s" msg
          | Ok None ->
              Printf.printf "replay %s: passes\n" token
          | Ok (Some f) ->
              Format.printf "%a@." Prop.pp_failure f;
              fail_invariant [ f ])
      | None ->
          let progress r =
            match r.Sc.failure with
            | None ->
                Printf.printf "ok   %-28s %d case(s)%s\n" r.Sc.name r.Sc.cases
                  (if r.Sc.skipped > 0 then
                     Printf.sprintf ", %d skipped" r.Sc.skipped
                   else "")
            | Some f -> Format.printf "%a@." Prop.pp_failure f
          in
          let report = Sc.run ~progress config in
          Printf.printf
            "selfcheck: %d propert%s, %d case(s) passed, %d skipped, %d \
             failure(s) (seed %d)\n"
            (List.length report.Sc.props)
            (if List.length report.Sc.props = 1 then "y" else "ies")
            report.Sc.total_cases report.Sc.total_skipped
            (List.length report.Sc.failures)
            seed;
          (match failures_path with
          | Some path when report.Sc.failures <> [] ->
              Out_channel.with_open_text path (fun oc ->
                  List.iter
                    (fun f -> Printf.fprintf oc "%s\n" (Prop.replay_token f))
                    report.Sc.failures);
              Printf.printf "wrote %d replay token(s) to %s\n"
                (List.length report.Sc.failures)
                path
          | Some _ | None -> ());
          if report.Sc.failures <> [] then fail_invariant report.Sc.failures
    end
  in
  let cases_arg =
    Arg.(value & opt (some int) None
         & info [ "cases" ] ~docv:"N"
             ~doc:"Generated cases per property (default: \
                   $(b,MLPART_SELFCHECK_CASES) or 50).")
  in
  let max_size_arg =
    Arg.(value & opt int 14
         & info [ "max-size" ] ~docv:"N"
             ~doc:"Instance sizes cycle through 0..N.")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"TOKEN"
             ~doc:"Re-run exactly one case from a NAME:SEED:CASE token \
                   printed by a previous failure.")
  in
  let failures_arg =
    Arg.(value & opt (some string) None
         & info [ "failures" ] ~docv:"FILE"
             ~doc:"Write replay tokens of failing properties to $(docv), \
                   one per line (CI uploads this as an artifact).")
  in
  let list_arg =
    Arg.(value & flag
         & info [ "list" ] ~doc:"List property names and exit.")
  in
  let term =
    Term.(const run $ seed_arg $ cases_arg $ max_size_arg $ replay_arg
          $ failures_arg $ list_arg $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "selfcheck"
       ~doc:"Run the property-based verification suite: every engine \
             against an exact brute-force oracle plus metamorphic laws \
             over the pipeline.  Failures print one-line replay tokens \
             and exit 4.")
    term

(* ---- serve mode ---- *)

let socket_arg =
  let doc = "Listen/connect address: a Unix-domain socket path, or \
             tcp:HOST:PORT." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SOCKET" ~doc)

let parse_addr socket =
  match Server.addr_of_string socket with
  | Ok addr -> addr
  | Error msg -> usage_fail "%s" msg

let serve_cmd =
  let run socket workers jobs queue client_inflight cache coarsen_seed
      default_timeout_ms max_requests stats fault_seed fault_rate trace
      metrics =
    obs_setup trace metrics;
    boundary @@ fun () ->
    let addr = parse_addr socket in
    if workers < 1 then usage_fail "--workers must be >= 1";
    if queue < 1 then usage_fail "--queue must be >= 1";
    if fault_rate < 0. || fault_rate > 1. then
      usage_fail "--fault-rate must be in [0,1]";
    let faults =
      if fault_rate > 0. then Faults.uniform ~seed:fault_seed ~rate:fault_rate
      else Faults.none
    in
    let config =
      { Engine.default with
        Engine.workers; jobs; queue_capacity = queue; client_inflight;
        cache_capacity = cache; coarsen_seed; default_timeout_ms; faults }
    in
    let engine = Engine.create ~config () in
    Printf.printf "mlpart serve: listening on %s (workers %d, queue %d)\n%!"
      (Server.addr_to_string addr) workers queue;
    (match Server.run ?max_requests ?stats_path:stats engine addr with
    | () -> ()
    | exception Unix.Unix_error (e, fn, arg) ->
        print_diag
          (Diag.error ~source:socket Diag.Io_error "%s: %s %s"
             (Unix.error_message e) fn arg);
        exit 3);
    Printf.printf "mlpart serve: drained, exiting\n%!"
  in
  let workers_arg =
    Arg.(value & opt int 1
         & info [ "workers" ] ~docv:"N"
             ~doc:"Worker domains executing partition jobs.")
  in
  let queue_arg =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N"
             ~doc:"Work-queue capacity; further requests are rejected with \
                   a queue-full diagnostic and a retry_after_ms hint.")
  in
  let client_inflight_arg =
    Arg.(value & opt int 16
         & info [ "client-inflight" ] ~docv:"N"
             ~doc:"Per-client cap on queued plus running jobs.")
  in
  let cache_arg =
    Arg.(value & opt int 32
         & info [ "cache" ] ~docv:"N"
             ~doc:"Resident coarsening hierarchies (LRU beyond this).")
  in
  let coarsen_seed_arg =
    Arg.(value & opt int 1
         & info [ "coarsen-seed" ] ~docv:"N"
             ~doc:"Seed of the content-keyed coarsening streams; requests \
                   only seed refinement, which is what makes cached \
                   hierarchies bit-identical to cold runs.")
  in
  let default_timeout_arg =
    Arg.(value & opt (some int) None
         & info [ "default-timeout-ms" ] ~docv:"MS"
             ~doc:"Deadline budget for requests that do not carry one.")
  in
  let max_requests_arg =
    Arg.(value & opt (some int) None
         & info [ "max-requests" ] ~docv:"N"
             ~doc:"Drain and exit after serving N request lines (test \
                   harnesses; the production exit path is SIGTERM).")
  in
  let stats_arg =
    Arg.(value & opt (some string) None
         & info [ "stats" ] ~docv:"FILE"
             ~doc:"Write a final stats/metrics snapshot to $(docv) after \
                   the drain.")
  in
  let fault_seed_arg =
    Arg.(value & opt int 1
         & info [ "fault-seed" ] ~docv:"N"
             ~doc:"Seed of the deterministic fault-injection schedule.")
  in
  let fault_rate_arg =
    Arg.(value & opt float 0.
         & info [ "fault-rate" ] ~docv:"P"
             ~doc:"Total injected-fault probability per request, split \
                   over parse corruption, worker crashes, slowness and \
                   disconnects.  0 (default) disables injection.")
  in
  let term =
    Term.(const run $ socket_arg $ workers_arg $ jobs_arg $ queue_arg
          $ client_inflight_arg $ cache_arg $ coarsen_seed_arg
          $ default_timeout_arg $ max_requests_arg $ stats_arg
          $ fault_seed_arg $ fault_rate_arg $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Fault-tolerant partitioning daemon: newline-delimited JSON \
             requests over a Unix-domain or TCP socket, with admission \
             control, per-job deadline budgets, crash isolation with \
             retry, and a content-addressed hierarchy cache.  SIGTERM \
             drains the queue and exits 0.")
    term

let client_cmd =
  let run socket raw ping stats_q hgr bench path id client seed starts
      tolerance timeout_ms side trace metrics =
    obs_setup trace metrics;
    boundary @@ fun () ->
    let addr = parse_addr socket in
    let control op id =
      Json.to_string ~indent:false
        (Json.Obj [ ("op", Json.Str op); ("id", Json.Str id) ])
    in
    let line =
      match raw with
      | Some line -> line
      | None ->
          if ping then control "ping" id
          else if stats_q then control "stats" id
          else begin
            let src =
              match (hgr, bench, path) with
              | Some f, None, None ->
                  Protocol.Inline (In_channel.with_open_text f In_channel.input_all)
              | None, Some b, None -> Protocol.Bench b
              | None, None, Some p -> Protocol.Path p
              | None, None, None ->
                  usage_fail
                    "a request needs one of --hgr, --bench, --path (or \
                     --raw, --ping, --stats)"
              | _ -> usage_fail "at most one of --hgr, --bench, --path"
            in
            Protocol.request_to_line
              { Protocol.id; client; src; seed; starts; tolerance;
                timeout_ms; return_side = side }
          end
    in
    let reply =
      match
        Server.with_connection addr (fun ic oc -> Server.roundtrip ic oc line)
      with
      | reply -> reply
      | exception Unix.Unix_error (e, fn, _) ->
          Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
    in
    match reply with
    | Error msg ->
        print_diag (Diag.error ~source:socket Diag.Io_error "%s" msg);
        exit 3
    | Ok resp ->
        print_endline (Protocol.response_to_line resp);
        List.iter print_diag resp.Protocol.diags;
        exit (Protocol.exit_code_of_response resp)
  in
  let raw_arg =
    Arg.(value & opt (some string) None
         & info [ "raw" ] ~docv:"LINE"
             ~doc:"Send this exact request line (hostile-input testing).")
  in
  let ping_arg =
    Arg.(value & flag & info [ "ping" ] ~doc:"Send a ping control query.")
  in
  let stats_q_arg =
    Arg.(value & flag
         & info [ "stats" ] ~doc:"Query live daemon stats and metrics.")
  in
  let hgr_arg =
    Arg.(value & opt (some string) None
         & info [ "hgr" ] ~docv:"FILE"
             ~doc:"Read $(docv) and carry it inline in the request.")
  in
  let bench_arg =
    Arg.(value & opt (some string) None
         & info [ "bench" ] ~docv:"NAME"
             ~doc:"Partition the generated Table I stand-in $(docv).")
  in
  let path_arg =
    Arg.(value & opt (some string) None
         & info [ "path" ] ~docv:"FILE"
             ~doc:"Partition a netlist file readable by the daemon.")
  in
  let id_arg =
    Arg.(value & opt string "" & info [ "id" ] ~docv:"ID" ~doc:"Request id.")
  in
  let client_arg =
    Arg.(value & opt string "anon"
         & info [ "client" ] ~docv:"NAME"
             ~doc:"Client identity for per-client admission caps.")
  in
  let starts_arg =
    Arg.(value & opt int 1
         & info [ "starts" ] ~docv:"N"
             ~doc:"Independent multilevel starts; the best cut is kept.")
  in
  let timeout_ms_arg =
    Arg.(value & opt (some int) None
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Per-job deadline budget; an expired job still returns \
                   its best-so-far partition, marked degraded (exit 5).")
  in
  let side_arg =
    Arg.(value & flag
         & info [ "side" ] ~doc:"Ask for the full side assignment.")
  in
  let term =
    Term.(const run $ socket_arg $ raw_arg $ ping_arg $ stats_q_arg $ hgr_arg
          $ bench_arg $ path_arg $ id_arg $ client_arg $ seed_arg $ starts_arg
          $ tolerance_arg $ timeout_ms_arg $ side_arg $ trace_arg
          $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Submit one request to a running mlpart serve daemon, print \
             the response line, and exit with the response's documented \
             code (0 ok, 3 failed, 5 degraded, 6 rejected).")
    term

let setup_logging () =
  match Sys.getenv_opt "MLPART_VERBOSE" with
  | Some ("1" | "true" | "debug") ->
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Debug)
  | Some _ | None -> ()

let () =
  setup_logging ();
  let doc = "multilevel circuit partitioning (Alpert-Huang-Kahng, DAC 1997)" in
  let exits =
    Cmd.Exit.info 0 ~doc:"on success." ::
    Cmd.Exit.info 2 ~doc:"on command-line usage errors." ::
    Cmd.Exit.info 3 ~doc:"on input parse or I/O errors." ::
    Cmd.Exit.info 4 ~doc:"on hypergraph invariant violations." ::
    Cmd.Exit.info 5 ~doc:"when --timeout expired (best-so-far result was \
                          still written)." ::
    Cmd.Exit.info 6 ~doc:"when the serve daemon rejected the request \
                          (admission control); honour retry_after_ms and \
                          resubmit." :: []
  in
  let main = Cmd.group (Cmd.info "mlpart" ~doc ~exits)
      [ bipartition_cmd; quadrisect_cmd; kpartition_cmd; place_cmd;
        generate_cmd; evaluate_cmd; info_cmd; selfcheck_cmd; serve_cmd;
        client_cmd ]
  in
  (* cmdliner reports its own usage errors as 124; fold them into the
     documented usage code *)
  match Cmd.eval main with
  | 124 -> exit 2
  | code -> exit code
