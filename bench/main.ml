(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 4 for the experiment index), plus
   Bechamel micro-kernels, one per table, for timing the core workloads.

   Usage:
     main.exe                  -- all tables, scaled default protocol
     main.exe table4 figure4   -- selected experiments
     main.exe kernels          -- Bechamel micro-benchmarks
   Options: --runs N  --seed N  --tier tiny|small|standard|full  --jobs N
            --json FILE (kernels: machine-readable timings for BENCH_*.json
            perf tracking across PRs) *)

module Tables = Mlpart_experiments.Tables
module Algos = Mlpart_experiments.Algos
module Suite = Mlpart_gen.Suite
module Rng = Mlpart_util.Rng

let kernels ?json ~jobs () =
  (* Fail on an unwritable --json path up front, not after minutes of
     benchmarking. *)
  (match json with
  | None -> ()
  | Some path -> (
      match Out_channel.open_text path with
      | oc -> Out_channel.close oc
      | exception Sys_error msg ->
          Printf.eprintf "error: cannot write --json file: %s\n" msg;
          exit 1));
  let open Bechamel in
  let h small = Suite.instantiate (Suite.find small) in
  let balu = h "balu" in
  let primary1 = h "primary1" in
  let rng = Rng.create 42 in
  (* Intra-run parallelism for the pipeline kernels; [None] at --jobs 1
     exercises the sequential paths.  Outputs are bit-identical either
     way — only the timings move. *)
  let pool = if jobs > 1 then Some (Mlpart_util.Pool.get ~jobs) else None in
  let stage name f = Test.make ~name (Staged.stage f) in
  (* Refinement-only kernel: the hierarchy and coarsest-level solution are
     built once, so the staged function times exactly the uncoarsening
     sweep (project + engine run per level) that the FM engine dominates.
     One arena is reused across iterations, as the multilevel drivers do. *)
  let module Ml = Mlpart_multilevel.Ml in
  let module Hierarchy = Mlpart_multilevel.Hierarchy in
  let refine_kernel =
    let c = Ml.mlc in
    let hier =
      Hierarchy.build ~threshold:c.Ml.threshold ~ratio:c.Ml.ratio
        ~match_net_size:c.Ml.match_net_size
        ~merge_duplicates:c.Ml.merge_duplicates ~max_levels:c.Ml.max_levels
        (Rng.create 11) balu
    in
    let coarse =
      (Mlpart_partition.Fm.run ~config:c.Ml.engine (Rng.create 12)
         hier.Hierarchy.coarsest)
        .Mlpart_partition.Fm.side
    in
    let arena = Mlpart_partition.Fm.create_arena ~h:balu () in
    stage "phases/refine" (fun () ->
        ignore (Ml.refine_up c ?pool ~arena (Rng.split rng) hier coarse))
  in
  let tests =
    Test.make_grouped ~name:"kernels"
      [
        (* Table II kernel: one FM run with LIFO buckets. *)
        stage "table2/fm-lifo" (fun () ->
            ignore (Algos.fm.Algos.run (Rng.split rng) balu));
        (* Table III kernel: one CLIP run. *)
        stage "table3/clip" (fun () ->
            ignore (Algos.clip.Algos.run (Rng.split rng) balu));
        (* Table IV kernel: one multilevel MLc run at R = 1, with the
           domain pool threaded into the run itself. *)
        stage "table4/mlc" (fun () ->
            ignore
              (Ml.run ~config:(Ml.with_ratio Ml.mlc 1.0) ?pool (Rng.split rng)
                 balu));
        (* Tables V/VI kernel: slow coarsening (R = 0.33). *)
        stage "table5_6/mlc-r0.33" (fun () ->
            ignore ((Algos.mlc 0.33).Algos.run (Rng.split rng) balu));
        (* Table VII kernel: lookahead engine. *)
        stage "table7/cl-la3f" (fun () ->
            ignore (Algos.cl_la3f.Algos.run (Rng.split rng) balu));
        (* Table VIII kernel: PROP engine (the heap-based slowdown). *)
        stage "table8/cl-prf" (fun () ->
            ignore (Algos.cl_prf.Algos.run (Rng.split rng) balu));
        (* Table IX kernel: multilevel quadrisection. *)
        stage "table9/ml-4way" (fun () ->
            ignore (Algos.q_mlf.Algos.qrun (Rng.split rng) primary1));
        (* Figure 4 kernel: Match coarsening at R = 0.5. *)
        stage "figure4/match" (fun () ->
            ignore
              (Mlpart_multilevel.Match.run ?pool (Rng.split rng) primary1
                 ~ratio:0.5));
        (* Extras kernels. *)
        stage "extras/eig" (fun () ->
            ignore (Mlpart_placement.Spectral.run balu));
        stage "extras/rb4" (fun () ->
            ignore (Mlpart_multilevel.Rb.run ?pool (Rng.split rng) balu ~k:4));
        (* n-level kernels: one-pair-at-a-time contraction with the
           persistent gain cache, racing the level-batched engines above
           (extras/rb4, table9/ml-4way) on the same Table IX workloads. *)
        stage "nlevel/balu-2way" (fun () ->
            ignore (Mlpart_multilevel.Nlevel.run (Rng.split rng) balu ~k:2));
        stage "nlevel/primary1-4way" (fun () ->
            ignore
              (Mlpart_multilevel.Nlevel.run (Rng.split rng) primary1 ~k:4));
        stage "extras/topdown-place" (fun () ->
            ignore (Mlpart_placement.Topdown.run (Rng.split rng) balu));
        (* Phase kernel: uncoarsening refinement sweep alone. *)
        refine_kernel;
        (* Substrate kernels. *)
        stage "substrate/induce" (fun () ->
            let cluster_of, _ =
              Mlpart_multilevel.Match.run ?pool (Rng.split rng) primary1
                ~ratio:1.0
            in
            ignore
              (Mlpart_hypergraph.Hypergraph.induce ?pool primary1 cluster_of));
        stage "substrate/gordian-cg" (fun () ->
            ignore (Mlpart_placement.Gordian.run balu));
      ]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> rows := (name, ns) :: !rows
      | Some _ | None -> ())
    results;
  let rows =
    List.sort (fun (a, _) (b, _) -> String.compare a b) !rows
  in
  Printf.printf "\nBechamel kernels (monotonic clock):\n";
  List.iter
    (fun (name, ns) -> Printf.printf "  %-28s %12.0f ns/run\n" name ns)
    rows;
  match json with
  | None -> ()
  | Some path ->
      (* Phase breakdown of one MLc run on balu rides along with the kernel
         timings, so the per-phase trajectory is tracked across PRs too.
         The breakdown is derived from Trace spans — the same timing source
         chrome://tracing exports use — keeping the JSON keys byte-identical
         to the old Timer-based output. *)
      let module Trace = Mlpart_obs.Trace in
      let module Ml = Mlpart_multilevel.Ml in
      Trace.enable ();
      ignore (Ml.run ~config:Ml.mlc (Rng.create 7) balu);
      let coarsen_s = ref 0.0
      and initial_s = ref 0.0
      and refine_s = ref 0.0
      and refine_levels = ref 0 in
      List.iter
        (fun (e : Trace.event) ->
          let dur_s = float_of_int e.Trace.dur *. 1e-9 in
          match e.Trace.name with
          | "ml/coarsen" -> coarsen_s := !coarsen_s +. dur_s
          | "ml/initial" -> initial_s := !initial_s +. dur_s
          | "ml/refine_level" ->
              refine_s := !refine_s +. dur_s;
              incr refine_levels
          | _ -> ())
        (Trace.events ());
      Trace.disable ();
      (* Top-level run metadata makes every BENCH_*.json self-describing:
         which jobs count produced it, from which revision, and when. *)
      let git_rev =
        match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
        | ic ->
            let line = try input_line ic with End_of_file -> "unknown" in
            ignore (Unix.close_process_in ic);
            line
        | exception _ -> "unknown"
      in
      let timestamp =
        let tm = Unix.gmtime (Unix.gettimeofday ()) in
        Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
          (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
          tm.Unix.tm_sec
      in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "{\n";
      Buffer.add_string buf
        (Printf.sprintf
           "  \"meta\": {\"jobs\": %d, \"git_rev\": %S, \"generated_at\": \
            %S},\n"
           jobs git_rev timestamp);
      Buffer.add_string buf "  \"kernels\": [\n";
      let last = List.length rows - 1 in
      List.iteri
        (fun i (name, ns) ->
          Buffer.add_string buf
            (Printf.sprintf "    {\"name\": %S, \"ns_per_run\": %.1f}%s\n" name
               ns
               (if i = last then "" else ",")))
        rows;
      Buffer.add_string buf "  ],\n";
      Buffer.add_string buf
        (Printf.sprintf
           "  \"phases_mlc_balu\": {\"coarsen_s\": %.6f, \"initial_s\": %.6f, \
            \"refine_s\": %.6f, \"refine_levels\": %d}\n"
           !coarsen_s !initial_s !refine_s !refine_levels);
      Buffer.add_string buf "}\n";
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (Buffer.contents buf));
      Printf.printf "wrote %s\n" path

let () =
  let runs = ref Tables.default_protocol.Tables.runs in
  let seed = ref Tables.default_protocol.Tables.seed in
  let tier = ref Tables.default_protocol.Tables.tier in
  let jobs = ref Tables.default_protocol.Tables.jobs in
  let json = ref None in
  let selected = ref [] in
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse = function
    | [] -> ()
    | "--runs" :: v :: rest ->
        runs := int_of_string v;
        parse rest
    | "--json" :: v :: rest ->
        json := Some v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--jobs" :: v :: rest ->
        jobs := int_of_string v;
        parse rest
    | "--tier" :: v :: rest ->
        (match Suite.tier_of_string v with
        | Some t -> tier := t
        | None -> failwith (Printf.sprintf "unknown tier %S" v));
        parse rest
    | name :: rest ->
        selected := name :: !selected;
        parse rest
  in
  parse args;
  let p = { Tables.runs = !runs; seed = !seed; tier = !tier; jobs = !jobs } in
  let dispatch = function
    | "table1" -> Tables.table1 p
    | "table2" -> Tables.table2 p
    | "table3" -> Tables.table3 p
    | "table4" -> Tables.table4 p
    | "table5" -> Tables.table5 p
    | "table6" -> Tables.table6 p
    | "table7" -> Tables.table7 p
    | "table8" -> Tables.table8 p
    | "table9" -> Tables.table9 p
    | "figure4" -> Tables.figure4 p
    | "ablations" -> Tables.ablations p
    | "extras" -> Tables.extras p
    | "recursive" -> Tables.recursive p
    | "all" -> Tables.all p
    | "kernels" -> kernels ?json:!json ~jobs:!jobs ()
    | other -> failwith (Printf.sprintf "unknown experiment %S" other)
  in
  match List.rev !selected with
  | [] ->
      Tables.all p;
      kernels ?json:!json ~jobs:!jobs ()
  | names -> List.iter dispatch names
